#!/usr/bin/env bash
# Tier-1 CI gate. Everything here runs offline (no crates.io access).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> runtime integration tests (release)"
cargo test --release -p ensemble-runtime --test loopback_stack
cargo test --release -p ensemble-runtime --test udp_smoke

echo "CI OK"
