#!/usr/bin/env bash
# Tier-1 CI gate. Everything here runs offline (no crates.io access).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> runtime integration tests (release)"
cargo test --release -p ensemble-runtime --test loopback_stack
cargo test --release -p ensemble-runtime --test udp_smoke
cargo test --release -p ensemble-runtime --test obs_trace

echo "==> cluster: cross-node view-change convergence (release)"
cargo test --release -p ensemble-cluster --test convergence

echo "==> cluster: seeded partition chaos + fenced-member rejoin (release)"
# chaos_soak splits 4/2 on a fixed seed matrix and replays the whole
# execution against the virtual-synchrony checker; rejoin kills a
# member and absorbs its fresh incarnation through the merge path.
cargo test --release -p ensemble-cluster --test chaos_soak
cargo test --release -p ensemble-cluster --test rejoin

echo "==> cluster: demo — 3 nodes rendezvous, 1 killed, survivors install the new view"
# cluster_demo exits nonzero if the successor view is not installed
# within ten heartbeat periods or any cast is lost/duplicated.
cargo run --release -p ensemble-cluster --example cluster_demo

echo "==> cluster: demo — scripted 4/2 split, minority stall, heal, view merge"
# --partition exits nonzero if the minority delivers primary-only
# traffic or any vsync invariant is violated across the episode.
cargo run --release -p ensemble-cluster --example cluster_demo -- --partition

echo "==> kv: chaos linearizability + TCP client plane (release)"
# chaos_load_stays_linearizable drives 100 concurrent clients through
# seeded split/stall/heal/merge rounds and replays every commit and
# response against the linearizability checker; tcp_plane exercises
# pipelining, redirect-away-from-stalled, and per-request timeouts
# over real sockets.
cargo test --release -p ensemble-kv --test kv_chaos
cargo test --release -p ensemble-kv --test tcp_plane

echo "==> kv: crash recovery through the real replica path (release)"
# recovery kills a durable replica without a WAL flush, tears its disk,
# and checks both rejoin shapes: the quiet crash takes the
# state-transfer fast path (snapshot skipped), the torn crash recovers
# a strict prefix and catches up by snapshot.
cargo test --release -p ensemble-kv --test recovery

echo "==> kv: demo — replicated KV through a partition round, linearizability replay"
# kv_demo exits nonzero if the majority cannot commit during the
# partition, a replica never resumes serving after the heal, or the
# checker finds a violation; --crash swaps the partition for a
# crash-stop + WAL recovery episode and also replays the recovery
# invariants.
cargo run --release -p ensemble-kv --example kv_demo
cargo run --release -p ensemble-kv --example kv_demo -- --tcp
cargo run --release -p ensemble-kv --example kv_demo -- --crash

echo "==> kv: load generator emits and validates BENCH_kv_e2e.json"
KV_LOAD_OUT=$(cargo run --release -p ensemble-kv --bin kv_load -- \
  --replicas 3 --sim-clients 100 --tcp-clients 2 --ops 20 \
  --seed 42 --chaos --chaos-rounds 2 --out BENCH_kv_e2e.json)
test -s BENCH_kv_e2e.json
cargo run --release -p ensemble-bench --bin kv_check -- BENCH_kv_e2e.json

echo "==> kv: metrics exposition carries the required series"
for series in \
  'ensemble_kv_requests_total' \
  'ensemble_kv_commits_total' \
  'ensemble_kv_responses_total'; do
  grep -q "^$series" <<<"$KV_LOAD_OUT" || {
    echo "missing series: $series" >&2
    exit 1
  }
done

echo "==> kv: seeded crash/restart gate emits and validates BENCH_kv_crash.json"
# Eight crash/restart cycles under load on fault-injecting disks; the
# validator fails unless every restart recovered from the WAL, the
# injected faults demonstrably fired (torn tails, absorbed storage
# errors), and the recovery invariants held (zero violations).
KV_CRASH_OUT=$(cargo run --release -p ensemble-kv --bin kv_load -- \
  --replicas 3 --sim-clients 16 --tcp-clients 2 --ops 40 \
  --seed 7 --crash --crash-cycles 8 --out BENCH_kv_crash.json)
test -s BENCH_kv_crash.json
cargo run --release -p ensemble-bench --bin kv_check -- BENCH_kv_crash.json

echo "==> kv: durability metrics exposition carries the WAL series"
for series in \
  'ensemble_kv_wal_appends_total' \
  'ensemble_kv_wal_bytes_total' \
  'ensemble_kv_checkpoints_total' \
  'ensemble_kv_recoveries_total' \
  'ensemble_kv_torn_tail_records_total'; do
  grep -q "^$series" <<<"$KV_CRASH_OUT" || {
    echo "missing series: $series" >&2
    exit 1
  }
done

echo "==> analyze: stack_lint over every registered stack (HS/CC/DF passes)"
# --all-registered exits 2 if any registry stack was skipped; a deny-level
# DF diagnostic (non-commuting defers, undeclared state, stale certificate)
# makes stack_lint itself exit 1.
cargo run --release -p ensemble-analyze --bin stack_lint -- --all-registered
cargo run --release -p ensemble-analyze --bin stack_lint -- \
  --json --all-registered --out LINT_stacks.json --df-out DF_defer.json
test -s LINT_stacks.json
test -s DF_defer.json
cargo run --release -p ensemble-bench --bin lint_check -- \
  LINT_stacks.json --df DF_defer.json

echo "==> analyze: seeded collision must be caught"
if cargo run --release -p ensemble-analyze --bin stack_lint -- --inject-collision --quiet; then
  echo "stack_lint failed to reject the seeded header collision" >&2
  exit 1
fi

echo "==> runtime: smoke run exposes the defer-batching series"
# udp_pingpong installs the bypass on a defer-licensed stack, so the
# exposition must carry the batching counters the certificate gate feeds.
PINGPONG_OUT=$(cargo run --release -p ensemble-runtime --example udp_pingpong -- --metrics)
for series in \
  'ensemble_defer_batched_total' \
  'ensemble_defer_flushes_total'; do
  grep -q "^$series" <<<"$PINGPONG_OUT" || {
    echo "missing series: $series" >&2
    exit 1
  }
done

echo "==> bench: table2a emits and validates BENCH_table2a.json"
TABLE2A_OUT=$(cargo run --release -p ensemble-bench --bin table2a)
test -s BENCH_table2a.json
cargo run --release -p ensemble-bench --bin obs_check -- BENCH_table2a.json

echo "==> bench: metrics exposition carries the required series"
for series in \
  'ensemble_model_cost_total{engine="IMP",counter="instructions"}' \
  'ensemble_model_cost_total{engine="FUNC",counter="data_refs"}' \
  'ensemble_model_cost_total{engine="HAND",counter="dispatches"}' \
  'ensemble_model_cost_total{engine="MACH",counter="branches"}'; do
  grep -qF "$series" <<<"$TABLE2A_OUT" || {
    echo "missing series: $series" >&2
    exit 1
  }
done

echo "CI OK"
