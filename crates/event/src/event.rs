//! The down-going and up-going event types.
//!
//! Certain events travel down the stack (sends, timers, flow-control
//! grants) and others travel up (deliveries, views, blocks), per §2 of the
//! paper. Message-bearing events own their [`Msg`]; control events carry
//! only scalars.

use crate::msg::Msg;
use crate::view::ViewState;
use ensemble_util::{Rank, Seqno, Time};

/// Events travelling *down* the stack (towards the network).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DnEvent {
    /// Multicast a message to the whole group.
    Cast(Msg),
    /// Send a message point-to-point to `dst`.
    Send { dst: Rank, msg: Msg },
    /// Request a timer callback at `deadline` (consumed by the engine).
    Timer { deadline: Time },
    /// Membership asks the data layers to cease new transmissions.
    Block,
    /// The application acknowledges a `Block` request.
    BlockOk,
    /// Declare `ranks` as suspected-failed (travels to membership).
    Suspect { ranks: Vec<Rank> },
    /// Admit `members` into the group (travels to membership): `gmp`
    /// flushes the current view and announces a grown view whose member
    /// list is the sorted union. Used by partition healing, where the
    /// members of a remote component rejoin the primary partition.
    Merge {
        members: Vec<ensemble_util::Endpoint>,
    },
    /// A stability vector travelling down (consumed by `mnak` to prune
    /// its retransmission buffer; absorbed by `bottom`).
    Stable(Vec<Seqno>),
    /// The application leaves the group.
    Leave,
}

/// Events travelling *up* the stack (towards the application).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UpEvent {
    /// Delivery of a multicast from `origin`.
    Cast { origin: Rank, msg: Msg },
    /// Delivery of a point-to-point message from `origin`.
    Send { origin: Rank, msg: Msg },
    /// A new view is ready to be installed (the runtime rebuilds stacks).
    View(ViewState),
    /// Membership asks the application to stop sending.
    Block,
    /// Failure detection reports `ranks` as suspected.
    Suspect(Vec<Rank>),
    /// The flush protocol completed (sync → gmp).
    FlushDone,
    /// A stability vector (per-origin all-delivered floor).
    Stable(Vec<Seqno>),
    /// The stack is being torn down.
    Exit,
    /// A gap was detected and could not be repaired in time.
    LostMessage { origin: Rank, seqno: Seqno },
}

impl DnEvent {
    /// The message carried by this event, if any.
    pub fn msg(&self) -> Option<&Msg> {
        match self {
            DnEvent::Cast(m) => Some(m),
            DnEvent::Send { msg, .. } => Some(msg),
            _ => None,
        }
    }

    /// Mutable access to the carried message, if any.
    pub fn msg_mut(&mut self) -> Option<&mut Msg> {
        match self {
            DnEvent::Cast(m) => Some(m),
            DnEvent::Send { msg, .. } => Some(msg),
            _ => None,
        }
    }

    /// Whether the event carries a message.
    pub fn is_message(&self) -> bool {
        self.msg().is_some()
    }
}

impl UpEvent {
    /// The message carried by this event, if any.
    pub fn msg(&self) -> Option<&Msg> {
        match self {
            UpEvent::Cast { msg, .. } => Some(msg),
            UpEvent::Send { msg, .. } => Some(msg),
            _ => None,
        }
    }

    /// Mutable access to the carried message, if any.
    pub fn msg_mut(&mut self) -> Option<&mut Msg> {
        match self {
            UpEvent::Cast { msg, .. } => Some(msg),
            UpEvent::Send { msg, .. } => Some(msg),
            _ => None,
        }
    }

    /// The origin rank, for deliveries.
    pub fn origin(&self) -> Option<Rank> {
        match self {
            UpEvent::Cast { origin, .. } | UpEvent::Send { origin, .. } => Some(*origin),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::Payload;

    #[test]
    fn dn_event_message_access() {
        let mut e = DnEvent::Cast(Msg::data(Payload::from_slice(b"a")));
        assert!(e.is_message());
        assert_eq!(e.msg().unwrap().payload().len(), 1);
        e.msg_mut().unwrap().set_payload(Payload::from_slice(b"bb"));
        assert_eq!(e.msg().unwrap().payload().len(), 2);
        assert!(!DnEvent::Block.is_message());
        assert!(DnEvent::Timer { deadline: Time(5) }.msg().is_none());
    }

    #[test]
    fn up_event_origin() {
        let e = UpEvent::Cast {
            origin: Rank(3),
            msg: Msg::control(),
        };
        assert_eq!(e.origin(), Some(Rank(3)));
        assert_eq!(UpEvent::Block.origin(), None);
    }

    #[test]
    fn up_event_send_msg_mut() {
        let mut e = UpEvent::Send {
            origin: Rank(1),
            msg: Msg::data(Payload::from_slice(b"zz")),
        };
        assert_eq!(e.msg().unwrap().payload().len(), 2);
        e.msg_mut().unwrap().set_payload(Payload::empty());
        assert!(e.msg().unwrap().payload().is_empty());
    }
}
