//! Zero-copy message payloads.
//!
//! §4.2 of the paper stresses avoiding copies on the critical path by using
//! scatter-gather ("iovec") interfaces. [`Payload`] mirrors that: a payload
//! is a list of reference-counted byte segments; cloning a payload or
//! prepending a header segment never copies user data. Gathering into a
//! contiguous buffer happens only at the wire boundary.

use std::fmt;
use std::sync::Arc;

/// An immutable, reference-counted, segmented byte payload.
///
/// # Examples
///
/// ```
/// use ensemble_event::Payload;
/// let p = Payload::from_slice(b"hello ").appended(Payload::from_slice(b"world"));
/// assert_eq!(p.len(), 11);
/// assert_eq!(p.gather(), b"hello world");
/// ```
#[derive(Clone, Default)]
pub struct Payload {
    segs: Vec<Arc<[u8]>>,
    len: usize,
}

impl Payload {
    /// The empty payload.
    pub fn empty() -> Self {
        Payload::default()
    }

    /// Builds a single-segment payload by copying `bytes` once.
    pub fn from_slice(bytes: &[u8]) -> Self {
        if bytes.is_empty() {
            return Payload::empty();
        }
        Payload {
            len: bytes.len(),
            segs: vec![Arc::from(bytes)],
        }
    }

    /// Builds a single-segment payload, taking ownership without copying.
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        if bytes.is_empty() {
            return Payload::empty();
        }
        Payload {
            len: bytes.len(),
            segs: vec![Arc::from(bytes.into_boxed_slice())],
        }
    }

    /// Builds a payload of `len` bytes filled with `byte`.
    pub fn filled(byte: u8, len: usize) -> Self {
        Payload::from_vec(vec![byte; len])
    }

    /// Total byte length across all segments.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the payload has zero bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of segments (wire writes needed under scatter-gather).
    pub fn seg_count(&self) -> usize {
        self.segs.len()
    }

    /// Iterates over the raw segments.
    pub fn segments(&self) -> impl Iterator<Item = &[u8]> {
        self.segs.iter().map(|s| s.as_ref())
    }

    /// Returns a new payload that is `self` followed by `tail` (no copy).
    pub fn appended(&self, tail: Payload) -> Payload {
        let mut segs = self.segs.clone();
        segs.extend(tail.segs);
        Payload {
            len: self.len + tail.len,
            segs,
        }
    }

    /// Gathers all segments into one contiguous vector (copies).
    pub fn gather(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len);
        for s in &self.segs {
            out.extend_from_slice(s);
        }
        out
    }

    /// Splits the payload into `n` roughly-equal fragments (no copy for
    /// segment-aligned cuts; copies only the straddling segment).
    ///
    /// Used by the `frag` layer. Fragments are returned in order and
    /// gathering their concatenation reproduces the original bytes.
    pub fn split_into(&self, max_frag: usize) -> Vec<Payload> {
        assert!(max_frag > 0, "fragment size must be positive");
        if self.len <= max_frag {
            return vec![self.clone()];
        }
        let bytes = self.gather();
        bytes.chunks(max_frag).map(Payload::from_slice).collect()
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        // Compare logical byte streams, ignoring segmentation.
        self.gather() == other.gather()
    }
}

impl Eq for Payload {}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload[{}B x{}]", self.len, self.segs.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_payload() {
        let p = Payload::empty();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(p.seg_count(), 0);
        assert_eq!(p.gather(), Vec::<u8>::new());
    }

    #[test]
    fn from_slice_and_vec_agree() {
        let a = Payload::from_slice(b"abc");
        let b = Payload::from_vec(b"abc".to_vec());
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn append_is_zero_copy_concat() {
        let a = Payload::from_slice(b"ab");
        let b = Payload::from_slice(b"cd");
        let c = a.appended(b);
        assert_eq!(c.len(), 4);
        assert_eq!(c.seg_count(), 2);
        assert_eq!(c.gather(), b"abcd");
    }

    #[test]
    fn equality_ignores_segmentation() {
        let a = Payload::from_slice(b"ab").appended(Payload::from_slice(b"cd"));
        let b = Payload::from_slice(b"abcd");
        assert_eq!(a, b);
        assert_ne!(a, Payload::from_slice(b"abce"));
        assert_ne!(a, Payload::from_slice(b"abc"));
    }

    #[test]
    fn clone_shares_segments() {
        let a = Payload::filled(7, 1024);
        let b = a.clone();
        // Both views see the same backing store.
        assert!(Arc::ptr_eq(&a.segs[0], &b.segs[0]));
    }

    #[test]
    fn split_reassembles() {
        let p = Payload::from_vec((0..=255u8).collect());
        let frags = p.split_into(100);
        assert_eq!(frags.len(), 3);
        assert_eq!(frags[0].len(), 100);
        assert_eq!(frags[2].len(), 56);
        let mut whole = Payload::empty();
        for f in &frags {
            whole = whole.appended(f.clone());
        }
        assert_eq!(whole, p);
    }

    #[test]
    fn split_small_is_identity() {
        let p = Payload::from_slice(b"tiny");
        let frags = p.split_into(100);
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0], p);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn split_zero_panics() {
        Payload::from_slice(b"x").split_into(0);
    }
}
