//! Messages: a payload plus a stack of per-layer header frames.

use crate::frame::Frame;
use crate::payload::Payload;

/// A message travelling through the stack.
///
/// Layers push one [`Frame`] on the way down and pop one on the way up;
/// the frame vector therefore acts as a stack whose top is the *lowest*
/// layer's header (the last pushed).
///
/// # Examples
///
/// ```
/// use ensemble_event::{Frame, Msg, Payload};
/// let mut m = Msg::data(Payload::from_slice(b"hi"));
/// m.push_frame(Frame::NoHdr);
/// assert_eq!(m.pop_frame(), Frame::NoHdr);
/// assert!(m.frames().is_empty());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Msg {
    frames: Vec<Frame>,
    payload: Payload,
}

impl Msg {
    /// A fresh application message with no headers yet.
    pub fn data(payload: Payload) -> Msg {
        Msg {
            frames: Vec::new(),
            payload,
        }
    }

    /// A headerless, payloadless control message (layers then push their
    /// control headers onto it).
    pub fn control() -> Msg {
        Msg::default()
    }

    /// Builds a message from parts (used by the transport unmarshaler).
    pub fn from_parts(frames: Vec<Frame>, payload: Payload) -> Msg {
        Msg { frames, payload }
    }

    /// The header stack, outermost (lowest layer) last.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// The user payload.
    pub fn payload(&self) -> &Payload {
        &self.payload
    }

    /// Replaces the payload (used by `frag` and `encrypt`).
    pub fn set_payload(&mut self, p: Payload) {
        self.payload = p;
    }

    /// Pushes this layer's header (called on the way down).
    pub fn push_frame(&mut self, f: Frame) {
        self.frames.push(f);
    }

    /// Pops this layer's header (called on the way up).
    ///
    /// # Panics
    ///
    /// Panics if the frame stack is empty — that is a layering bug: some
    /// layer forgot to push or popped twice.
    pub fn pop_frame(&mut self) -> Frame {
        self.frames
            .pop()
            .expect("layering violation: popped an empty frame stack")
    }

    /// Peeks at the outermost frame without popping.
    pub fn peek_frame(&self) -> Option<&Frame> {
        self.frames.last()
    }

    /// Number of frames currently on the message.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Consumes the message into its parts.
    pub fn into_parts(self) -> (Vec<Frame>, Payload) {
        (self.frames, self.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{mnak_data, Pt2PtHdr};
    use ensemble_util::Seqno;

    #[test]
    fn push_pop_is_lifo() {
        let mut m = Msg::data(Payload::from_slice(b"x"));
        m.push_frame(Frame::NoHdr);
        m.push_frame(mnak_data(4));
        assert_eq!(m.depth(), 2);
        assert_eq!(m.pop_frame(), mnak_data(4));
        assert_eq!(m.pop_frame(), Frame::NoHdr);
    }

    #[test]
    #[should_panic(expected = "layering violation")]
    fn pop_empty_panics() {
        Msg::control().pop_frame();
    }

    #[test]
    fn peek_does_not_remove() {
        let mut m = Msg::control();
        m.push_frame(Frame::Pt2Pt(Pt2PtHdr::Ack { ack: Seqno(7) }));
        assert!(m.peek_frame().is_some());
        assert_eq!(m.depth(), 1);
    }

    #[test]
    fn parts_roundtrip() {
        let mut m = Msg::data(Payload::from_slice(b"abc"));
        m.push_frame(Frame::NoHdr);
        let (frames, payload) = m.clone().into_parts();
        assert_eq!(Msg::from_parts(frames, payload), m);
    }

    #[test]
    fn control_is_empty() {
        let m = Msg::control();
        assert_eq!(m.depth(), 0);
        assert!(m.payload().is_empty());
    }
}
