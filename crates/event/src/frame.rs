//! Per-layer header frames.
//!
//! Every micro-protocol layer pushes exactly one [`Frame`] onto a message
//! travelling down the stack and pops exactly one on the way up. There is
//! no fixed wire format for headers in Ensemble; `ensemble-transport`
//! provides both a generic marshaler (walking this structure, modelling the
//! OCaml value marshaler) and the specialized compressed form synthesized
//! for common cases.

use ensemble_util::{Endpoint, Rank, Seqno};

/// The header contributed by one layer to one message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// A layer that passes the message through unchanged.
    NoHdr,
    /// `bottom` wraps the fully-assembled message for the network.
    Bottom { view_ltime: u64 },
    /// `mnak` reliable-multicast header.
    Mnak(MnakHdr),
    /// `pt2pt` reliable point-to-point header.
    Pt2Pt(Pt2PtHdr),
    /// `pt2ptw` point-to-point window flow control.
    Pt2PtW(FlowHdr),
    /// `mflow` multicast flow control.
    MFlow(FlowHdr),
    /// `frag` fragmentation header.
    Frag(FragHdr),
    /// `collect` stability collection header.
    Collect(CollectHdr),
    /// `total` total-ordering header.
    Total(TotalHdr),
    /// `stable` stability-gossip header.
    Stable(StableHdr),
    /// `suspect` failure-detection header.
    Suspect(SuspectHdr),
    /// `sync` view-flush header.
    Sync(SyncHdr),
    /// `gmp` group-membership header.
    Gmp(GmpHdr),
    /// `sign` integrity MAC.
    Sign { mac: u64 },
    /// `encrypt` marker (payload bytes are transformed in place).
    Encrypt { keyid: u32 },
}

/// Headers of the NAK-based reliable multicast layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MnakHdr {
    /// A data cast, numbered per origin.
    Data { seqno: Seqno },
    /// A negative acknowledgment requesting `[lo, hi)` from `origin`.
    Nak { origin: Rank, lo: Seqno, hi: Seqno },
    /// A retransmission of `origin`'s cast `seqno`.
    Retrans { origin: Rank, seqno: Seqno },
    /// A periodic frontier announcement: the sender's next cast seqno.
    /// Receivers compare against their delivery frontier and NAK any gap
    /// — this is what repairs *trailing* losses, which plain NAKs can
    /// never detect (no later data arrives to reveal the gap).
    Heartbeat { next: Seqno },
}

/// Headers of the credit-based flow-control layers (`pt2ptw`, `mflow`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowHdr {
    /// Data passing through under an open window.
    Data,
    /// A cumulative credit grant: the receiver has consumed `granted`
    /// messages in total from the grantee.
    Credit { granted: u64 },
}

/// Headers of the positive-ack sliding-window point-to-point layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Pt2PtHdr {
    /// In-sequence data with a piggybacked cumulative ack.
    Data { seqno: Seqno, ack: Seqno },
    /// An explicit cumulative acknowledgment.
    Ack { ack: Seqno },
}

/// Headers of the fragmentation layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FragHdr {
    /// The message was small enough to travel whole (the common case).
    Whole,
    /// Fragment `idx` of `total` of logical message `msg_id`.
    Piece { msg_id: u32, idx: u16, total: u16 },
}

/// Headers of the stability-collection layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CollectHdr {
    /// Data passes through.
    Pass,
    /// A gossip of this member's delivered-seqno vector (one per origin).
    Gossip { seen: Vec<u64> },
}

/// Headers of the (sequencer-based) total ordering layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TotalHdr {
    /// A cast already carrying its global order (sent by the sequencer —
    /// the common case the bypass specializes for).
    Ordered { order: Seqno },
    /// A cast awaiting an order assignment; keyed by the sender's local
    /// sequence number.
    Unordered { local: Seqno },
    /// The sequencer's order announcement: global order `order` is the
    /// cast `local` from `origin`.
    Order {
        origin: Rank,
        local: Seqno,
        order: Seqno,
    },
}

/// Headers of the gossip-based stability layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StableHdr {
    /// Data passes through.
    Pass,
    /// Gossip of the local acknowledgment matrix row.
    Gossip { row: Vec<u64> },
}

/// Headers of the failure-detection layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SuspectHdr {
    /// Data passes through.
    Pass,
    /// A liveness ping for round `round`.
    Ping { round: u32 },
    /// A reply to `Ping { round }`.
    Pong { round: u32 },
}

/// Headers of the virtual-synchrony flush layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SyncHdr {
    /// Data passes through.
    Pass,
    /// Coordinator asks members to flush (stop sending, report casts
    /// seen). Carries the suspect ranks so members exclude the dead from
    /// the completion condition.
    Flush { suspects: Vec<u64> },
    /// A member reports it has flushed; `seen` is its delivered-cast vector.
    FlushOk { seen: Vec<u64> },
}

/// Headers of the group-membership layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GmpHdr {
    /// Data passes through.
    Pass,
    /// The coordinator announces the next view.
    NewView {
        view_id_ltime: u64,
        coord: Endpoint,
        members: Vec<Endpoint>,
    },
}

impl Frame {
    /// A short tag identifying the frame kind (used for wire encoding and
    /// for the synthesized header-compression tables).
    pub fn tag(&self) -> u8 {
        match self {
            Frame::NoHdr => 0,
            Frame::Bottom { .. } => 1,
            Frame::Mnak(MnakHdr::Data { .. }) => 2,
            Frame::Mnak(MnakHdr::Nak { .. }) => 3,
            Frame::Mnak(MnakHdr::Retrans { .. }) => 4,
            Frame::Mnak(MnakHdr::Heartbeat { .. }) => 30,
            Frame::Pt2Pt(Pt2PtHdr::Data { .. }) => 5,
            Frame::Pt2Pt(Pt2PtHdr::Ack { .. }) => 6,
            Frame::Pt2PtW(FlowHdr::Data) => 7,
            Frame::MFlow(FlowHdr::Data) => 8,
            Frame::Pt2PtW(FlowHdr::Credit { .. }) => 28,
            Frame::MFlow(FlowHdr::Credit { .. }) => 29,
            Frame::Frag(FragHdr::Whole) => 9,
            Frame::Frag(FragHdr::Piece { .. }) => 10,
            Frame::Collect(CollectHdr::Pass) => 11,
            Frame::Collect(CollectHdr::Gossip { .. }) => 12,
            Frame::Total(TotalHdr::Ordered { .. }) => 13,
            Frame::Total(TotalHdr::Unordered { .. }) => 14,
            Frame::Total(TotalHdr::Order { .. }) => 15,
            Frame::Stable(StableHdr::Pass) => 16,
            Frame::Stable(StableHdr::Gossip { .. }) => 17,
            Frame::Suspect(SuspectHdr::Pass) => 18,
            Frame::Suspect(SuspectHdr::Ping { .. }) => 19,
            Frame::Suspect(SuspectHdr::Pong { .. }) => 20,
            Frame::Sync(SyncHdr::Pass) => 21,
            Frame::Sync(SyncHdr::Flush { .. }) => 22,
            Frame::Sync(SyncHdr::FlushOk { .. }) => 23,
            Frame::Gmp(GmpHdr::Pass) => 24,
            Frame::Gmp(GmpHdr::NewView { .. }) => 25,
            Frame::Sign { .. } => 26,
            Frame::Encrypt { .. } => 27,
        }
    }

    /// Whether the frame is a constant pass-through (carries no varying
    /// fields). Such frames vanish entirely under header compression.
    pub fn is_constant(&self) -> bool {
        matches!(
            self,
            Frame::NoHdr
                | Frame::Pt2PtW(FlowHdr::Data)
                | Frame::MFlow(FlowHdr::Data)
                | Frame::Frag(FragHdr::Whole)
                | Frame::Collect(CollectHdr::Pass)
                | Frame::Stable(StableHdr::Pass)
                | Frame::Suspect(SuspectHdr::Pass)
                | Frame::Sync(SyncHdr::Pass)
                | Frame::Gmp(GmpHdr::Pass)
        )
    }
}

/// Convenience constructor used pervasively in tests.
pub fn mnak_data(seqno: u64) -> Frame {
    Frame::Mnak(MnakHdr::Data {
        seqno: Seqno(seqno),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_distinct() {
        let frames = vec![
            Frame::NoHdr,
            Frame::Bottom { view_ltime: 0 },
            mnak_data(0),
            Frame::Mnak(MnakHdr::Nak {
                origin: Rank(0),
                lo: Seqno(0),
                hi: Seqno(1),
            }),
            Frame::Mnak(MnakHdr::Retrans {
                origin: Rank(0),
                seqno: Seqno(0),
            }),
            Frame::Mnak(MnakHdr::Heartbeat { next: Seqno(0) }),
            Frame::Pt2Pt(Pt2PtHdr::Data {
                seqno: Seqno(0),
                ack: Seqno(0),
            }),
            Frame::Pt2Pt(Pt2PtHdr::Ack { ack: Seqno(0) }),
            Frame::Pt2PtW(FlowHdr::Data),
            Frame::MFlow(FlowHdr::Data),
            Frame::Pt2PtW(FlowHdr::Credit { granted: 0 }),
            Frame::MFlow(FlowHdr::Credit { granted: 0 }),
            Frame::Frag(FragHdr::Whole),
            Frame::Frag(FragHdr::Piece {
                msg_id: 0,
                idx: 0,
                total: 2,
            }),
            Frame::Collect(CollectHdr::Pass),
            Frame::Collect(CollectHdr::Gossip { seen: vec![] }),
            Frame::Total(TotalHdr::Ordered { order: Seqno(0) }),
            Frame::Total(TotalHdr::Unordered { local: Seqno(0) }),
            Frame::Total(TotalHdr::Order {
                origin: Rank(0),
                local: Seqno(0),
                order: Seqno(0),
            }),
            Frame::Stable(StableHdr::Pass),
            Frame::Stable(StableHdr::Gossip { row: vec![] }),
            Frame::Suspect(SuspectHdr::Pass),
            Frame::Suspect(SuspectHdr::Ping { round: 0 }),
            Frame::Suspect(SuspectHdr::Pong { round: 0 }),
            Frame::Sync(SyncHdr::Pass),
            Frame::Sync(SyncHdr::Flush { suspects: vec![] }),
            Frame::Sync(SyncHdr::FlushOk { seen: vec![] }),
            Frame::Gmp(GmpHdr::Pass),
            Frame::Gmp(GmpHdr::NewView {
                view_id_ltime: 0,
                coord: Endpoint::new(0),
                members: vec![],
            }),
            Frame::Sign { mac: 0 },
            Frame::Encrypt { keyid: 0 },
        ];
        let mut tags: Vec<u8> = frames.iter().map(Frame::tag).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), frames.len(), "duplicate frame tags");
    }

    #[test]
    fn constant_frames() {
        assert!(Frame::NoHdr.is_constant());
        assert!(Frame::Frag(FragHdr::Whole).is_constant());
        assert!(!mnak_data(3).is_constant());
        assert!(!Frame::Bottom { view_ltime: 1 }.is_constant());
    }
}
