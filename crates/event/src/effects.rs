//! The output collector handed to layer handlers.
//!
//! A layer handler may emit any number of events upward (towards the
//! application) and downward (towards the network), and may request timer
//! callbacks. The engine drains an [`Effects`] after each handler
//! invocation and routes its contents to the adjacent layers.

use crate::event::{DnEvent, UpEvent};
use ensemble_util::Time;

/// Events and timer requests produced by one handler invocation.
#[derive(Debug, Default)]
pub struct Effects {
    up: Vec<UpEvent>,
    dn: Vec<DnEvent>,
    timers: Vec<Time>,
}

impl Effects {
    /// An empty collector.
    pub fn new() -> Self {
        Effects::default()
    }

    /// Emits an event to the layer above.
    pub fn up(&mut self, ev: UpEvent) {
        self.up.push(ev);
    }

    /// Emits an event to the layer below.
    pub fn dn(&mut self, ev: DnEvent) {
        self.dn.push(ev);
    }

    /// Requests a timer callback at `deadline` for the emitting layer.
    pub fn timer(&mut self, deadline: Time) {
        self.timers.push(deadline);
    }

    /// Whether nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.up.is_empty() && self.dn.is_empty() && self.timers.is_empty()
    }

    /// Drains the up-going events.
    pub fn take_up(&mut self) -> Vec<UpEvent> {
        std::mem::take(&mut self.up)
    }

    /// Drains the down-going events.
    pub fn take_dn(&mut self) -> Vec<DnEvent> {
        std::mem::take(&mut self.dn)
    }

    /// Drains the timer requests.
    pub fn take_timers(&mut self) -> Vec<Time> {
        std::mem::take(&mut self.timers)
    }

    /// Peeks at pending up-going events.
    pub fn peek_up(&self) -> &[UpEvent] {
        &self.up
    }

    /// Peeks at pending down-going events.
    pub fn peek_dn(&self) -> &[DnEvent] {
        &self.dn
    }

    /// Clears everything (buffer reuse in the IMP engine).
    pub fn clear(&mut self) {
        self.up.clear();
        self.dn.clear();
        self.timers.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Msg;
    use ensemble_util::Rank;

    #[test]
    fn collects_and_drains() {
        let mut fx = Effects::new();
        assert!(fx.is_empty());
        fx.up(UpEvent::Block);
        fx.dn(DnEvent::BlockOk);
        fx.timer(Time(100));
        assert!(!fx.is_empty());
        assert_eq!(fx.take_up().len(), 1);
        assert_eq!(fx.take_dn().len(), 1);
        assert_eq!(fx.take_timers(), vec![Time(100)]);
        assert!(fx.is_empty());
    }

    #[test]
    fn peek_preserves() {
        let mut fx = Effects::new();
        fx.up(UpEvent::Cast {
            origin: Rank(0),
            msg: Msg::control(),
        });
        assert_eq!(fx.peek_up().len(), 1);
        assert_eq!(fx.peek_up().len(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut fx = Effects::new();
        fx.dn(DnEvent::Leave);
        fx.timer(Time(1));
        fx.clear();
        assert!(fx.is_empty());
        assert!(fx.peek_dn().is_empty());
    }
}
