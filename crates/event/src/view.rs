//! Group views.
//!
//! A *view* is the membership agreed by the group at a point in time. Each
//! member knows the view and its own rank within it. Virtual synchrony
//! guarantees that members move through the same sequence of views and
//! deliver the same messages within each view.

use ensemble_util::{Endpoint, GroupId, Rank, ViewId};

/// The membership state a protocol stack is instantiated with.
///
/// # Examples
///
/// ```
/// use ensemble_event::ViewState;
/// use ensemble_util::{Endpoint, Rank};
/// let vs = ViewState::initial(3);
/// assert_eq!(vs.nmembers(), 3);
/// assert_eq!(vs.rank_of(Endpoint::new(2)), Some(Rank(2)));
/// assert!(vs.is_coord_rank(Rank(0)));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ViewState {
    /// The group this view belongs to.
    pub group: GroupId,
    /// The view identifier (totally ordered across the group's history).
    pub view_id: ViewId,
    /// Members in rank order.
    pub members: Vec<Endpoint>,
    /// This process's rank within `members`.
    pub rank: Rank,
}

impl ViewState {
    /// A fresh single-group view of `n` endpoints `ep0..ep(n-1)`, seen from
    /// rank 0. Use [`ViewState::for_rank`] to re-root it at another member.
    pub fn initial(n: usize) -> Self {
        let members: Vec<Endpoint> = (0..n as u32).map(Endpoint::new).collect();
        ViewState {
            group: GroupId(1),
            view_id: ViewId::initial(members[0]),
            members,
            rank: Rank(0),
        }
    }

    /// The same view seen from `rank`.
    pub fn for_rank(&self, rank: Rank) -> Self {
        assert!(rank.index() < self.members.len(), "rank out of view");
        ViewState {
            rank,
            ..self.clone()
        }
    }

    /// Number of members in the view.
    pub fn nmembers(&self) -> usize {
        self.members.len()
    }

    /// The endpoint at `rank`.
    pub fn endpoint_of(&self, rank: Rank) -> Endpoint {
        self.members[rank.index()]
    }

    /// This process's endpoint.
    pub fn my_endpoint(&self) -> Endpoint {
        self.endpoint_of(self.rank)
    }

    /// The rank of `ep` in this view, if a member.
    pub fn rank_of(&self, ep: Endpoint) -> Option<Rank> {
        self.members
            .iter()
            .position(|&m| m == ep)
            .map(|i| Rank(i as u16))
    }

    /// The coordinator's rank (lowest rank by convention).
    pub fn coord(&self) -> Rank {
        Rank(0)
    }

    /// Whether `rank` is the coordinator.
    pub fn is_coord_rank(&self, rank: Rank) -> bool {
        rank == self.coord()
    }

    /// Whether this process is the coordinator.
    pub fn am_coord(&self) -> bool {
        self.is_coord_rank(self.rank)
    }

    /// Builds the successor view with `failed` members removed, installed
    /// by this process. Ranks are reassigned by position.
    pub fn next_view(&self, failed: &[Rank]) -> ViewState {
        let survivors: Vec<Endpoint> = self
            .members
            .iter()
            .enumerate()
            .filter(|(i, _)| !failed.iter().any(|f| f.index() == *i))
            .map(|(_, &ep)| ep)
            .collect();
        assert!(!survivors.is_empty(), "view change would empty the group");
        let me = self.my_endpoint();
        let new_rank = survivors
            .iter()
            .position(|&ep| ep == me)
            .map(|i| Rank(i as u16))
            .unwrap_or(Rank(0));
        ViewState {
            group: self.group,
            view_id: self.view_id.next(survivors[0]),
            members: survivors,
            rank: new_rank,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_view_shape() {
        let vs = ViewState::initial(4);
        assert_eq!(vs.nmembers(), 4);
        assert_eq!(vs.rank, Rank(0));
        assert!(vs.am_coord());
        assert_eq!(vs.my_endpoint(), Endpoint::new(0));
    }

    #[test]
    fn for_rank_reroots() {
        let vs = ViewState::initial(3).for_rank(Rank(2));
        assert_eq!(vs.rank, Rank(2));
        assert!(!vs.am_coord());
        assert_eq!(vs.my_endpoint(), Endpoint::new(2));
    }

    #[test]
    #[should_panic(expected = "out of view")]
    fn for_rank_bounds_checked() {
        ViewState::initial(2).for_rank(Rank(5));
    }

    #[test]
    fn rank_lookup() {
        let vs = ViewState::initial(3);
        assert_eq!(vs.rank_of(Endpoint::new(1)), Some(Rank(1)));
        assert_eq!(vs.rank_of(Endpoint::new(9)), None);
    }

    #[test]
    fn next_view_removes_failed_and_reranks() {
        let vs = ViewState::initial(4).for_rank(Rank(2));
        let nv = vs.next_view(&[Rank(0)]);
        assert_eq!(nv.nmembers(), 3);
        // ep2 had rank 2, is now rank 1 after ep0 left.
        assert_eq!(nv.rank, Rank(1));
        assert_eq!(nv.members[0], Endpoint::new(1));
        assert!(nv.view_id > vs.view_id);
    }

    #[test]
    fn next_view_new_coordinator() {
        let vs = ViewState::initial(3).for_rank(Rank(1));
        let nv = vs.next_view(&[Rank(0)]);
        assert!(nv.am_coord());
        assert_eq!(nv.view_id.coord, Endpoint::new(1));
    }
}
