//! Event and message model for the Ensemble-rs protocol stacks.
//!
//! Ensemble's micro-protocol interface is event-driven: layers exchange
//! *events*, some travelling down the stack (sends, casts, timers) and some
//! travelling up (deliveries, view changes, blocks). Message-bearing events
//! carry a [`Msg`]: an iovec-style [`Payload`] plus a stack of per-layer
//! header [`Frame`]s — each layer pushes exactly one frame on the way down
//! and pops exactly one on the way up.
//!
//! This crate defines the shared vocabulary; the layer algorithms live in
//! `ensemble-layers`, marshaling in `ensemble-transport`.

#![forbid(unsafe_code)]

pub mod effects;
pub mod event;
pub mod frame;
pub mod msg;
pub mod payload;
pub mod view;

pub use effects::Effects;
pub use event::{DnEvent, UpEvent};
pub use frame::{
    CollectHdr, FlowHdr, FragHdr, Frame, GmpHdr, MnakHdr, Pt2PtHdr, StableHdr, SuspectHdr, SyncHdr,
    TotalHdr,
};
pub use msg::Msg;
pub use payload::Payload;
pub use view::ViewState;
