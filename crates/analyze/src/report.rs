//! Whole-repository analysis: every registered stack, every engine.
//!
//! [`analyze_all`] runs the three pass families — configuration lints,
//! header-space analysis, CCP/residual soundness — over every stack the
//! repository ships, then derives a per-engine verdict table: for each
//! execution engine (IMP, FUNC, HAND, MACH) and each synthesizable
//! stack, whether the statically verified properties hold for the code
//! that engine would run. The bypass theorems themselves are engine
//! independent (all four configurations execute code the same theorems
//! describe); what differs per engine is the precondition — MACH must
//! additionally *compile* the residual to its register program, which
//! [`analyze_all`] attempts and reports as **EN001** on failure.

use crate::dataflow::{check_defers, defer_json, DeferVerdict};
use crate::diag::{Diag, Report, Severity};
use crate::headerspace::{check_headers, layer_info, LayerHeaderInfo};
use crate::lints::{lint_stack, registered_stacks, StackSpec};
use crate::soundness::{check_soundness, elidable_frames, SoundnessVerdict};
use ensemble_ir::models::{model, ModelCtx};
use ensemble_obs::Json;
use ensemble_synth::{synthesize, BypassArtifact, DeferCertificate, StackBypass};

/// The four execution configurations of §4.2.
pub const ENGINES: [&str; 4] = ["IMP", "FUNC", "HAND", "MACH"];

/// Group size used for synthesis during analysis.
const NMEMBERS: i64 = 3;

/// Ranks analyzed per stack: the coordinator (whose templates define the
/// wire format) and one ordinary member.
const RANKS: [i64; 2] = [0, 1];

/// Statically verified properties of one stack under one engine.
#[derive(Clone, Debug)]
pub struct EngineVerdict {
    /// Engine name (`IMP`, `FUNC`, `HAND`, `MACH`).
    pub engine: &'static str,
    /// Stack name (`stack4`, `stack10`).
    pub stack: String,
    /// How this engine executes the common path of this stack.
    pub mode: &'static str,
    /// HS001 holds: every wire frame has a unique owning layer.
    pub header_disjoint: bool,
    /// CC002 holds: the CCP is decidable from the compressed header.
    pub ccp_from_compressed_header: bool,
    /// CC001 holds: no `Slow`/`Stash` reachable in the residual.
    pub residual_slow_free: bool,
    /// CC004 holds: wire frames are the layers' pushes in stack order.
    pub wire_layout_stack_ordered: bool,
    /// All properties hold and the engine-specific precondition (MACH:
    /// codegen succeeds) is met.
    pub verified: bool,
}

impl EngineVerdict {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("engine", Json::str(self.engine)),
            ("stack", Json::str(&*self.stack)),
            ("mode", Json::str(self.mode)),
            ("header_disjoint", Json::Bool(self.header_disjoint)),
            (
                "ccp_from_compressed_header",
                Json::Bool(self.ccp_from_compressed_header),
            ),
            ("residual_slow_free", Json::Bool(self.residual_slow_free)),
            (
                "wire_layout_stack_ordered",
                Json::Bool(self.wire_layout_stack_ordered),
            ),
            ("verified", Json::Bool(self.verified)),
        ])
    }
}

/// Per-stack analysis results.
#[derive(Clone, Debug)]
pub struct StackResult {
    /// The stack analyzed.
    pub spec: StackSpec,
    /// Whether every layer has an IR model (i.e. the stack is
    /// synthesizable and gets soundness + engine verdicts).
    pub synthesizable: bool,
    /// HS001 held.
    pub header_disjoint: bool,
    /// Rank-0 soundness verdict, when synthesizable.
    pub soundness: Option<SoundnessVerdict>,
    /// Rank-0 Defer-commutativity verdict (DF rules), when
    /// synthesizable.
    pub defer: Option<DeferVerdict>,
    /// Rank-0 Defer-commutativity certificate, kept for the
    /// `DF_defer.json` report.
    pub defer_cert: Option<DeferCertificate>,
    /// Cast-template frames header compression elides outright.
    pub elidable_cast_frames: usize,
}

impl StackResult {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::str(&*self.spec.name)),
            (
                "layers",
                Json::Arr(self.spec.layers.iter().map(|l| Json::str(&**l)).collect()),
            ),
            ("synthesizable", Json::Bool(self.synthesizable)),
            ("header_disjoint", Json::Bool(self.header_disjoint)),
            (
                "defer_licensed",
                match &self.defer {
                    Some(v) => Json::Bool(v.licensed()),
                    None => Json::Null,
                },
            ),
            (
                "defer_sites",
                Json::Int(self.defer.map_or(0, |v| v.sites) as i64),
            ),
            (
                "elidable_cast_frames",
                Json::Int(self.elidable_cast_frames as i64),
            ),
        ])
    }
}

/// The complete analysis of the repository's stacks.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// Every finding from every pass.
    pub report: Report,
    /// Per-stack results.
    pub stacks: Vec<StackResult>,
    /// Engine × stack verdicts.
    pub engines: Vec<EngineVerdict>,
}

impl Analysis {
    /// Whether the analysis found any deny-level violation.
    pub fn has_deny(&self) -> bool {
        self.report.has_deny()
    }

    /// The machine-readable document CI consumes.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("tool", Json::str("stack_lint")),
            ("version", Json::Int(1)),
            (
                "stacks",
                Json::Arr(self.stacks.iter().map(StackResult::to_json).collect()),
            ),
            (
                "engines",
                Json::Arr(self.engines.iter().map(EngineVerdict::to_json).collect()),
            ),
            ("findings", self.report.to_json()),
            ("summary", self.report.summary_json()),
        ])
    }

    /// The `DF_defer.json` document: one certificate entry per
    /// synthesizable stack, plus the licensing roll-up CI gates on.
    pub fn defer_report_json(&self) -> Json {
        let entries: Vec<Json> = self
            .stacks
            .iter()
            .filter_map(|s| {
                let cert = s.defer_cert.as_ref()?;
                let v = s.defer.as_ref()?;
                Some(defer_json(&s.spec.name, cert, v))
            })
            .collect();
        let all_licensed = self
            .stacks
            .iter()
            .filter_map(|s| s.defer.as_ref())
            .all(|v| v.licensed());
        Json::obj(vec![
            ("tool", Json::str("stack_lint")),
            ("report", Json::str("DF_defer")),
            ("version", Json::Int(1)),
            ("all_licensed", Json::Bool(all_licensed)),
            ("stacks", Json::Arr(entries)),
        ])
    }
}

fn build_infos(spec: &StackSpec, ctx: &ModelCtx) -> Vec<LayerHeaderInfo> {
    spec.layers
        .iter()
        .filter_map(|l| layer_info(l, ctx))
        .collect()
}

fn engine_mode(engine: &str, stack: &str) -> &'static str {
    match engine {
        // IMP and FUNC execute the full layer stack; the theorems prove
        // what their common path computes.
        "IMP" => "full-stack/scheduler",
        "FUNC" => "full-stack/recursive",
        // HAND ships a hand-written bypass only for the 4-layer stack.
        "HAND" if stack == "stack4" => "hand-written bypass",
        "HAND" => "full-stack fallback",
        _ => "compiled bypass",
    }
}

/// Analyzes one stack end to end, returning its result, its engine
/// verdicts (empty for non-synthesizable stacks), and its findings.
pub fn analyze_stack(spec: &StackSpec, report: &mut Report) -> (StackResult, Vec<EngineVerdict>) {
    let ctx = ModelCtx::new(NMEMBERS, 0);

    let mut local = Report::new();
    lint_stack(spec, &mut local);
    let lints_clean = !local.has_deny();

    let infos = build_infos(spec, &ctx);
    let before = local.diags.len();
    check_headers(&spec.name, &infos, &mut local);
    let header_disjoint = !local.diags[before..]
        .iter()
        .any(|d| d.rule == "HS001" && d.severity == Severity::Deny);

    let synthesizable = spec
        .layers
        .iter()
        .all(|l| model(l, &ctx).is_some() || l == "top");

    let mut soundness = None;
    let mut defer = None;
    let mut defer_cert = None;
    let mut elidable = 0;
    let mut mach_compiles = false;
    if synthesizable {
        let names: Vec<&str> = spec.layers.iter().map(String::as_str).collect();
        for rank in RANKS {
            match synthesize(&names, &ModelCtx::new(NMEMBERS, rank)) {
                Ok(synth) => {
                    let art = BypassArtifact::of(&synth, rank);
                    let v = check_soundness(&spec.name, &art, &infos, &mut local);
                    let cert = DeferCertificate::of(&synth, rank);
                    let dv = check_defers(&spec.name, &cert, &art, &mut local);
                    if rank == 0 {
                        soundness = Some(v);
                        defer = Some(dv);
                        defer_cert = Some(cert);
                        elidable = elidable_frames(&art.cast_template);
                        mach_compiles = match StackBypass::compile(&synth, rank as u16) {
                            Ok(_) => true,
                            Err(e) => {
                                local.push(Diag {
                                    rule: "EN001",
                                    severity: Severity::Deny,
                                    stack: spec.name.clone(),
                                    layer: None,
                                    case: None,
                                    message: format!("MACH codegen rejected the residual: {e:?}"),
                                    hint: None,
                                });
                                false
                            }
                        };
                    }
                }
                Err(e) => {
                    local.push(Diag {
                        rule: "EN001",
                        severity: Severity::Deny,
                        stack: spec.name.clone(),
                        layer: None,
                        case: None,
                        message: format!("synthesis failed at rank {rank}: {e:?}"),
                        hint: None,
                    });
                }
            }
        }
    }

    let mut verdicts = Vec::new();
    if let Some(v) = soundness {
        for engine in ENGINES {
            let precondition = match engine {
                "MACH" => mach_compiles,
                // IMP/FUNC/HAND run layer code directly; their
                // precondition is a well-formed configuration.
                _ => lints_clean,
            };
            verdicts.push(EngineVerdict {
                engine,
                stack: spec.name.clone(),
                mode: engine_mode(engine, &spec.name),
                header_disjoint,
                ccp_from_compressed_header: v.ccp_from_compressed_header,
                residual_slow_free: v.residual_slow_free,
                wire_layout_stack_ordered: v.wire_layout_stack_ordered,
                verified: precondition
                    && header_disjoint
                    && v.ccp_from_compressed_header
                    && v.residual_slow_free
                    && v.wire_layout_stack_ordered,
            });
        }
    }

    let result = StackResult {
        spec: spec.clone(),
        synthesizable,
        header_disjoint,
        soundness,
        defer,
        defer_cert,
        elidable_cast_frames: elidable,
    };
    report.merge(local);
    (result, verdicts)
}

/// Runs every pass over every registered stack.
///
/// `inject_collision` seeds a deliberately bad configuration — a copy of
/// the 4-layer stack where `mnak` also claims `pt2pt`'s data header — so
/// CI and tests can confirm the analysis actually fires.
pub fn analyze_all(inject_collision: bool) -> Analysis {
    let mut report = Report::new();
    let mut stacks = Vec::new();
    let mut engines = Vec::new();

    for spec in registered_stacks() {
        let (result, verdicts) = analyze_stack(&spec, &mut report);
        stacks.push(result);
        engines.extend(verdicts);
    }

    if inject_collision {
        let spec = StackSpec::new("injected-collision", ensemble_layers::STACK_4);
        let ctx = ModelCtx::new(NMEMBERS, 0);
        let mut infos = build_infos(&spec, &ctx);
        if let Some(mnak) = infos.iter_mut().find(|i| i.layer == "mnak") {
            mnak.declared.push("Pt2PtData".to_owned());
        }
        check_headers(&spec.name, &infos, &mut report);
    }

    Analysis {
        report,
        stacks,
        engines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_stacks_have_no_deny_findings() {
        let a = analyze_all(false);
        assert!(!a.has_deny(), "{}", a.report);
        assert_eq!(a.report.count(Severity::Warn), 0, "{}", a.report);
    }

    #[test]
    fn all_four_engines_verified_on_every_registered_stack() {
        let a = analyze_all(false);
        for engine in ENGINES {
            for stack in ["stack4", "stack10", "vsync", "kv-service"] {
                let v = a
                    .engines
                    .iter()
                    .find(|v| v.engine == engine && v.stack == stack)
                    .unwrap_or_else(|| panic!("missing verdict {engine}/{stack}"));
                assert!(v.verified, "{engine}/{stack} not verified: {}", a.report);
                assert!(v.header_disjoint);
                assert!(v.ccp_from_compressed_header);
            }
        }
    }

    #[test]
    fn vsync_synthesizes_with_membership_models() {
        // The membership suite (gmp/sync/elect/suspect) now has IR
        // models, so the full virtual-synchrony stack gets soundness,
        // engine, and defer verdicts instead of being lint-only.
        let a = analyze_all(false);
        let vsync = a.stacks.iter().find(|s| s.spec.name == "vsync").unwrap();
        assert!(vsync.synthesizable);
        assert!(vsync.header_disjoint);
        assert!(vsync.soundness.is_some());
        assert!(a.engines.iter().any(|v| v.stack == "vsync"));
    }

    #[test]
    fn registered_stacks_are_defer_licensed() {
        let a = analyze_all(false);
        for stack in ["stack4", "stack10", "vsync", "kv-service"] {
            let s = a.stacks.iter().find(|s| s.spec.name == stack).unwrap();
            let v = s
                .defer
                .as_ref()
                .unwrap_or_else(|| panic!("{stack} has no defer verdict"));
            assert!(v.licensed(), "{stack} not defer-licensed: {}", a.report);
            assert!(v.sites > 0, "{stack} analyzed no defer sites");
        }
        // The membership stacks pick up sync/suspect bookkeeping sites
        // on top of stack10's buffering and stability sites.
        let vsync = a.stacks.iter().find(|s| s.spec.name == "vsync").unwrap();
        let s10 = a.stacks.iter().find(|s| s.spec.name == "stack10").unwrap();
        assert!(vsync.defer.unwrap().sites > s10.defer.unwrap().sites);
    }

    #[test]
    fn defer_report_document_shape() {
        let a = analyze_all(false);
        let doc = a.defer_report_json();
        assert_eq!(doc.get("report").and_then(Json::as_str), Some("DF_defer"));
        assert!(matches!(doc.get("all_licensed"), Some(Json::Bool(true))));
        let stacks = doc.get("stacks").and_then(Json::as_arr).unwrap();
        assert_eq!(stacks.len(), 4);
        let txt = doc.render();
        let back = Json::parse(&txt).unwrap();
        assert!(matches!(back.get("all_licensed"), Some(Json::Bool(true))));
    }

    #[test]
    fn injected_collision_denies() {
        let a = analyze_all(true);
        assert!(a.has_deny());
        assert!(a
            .report
            .diags
            .iter()
            .any(|d| d.rule == "HS001" && d.stack == "injected-collision"));
    }

    #[test]
    fn json_document_shape() {
        let a = analyze_all(false);
        let doc = a.to_json();
        assert_eq!(doc.get("tool").and_then(Json::as_str), Some("stack_lint"));
        assert_eq!(doc.get("version").and_then(Json::as_int), Some(1));
        let stacks = doc.get("stacks").and_then(Json::as_arr).unwrap();
        assert_eq!(stacks.len(), 4); // stack4, stack10, vsync, kv-service
        let engines = doc.get("engines").and_then(Json::as_arr).unwrap();
        assert_eq!(engines.len(), 16); // 4 engines × 4 synthesizable stacks
        assert_eq!(
            doc.get("summary")
                .and_then(|s| s.get("deny"))
                .and_then(Json::as_int),
            Some(0)
        );
        // Round-trips through the parser.
        let txt = doc.render();
        let back = Json::parse(&txt).unwrap();
        assert_eq!(back.get("version").and_then(Json::as_int), Some(1));
    }

    #[test]
    fn compression_elides_passthrough_frames() {
        let a = analyze_all(false);
        let s10 = a.stacks.iter().find(|s| s.spec.name == "stack10").unwrap();
        // The 10-layer stack has several pure pass-through layers whose
        // NoHdr frames compression drops.
        assert!(
            s10.elidable_cast_frames >= 3,
            "{}",
            s10.elidable_cast_frames
        );
    }
}
