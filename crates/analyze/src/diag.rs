//! Structured diagnostics.
//!
//! Every analysis pass reports through a [`Report`]: a flat list of
//! [`Diag`]s carrying a stable rule identifier, a severity, a span-like
//! location (stack / layer / case), the finding, and — where the fix is
//! mechanical — a hint. The human rendering is one line per finding;
//! the JSON rendering (via `ensemble-obs`) is what CI consumes.

use ensemble_obs::Json;
use std::fmt;

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: expected gaps (stubbed slow paths, rank-dependent
    /// fast paths).
    Info,
    /// Suspicious but not provably wrong.
    Warn,
    /// A configuration or soundness violation; fails CI.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warn => write!(f, "warn"),
            Severity::Deny => write!(f, "deny"),
        }
    }
}

/// One finding.
#[derive(Clone, Debug)]
pub struct Diag {
    /// Stable rule identifier (`HS001`, `CC002`, `SL004`, …).
    pub rule: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// The stack being analyzed.
    pub stack: String,
    /// The layer the finding anchors to, if any.
    pub layer: Option<String>,
    /// The fundamental case, if the finding is per-case.
    pub case: Option<String>,
    /// What is wrong.
    pub message: String,
    /// How to fix it, when the fix is mechanical.
    pub hint: Option<String>,
}

impl Diag {
    fn location(&self) -> String {
        let mut loc = self.stack.clone();
        if let Some(l) = &self.layer {
            loc.push('/');
            loc.push_str(l);
        }
        if let Some(c) = &self.case {
            loc.push('/');
            loc.push_str(c);
        }
        loc
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("rule", Json::str(self.rule)),
            ("severity", Json::str(self.severity.to_string())),
            ("stack", Json::str(&*self.stack)),
            ("layer", self.layer.as_deref().map_or(Json::Null, Json::str)),
            ("case", self.case.as_deref().map_or(Json::Null, Json::str)),
            ("message", Json::str(&*self.message)),
            ("hint", self.hint.as_deref().map_or(Json::Null, Json::str)),
        ])
    }
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity,
            self.rule,
            self.location(),
            self.message
        )?;
        if let Some(h) = &self.hint {
            write!(f, " (hint: {h})")?;
        }
        Ok(())
    }
}

/// An accumulating finding list.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// The findings, in discovery order.
    pub diags: Vec<Diag>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a finding.
    pub fn push(&mut self, diag: Diag) {
        self.diags.push(diag);
    }

    /// Appends every finding of `other`.
    pub fn merge(&mut self, other: Report) {
        self.diags.extend(other.diags);
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == severity).count()
    }

    /// Whether any finding is deny-level.
    pub fn has_deny(&self) -> bool {
        self.count(Severity::Deny) > 0
    }

    /// Findings sorted most-severe first (stable within a severity).
    pub fn sorted(&self) -> Vec<&Diag> {
        let mut v: Vec<&Diag> = self.diags.iter().collect();
        v.sort_by_key(|d| std::cmp::Reverse(d.severity));
        v
    }

    /// The findings as a JSON array (most-severe first).
    pub fn to_json(&self) -> Json {
        Json::Arr(self.sorted().into_iter().map(Diag::to_json).collect())
    }

    /// The severity tallies as a JSON object.
    pub fn summary_json(&self) -> Json {
        Json::obj(vec![
            ("deny", Json::Int(self.count(Severity::Deny) as i64)),
            ("warn", Json::Int(self.count(Severity::Warn) as i64)),
            ("info", Json::Int(self.count(Severity::Info) as i64)),
        ])
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in self.sorted() {
            writeln!(f, "{d}")?;
        }
        write!(
            f,
            "{} deny, {} warn, {} info",
            self.count(Severity::Deny),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, sev: Severity) -> Diag {
        Diag {
            rule,
            severity: sev,
            stack: "s".into(),
            layer: Some("mnak".into()),
            case: Some("UpCast".into()),
            message: "m".into(),
            hint: Some("h".into()),
        }
    }

    #[test]
    fn counts_and_deny_flag() {
        let mut r = Report::new();
        assert!(!r.has_deny());
        r.push(diag("X1", Severity::Info));
        r.push(diag("X2", Severity::Deny));
        r.push(diag("X3", Severity::Warn));
        assert_eq!(r.count(Severity::Deny), 1);
        assert_eq!(r.count(Severity::Warn), 1);
        assert_eq!(r.count(Severity::Info), 1);
        assert!(r.has_deny());
    }

    #[test]
    fn sorted_is_most_severe_first() {
        let mut r = Report::new();
        r.push(diag("A", Severity::Info));
        r.push(diag("B", Severity::Deny));
        r.push(diag("C", Severity::Warn));
        let rules: Vec<&str> = r.sorted().iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec!["B", "C", "A"]);
    }

    #[test]
    fn display_carries_location_and_hint() {
        let txt = diag("HS001", Severity::Deny).to_string();
        assert!(txt.contains("deny[HS001]"), "{txt}");
        assert!(txt.contains("s/mnak/UpCast"), "{txt}");
        assert!(txt.contains("hint: h"), "{txt}");
    }

    #[test]
    fn json_shape() {
        let mut r = Report::new();
        r.push(diag("HS001", Severity::Deny));
        let arr = r.to_json();
        let d = &arr.as_arr().unwrap()[0];
        assert_eq!(d.get("rule").and_then(Json::as_str), Some("HS001"));
        assert_eq!(d.get("severity").and_then(Json::as_str), Some("deny"));
        assert_eq!(d.get("layer").and_then(Json::as_str), Some("mnak"));
        let s = r.summary_json();
        assert_eq!(s.get("deny").and_then(Json::as_int), Some(1));
    }
}
