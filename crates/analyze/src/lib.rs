//! Static analysis over IR layer models and stack configurations
//! (Nuprl's *checking* role, §3.2).
//!
//! The paper's Nuprl deployment has two jobs: proving the optimization
//! theorems (`ensemble-synth`) and *statically checking* stack
//! configurations against their specifications before anything runs.
//! This crate is the second job, three pass families deep:
//!
//! * [`headerspace`] — abstract interpretation over handler terms
//!   inferring which header constructors each layer pushes/pops/reads,
//!   and proving the disjointness `synth::compress` relies on;
//! * [`soundness`] — syntactic proofs over synthesized bypass artifacts:
//!   no slow path survives in any residual, the CCP is decidable from
//!   the compressed header alone, and every wire frame is owned by
//!   exactly the layer that pushed it;
//! * [`dataflow`] — the Defer-commutativity pass: read/write footprints
//!   of every deferred work item, pairwise commutativity and
//!   delivery-independence proofs, and the certificate/artifact
//!   cross-check that licenses the runtime's batched draining;
//! * [`lints`] — a rule registry over stack configurations covering
//!   what the `stack::compat` refinement lattice cannot express
//!   (duplicates, termination, payload-transformer ordering, membership
//!   placement).
//!
//! All passes report through [`diag`]'s structured diagnostics; the
//! `stack_lint` binary (and [`report::analyze_all`]) runs everything
//! over every registered stack and the four execution engines, with
//! human and JSON output.

#![forbid(unsafe_code)]

pub mod dataflow;
pub mod diag;
pub mod headerspace;
pub mod lints;
pub mod report;
pub mod soundness;

pub use dataflow::{check_defers, defer_json, DeferVerdict};
pub use diag::{Diag, Report, Severity};
pub use headerspace::{check_headers, infer_case, infer_layer, layer_info, LayerHeaderInfo};
pub use lints::{lint_stack, registered_stacks, registry, Rule, StackSpec};
pub use report::{analyze_all, analyze_stack, Analysis, EngineVerdict, StackResult, ENGINES};
pub use soundness::{check_soundness, SoundnessVerdict};
