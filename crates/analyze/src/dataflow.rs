//! DF rules: the Defer-commutativity dataflow pass.
//!
//! The synthesized bypass moves non-critical work (`Defer` events:
//! buffering, acknowledgments, stability recomputation) off the critical
//! path. The runtime would like to go one step further and drain the
//! accumulated work in *batches* at quiescent points instead of after
//! every delivery — but that is only sound if the deferred items
//! commute with each other and with the deliveries in between. This
//! pass checks exactly that, consuming the
//! [`DeferCertificate`] the synthesis layer proves from the layer
//! models' declared [`DeferSpec`](ensemble_ir::models::DeferSpec)s:
//!
//! * **DF001** — a pair of deferred work items (two instances of one
//!   site, or two distinct sites of a layer) does not commute: an
//!   opaque overwrite, a non-mergeable shared write, an unproven
//!   insert index, or a read/write overlap;
//! * **DF002** — a defer's state effect is undeclared: the emitted tag
//!   has no `DeferSpec`, or its footprint touches a field missing from
//!   the layer's initial state record;
//! * **DF003** — a defer observes delivery order: it purely reads a
//!   field the layer's handlers write non-monotonically, so the value
//!   at drain time depends on which deliveries happened in between;
//! * **DF004** — certificate/artifact mismatch: the installed
//!   [`BypassArtifact`] defers work the certificate never analyzed
//!   (wrong tag, wrong arity, wrong stack or rank).
//!
//! All DF diagnostics are deny-severity: a stack that fails any of them
//! simply keeps the immediate-drain behavior, so the batching
//! optimization is literally licensed by this analysis.

use crate::diag::{Diag, Report, Severity};
use ensemble_ir::models::Case;
use ensemble_ir::term::Term;
use ensemble_obs::Json;
use ensemble_synth::{BypassArtifact, DeferCertificate};

/// Summary verdict of the DF pass for one stack at one rank.
#[derive(Clone, Copy, Debug)]
pub struct DeferVerdict {
    /// DF001–DF003 all hold: every pair of deferred items commutes and
    /// none observes delivery order.
    pub commutes: bool,
    /// DF004 holds: every defer in the artifact matches a certificate
    /// site.
    pub artifact_consistent: bool,
    /// Number of `(layer, tag)` sites analyzed.
    pub sites: usize,
}

impl DeferVerdict {
    /// Whether the runtime may drain this stack's deferred work in
    /// batches.
    pub fn licensed(&self) -> bool {
        self.commutes && self.artifact_consistent
    }
}

fn hint_for(rule: &str) -> String {
    match rule {
        "DF001" => {
            "restructure the deferred work into commuting merges (increments, max-merges, \
             keyed inserts with unique keys) or keep immediate draining"
        }
        "DF002" => "declare the field in the layer's init record and add a DeferSpec for the tag",
        "DF003" => {
            "make the handlers' writes to the field monotone, or snapshot the input into the \
             defer's arguments"
        }
        _ => "re-synthesize the stack so certificate and artifact describe the same bypass",
    }
    .to_owned()
}

/// Runs the DF rule family for one stack: replays the certificate's
/// proof failures as DF001–DF003 diagnostics and cross-checks the
/// certificate against the installed artifact (DF004). Returns the
/// summary verdict the runtime's batching gate mirrors.
pub fn check_defers(
    stack: &str,
    cert: &DeferCertificate,
    art: &BypassArtifact,
    report: &mut Report,
) -> DeferVerdict {
    for issue in &cert.issues {
        report.push(Diag {
            rule: issue.rule,
            severity: Severity::Deny,
            stack: stack.to_owned(),
            layer: Some(issue.layer.clone()),
            case: None,
            message: issue.detail.clone(),
            hint: Some(hint_for(issue.rule)),
        });
    }

    let mut artifact_consistent = true;
    if cert.stack_id != art.stack_id || cert.rank != art.rank {
        artifact_consistent = false;
        report.push(Diag {
            rule: "DF004",
            severity: Severity::Deny,
            stack: stack.to_owned(),
            layer: None,
            case: None,
            message: format!(
                "certificate is for stack_id={} rank={} but the artifact is stack_id={} rank={}",
                cert.stack_id, cert.rank, art.stack_id, art.rank
            ),
            hint: Some(hint_for("DF004")),
        });
    }
    for th in &art.cases {
        for (li, work) in &th.defers {
            let layer = art
                .names
                .get(*li)
                .cloned()
                .unwrap_or_else(|| format!("#{li}"));
            // Composition keeps the event wrapper: `Defer(Tag(args))`.
            let inner = match work {
                Term::Con(ev, items) if ev.as_str() == "Defer" && items.len() == 1 => &items[0],
                other => other,
            };
            let matched = match inner {
                Term::Con(tag, args) => cert.sites.iter().any(|s| {
                    s.layer_index == *li && s.tag == tag.as_str() && s.params.len() == args.len()
                }),
                _ => false,
            };
            if !matched {
                artifact_consistent = false;
                report.push(Diag {
                    rule: "DF004",
                    severity: Severity::Deny,
                    stack: stack.to_owned(),
                    layer: Some(layer),
                    case: Some(format!("{:?}", th.case)),
                    message: format!(
                        "artifact defers `{work:?}` but the certificate has no matching site \
                         (tag and arity must match a declared DeferSpec)"
                    ),
                    hint: Some(hint_for("DF004")),
                });
            }
        }
    }

    DeferVerdict {
        commutes: cert.licensed(),
        artifact_consistent,
        sites: cert.sites.len(),
    }
}

fn case_json(c: Case) -> Json {
    Json::str(match c {
        Case::DnCast => "dn_cast",
        Case::UpCast => "up_cast",
        Case::DnSend => "dn_send",
        Case::UpSend => "up_send",
    })
}

/// Renders one stack's certificate as the machine-readable entry of the
/// `DF_defer.json` report.
pub fn defer_json(stack: &str, cert: &DeferCertificate, verdict: &DeferVerdict) -> Json {
    Json::obj(vec![
        ("stack", Json::str(stack)),
        ("rank", Json::Int(cert.rank)),
        ("licensed", Json::Bool(verdict.licensed())),
        ("sites", {
            Json::Arr(
                cert.sites
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("layer", Json::str(&*s.layer)),
                            ("tag", Json::str(&*s.tag)),
                            (
                                "cases",
                                Json::Arr(s.cases.iter().map(|c| case_json(*c)).collect()),
                            ),
                            (
                                "writes",
                                Json::Arr(
                                    s.writes
                                        .iter()
                                        .map(|w| {
                                            Json::obj(vec![
                                                ("field", Json::str(w.field.as_str())),
                                                ("kind", Json::str(w.kind.name())),
                                                (
                                                    "index",
                                                    match w.index {
                                                        Some(i) => Json::str(i.as_str()),
                                                        None => Json::Null,
                                                    },
                                                ),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                            (
                                "reads",
                                Json::Arr(s.reads.iter().map(|r| Json::str(&**r)).collect()),
                            ),
                            (
                                "index_monotone",
                                match s.index_monotone {
                                    Some(b) => Json::Bool(b),
                                    None => Json::Null,
                                },
                            ),
                        ])
                    })
                    .collect(),
            )
        }),
        (
            "issues",
            Json::Arr(
                cert.issues
                    .iter()
                    .map(|i| {
                        Json::obj(vec![
                            ("rule", Json::str(i.rule)),
                            ("layer", Json::str(&*i.layer)),
                            ("detail", Json::str(&*i.detail)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemble_ir::models::ModelCtx;
    use ensemble_synth::synthesize;

    fn setup(names: &[&str]) -> (DeferCertificate, BypassArtifact) {
        let s = synthesize(names, &ModelCtx::new(3, 0)).unwrap();
        (DeferCertificate::of(&s, 0), BypassArtifact::of(&s, 0))
    }

    #[test]
    fn stack4_defers_are_licensed() {
        let (cert, art) = setup(&["top", "pt2pt", "mnak", "bottom"]);
        let mut report = Report::new();
        let v = check_defers("stack4", &cert, &art, &mut report);
        assert!(v.licensed(), "{report}");
        assert!(v.commutes && v.artifact_consistent);
        assert_eq!(v.sites, 4);
        assert!(!report.has_deny(), "{report}");
    }

    #[test]
    fn missing_spec_reports_df002_and_revokes_license() {
        let mut s = synthesize(&["top", "pt2pt", "mnak", "bottom"], &ModelCtx::new(3, 0)).unwrap();
        let art = BypassArtifact::of(&s, 0);
        s.models
            .iter_mut()
            .find(|m| m.name == "mnak")
            .unwrap()
            .defer_specs
            .retain(|sp| sp.tag != "StoreOwn");
        let cert = DeferCertificate::of(&s, 0);
        let mut report = Report::new();
        let v = check_defers("stack4", &cert, &art, &mut report);
        assert!(!v.licensed());
        assert!(report.diags.iter().any(|d| d.rule == "DF002"));
        // The dropped site also breaks the artifact cross-check: the
        // artifact still defers StoreOwn.
        assert!(report.diags.iter().any(|d| d.rule == "DF004"));
    }

    #[test]
    fn mismatched_artifact_reports_df004() {
        let (cert, _) = setup(&["top", "pt2pt", "mnak", "bottom"]);
        let (_, other_art) = setup(&["top", "mnak", "bottom"]);
        let mut report = Report::new();
        let v = check_defers("stack4", &cert, &other_art, &mut report);
        assert!(!v.artifact_consistent);
        assert!(report.diags.iter().any(|d| d.rule == "DF004"));
    }

    #[test]
    fn defer_json_round_trips() {
        let (cert, art) = setup(&["top", "pt2pt", "mnak", "bottom"]);
        let mut report = Report::new();
        let v = check_defers("stack4", &cert, &art, &mut report);
        let doc = defer_json("stack4", &cert, &v);
        let txt = doc.render();
        let back = Json::parse(&txt).unwrap();
        assert!(matches!(back.get("licensed"), Some(Json::Bool(true))));
        assert_eq!(
            back.get("sites").and_then(Json::as_arr).map(|a| a.len()),
            Some(4)
        );
    }
}
