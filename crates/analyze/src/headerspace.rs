//! Header-space analysis.
//!
//! An abstract interpretation over the IR term language that infers, per
//! layer and fundamental case, which header constructors each handler
//! *pushes*, how many frames it *pops*, and which constructors it *reads*
//! off the top of the message — split into fast reads (a read with a
//! non-`Slow` continuation, i.e. one the synthesized bypass must be able
//! to decide) and slow reads (reads whose every continuation falls back
//! to the full stack).
//!
//! The inference is purely syntactic over the handler terms — no
//! evaluation — which is what makes it a *static* guarantee: it holds
//! for every execution, not just the tested ones. Checks:
//!
//! * **HS001** — two layers claim the same non-`NoHdr` constructor
//!   (header collision: `synth::compress` folds frame tags into the
//!   stack identifier, so a collision would silently alias two layers'
//!   wire traffic);
//! * **HS002** — a fast read of a constructor the mirror down-path never
//!   pushes (the bypass would wait for a header that cannot occur);
//! * **HS003** — a down-path push with no mirror up-path pop, or vice
//!   versa (frame imbalance: headers would accumulate or underflow);
//! * **HS004** — inferred usage outside the layer's declared
//!   [`HeaderManifest`](ensemble_layers::HeaderManifest) (the manifest
//!   is the contract the native Rust
//!   layer implements; the IR model must stay inside it).

use crate::diag::{Diag, Report, Severity};
use ensemble_ir::models::{model, Case, LayerModel, ModelCtx};
use ensemble_ir::term::{Pattern, Prim, Term};
use ensemble_ir::visit::{walk, Walk};
use ensemble_layers::manifest::manifest;

/// The pass-through marker frame; shared by every transparent layer and
/// excluded from ownership checks.
pub const NO_HDR: &str = "NoHdr";

/// Inferred header usage of one handler.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CaseHeaderUse {
    /// Constructors pushed (one entry per distinct constructor).
    pub pushes: Vec<String>,
    /// Number of `pop` call sites.
    pub pops: usize,
    /// Constructors read off the message top with a fast continuation.
    pub fast_reads: Vec<String>,
    /// Constructors read whose every continuation is `Slow`.
    pub slow_reads: Vec<String>,
}

/// Inferred header usage of one layer, all four cases.
#[derive(Clone, Debug)]
pub struct LayerHeaderUse {
    /// The layer name.
    pub layer: String,
    /// Per-case usage, in `Case::ALL` order.
    pub cases: Vec<(Case, CaseHeaderUse)>,
}

impl LayerHeaderUse {
    /// The usage for `case`.
    pub fn case(&self, case: Case) -> &CaseHeaderUse {
        &self
            .cases
            .iter()
            .find(|(c, _)| *c == case)
            .expect("all four cases inferred")
            .1
    }
}

/// Everything the checks know about one layer in a stack: the declared
/// manifest and (for modeled layers) the inferred usage.
#[derive(Clone, Debug)]
pub struct LayerHeaderInfo {
    /// The layer name.
    pub layer: String,
    /// Declared header constructors (from the manifest).
    pub declared: Vec<String>,
    /// Whether the layer rewrites payload bytes.
    pub transforms_payload: bool,
    /// Inferred usage, `None` when the layer has no IR model.
    pub inferred: Option<LayerHeaderUse>,
}

/// Builds the header info for a registered layer: manifest plus, when an
/// IR model exists, the inferred usage. `None` for unknown layers.
pub fn layer_info(name: &str, ctx: &ModelCtx) -> Option<LayerHeaderInfo> {
    let mf = manifest(name)?;
    Some(LayerHeaderInfo {
        layer: name.to_owned(),
        declared: mf.pushes.iter().map(|s| (*s).to_owned()).collect(),
        transforms_payload: mf.transforms_payload,
        inferred: model(name, ctx).map(|m| infer_layer(&m)),
    })
}

/// Whether every execution path of `t` ends in the `Slow` fallback (the
/// model's stand-in for leaving the bypass).
fn only_slow(t: &Term) -> bool {
    match t {
        Term::App(n, _) => n.as_str() == "slow",
        Term::Con(n, _) => n.as_str() == "Slow",
        Term::Let(_, _, b) => only_slow(b),
        Term::If(_, a, b) => only_slow(a) && only_slow(b),
        Term::Match(_, arms) => arms.iter().all(|(_, b)| only_slow(b)),
        _ => false,
    }
}

fn push_unique(v: &mut Vec<String>, s: String) {
    if !v.contains(&s) {
        v.push(s);
    }
}

/// Whether `t` is a read of the top header of a message
/// (`top_hdr(m)`).
fn is_top_hdr(t: &Term) -> bool {
    matches!(t, Term::App(n, _) if n.as_str() == "top_hdr")
}

/// Infers the header usage of one handler term.
pub fn infer_case(handler: &Term, ccp: &[Term]) -> CaseHeaderUse {
    let mut u = CaseHeaderUse::default();
    walk(handler, &mut |t| {
        match t {
            // push(m, Con(...)) — a header push. Non-constructor second
            // arguments do not occur in the models; a variable there
            // would defeat the analysis, so it is surfaced by HS004
            // (nothing inferred ⊂ nothing declared fails the mirror
            // checks instead).
            Term::App(n, args) if n.as_str() == "push" && args.len() == 2 => {
                if let Term::Con(h, _) = &args[1] {
                    push_unique(&mut u.pushes, h.as_str());
                }
            }
            Term::App(n, _) if n.as_str() == "pop" => {
                u.pops += 1;
            }
            // match top_hdr(m) { Con(..) => body, ... } — header reads,
            // fast or slow depending on the continuation.
            Term::Match(s, arms) if is_top_hdr(s) => {
                for (p, body) in arms {
                    if let Pattern::Con(h, _) = p {
                        if only_slow(body) {
                            push_unique(&mut u.slow_reads, h.as_str());
                        } else {
                            push_unique(&mut u.fast_reads, h.as_str());
                        }
                    }
                }
            }
            _ => {}
        }
        Walk::Continue
    });
    // CCP conjuncts of shape `top_hdr(m) == Con(...)` are fast reads: the
    // bypass decides them before touching the handler.
    for conj in ccp {
        walk(conj, &mut |t| {
            if let Term::Prim(Prim::Eq, args) = t {
                let pair = [(&args[0], &args[1]), (&args[1], &args[0])];
                for (a, b) in pair {
                    if is_top_hdr(a) {
                        if let Term::Con(h, _) = b {
                            push_unique(&mut u.fast_reads, h.as_str());
                        }
                    }
                }
            }
            Walk::Continue
        });
    }
    u
}

/// Infers all four cases of a layer model.
pub fn infer_layer(m: &LayerModel) -> LayerHeaderUse {
    LayerHeaderUse {
        layer: m.name.to_owned(),
        cases: Case::ALL
            .iter()
            .map(|c| (*c, infer_case(m.handler(*c), m.ccp(*c))))
            .collect(),
    }
}

/// The mirror case on the opposite path: what a layer pushes going down
/// it must recognize coming up.
fn mirror(case: Case) -> Case {
    match case {
        Case::DnCast => Case::UpCast,
        Case::UpCast => Case::DnCast,
        Case::DnSend => Case::UpSend,
        Case::UpSend => Case::DnSend,
    }
}

fn case_name(c: Case) -> String {
    format!("{c:?}")
}

/// Runs the header-space checks over a stack's layers.
pub fn check_headers(stack: &str, infos: &[LayerHeaderInfo], report: &mut Report) {
    // HS001: non-NoHdr constructors must have a unique owner. Ownership
    // is the union of declared and inferred pushes.
    let mut owners: Vec<(String, String)> = Vec::new(); // (header, layer)
    for info in infos {
        let mut claimed: Vec<String> = info.declared.clone();
        if let Some(inf) = &info.inferred {
            for (_, u) in &inf.cases {
                for p in &u.pushes {
                    if !claimed.contains(p) {
                        claimed.push(p.clone());
                    }
                }
            }
        }
        for h in claimed.into_iter().filter(|h| h != NO_HDR) {
            match owners.iter().find(|(hh, _)| *hh == h) {
                Some((_, prev)) if *prev != info.layer => {
                    report.push(Diag {
                        rule: "HS001",
                        severity: Severity::Deny,
                        stack: stack.to_owned(),
                        layer: Some(info.layer.clone()),
                        case: None,
                        message: format!(
                            "header constructor {h:?} is claimed by both {prev:?} and {:?}; \
                             compressed traffic of the two layers would alias",
                            info.layer
                        ),
                        hint: Some(format!(
                            "rename {h:?} in one layer's manifest/model so every frame has \
                             one owner"
                        )),
                    });
                }
                Some(_) => {}
                None => owners.push((h, info.layer.clone())),
            }
        }
    }

    // Per-layer mirror checks (modeled layers only).
    for info in infos {
        let Some(inf) = &info.inferred else { continue };
        for (case, u) in &inf.cases {
            let mir = inf.case(mirror(*case));
            // HS002: fast reads must be pushable by the mirror down path.
            if matches!(case, Case::UpCast | Case::UpSend) {
                for r in &u.fast_reads {
                    if r != NO_HDR && !mir.pushes.contains(r) {
                        report.push(Diag {
                            rule: "HS002",
                            severity: Severity::Deny,
                            stack: stack.to_owned(),
                            layer: Some(info.layer.clone()),
                            case: Some(case_name(*case)),
                            message: format!(
                                "fast path reads header {r:?} which the layer's \
                                 {:?} handler never pushes; the bypass would wait for a \
                                 frame that cannot occur",
                                mirror(*case)
                            ),
                            hint: Some(
                                "push the header on the mirror down path or demote the \
                                 read to a slow path"
                                    .to_owned(),
                            ),
                        });
                    }
                }
            }
            // HS003: pushes must be popped by the mirror up path.
            if matches!(case, Case::DnCast | Case::DnSend) && !u.pushes.is_empty() && mir.pops == 0
            {
                report.push(Diag {
                    rule: "HS003",
                    severity: Severity::Deny,
                    stack: stack.to_owned(),
                    layer: Some(info.layer.clone()),
                    case: Some(case_name(*case)),
                    message: format!(
                        "{:?} pushes {:?} but the mirror {:?} handler never pops; \
                         frames would accumulate",
                        case,
                        u.pushes,
                        mirror(*case)
                    ),
                    hint: Some("pop exactly one frame on the way up".to_owned()),
                });
            }
            if matches!(case, Case::UpCast | Case::UpSend) && u.pops > 0 && mir.pushes.is_empty() {
                report.push(Diag {
                    rule: "HS003",
                    severity: Severity::Deny,
                    stack: stack.to_owned(),
                    layer: Some(info.layer.clone()),
                    case: Some(case_name(*case)),
                    message: format!(
                        "{:?} pops a frame but the mirror {:?} handler never pushes; \
                         the layer would consume a neighbour's header",
                        case,
                        mirror(*case)
                    ),
                    hint: Some("push a frame on the way down".to_owned()),
                });
            }
            // HS004: inferred usage must stay inside the declared
            // manifest.
            for h in u.pushes.iter().chain(&u.fast_reads).chain(&u.slow_reads) {
                if !info.declared.contains(h) {
                    report.push(Diag {
                        rule: "HS004",
                        severity: Severity::Deny,
                        stack: stack.to_owned(),
                        layer: Some(info.layer.clone()),
                        case: Some(case_name(*case)),
                        message: format!(
                            "model uses header {h:?} which the layer manifest does not \
                             declare"
                        ),
                        hint: Some(format!(
                            "add {h:?} to the manifest in ensemble-layers or fix the model"
                        )),
                    });
                }
            }
        }
        // HS004 (informational converse): declared headers the model never
        // touches — expected for slow-path-only control frames, surfaced
        // so the gap is visible.
        let mut touched: Vec<&String> = Vec::new();
        for (_, u) in &inf.cases {
            touched.extend(u.pushes.iter());
            touched.extend(u.fast_reads.iter());
            touched.extend(u.slow_reads.iter());
        }
        for h in info.declared.iter().filter(|h| *h != NO_HDR) {
            if !touched.contains(&h) {
                report.push(Diag {
                    rule: "HS004",
                    severity: Severity::Info,
                    stack: stack.to_owned(),
                    layer: Some(info.layer.clone()),
                    case: None,
                    message: format!(
                        "declared header {h:?} is not used by the IR model (slow-path-only \
                         control frame)"
                    ),
                    hint: None,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemble_ir::models::ModelCtx;

    fn ctx() -> ModelCtx {
        ModelCtx::new(3, 0)
    }

    #[test]
    fn mnak_inference_matches_model() {
        let m = model("mnak", &ctx()).unwrap();
        let inf = infer_layer(&m);
        let dn = inf.case(Case::DnCast);
        assert_eq!(dn.pushes, vec!["MnakData"]);
        assert_eq!(dn.pops, 0);
        let up = inf.case(Case::UpCast);
        assert_eq!(up.fast_reads, vec!["MnakData"]);
        assert_eq!(up.pops, 1);
        let ups = inf.case(Case::UpSend);
        assert!(ups.fast_reads.contains(&"NoHdr".to_owned()));
        assert!(ups.slow_reads.contains(&"MnakNak".to_owned()));
        assert!(ups.slow_reads.contains(&"MnakRetrans".to_owned()));
    }

    #[test]
    fn total_up_cast_ccp_read_is_fast() {
        let m = model("total", &ctx()).unwrap();
        let inf = infer_layer(&m);
        let up = inf.case(Case::UpCast);
        assert!(up.fast_reads.contains(&"TotalOrdered".to_owned()));
        assert!(up.slow_reads.contains(&"TotalUnordered".to_owned()));
        assert!(up.slow_reads.contains(&"TotalOrder".to_owned()));
    }

    #[test]
    fn top_pushes_nothing() {
        let m = model("top", &ctx()).unwrap();
        let inf = infer_layer(&m);
        for (_, u) in &inf.cases {
            assert!(u.pushes.is_empty());
            assert_eq!(u.pops, 0);
        }
    }

    #[test]
    fn stack10_headers_are_clean() {
        let mut report = Report::new();
        let infos: Vec<LayerHeaderInfo> = ensemble_layers::STACK_10
            .iter()
            .map(|n| layer_info(n, &ctx()).unwrap())
            .collect();
        check_headers("stack10", &infos, &mut report);
        assert!(!report.has_deny(), "{report}");
    }

    #[test]
    fn vsync_headers_are_clean_with_inferred_usage() {
        let mut report = Report::new();
        let infos: Vec<LayerHeaderInfo> = ensemble_layers::STACK_VSYNC
            .iter()
            .map(|n| layer_info(n, &ctx()).unwrap())
            .collect();
        // Every membership layer now has an IR model, so header usage
        // is inferred from handlers everywhere — no manifest-only
        // layers remain.
        assert!(infos.iter().all(|i| i.inferred.is_some()));
        check_headers("vsync", &infos, &mut report);
        assert!(!report.has_deny(), "{report}");
    }

    #[test]
    fn collision_is_denied() {
        let mut a = layer_info("mnak", &ctx()).unwrap();
        let b = layer_info("pt2pt", &ctx()).unwrap();
        // Make mnak claim pt2pt's data header.
        a.declared.push("Pt2PtData".to_owned());
        let mut report = Report::new();
        check_headers("bad", &[a, b], &mut report);
        assert!(report.has_deny(), "{report}");
        assert!(report.diags.iter().any(|d| d.rule == "HS001"));
        let msg = report.to_json().render();
        assert!(msg.contains("Pt2PtData"), "{msg}");
    }

    #[test]
    fn nohdr_is_shared_without_collision() {
        let infos: Vec<LayerHeaderInfo> = ["top", "partial_appl", "local"]
            .iter()
            .map(|n| layer_info(n, &ctx()).unwrap())
            .collect();
        let mut report = Report::new();
        check_headers("pass", &infos, &mut report);
        assert!(!report.has_deny(), "{report}");
    }

    #[test]
    fn fast_read_without_push_is_denied() {
        use ensemble_ir::term::{app, con, match_, pat, var};
        // A layer whose up path fast-reads "Ghost" but whose down path
        // pushes nothing.
        let ghost_up = match_(
            app("top_hdr", vec![var("msg")]),
            vec![(
                pat("Ghost", &[]),
                app(
                    "out1",
                    vec![
                        var("state"),
                        con("UpCast", vec![var("origin"), app("pop", vec![var("msg")])]),
                    ],
                ),
            )],
        );
        let passthrough = app("out1", vec![var("state"), con("DnCast", vec![var("msg")])]);
        let info = LayerHeaderInfo {
            layer: "ghost".to_owned(),
            declared: vec!["Ghost".to_owned()],
            transforms_payload: false,
            inferred: Some(LayerHeaderUse {
                layer: "ghost".to_owned(),
                cases: vec![
                    (Case::DnCast, infer_case(&passthrough, &[])),
                    (Case::UpCast, infer_case(&ghost_up, &[])),
                    (Case::DnSend, infer_case(&passthrough, &[])),
                    (Case::UpSend, infer_case(&passthrough, &[])),
                ],
            }),
        };
        let mut report = Report::new();
        check_headers("ghost", &[info], &mut report);
        assert!(report.diags.iter().any(|d| d.rule == "HS002"), "{report}");
        // The unpopped-pushes direction: pops without mirror pushes.
        assert!(report.diags.iter().any(|d| d.rule == "HS003"), "{report}");
    }
}
