//! `stack_lint` — static analysis of every registered stack.
//!
//! Runs the header-space, CCP/residual-soundness, and configuration-lint
//! passes over every stack the repository ships and the four execution
//! engines, then prints a human report (default) or a JSON document
//! (`--json`). Exits nonzero when any deny-level finding is present.
//!
//! ```text
//! stack_lint [--json] [--out FILE] [--df-out FILE] [--all-registered]
//!            [--inject-collision] [--quiet]
//! ```
//!
//! `--inject-collision` seeds a deliberately header-colliding stack so
//! CI can confirm the analysis fires (the run then exits nonzero by
//! design). `--all-registered` asserts the sweep covered every stack in
//! the registry — including the service stacks — and exits 2 if any was
//! skipped. `--df-out FILE` additionally writes the `DF_defer.json`
//! Defer-commutativity report (per-stack certificates and the
//! `all_licensed` roll-up the runtime's batching gate mirrors).

use ensemble_analyze::{analyze_all, registered_stacks, Severity, ENGINES};

fn usage() -> ! {
    eprintln!(
        "usage: stack_lint [--json] [--out FILE] [--df-out FILE] [--all-registered] \
         [--inject-collision] [--quiet]"
    );
    std::process::exit(2);
}

fn main() {
    let mut json = false;
    let mut quiet = false;
    let mut inject = false;
    let mut all_registered = false;
    let mut out: Option<String> = None;
    let mut df_out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--quiet" => quiet = true,
            "--inject-collision" => inject = true,
            "--all-registered" => all_registered = true,
            "--out" => match args.next() {
                Some(p) => out = Some(p),
                None => usage(),
            },
            "--df-out" => match args.next() {
                Some(p) => df_out = Some(p),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let analysis = analyze_all(inject);

    if all_registered {
        let registry: Vec<String> = registered_stacks().into_iter().map(|s| s.name).collect();
        let missing: Vec<&String> = registry
            .iter()
            .filter(|n| !analysis.stacks.iter().any(|s| &s.spec.name == *n))
            .collect();
        if !missing.is_empty() {
            eprintln!("stack_lint: registry stacks not analyzed: {missing:?}");
            std::process::exit(2);
        }
        if !quiet && !json {
            println!("registry {} stacks: {}", registry.len(), registry.join(" "));
        }
    }

    if let Some(path) = &df_out {
        if let Err(e) = std::fs::write(path, analysis.defer_report_json().render()) {
            eprintln!("stack_lint: cannot write {path}: {e}");
            std::process::exit(2);
        }
    }
    let rendered = if json {
        analysis.to_json().render()
    } else {
        let mut s = String::new();
        for stack in &analysis.stacks {
            s.push_str(&format!(
                "stack {:<18} layers={:<2} {} {}\n",
                stack.spec.name,
                stack.spec.layers.len(),
                if stack.header_disjoint {
                    "headers-disjoint"
                } else {
                    "HEADER-COLLISION"
                },
                if stack.synthesizable {
                    "synthesized"
                } else {
                    "lint-only"
                },
            ));
        }
        for engine in ENGINES {
            let verdicts: Vec<String> = analysis
                .engines
                .iter()
                .filter(|v| v.engine == engine)
                .map(|v| {
                    format!(
                        "{}:{}",
                        v.stack,
                        if v.verified { "verified" } else { "FAILED" }
                    )
                })
                .collect();
            s.push_str(&format!("engine {engine:<5} {}\n", verdicts.join(" ")));
        }
        s.push_str(&analysis.report.to_string());
        s.push('\n');
        s
    };

    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, &rendered) {
            eprintln!("stack_lint: cannot write {path}: {e}");
            std::process::exit(2);
        }
    }
    if !quiet && out.is_none() {
        print!("{rendered}");
    }

    let denies = analysis.report.count(Severity::Deny);
    if denies > 0 {
        eprintln!("stack_lint: {denies} deny-level finding(s)");
        std::process::exit(1);
    }
}
