//! CCP / residual soundness over synthesized bypass theorems.
//!
//! Consumes the plain-data [`BypassArtifact`] snapshot of a synthesis
//! and proves, by syntactic analysis (no evaluation, no sampling):
//!
//! * **CC001** — no slow-path construct (`Slow` fallback, `Stash`
//!   buffering) survives in any composed case: not in the CCP, not in
//!   the emitted events, not in the state updates, and not in any
//!   per-layer residual. The bypass genuinely has no slow path.
//! * **CC002** — every CCP conjunct of an up case is *decidable from the
//!   compressed header alone*: its free variables are layer state,
//!   the origin rank, the template field variables `f0, f1, …`, and the
//!   payload length. Nothing else arrives with a compressed message, so
//!   any other free variable would make the guard undecidable at
//!   receive time. Down cases may additionally see `dst`/`payload`.
//! * **CC003** — case coverage: a rank-0 synthesis must cover all four
//!   fundamental cases; other ranks may legitimately lack down-path
//!   fast paths (e.g. a non-sequencer's casts), reported as info.
//! * **CC004** — wire-layout provenance: the compressed-header frames
//!   (outermost first) are exactly the per-layer down-path pushes in
//!   bottom-to-top stack order, tying every wire frame to the one layer
//!   that owns it.

use crate::diag::{Diag, Report, Severity};
use crate::headerspace::{LayerHeaderInfo, NO_HDR};
use ensemble_ir::models::Case;
use ensemble_ir::term::Term;
use ensemble_ir::visit::mentions_con;
use ensemble_synth::artifact::{BypassArtifact, TemplateArtifact};

/// Constructors that mark a fall-back to the full stack.
const SLOW_CONS: [&str; 2] = ["Slow", "Stash"];

fn case_name(c: Case) -> String {
    format!("{c:?}")
}

/// Whether `v` is admissible in a CCP decided at the compressed-header
/// boundary of an up case.
fn up_var_ok(v: &str) -> bool {
    v.starts_with("s_")
        || v == "origin"
        || v == "len"
        || v == "payload"
        || (v.len() >= 2 && v.starts_with('f') && v[1..].chars().all(|c| c.is_ascii_digit()))
}

/// Whether `v` is admissible in a down-case CCP (decided at the send
/// call site, where the destination and payload are in hand).
fn dn_var_ok(v: &str) -> bool {
    up_var_ok(v) || v == "dst"
}

fn check_slow_free(stack: &str, art: &BypassArtifact, report: &mut Report) -> bool {
    let mut clean = true;
    let mut check = |terms: Vec<(&Term, Option<Case>, &str)>| {
        for (t, case, what) in terms {
            for slow in SLOW_CONS {
                if mentions_con(t, slow) {
                    clean = false;
                    report.push(Diag {
                        rule: "CC001",
                        severity: Severity::Deny,
                        stack: stack.to_owned(),
                        layer: None,
                        case: case.map(case_name),
                        message: format!(
                            "{what} still mentions the {slow:?} fallback; the bypass is \
                             not slow-path-free"
                        ),
                        hint: Some(
                            "strengthen the CCP until the slow branch is provably dead".to_owned(),
                        ),
                    });
                }
            }
        }
    };
    for th in &art.cases {
        let mut terms: Vec<(&Term, Option<Case>, &str)> = Vec::new();
        for (_, c) in &th.ccp {
            terms.push((c, Some(th.case), "a CCP conjunct"));
        }
        for e in th.wire_events.iter().chain(&th.app_events) {
            terms.push((e, Some(th.case), "an emitted event"));
        }
        for (_, d) in &th.defers {
            terms.push((d, Some(th.case), "a deferred work item"));
        }
        for (_, s) in &th.state_updates {
            terms.push((s, Some(th.case), "a state update"));
        }
        check(terms);
    }
    for (i, per_layer) in art.layer_residuals.iter().enumerate() {
        for (case, residual) in per_layer {
            // A layer residual only feeds the bypass when its case
            // actually composed; a rank with no fast path for the case
            // (CC003) legitimately keeps the Slow fallback there.
            if art.case(*case).is_none() {
                continue;
            }
            for slow in SLOW_CONS {
                if mentions_con(residual, slow) {
                    clean = false;
                    report.push(Diag {
                        rule: "CC001",
                        severity: Severity::Deny,
                        stack: stack.to_owned(),
                        layer: Some(art.names[i].clone()),
                        case: Some(case_name(*case)),
                        message: format!("layer residual still mentions the {slow:?} fallback"),
                        hint: None,
                    });
                }
            }
        }
    }
    clean
}

fn check_ccp_decidable(stack: &str, art: &BypassArtifact, report: &mut Report) -> bool {
    let mut clean = true;
    for th in &art.cases {
        let admissible: fn(&str) -> bool = match th.case {
            Case::UpCast | Case::UpSend => up_var_ok,
            Case::DnCast | Case::DnSend => dn_var_ok,
        };
        for (layer_idx, conj) in &th.ccp {
            for v in conj.free_vars() {
                let name = v.as_str();
                if !admissible(&name) {
                    clean = false;
                    report.push(Diag {
                        rule: "CC002",
                        severity: Severity::Deny,
                        stack: stack.to_owned(),
                        layer: art.names.get(*layer_idx).cloned(),
                        case: Some(case_name(th.case)),
                        message: format!(
                            "CCP conjunct {conj:?} depends on {name:?}, which is not \
                             available at the compressed-header boundary"
                        ),
                        hint: Some(
                            "only layer state, origin/dst, payload length, and template \
                             fields f0.. are decidable there"
                                .to_owned(),
                        ),
                    });
                }
            }
        }
    }
    clean
}

fn check_coverage(stack: &str, art: &BypassArtifact, report: &mut Report) {
    for case in Case::ALL {
        if art.case(case).is_some() {
            continue;
        }
        let (severity, why) = if art.rank == 0 {
            (
                Severity::Warn,
                "the coordinator is expected to have a fast path for every case",
            )
        } else {
            (
                Severity::Info,
                "this rank falls back to the full stack for the case (e.g. a \
                 non-sequencer's down-casts)",
            )
        };
        report.push(Diag {
            rule: "CC003",
            severity,
            stack: stack.to_owned(),
            layer: None,
            case: Some(case_name(case)),
            message: format!("no composed fast path at rank {}; {why}", art.rank),
            hint: None,
        });
    }
}

/// The per-layer down-path push for the wire template of `case`,
/// top-first; `None` entries are layers that push nothing (e.g. `top`).
fn expected_pushes(infos: &[LayerHeaderInfo], case: Case) -> Option<Vec<Option<String>>> {
    let mut out = Vec::new();
    for info in infos {
        let inf = info.inferred.as_ref()?;
        let pushes = &inf.case(case).pushes;
        match pushes.len() {
            0 => out.push(None),
            1 => out.push(Some(pushes[0].clone())),
            // Multiple distinct pushes in one down handler: the layout
            // check cannot attribute frames uniquely; skip.
            _ => return None,
        }
    }
    Some(out)
}

fn check_wire_layout(
    stack: &str,
    art: &BypassArtifact,
    infos: &[LayerHeaderInfo],
    report: &mut Report,
) -> bool {
    let mut clean = true;
    for (case, tpl) in [
        (Case::DnCast, &art.cast_template),
        (Case::DnSend, &art.send_template),
    ] {
        let Some(expected) = expected_pushes(infos, case) else {
            report.push(Diag {
                rule: "CC004",
                severity: Severity::Info,
                stack: stack.to_owned(),
                layer: None,
                case: Some(case_name(case)),
                message: "wire-layout provenance skipped (unmodeled layer or \
                          multi-push handler)"
                    .to_owned(),
                hint: None,
            });
            continue;
        };
        clean &= check_one_layout(stack, case, tpl, &expected, &art.names, report);
    }
    clean
}

fn check_one_layout(
    stack: &str,
    case: Case,
    tpl: &TemplateArtifact,
    expected: &[Option<String>],
    names: &[String],
    report: &mut Report,
) -> bool {
    // Frames are outermost-first = pushed by the bottom-most layer first;
    // walk layers bottom-to-top alongside the frame list.
    let mut frames = tpl.frames.iter();
    let mut clean = true;
    for (idx, exp) in expected.iter().enumerate().rev() {
        let Some(exp) = exp else { continue };
        match frames.next() {
            Some((fname, _)) if fname == exp => {}
            got => {
                clean = false;
                report.push(Diag {
                    rule: "CC004",
                    severity: Severity::Deny,
                    stack: stack.to_owned(),
                    layer: Some(names[idx].clone()),
                    case: Some(case_name(case)),
                    message: format!(
                        "wire frame mismatch: layer pushes {exp:?} but the template \
                         carries {:?} at this depth",
                        got.map(|(n, _)| n.as_str())
                    ),
                    hint: None,
                });
            }
        }
    }
    if let Some((extra, _)) = frames.next() {
        clean = false;
        report.push(Diag {
            rule: "CC004",
            severity: Severity::Deny,
            stack: stack.to_owned(),
            layer: None,
            case: Some(case_name(case)),
            message: format!("template carries frame {extra:?} no layer accounts for"),
            hint: None,
        });
    }
    clean
}

/// The verified properties of one artifact (used for the per-engine
/// summary in the report).
#[derive(Clone, Copy, Debug)]
pub struct SoundnessVerdict {
    /// CC001 passed.
    pub residual_slow_free: bool,
    /// CC002 passed.
    pub ccp_from_compressed_header: bool,
    /// CC004 passed.
    pub wire_layout_stack_ordered: bool,
}

/// Runs all soundness checks for one artifact, appending findings to
/// `report` and returning the verified flags.
pub fn check_soundness(
    stack: &str,
    art: &BypassArtifact,
    infos: &[LayerHeaderInfo],
    report: &mut Report,
) -> SoundnessVerdict {
    let residual_slow_free = check_slow_free(stack, art, report);
    let ccp_from_compressed_header = check_ccp_decidable(stack, art, report);
    check_coverage(stack, art, report);
    let wire_layout_stack_ordered = check_wire_layout(stack, art, infos, report);
    SoundnessVerdict {
        residual_slow_free,
        ccp_from_compressed_header,
        wire_layout_stack_ordered,
    }
}

/// Frames of a template that are pure pass-through (`NoHdr` with no
/// fields) — the ones header compression elides entirely.
pub fn elidable_frames(tpl: &TemplateArtifact) -> usize {
    tpl.frames
        .iter()
        .filter(|(n, fields)| n == NO_HDR && fields.is_empty())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headerspace::layer_info;
    use ensemble_ir::models::ModelCtx;
    use ensemble_ir::term::{con, var};
    use ensemble_synth::synthesize;

    const STACK_4: &[&str] = &["top", "pt2pt", "mnak", "bottom"];

    fn artifact(names: &[&str], rank: i64) -> BypassArtifact {
        let s = synthesize(names, &ModelCtx::new(3, rank)).unwrap();
        BypassArtifact::of(&s, rank)
    }

    fn infos(names: &[&str]) -> Vec<LayerHeaderInfo> {
        names
            .iter()
            .map(|n| layer_info(n, &ModelCtx::new(3, 0)).unwrap())
            .collect()
    }

    #[test]
    fn stack4_is_sound() {
        let art = artifact(STACK_4, 0);
        let mut report = Report::new();
        let v = check_soundness("stack4", &art, &infos(STACK_4), &mut report);
        assert!(v.residual_slow_free, "{report}");
        assert!(v.ccp_from_compressed_header, "{report}");
        assert!(v.wire_layout_stack_ordered, "{report}");
        assert!(!report.has_deny(), "{report}");
    }

    #[test]
    fn nonzero_rank_missing_case_is_info_not_deny() {
        let art = artifact(ensemble_layers::STACK_10, 1);
        let mut report = Report::new();
        check_soundness(
            "stack10",
            &art,
            &infos(ensemble_layers::STACK_10),
            &mut report,
        );
        assert!(!report.has_deny(), "{report}");
    }

    #[test]
    fn seeded_slow_term_is_denied() {
        let mut art = artifact(STACK_4, 0);
        // Corrupt one state update with a reachable Slow constructor.
        art.cases[0]
            .state_updates
            .push((0, con("Slow", vec![var("state")])));
        let mut report = Report::new();
        let v = check_soundness("bad", &art, &infos(STACK_4), &mut report);
        assert!(!v.residual_slow_free);
        assert!(report.has_deny());
        assert!(report.diags.iter().any(|d| d.rule == "CC001"));
    }

    #[test]
    fn undecidable_ccp_var_is_denied() {
        let mut art = artifact(STACK_4, 0);
        let up_idx = art
            .cases
            .iter()
            .position(|c| matches!(c.case, Case::UpSend))
            .unwrap();
        art.cases[up_idx]
            .ccp
            .push((0, ensemble_ir::term::eq(var("wallclock"), Term::Int(0))));
        let mut report = Report::new();
        let v = check_soundness("bad", &art, &infos(STACK_4), &mut report);
        assert!(!v.ccp_from_compressed_header);
        assert!(report.diags.iter().any(|d| d.rule == "CC002"));
    }

    #[test]
    fn wire_layout_mismatch_is_denied() {
        let mut art = artifact(STACK_4, 0);
        // Claim an extra frame the layers cannot account for.
        art.cast_template
            .frames
            .push(("GhostHdr".to_owned(), vec![]));
        let mut report = Report::new();
        let v = check_soundness("bad", &art, &infos(STACK_4), &mut report);
        assert!(!v.wire_layout_stack_ordered);
        assert!(report.diags.iter().any(|d| d.rule == "CC004"));
    }
}
