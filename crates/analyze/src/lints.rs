//! Configuration lints over stack specifications.
//!
//! The refinement lattice in `ensemble_stack::compat` catches
//! under-provision (a layer requiring more than the layers below
//! deliver), but several well-formedness and ordering constraints are
//! not expressible as lattice points — a duplicated layer provides
//! nothing new yet breaks the one-frame-per-layer discipline; `encrypt`
//! below `frag` type-checks but pads fragments past `frag_max`. Those
//! constraints live here, as a registry of [`Rule`]s over [`StackSpec`]s
//! with stable identifiers:
//!
//! | rule  | severity | constraint |
//! |-------|----------|------------|
//! | SL001 | deny     | no duplicate layers |
//! | SL002 | deny     | exactly one `bottom`, last |
//! | SL003 | deny     | every layer is registered |
//! | SL004 | deny     | compat interfaces hold (`check_stack`) |
//! | SL005 | deny     | payload transformers sit above `frag` |
//! | SL006 | deny     | membership layers sit below `total`/`local` |
//! | SL007 | warn     | an application adapter sits on top |
//! | SL008 | deny     | ordering layers sit above the reliability layer they order |
//! | SL009 | deny     | a gmp stack carries `suspect` below it to source suspicion |
//! | SL010 | deny     | a state-machine-replication service stack carries `total` |

use crate::diag::{Diag, Report, Severity};
use ensemble_layers::manifest::manifest;
use ensemble_layers::{LAYER_NAMES, STACK_10, STACK_4, STACK_VSYNC};
use ensemble_stack::check_stack;
use ensemble_stack::compat::CompatError;

/// A named stack configuration under analysis.
#[derive(Clone, Debug)]
pub struct StackSpec {
    /// Display name (`stack4`, `stack10`, `vsync`, …).
    pub name: String,
    /// Layer names, top first.
    pub layers: Vec<String>,
    /// The application plane this stack serves, when it serves one
    /// (`"smr"` for state-machine replication — `ensemble-kv`). Service
    /// lints like SL010 only apply to stacks that declare a service.
    pub service: Option<String>,
}

impl StackSpec {
    /// Builds a spec from a name and a top-first layer list.
    pub fn new(name: &str, layers: &[&str]) -> Self {
        StackSpec {
            name: name.to_owned(),
            layers: layers.iter().map(|s| (*s).to_owned()).collect(),
            service: None,
        }
    }

    /// Builds a spec for a stack that serves an application plane.
    pub fn for_service(name: &str, layers: &[&str], service: &str) -> Self {
        StackSpec {
            service: Some(service.to_owned()),
            ..StackSpec::new(name, layers)
        }
    }

    fn index_of(&self, layer: &str) -> Option<usize> {
        self.layers.iter().position(|l| l == layer)
    }
}

/// Every stack the repository ships.
pub fn registered_stacks() -> Vec<StackSpec> {
    vec![
        StackSpec::new("stack4", STACK_4),
        StackSpec::new("stack10", STACK_10),
        StackSpec::new("vsync", STACK_VSYNC),
        // The vsync stack as ensemble-kv runs it: declared as serving
        // state-machine replication so the service lints apply.
        StackSpec::for_service("kv-service", STACK_VSYNC, "smr"),
    ]
}

/// One configuration lint.
pub trait Rule {
    /// Stable identifier (`SL001`, …).
    fn id(&self) -> &'static str;
    /// One-line description of the constraint.
    fn describe(&self) -> &'static str;
    /// Checks `spec`, appending findings to `report`.
    fn check(&self, spec: &StackSpec, report: &mut Report);
}

fn deny(
    rule: &'static str,
    spec: &StackSpec,
    layer: Option<&str>,
    msg: String,
    hint: &str,
) -> Diag {
    Diag {
        rule,
        severity: Severity::Deny,
        stack: spec.name.clone(),
        layer: layer.map(str::to_owned),
        case: None,
        message: msg,
        hint: if hint.is_empty() {
            None
        } else {
            Some(hint.to_owned())
        },
    }
}

struct NoDuplicates;
impl Rule for NoDuplicates {
    fn id(&self) -> &'static str {
        "SL001"
    }
    fn describe(&self) -> &'static str {
        "a layer may appear at most once in a stack"
    }
    fn check(&self, spec: &StackSpec, report: &mut Report) {
        for (i, l) in spec.layers.iter().enumerate() {
            if spec.layers[..i].contains(l) {
                report.push(deny(
                    self.id(),
                    spec,
                    Some(l),
                    format!("layer {l:?} appears more than once"),
                    "duplicated layers double-push their frame and break the \
                     one-frame-per-layer discipline",
                ));
            }
        }
    }
}

struct BottomTerminates;
impl Rule for BottomTerminates {
    fn id(&self) -> &'static str {
        "SL002"
    }
    fn describe(&self) -> &'static str {
        "the stack ends in exactly one bottom layer"
    }
    fn check(&self, spec: &StackSpec, report: &mut Report) {
        if spec.layers.last().map(String::as_str) != Some("bottom") {
            report.push(deny(
                self.id(),
                spec,
                None,
                "stack does not terminate in `bottom`".to_owned(),
                "append `bottom`; it stamps the view and talks to the transport",
            ));
        }
        let n = spec.layers.iter().filter(|l| *l == "bottom").count();
        if n > 1 {
            report.push(deny(
                self.id(),
                spec,
                Some("bottom"),
                format!("`bottom` appears {n} times"),
                "",
            ));
        }
    }
}

struct KnownLayers;
impl Rule for KnownLayers {
    fn id(&self) -> &'static str {
        "SL003"
    }
    fn describe(&self) -> &'static str {
        "every layer is registered and carries a header manifest"
    }
    fn check(&self, spec: &StackSpec, report: &mut Report) {
        for l in &spec.layers {
            if !LAYER_NAMES.contains(&l.as_str()) {
                report.push(deny(
                    self.id(),
                    spec,
                    Some(l),
                    format!("unknown layer {l:?}"),
                    "see ensemble_layers::LAYER_NAMES for the registry",
                ));
            } else if manifest(l).is_none() {
                report.push(deny(
                    self.id(),
                    spec,
                    Some(l),
                    format!("layer {l:?} has no header manifest"),
                    "declare its headers in ensemble_layers::manifest",
                ));
            }
        }
    }
}

struct CompatHolds;
impl Rule for CompatHolds {
    fn id(&self) -> &'static str {
        "SL004"
    }
    fn describe(&self) -> &'static str {
        "Above/Below interface requirements are satisfied (§3.2)"
    }
    fn check(&self, spec: &StackSpec, report: &mut Report) {
        let names: Vec<&str> = spec.layers.iter().map(String::as_str).collect();
        match check_stack(&names) {
            Ok(()) => {}
            Err(CompatError::Mismatch {
                upper,
                kind,
                requires,
                provides,
                below,
            }) => {
                report.push(deny(
                    self.id(),
                    spec,
                    Some(&upper),
                    format!(
                        "{upper} requires {requires} {kind} below, but {below} provides \
                         only {provides}"
                    ),
                    "insert a layer that provides the required behaviour between them",
                ));
            }
            Err(e) => {
                report.push(deny(self.id(), spec, None, e.to_string(), ""));
            }
        }
    }
}

struct TransformersAboveFrag;
impl Rule for TransformersAboveFrag {
    fn id(&self) -> &'static str {
        "SL005"
    }
    fn describe(&self) -> &'static str {
        "payload-transforming layers sit above frag"
    }
    fn check(&self, spec: &StackSpec, report: &mut Report) {
        let Some(frag_at) = spec.index_of("frag") else {
            return;
        };
        for (i, l) in spec.layers.iter().enumerate() {
            let transforms = manifest(l).map(|m| m.transforms_payload).unwrap_or(false);
            if transforms && i > frag_at {
                report.push(deny(
                    self.id(),
                    spec,
                    Some(l),
                    format!(
                        "{l} transforms the payload below `frag`; transforming a \
                         fragment can grow it past frag_max"
                    ),
                    "move the transforming layer above `frag` so whole messages are \
                     transformed, then fragmented",
                ));
            }
        }
    }
}

struct MembershipBelowOrdering;
impl Rule for MembershipBelowOrdering {
    fn id(&self) -> &'static str {
        "SL006"
    }
    fn describe(&self) -> &'static str {
        "membership layers sit below total/local"
    }
    fn check(&self, spec: &StackSpec, report: &mut Report) {
        const MEMBERSHIP: [&str; 4] = ["gmp", "sync", "elect", "suspect"];
        for upper in ["total", "local"] {
            let Some(u) = spec.index_of(upper) else {
                continue;
            };
            for m in MEMBERSHIP {
                if let Some(i) = spec.index_of(m) {
                    if i < u {
                        report.push(deny(
                            self.id(),
                            spec,
                            Some(m),
                            format!(
                                "membership layer {m} sits above {upper}; its control \
                                 casts must not depend on the total-order sequencer \
                                 (which may be the member that died)"
                            ),
                            "place the membership suite below total/local, above the \
                             reliable FIFO layers",
                        ));
                    }
                }
            }
        }
    }
}

struct AdapterOnTop;
impl Rule for AdapterOnTop {
    fn id(&self) -> &'static str {
        "SL007"
    }
    fn describe(&self) -> &'static str {
        "an application adapter (top/partial_appl) heads the stack"
    }
    fn check(&self, spec: &StackSpec, report: &mut Report) {
        match spec.layers.first().map(String::as_str) {
            Some("top") | Some("partial_appl") => {}
            first => report.push(Diag {
                rule: self.id(),
                severity: Severity::Warn,
                stack: spec.name.clone(),
                layer: first.map(str::to_owned),
                case: None,
                message: format!(
                    "stack head is {first:?}, not an application adapter; application \
                     events enter the stack unadapted"
                ),
                hint: Some("start the stack with `top` or `partial_appl`".to_owned()),
            }),
        }
    }
}

struct OrderingAboveReliability;
impl Rule for OrderingAboveReliability {
    fn id(&self) -> &'static str {
        "SL008"
    }
    fn describe(&self) -> &'static str {
        "ordering layers sit above the reliability layer they order"
    }
    fn check(&self, spec: &StackSpec, report: &mut Report) {
        // total orders the reliable cast stream mnak produces. The
        // lattice cannot reject mnak-above-total (mnak tolerates a lossy
        // substrate by design), but the configuration is still wrong:
        // total would order raw, unretransmitted casts.
        let pairs = [("total", "mnak"), ("total_buggy", "mnak")];
        for (ordering, reliability) in pairs {
            if let (Some(o), Some(r)) = (spec.index_of(ordering), spec.index_of(reliability)) {
                if r < o {
                    report.push(deny(
                        self.id(),
                        spec,
                        Some(reliability),
                        format!(
                            "{reliability} sits above {ordering}; the ordered stream \
                             below it would be re-numbered after ordering"
                        ),
                        "place the reliability layer below the ordering layer",
                    ));
                }
            }
        }
    }
}

struct SuspicionReachesGmp;
impl Rule for SuspicionReachesGmp {
    fn id(&self) -> &'static str {
        "SL009"
    }
    fn describe(&self) -> &'static str {
        "a gmp stack carries suspect below it to source suspicion"
    }
    fn check(&self, spec: &StackSpec, report: &mut Report) {
        // A stack that runs the membership protocol consumes Suspect
        // events — from its own ping rounds or injected by an external
        // detector (ensemble-cluster's heartbeats). Both arrive as a
        // down-going Suspect that only the suspect layer turns into the
        // up-going suspicion gmp acts on. Without suspect below gmp a
        // crashed peer is never expelled: a silent hang, not an error.
        let Some(g) = spec.index_of("gmp") else {
            return;
        };
        match spec.index_of("suspect") {
            None => report.push(deny(
                self.id(),
                spec,
                Some("gmp"),
                "gmp has no suspect layer to source suspicion; a crashed member \
                 would never be expelled"
                    .to_owned(),
                "add `suspect` below gmp (larger index; stacks are written top-first)",
            )),
            Some(s) if s < g => report.push(deny(
                self.id(),
                spec,
                Some("suspect"),
                "suspect sits above gmp; its suspicion events travel up, away from \
                 the membership protocol"
                    .to_owned(),
                "move `suspect` below gmp so suspicion reaches it",
            )),
            Some(_) => {}
        }
    }
}

struct TotalOrderForSmr;
impl Rule for TotalOrderForSmr {
    fn id(&self) -> &'static str {
        "SL010"
    }
    fn describe(&self) -> &'static str {
        "a state-machine-replication service stack carries total"
    }
    fn check(&self, spec: &StackSpec, report: &mut Report) {
        // State-machine replication replays one agreed operation
        // sequence on every replica; that sequence IS the total order.
        // Without `total`, concurrent casts deliver in per-member
        // arrival order and the replicas diverge silently — no runtime
        // error is ever raised, which is why the configuration is
        // refused statically. `KvConfig::validate` mirrors this rule at
        // service construction time.
        if spec.service.as_deref() != Some("smr") {
            return;
        }
        if spec.index_of("total").is_none() {
            report.push(deny(
                self.id(),
                spec,
                None,
                "a state-machine-replication service needs the total layer in its \
                 stack; without it replicas diverge silently"
                    .to_owned(),
                "add `total` above the membership layers (as in the vsync stack)",
            ));
        }
    }
}

/// The full rule registry, in identifier order.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoDuplicates),
        Box::new(BottomTerminates),
        Box::new(KnownLayers),
        Box::new(CompatHolds),
        Box::new(TransformersAboveFrag),
        Box::new(MembershipBelowOrdering),
        Box::new(AdapterOnTop),
        Box::new(OrderingAboveReliability),
        Box::new(SuspicionReachesGmp),
        Box::new(TotalOrderForSmr),
    ]
}

/// Runs every registered rule over `spec`.
pub fn lint_stack(spec: &StackSpec, report: &mut Report) {
    for rule in registry() {
        rule.check(spec, report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(name: &str, layers: &[&str]) -> Report {
        let mut r = Report::new();
        lint_stack(&StackSpec::new(name, layers), &mut r);
        r
    }

    #[test]
    fn shipped_stacks_are_clean() {
        for spec in registered_stacks() {
            let mut r = Report::new();
            lint_stack(&spec, &mut r);
            assert!(!r.has_deny(), "{}: {r}", spec.name);
            assert_eq!(r.count(Severity::Warn), 0, "{}: {r}", spec.name);
        }
    }

    #[test]
    fn registry_ids_are_unique_and_described() {
        let rules = registry();
        let mut ids: Vec<&str> = rules.iter().map(|r| r.id()).collect();
        assert!(rules.iter().all(|r| !r.describe().is_empty()));
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), rules.len());
    }

    #[test]
    fn duplicate_layer_denied() {
        let r = lint("dup", &["top", "mnak", "mnak", "bottom"]);
        assert!(r.diags.iter().any(|d| d.rule == "SL001"), "{r}");
    }

    #[test]
    fn missing_bottom_denied() {
        let r = lint("nobottom", &["top", "mnak"]);
        assert!(r.diags.iter().any(|d| d.rule == "SL002"), "{r}");
    }

    #[test]
    fn unknown_layer_denied() {
        let r = lint("unknown", &["top", "mystery", "bottom"]);
        assert!(r.diags.iter().any(|d| d.rule == "SL003"), "{r}");
    }

    #[test]
    fn compat_violation_names_both_layers() {
        let r = lint("badcompat", &["top", "total", "mnak", "bottom"]);
        let d = r.diags.iter().find(|d| d.rule == "SL004").expect("SL004");
        assert!(d.message.contains("total"), "{}", d.message);
        assert!(d.message.contains("mnak"), "{}", d.message);
        assert!(d.message.contains("ReliableFifoLocal"), "{}", d.message);
    }

    #[test]
    fn encrypt_below_frag_denied() {
        // Type-checks in the lattice (encrypt is transparent over
        // anything) but breaks fragment sizing.
        let r = lint(
            "enc",
            &["top", "frag", "encrypt", "pt2pt", "mnak", "bottom"],
        );
        assert!(r.diags.iter().any(|d| d.rule == "SL005"), "{r}");
        // Above frag it is fine.
        let r = lint(
            "enc2",
            &["top", "encrypt", "frag", "pt2pt", "mnak", "bottom"],
        );
        assert!(!r.diags.iter().any(|d| d.rule == "SL005"), "{r}");
    }

    #[test]
    fn membership_above_total_denied() {
        let r = lint("mem", &["top", "gmp", "total", "local", "mnak", "bottom"]);
        assert!(r.diags.iter().any(|d| d.rule == "SL006"), "{r}");
    }

    #[test]
    fn mnak_above_total_denied_by_ordering_rule() {
        // The lattice accepts this (mnak tolerates anything below); the
        // ordering lint is what rejects it.
        let names = ["top", "mnak", "total", "local", "bottom"];
        let r = lint("order", &names);
        assert!(r.diags.iter().any(|d| d.rule == "SL008"), "{r}");
    }

    #[test]
    fn gmp_without_suspect_denied() {
        let r = lint(
            "nosuspect",
            &["top", "gmp", "sync", "elect", "mnak", "bottom"],
        );
        assert!(r.diags.iter().any(|d| d.rule == "SL009"), "{r}");
    }

    #[test]
    fn suspect_above_gmp_denied() {
        let r = lint(
            "inverted",
            &["top", "suspect", "gmp", "sync", "elect", "mnak", "bottom"],
        );
        assert!(r.diags.iter().any(|d| d.rule == "SL009"), "{r}");
        // The canonical shape — suspect below gmp — is clean.
        let r = lint(
            "canonical",
            &["top", "gmp", "sync", "elect", "suspect", "mnak", "bottom"],
        );
        assert!(!r.diags.iter().any(|d| d.rule == "SL009"), "{r}");
    }

    #[test]
    fn smr_service_without_total_denied() {
        let mut r = Report::new();
        let spec = StackSpec::for_service("bad-kv", &["top", "mnak", "bottom"], "smr");
        lint_stack(&spec, &mut r);
        let d = r.diags.iter().find(|d| d.rule == "SL010").expect("SL010");
        assert!(d.message.contains("diverge"), "{}", d.message);
        // The same layers without the service marker are not an SMR
        // stack, so the rule stays quiet.
        let r = lint("plain", &["top", "mnak", "bottom"]);
        assert!(!r.diags.iter().any(|d| d.rule == "SL010"), "{r}");
    }

    #[test]
    fn kv_service_stack_is_clean() {
        let mut r = Report::new();
        let spec = registered_stacks()
            .into_iter()
            .find(|s| s.name == "kv-service")
            .expect("kv-service is registered");
        assert_eq!(spec.service.as_deref(), Some("smr"));
        lint_stack(&spec, &mut r);
        assert_eq!(r.count(Severity::Deny), 0, "{r}");
    }

    #[test]
    fn headless_stack_warns() {
        let r = lint("headless", &["mnak", "bottom"]);
        assert!(r
            .diags
            .iter()
            .any(|d| d.rule == "SL007" && d.severity == Severity::Warn));
    }
}
