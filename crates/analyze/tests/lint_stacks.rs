//! Acceptance-level checks for the static analysis: the shipped stacks
//! verify cleanly for every engine, and a seeded bad configuration is
//! caught.

use ensemble_analyze::{
    analyze_all, check_headers, layer_info, lint_stack, Report, Severity, StackSpec, ENGINES,
};
use ensemble_ir::models::ModelCtx;

#[test]
fn header_disjointness_and_ccp_decidability_for_all_engines() {
    let analysis = analyze_all(false);
    assert!(!analysis.has_deny(), "{}", analysis.report);
    for engine in ENGINES {
        for stack in ["stack4", "stack10"] {
            let v = analysis
                .engines
                .iter()
                .find(|v| v.engine == engine && v.stack == stack)
                .unwrap_or_else(|| panic!("no verdict for {engine}/{stack}"));
            assert!(v.header_disjoint, "{engine}/{stack}");
            assert!(v.ccp_from_compressed_header, "{engine}/{stack}");
            assert!(v.residual_slow_free, "{engine}/{stack}");
            assert!(v.wire_layout_stack_ordered, "{engine}/{stack}");
            assert!(v.verified, "{engine}/{stack}");
        }
    }
}

#[test]
fn seeded_header_collision_fires_the_lint() {
    // Regression: a layer pair claiming the same header constructor must
    // produce a deny-level HS001 finding.
    let ctx = ModelCtx::new(3, 0);
    let mut infos: Vec<_> = ensemble_layers::STACK_4
        .iter()
        .map(|n| layer_info(n, &ctx).expect("registered layer"))
        .collect();
    let mnak = infos
        .iter_mut()
        .find(|i| i.layer == "mnak")
        .expect("mnak in stack4");
    mnak.declared.push("Pt2PtData".to_owned());

    let mut report = Report::new();
    check_headers("seeded", &infos, &mut report);
    let hs001 = report
        .diags
        .iter()
        .find(|d| d.rule == "HS001")
        .unwrap_or_else(|| panic!("HS001 did not fire: {report}"));
    assert_eq!(hs001.severity, Severity::Deny);
    assert!(hs001.message.contains("Pt2PtData"), "{}", hs001.message);
    assert!(report.has_deny());

    // And through the top-level entry point.
    let analysis = analyze_all(true);
    assert!(analysis.has_deny());
    assert!(analysis
        .report
        .diags
        .iter()
        .any(|d| d.rule == "HS001" && d.stack == "injected-collision"));
}

#[test]
fn every_registered_stack_passes_every_lint_rule() {
    for spec in ensemble_analyze::registered_stacks() {
        let mut report = Report::new();
        lint_stack(&spec, &mut report);
        assert!(
            report.diags.is_empty(),
            "{}: unexpected findings: {report}",
            spec.name
        );
    }
}

#[test]
fn bad_configurations_are_rejected_with_located_diagnostics() {
    let cases: [(&[&str], &str); 4] = [
        (&["top", "mnak", "mnak", "bottom"], "SL001"),
        (&["top", "pt2pt", "mnak"], "SL002"),
        (
            &["top", "frag", "encrypt", "pt2pt", "mnak", "bottom"],
            "SL005",
        ),
        (&["top", "mnak", "total", "local", "bottom"], "SL008"),
    ];
    for (layers, rule) in cases {
        let mut report = Report::new();
        lint_stack(&StackSpec::new("bad", layers), &mut report);
        let d = report
            .diags
            .iter()
            .find(|d| d.rule == rule)
            .unwrap_or_else(|| panic!("{rule} did not fire for {layers:?}: {report}"));
        assert_eq!(d.severity, Severity::Deny);
        assert_eq!(d.stack, "bad");
    }
}
