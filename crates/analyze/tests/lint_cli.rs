//! End-to-end checks of the `stack_lint` binary: exit codes, human
//! output, and the JSON document CI consumes.

use ensemble_obs::Json;
use std::process::Command;

fn stack_lint(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_stack_lint"))
        .args(args)
        .output()
        .expect("spawn stack_lint")
}

#[test]
fn clean_run_exits_zero_with_verified_engines() {
    let out = stack_lint(&[]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    for engine in ["IMP", "FUNC", "HAND", "MACH"] {
        let line = stdout
            .lines()
            .find(|l| l.starts_with(&format!("engine {engine}")))
            .unwrap_or_else(|| panic!("no line for {engine} in:\n{stdout}"));
        assert!(line.contains("stack4:verified"), "{line}");
        assert!(line.contains("stack10:verified"), "{line}");
        assert!(line.contains("vsync:verified"), "{line}");
        assert!(line.contains("kv-service:verified"), "{line}");
    }
    assert!(stdout.contains("0 deny"), "{stdout}");
}

#[test]
fn all_registered_reports_registry_coverage() {
    let out = stack_lint(&["--all-registered"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let reg = stdout
        .lines()
        .find(|l| l.starts_with("registry "))
        .unwrap_or_else(|| panic!("no registry line in:\n{stdout}"));
    assert!(reg.contains("4 stacks"), "{reg}");
    assert!(reg.contains("kv-service"), "{reg}");
}

#[test]
fn df_out_writes_licensed_defer_report() {
    let path = std::env::temp_dir().join("stack_lint_cli_df_test.json");
    let path_s = path.to_str().unwrap();
    let out = stack_lint(&["--quiet", "--all-registered", "--df-out", path_s]);
    assert!(out.status.success(), "{out:?}");
    let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(doc.get("report").and_then(Json::as_str), Some("DF_defer"));
    assert!(matches!(doc.get("all_licensed"), Some(Json::Bool(true))));
    let stacks = doc.get("stacks").and_then(Json::as_arr).unwrap();
    assert_eq!(stacks.len(), 4);
    for s in stacks {
        assert!(matches!(s.get("licensed"), Some(Json::Bool(true))));
        assert!(!s.get("sites").and_then(Json::as_arr).unwrap().is_empty());
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn json_output_is_parseable_and_deny_free() {
    let out = stack_lint(&["--json"]);
    assert!(out.status.success(), "{out:?}");
    let doc = Json::parse(&String::from_utf8(out.stdout).unwrap()).expect("valid json");
    assert_eq!(doc.get("tool").and_then(Json::as_str), Some("stack_lint"));
    assert_eq!(
        doc.get("summary")
            .and_then(|s| s.get("deny"))
            .and_then(Json::as_int),
        Some(0)
    );
    let engines = doc.get("engines").and_then(Json::as_arr).unwrap();
    assert_eq!(engines.len(), 16);
    assert!(engines
        .iter()
        .all(|e| e.get("verified").map(|v| matches!(v, Json::Bool(true))) == Some(true)));
}

#[test]
fn injected_collision_exits_nonzero() {
    let out = stack_lint(&["--inject-collision", "--json"]);
    assert!(!out.status.success(), "collision run must fail");
    assert_eq!(out.status.code(), Some(1));
    let doc = Json::parse(&String::from_utf8(out.stdout).unwrap()).expect("valid json");
    let findings = doc.get("findings").and_then(Json::as_arr).unwrap();
    assert!(findings
        .iter()
        .any(|f| f.get("rule").and_then(Json::as_str) == Some("HS001")
            && f.get("severity").and_then(Json::as_str) == Some("deny")));
}

#[test]
fn out_flag_writes_the_document() {
    let path = std::env::temp_dir().join("stack_lint_cli_test.json");
    let path_s = path.to_str().unwrap();
    let out = stack_lint(&["--json", "--out", path_s]);
    assert!(out.status.success(), "{out:?}");
    assert!(out.stdout.is_empty(), "--out suppresses stdout");
    let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(doc.get("version").and_then(Json::as_int), Some(1));
    std::fs::remove_file(&path).ok();
}

#[test]
fn bad_flag_exits_with_usage() {
    let out = stack_lint(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr).unwrap().contains("usage"));
}
