//! The paper's verification experiments, executable.
//!
//! §3.1: composing `FifoProtocol` instances with `LossyNetwork` must yield
//! only executions of `FifoNetwork`; §1/[11]: formal analysis of one of
//! Ensemble's total ordering protocols located a subtle bug. Both are
//! reproduced here with the bounded refinement checker.

use ensemble_ioa::explore::{random_trace, reachable_states};
use ensemble_ioa::props::{deliveries_by_process, fifo_ok, total_order_agreement};
use ensemble_ioa::protocol::{FifoProtocol, TotalProtocol};
use ensemble_ioa::specs::{FifoNetwork, TotalOrderSpec};
use ensemble_ioa::{check_refinement, RefineError, RefineOptions, Value};
use ensemble_util::{DetRng, Intern};

fn msgs() -> Vec<Value> {
    vec![Value::sym("a"), Value::sym("b")]
}

#[test]
fn fifo_protocol_refines_fifo_network() {
    // The sliding-window protocol over its lossy channel implements the
    // FIFO network: every (bounded) trace of the protocol is a trace of
    // the Figure 2(a) specification.
    let imp = FifoProtocol::new(msgs(), 2);
    let spec = FifoNetwork::new(vec![1], msgs(), 2);
    let stats = check_refinement(&imp, &spec, RefineOptions::default())
        .unwrap_or_else(|e| panic!("refinement failed: {e}"));
    assert!(stats.nodes > 100, "non-trivial exploration: {stats:?}");
}

#[test]
fn fifo_protocol_state_space_is_finite() {
    let imp = FifoProtocol::new(msgs(), 2);
    let states = reachable_states(&imp, 100_000).expect("bounded model");
    assert!(states.len() > 50);
}

#[test]
fn correct_total_order_refines_spec() {
    let imp = TotalProtocol::new(2, msgs(), 2);
    let spec = TotalOrderSpec::new(2, msgs(), 2);
    let stats = check_refinement(&imp, &spec, RefineOptions::default())
        .unwrap_or_else(|e| panic!("refinement failed: {e}"));
    assert!(stats.nodes > 100, "non-trivial exploration: {stats:?}");
}

#[test]
fn buggy_total_order_is_caught_with_counterexample() {
    // The seeded bug — delivering one's own cast at loopback, before the
    // sequencer fixes its order — is exactly the kind of subtle ordering
    // violation the paper credits the formal tools with finding.
    let imp = TotalProtocol::new_buggy(2, msgs(), 2);
    let spec = TotalOrderSpec::new(2, msgs(), 2);
    match check_refinement(&imp, &spec, RefineOptions::default()) {
        Err(RefineError::Violation { trace }) => {
            // The counterexample ends in a Deliver that contradicts the
            // order another process observed.
            let last = trace.last().unwrap();
            assert_eq!(last.name, Intern::from("Deliver"));
            // And it is short enough for a human to read.
            assert!(trace.len() <= 8, "trace: {trace:?}");
        }
        Ok(stats) => panic!("bug not detected ({stats:?})"),
        Err(other) => panic!("unexpected: {other}"),
    }
}

#[test]
fn random_executions_of_correct_total_order_agree() {
    let imp = TotalProtocol::new(3, msgs(), 3);
    let mut rng = DetRng::new(2026);
    for _ in 0..200 {
        let trace = random_trace(&imp, &mut rng, 120);
        let per = deliveries_by_process(&trace, 3);
        assert!(
            total_order_agreement(&per),
            "disagreement in trace {trace:?}"
        );
    }
}

#[test]
fn random_executions_of_buggy_total_order_eventually_disagree() {
    let imp = TotalProtocol::new_buggy(2, msgs(), 2);
    let mut rng = DetRng::new(7);
    let mut violated = false;
    for _ in 0..500 {
        let trace = random_trace(&imp, &mut rng, 80);
        let per = deliveries_by_process(&trace, 2);
        if !total_order_agreement(&per) {
            violated = true;
            break;
        }
    }
    assert!(violated, "random testing should also expose the bug");
}

#[test]
fn fifo_protocol_random_traces_satisfy_fifo_property() {
    let imp = FifoProtocol::new(msgs(), 3);
    let mut rng = DetRng::new(11);
    for _ in 0..300 {
        let trace = random_trace(&imp, &mut rng, 100);
        assert!(fifo_ok(&trace), "FIFO violated in {trace:?}");
    }
}
