//! Bounded refinement (trace-inclusion) checking.
//!
//! "We then have to show that any execution of this composed
//! specification … is also an execution of FifoNetwork" (§3.1). The
//! checker explores the implementation automaton breadth-first while
//! tracking, for each explored implementation state, the *set* of
//! specification states reachable over the same external trace (a forward
//! simulation via subset construction, with τ-closure over the
//! specification's internal actions). If the set ever empties on an
//! external step, that step ends a trace the specification cannot
//! produce — a refinement violation, reported with the full trace.

use crate::automaton::Automaton;
use crate::value::{Action, Value};
use std::collections::{BTreeSet, HashSet, VecDeque};
use std::fmt;

/// Exploration bounds.
#[derive(Clone, Copy, Debug)]
pub struct RefineOptions {
    /// Maximum number of (impl state, spec set) pairs to explore.
    pub max_nodes: usize,
    /// Maximum trace depth.
    pub max_depth: usize,
    /// Maximum size of a specification state set (τ-closure bound).
    pub max_spec_set: usize,
}

impl Default for RefineOptions {
    fn default() -> Self {
        RefineOptions {
            max_nodes: 200_000,
            max_depth: 24,
            max_spec_set: 4_096,
        }
    }
}

/// Outcomes of a refinement check.
#[derive(Clone, Debug)]
pub enum RefineError {
    /// A trace of the implementation that the specification cannot take.
    Violation {
        /// The externally visible trace, ending with the violating action.
        trace: Vec<Action>,
    },
    /// A bound was hit before the search space was exhausted.
    BoundExceeded(&'static str),
}

impl fmt::Display for RefineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefineError::Violation { trace } => {
                write!(f, "refinement violation; trace:")?;
                for a in trace {
                    write!(f, " {a:?}")?;
                }
                Ok(())
            }
            RefineError::BoundExceeded(which) => write!(f, "bound exceeded: {which}"),
        }
    }
}

/// Statistics from a successful check.
#[derive(Clone, Copy, Debug, Default)]
pub struct RefineStats {
    /// Nodes (impl state × spec set) explored.
    pub nodes: usize,
    /// Implementation transitions examined.
    pub transitions: usize,
    /// Deepest trace reached.
    pub depth: usize,
}

fn tau_closure<S: Automaton>(
    spec: &S,
    set: BTreeSet<Value>,
    cap: usize,
) -> Result<BTreeSet<Value>, RefineError> {
    let mut closure = set;
    let mut frontier: Vec<Value> = closure.iter().cloned().collect();
    while let Some(s) = frontier.pop() {
        for a in spec.enabled(&s) {
            if spec.is_external(&a) {
                continue;
            }
            for t in spec.step(&s, &a) {
                if closure.insert(t.clone()) {
                    if closure.len() > cap {
                        return Err(RefineError::BoundExceeded("spec set"));
                    }
                    frontier.push(t);
                }
            }
        }
    }
    Ok(closure)
}

/// Checks that every (bounded) trace of `imp` is a trace of `spec`.
///
/// External actions are matched by name and arguments, so the two automata
/// must agree on the naming of their shared external signature.
pub fn check_refinement<I: Automaton, S: Automaton>(
    imp: &I,
    spec: &S,
    opts: RefineOptions,
) -> Result<RefineStats, RefineError> {
    let mut stats = RefineStats::default();
    let spec_init = tau_closure(
        spec,
        spec.initial().into_iter().collect(),
        opts.max_spec_set,
    )?;

    type Node = (Value, BTreeSet<Value>);
    let mut visited: HashSet<Node> = HashSet::new();
    let mut queue: VecDeque<(Value, BTreeSet<Value>, Vec<Action>)> = VecDeque::new();
    for s in imp.initial() {
        let node = (s.clone(), spec_init.clone());
        if visited.insert(node) {
            queue.push_back((s, spec_init.clone(), Vec::new()));
        }
    }

    while let Some((s, specs, trace)) = queue.pop_front() {
        stats.nodes += 1;
        stats.depth = stats.depth.max(trace.len());
        if stats.nodes > opts.max_nodes {
            return Err(RefineError::BoundExceeded("nodes"));
        }
        if trace.len() >= opts.max_depth {
            continue;
        }
        for a in imp.enabled(&s) {
            let succs = imp.step(&s, &a);
            stats.transitions += 1;
            let (next_specs, next_trace) = if imp.is_external(&a) {
                // The specification must match the action.
                let mut matched = BTreeSet::new();
                for t in &specs {
                    for t2 in spec.step(t, &a) {
                        matched.insert(t2);
                    }
                }
                if matched.is_empty() {
                    let mut trace = trace.clone();
                    trace.push(a.clone());
                    return Err(RefineError::Violation { trace });
                }
                let closed = tau_closure(spec, matched, opts.max_spec_set)?;
                let mut trace2 = trace.clone();
                trace2.push(a.clone());
                (closed, trace2)
            } else {
                (specs.clone(), trace.clone())
            };
            for s2 in succs {
                let node = (s2.clone(), next_specs.clone());
                if visited.insert(node) {
                    queue.push_back((s2, next_specs.clone(), next_trace.clone()));
                }
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::{FifoNetwork, LossyNetwork};
    use ensemble_util::Intern;

    /// Sanity: an automaton refines itself.
    #[test]
    fn fifo_refines_itself() {
        let a = FifoNetwork::new(vec![1], vec![Value::sym("a")], 2);
        let b = FifoNetwork::new(vec![1], vec![Value::sym("a")], 2);
        let stats = check_refinement(&a, &b, RefineOptions::default()).unwrap();
        assert!(stats.nodes > 0);
    }

    /// FIFO behaviour is a special case of lossy behaviour… except that
    /// the lossy spec never removes delivered messages, so a FIFO trace
    /// (deliver exactly once, in order) is still a lossy trace.
    #[test]
    fn fifo_refines_lossy() {
        let imp = FifoNetwork::new(vec![1], vec![Value::sym("a"), Value::sym("b")], 2);
        let spec = LossyNetwork::new(vec![1], vec![Value::sym("a"), Value::sym("b")], 2);
        check_refinement(&imp, &spec, RefineOptions::default()).unwrap();
    }

    /// The converse fails: a lossy network can duplicate a delivery,
    /// which the FIFO network never does.
    #[test]
    fn lossy_does_not_refine_fifo() {
        let imp = LossyNetwork::new(vec![1], vec![Value::sym("a")], 1);
        let spec = FifoNetwork::new(vec![1], vec![Value::sym("a")], 1);
        let err = check_refinement(&imp, &spec, RefineOptions::default()).unwrap_err();
        match err {
            RefineError::Violation { trace } => {
                // The counterexample ends in a Deliver the spec cannot do
                // (a duplicate or a reorder).
                let last = trace.last().unwrap();
                assert_eq!(last.name, Intern::from("Deliver"));
                assert!(trace.len() >= 2);
            }
            other => panic!("expected violation, got {other}"),
        }
    }

    #[test]
    fn bounds_are_enforced() {
        let imp = LossyNetwork::new(vec![1, 2], vec![Value::sym("a"), Value::sym("b")], 6);
        let spec = LossyNetwork::new(vec![1, 2], vec![Value::sym("a"), Value::sym("b")], 6);
        let tight = RefineOptions {
            max_nodes: 10,
            ..RefineOptions::default()
        };
        match check_refinement(&imp, &spec, tight) {
            Err(RefineError::BoundExceeded(which)) => assert_eq!(which, "nodes"),
            other => panic!("expected bound error, got {other:?}"),
        }
    }
}
