//! I/O-automata specifications and bounded refinement checking.
//!
//! §3 of the paper specifies protocols with I/O automata: *abstract*
//! behavioural specifications (the `FifoNetwork` and `LossyNetwork` of
//! Figure 2), *concrete* specifications of protocols (the `FifoProtocol`
//! prototype of Figure 3), composition (tying `Below.Send` events to the
//! network's `Send`), and refinement ("any execution of this composed
//! specification is also an execution of FifoNetwork").
//!
//! This crate makes all of that executable:
//!
//! * [`Automaton`] — nondeterministic automata over interned [`Value`]s;
//! * [`Compose`]/[`Hide`] — parallel composition synchronizing on shared
//!   action names, and internalization of actions;
//! * [`specs`] — the abstract network specifications from Figure 2 plus a
//!   total-order network specification;
//! * [`protocol`] — concrete protocol automata: a sliding-window
//!   `FifoProtocol` (Figure 3) and a sequencer `TotalProtocol` with the
//!   seeded ordering bug the paper reports finding (ref. \[11\] of the paper);
//! * [`refine`] — a bounded explicit-state forward-simulation checker: it
//!   explores the implementation and tracks the subset of specification
//!   states compatible with the external trace so far, reporting a
//!   counterexample trace when the subset empties;
//! * [`props`] — reusable trace predicates (FIFO, no-duplication,
//!   no-creation, total-order agreement) applied both to automata traces
//!   and, by the integration tests, to real protocol-stack executions.
//!
//! In place of Nuprl's deductive proofs this is *checking*: exhaustive up
//! to a bound plus randomized long-run exploration. The methodology —
//! specify abstractly, implement concretely, relate by refinement — is the
//! paper's.

#![forbid(unsafe_code)]

pub mod automaton;
pub mod explore;
pub mod props;
pub mod protocol;
pub mod refine;
pub mod specs;
pub mod value;

pub use automaton::{Automaton, Compose, Hide};
pub use refine::{check_refinement, RefineError, RefineOptions};
pub use value::{Action, Value};
