//! Values and actions of the IOA framework.

use ensemble_util::Intern;
use std::fmt;

/// A structured value used for automaton states and action arguments.
///
/// Values are ordered and hashable so they can key state sets during
/// exploration.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// The unit value.
    Unit,
    /// A boolean.
    Bool(bool),
    /// An integer.
    Int(i64),
    /// An interned symbol.
    Sym(Intern),
    /// An ordered list (also used as a tuple).
    List(Vec<Value>),
}

impl Value {
    /// Builds a symbol value.
    pub fn sym(s: &str) -> Value {
        Value::Sym(Intern::from(s))
    }

    /// Builds a list value.
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(items)
    }

    /// Builds a pair.
    pub fn pair(a: Value, b: Value) -> Value {
        Value::List(vec![a, b])
    }

    /// The integer inside, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The items inside, if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Sym(s) => write!(f, "{s}"),
            Value::List(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x:?}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// An automaton action: an interned name plus argument values.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Action {
    /// The action name (e.g. `"Send"`).
    pub name: Intern,
    /// The action arguments.
    pub args: Vec<Value>,
}

impl Action {
    /// Builds an action.
    pub fn new(name: &str, args: Vec<Value>) -> Action {
        Action {
            name: Intern::from(name),
            args,
        }
    }

    /// Builds an argument-less action.
    pub fn bare(name: &str) -> Action {
        Action::new(name, Vec::new())
    }
}

impl fmt::Debug for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.args.is_empty() {
            write!(f, "{:?}", Value::List(self.args.clone()))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_equality_and_ordering() {
        assert_eq!(Value::sym("a"), Value::sym("a"));
        assert_ne!(Value::sym("a"), Value::sym("b"));
        assert!(Value::Int(1) < Value::Int(2));
        assert_eq!(
            Value::pair(Value::Int(1), Value::sym("m")),
            Value::list(vec![Value::Int(1), Value::sym("m")])
        );
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Unit.as_int(), None);
        let l = Value::list(vec![Value::Bool(true)]);
        assert_eq!(l.as_list().unwrap().len(), 1);
        assert!(Value::Int(0).as_list().is_none());
    }

    #[test]
    fn action_identity() {
        let a = Action::new("Send", vec![Value::Int(0)]);
        let b = Action::new("Send", vec![Value::Int(0)]);
        let c = Action::new("Send", vec![Value::Int(1)]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, Action::bare("Send"));
    }

    #[test]
    fn debug_formats() {
        let a = Action::new("Deliver", vec![Value::Int(1), Value::sym("m")]);
        let s = format!("{a:?}");
        assert!(s.contains("Deliver"));
        assert!(s.contains('m'));
    }
}
