//! Concrete protocol specifications.
//!
//! These automata model the *implementations* whose refinement against the
//! abstract specs of [`crate::specs`] is checked by [`crate::refine`]:
//!
//! * [`FifoProtocol`] — the sliding-window protocol of Figure 3, composed
//!   with its lossy channel: retransmits, removes duplicates, delivers in
//!   order. Checked to refine [`crate::specs::FifoNetwork`].
//! * [`TotalProtocol`] — the sequencer total-order protocol mirroring the
//!   `total` layer, over per-source FIFO channels (what `mnak` provides),
//!   including the loopback self-queue (what `local` provides). Its
//!   `buggy` variant delivers a member's own casts eagerly at loopback —
//!   the kind of subtle ordering bug the paper reports discovering by
//!   formal analysis. Checked (and refuted) against
//!   [`crate::specs::TotalOrderSpec`].

use crate::automaton::Automaton;
use crate::value::{Action, Value};
use ensemble_util::Intern;

/// The sliding-window FIFO protocol composed with its lossy channel.
///
/// Unidirectional: an application feeds `Send(1, m)`; the receiver emits
/// `Deliver(1, m)`. Internal actions model transmission, loss, ack flow,
/// and retransmission. State:
/// `[pending list, base, channel_data set, channel_ack set, expected, sent_total]`.
pub struct FifoProtocol {
    /// Message alphabet.
    pub msgs: Vec<Value>,
    /// Bound on application sends.
    pub max_sends: i64,
    sig: Vec<Intern>,
    send: Intern,
    deliver: Intern,
    transmit: Intern,
    drop_data: Intern,
    drop_ack: Intern,
    re_ack: Intern,
    recv_ack: Intern,
}

impl FifoProtocol {
    /// Builds the protocol model.
    pub fn new(msgs: Vec<Value>, max_sends: i64) -> Self {
        FifoProtocol {
            msgs,
            max_sends,
            sig: [
                "Send", "Deliver", "Transmit", "DropData", "DropAck", "ReAck", "RecvAck",
            ]
            .iter()
            .map(|s| Intern::from(s))
            .collect(),
            send: Intern::from("Send"),
            deliver: Intern::from("Deliver"),
            transmit: Intern::from("Transmit"),
            drop_data: Intern::from("DropData"),
            drop_ack: Intern::from("DropAck"),
            re_ack: Intern::from("ReAck"),
            recv_ack: Intern::from("RecvAck"),
        }
    }

    #[allow(clippy::type_complexity)]
    fn parts(s: &Value) -> (Vec<Value>, i64, Vec<Value>, Vec<i64>, i64, i64) {
        let v = s.as_list().unwrap();
        (
            v[0].as_list().unwrap().to_vec(),
            v[1].as_int().unwrap(),
            v[2].as_list().unwrap().to_vec(),
            v[3].as_list()
                .unwrap()
                .iter()
                .map(|x| x.as_int().unwrap())
                .collect(),
            v[4].as_int().unwrap(),
            v[5].as_int().unwrap(),
        )
    }

    fn pack(
        pending: Vec<Value>,
        base: i64,
        data: Vec<Value>,
        acks: Vec<i64>,
        expected: i64,
        sent: i64,
    ) -> Value {
        Value::list(vec![
            Value::list(pending),
            Value::Int(base),
            Value::list(data),
            Value::list(acks.into_iter().map(Value::Int).collect()),
            Value::Int(expected),
            Value::Int(sent),
        ])
    }
}

impl Automaton for FifoProtocol {
    fn initial(&self) -> Vec<Value> {
        vec![Self::pack(vec![], 0, vec![], vec![], 0, 0)]
    }

    fn enabled(&self, s: &Value) -> Vec<Action> {
        let (pending, base, data, acks, expected, sent) = Self::parts(s);
        let mut out = Vec::new();
        if sent < self.max_sends {
            for m in &self.msgs {
                out.push(Action::new("Send", vec![Value::Int(1), m.clone()]));
            }
        }
        if let Some(head) = pending.first() {
            let wire = Value::pair(Value::Int(base), head.clone());
            if !data.contains(&wire) {
                out.push(Action::bare("Transmit"));
            }
        }
        for d in &data {
            let p = d.as_list().unwrap();
            out.push(Action::new("DropData", vec![p[0].clone(), p[1].clone()]));
            if p[0].as_int().unwrap() == expected {
                out.push(Action::new("Deliver", vec![Value::Int(1), p[1].clone()]));
            }
        }
        for &a in &acks {
            out.push(Action::new("DropAck", vec![Value::Int(a)]));
            if a > base {
                out.push(Action::bare("RecvAck"));
            }
        }
        if expected > 0 && !acks.contains(&expected) {
            out.push(Action::bare("ReAck"));
        }
        out.sort();
        out.dedup();
        out
    }

    fn step(&self, s: &Value, a: &Action) -> Vec<Value> {
        let (mut pending, mut base, mut data, mut acks, mut expected, mut sent) = Self::parts(s);
        if a.name == self.send {
            if sent >= self.max_sends {
                return Vec::new();
            }
            pending.push(a.args[1].clone());
            sent += 1;
        } else if a.name == self.transmit {
            let Some(head) = pending.first() else {
                return Vec::new();
            };
            let wire = Value::pair(Value::Int(base), head.clone());
            if data.contains(&wire) {
                return Vec::new();
            }
            data.push(wire);
            data.sort();
        } else if a.name == self.deliver {
            let wire = Value::pair(Value::Int(expected), a.args[1].clone());
            if !data.contains(&wire) {
                return Vec::new();
            }
            expected += 1;
            if !acks.contains(&expected) {
                acks.push(expected);
                acks.sort_unstable();
            }
        } else if a.name == self.drop_data {
            let wire = Value::pair(a.args[0].clone(), a.args[1].clone());
            let Some(i) = data.iter().position(|x| *x == wire) else {
                return Vec::new();
            };
            data.remove(i);
        } else if a.name == self.drop_ack {
            let v = a.args[0].as_int().unwrap();
            let Some(i) = acks.iter().position(|x| *x == v) else {
                return Vec::new();
            };
            acks.remove(i);
        } else if a.name == self.re_ack {
            if expected == 0 || acks.contains(&expected) {
                return Vec::new();
            }
            acks.push(expected);
            acks.sort_unstable();
        } else if a.name == self.recv_ack {
            let Some(&best) = acks.iter().filter(|&&x| x > base).max() else {
                return Vec::new();
            };
            let advance = (best - base) as usize;
            if advance > pending.len() {
                return Vec::new();
            }
            pending.drain(..advance);
            base = best;
        } else {
            return Vec::new();
        }
        vec![Self::pack(pending, base, data, acks, expected, sent)]
    }

    fn in_signature(&self, name: Intern) -> bool {
        self.sig.contains(&name)
    }

    fn is_external(&self, a: &Action) -> bool {
        a.name == self.send || a.name == self.deliver
    }
}

/// Wire messages of the total-order protocol.
fn wire_ord(order: i64, m: &Value) -> Value {
    Value::list(vec![Value::sym("ord"), Value::Int(order), m.clone()])
}
fn wire_unord(origin: i64, local: i64, m: &Value) -> Value {
    Value::list(vec![
        Value::sym("unord"),
        Value::Int(origin),
        Value::Int(local),
        m.clone(),
    ])
}
fn wire_ann(origin: i64, local: i64, order: i64) -> Value {
    Value::list(vec![
        Value::sym("ann"),
        Value::Int(origin),
        Value::Int(local),
        Value::Int(order),
    ])
}

/// The sequencer total-order protocol over per-source FIFO channels.
///
/// Process 0 is the sequencer. State (for `n` processes):
/// `[chans (n×n FIFO queues, src-major, incl. self loops), per-proc
/// [dnext, lnext, holding, unordered, early], onext, casts]`.
///
/// External actions: `Cast(p, m)`, `Deliver(p, m)`; internal: `Proc(src,
/// dst)` processes one queue head without delivering.
pub struct TotalProtocol {
    /// Number of processes (process 0 is the sequencer).
    pub nprocs: i64,
    /// Message alphabet.
    pub msgs: Vec<Value>,
    /// Bound on total casts.
    pub max_casts: i64,
    /// Whether to eagerly deliver a member's own casts (the seeded bug).
    pub buggy: bool,
    sig: Vec<Intern>,
    cast: Intern,
    deliver: Intern,
    proc_: Intern,
}

impl TotalProtocol {
    /// Builds the correct protocol model.
    pub fn new(nprocs: i64, msgs: Vec<Value>, max_casts: i64) -> Self {
        TotalProtocol {
            nprocs,
            msgs,
            max_casts,
            buggy: false,
            sig: ["Cast", "Deliver", "Proc"]
                .iter()
                .map(|s| Intern::from(s))
                .collect(),
            cast: Intern::from("Cast"),
            deliver: Intern::from("Deliver"),
            proc_: Intern::from("Proc"),
        }
    }

    /// Builds the buggy variant (eager self-delivery at loopback).
    pub fn new_buggy(nprocs: i64, msgs: Vec<Value>, max_casts: i64) -> Self {
        TotalProtocol {
            buggy: true,
            ..Self::new(nprocs, msgs, max_casts)
        }
    }

    fn n(&self) -> usize {
        self.nprocs as usize
    }

    fn chan_idx(&self, src: usize, dst: usize) -> usize {
        src * self.n() + dst
    }

    /// Unpacks `[chans, procs, onext, casts]`.
    #[allow(clippy::type_complexity)]
    fn parts(&self, s: &Value) -> (Vec<Vec<Value>>, Vec<ProcState>, i64, i64) {
        let v = s.as_list().unwrap();
        let chans = v[0]
            .as_list()
            .unwrap()
            .iter()
            .map(|c| c.as_list().unwrap().to_vec())
            .collect();
        let procs = v[1]
            .as_list()
            .unwrap()
            .iter()
            .map(ProcState::unpack)
            .collect();
        (chans, procs, v[2].as_int().unwrap(), v[3].as_int().unwrap())
    }

    fn pack(&self, chans: Vec<Vec<Value>>, procs: Vec<ProcState>, onext: i64, casts: i64) -> Value {
        Value::list(vec![
            Value::list(chans.into_iter().map(Value::list).collect()),
            Value::list(procs.into_iter().map(|p| p.pack()).collect()),
            Value::Int(onext),
            Value::Int(casts),
        ])
    }

    /// Processes the head of channel `src→dst`. Returns the new state and
    /// the delivery (if any) this processing step would perform.
    #[allow(clippy::type_complexity)]
    fn process_head(
        &self,
        chans: &mut [Vec<Value>],
        procs: &mut [ProcState],
        onext: &mut i64,
        src: usize,
        dst: usize,
    ) -> Option<Option<Value>> {
        let ci = self.chan_idx(src, dst);
        if chans[ci].is_empty() {
            return None;
        }
        let head = chans[ci].remove(0);
        let h = head.as_list().unwrap().to_vec();
        let kind = h[0].clone();
        let p = &mut procs[dst];
        if kind == Value::sym("ord") {
            let (order, m) = (h[1].as_int().unwrap(), h[2].clone());
            if order == p.dnext {
                p.dnext += 1;
                return Some(Some(m));
            }
            p.holding.push(Value::pair(Value::Int(order), m));
            p.holding.sort();
            Some(None)
        } else if kind == Value::sym("unord") {
            let (origin, local, m) = (h[1].as_int().unwrap(), h[2].as_int().unwrap(), h[3].clone());
            if self.buggy && dst == src && origin == dst as i64 {
                // BUG (deliberate): deliver our own cast at loopback,
                // before the sequencer has fixed its order.
                return Some(Some(m));
            }
            // Stash, or place directly if the announcement came early.
            let key = Value::pair(Value::Int(origin), Value::Int(local));
            if let Some(i) = p.early.iter().position(|e| {
                let ev = e.as_list().unwrap();
                Value::pair(ev[0].clone(), ev[1].clone()) == key
            }) {
                let order = p.early.remove(i).as_list().unwrap()[2].as_int().unwrap();
                if order == p.dnext {
                    // An early announcement cannot occur at the sequencer
                    // itself (it is the announcer), so no announcement is
                    // owed here.
                    p.dnext += 1;
                    return Some(Some(m));
                }
                p.holding.push(Value::pair(Value::Int(order), m));
                p.holding.sort();
            } else {
                p.unordered
                    .push(Value::list(vec![Value::Int(origin), Value::Int(local), m]));
                p.unordered.sort();
            }
            if dst == 0 {
                // The sequencer assigns the next order and announces it to
                // everyone (including itself, via the loopback queue).
                let order = *onext;
                *onext += 1;
                for q in 0..self.n() {
                    let qi = self.chan_idx(0, q);
                    chans[qi].push(wire_ann(origin, local, order));
                }
            }
            Some(None)
        } else {
            // Order announcement.
            let (origin, local, order) = (
                h[1].as_int().unwrap(),
                h[2].as_int().unwrap(),
                h[3].as_int().unwrap(),
            );
            let key = (origin, local);
            if let Some(i) = p.unordered.iter().position(|u| {
                let uv = u.as_list().unwrap();
                (uv[0].as_int().unwrap(), uv[1].as_int().unwrap()) == key
            }) {
                let m = p.unordered.remove(i).as_list().unwrap()[2].clone();
                if order == p.dnext {
                    p.dnext += 1;
                    return Some(Some(m));
                }
                p.holding.push(Value::pair(Value::Int(order), m));
                p.holding.sort();
            } else {
                p.early.push(Value::list(vec![
                    Value::Int(origin),
                    Value::Int(local),
                    Value::Int(order),
                ]));
                p.early.sort();
            }
            Some(None)
        }
    }
}

/// Per-process protocol state.
#[derive(Clone)]
struct ProcState {
    dnext: i64,
    lnext: i64,
    holding: Vec<Value>,
    unordered: Vec<Value>,
    early: Vec<Value>,
}

impl ProcState {
    fn initial() -> ProcState {
        ProcState {
            dnext: 0,
            lnext: 0,
            holding: Vec::new(),
            unordered: Vec::new(),
            early: Vec::new(),
        }
    }

    fn unpack(v: &Value) -> ProcState {
        let l = v.as_list().unwrap();
        ProcState {
            dnext: l[0].as_int().unwrap(),
            lnext: l[1].as_int().unwrap(),
            holding: l[2].as_list().unwrap().to_vec(),
            unordered: l[3].as_list().unwrap().to_vec(),
            early: l[4].as_list().unwrap().to_vec(),
        }
    }

    fn pack(self) -> Value {
        Value::list(vec![
            Value::Int(self.dnext),
            Value::Int(self.lnext),
            Value::list(self.holding),
            Value::list(self.unordered),
            Value::list(self.early),
        ])
    }

    /// The message deliverable from the holding buffer, if any.
    fn holding_ready(&self) -> Option<Value> {
        for h in &self.holding {
            let hv = h.as_list().unwrap();
            if hv[0].as_int() == Some(self.dnext) {
                return Some(hv[1].clone());
            }
        }
        None
    }

    fn take_holding_ready(&mut self) -> Option<Value> {
        for (i, h) in self.holding.iter().enumerate() {
            let hv = h.as_list().unwrap();
            if hv[0].as_int() == Some(self.dnext) {
                let m = hv[1].clone();
                self.holding.remove(i);
                self.dnext += 1;
                return Some(m);
            }
        }
        None
    }
}

impl Automaton for TotalProtocol {
    fn initial(&self) -> Vec<Value> {
        let chans = vec![Vec::new(); self.n() * self.n()];
        let procs = vec![ProcState::initial(); self.n()];
        vec![self.pack(chans, procs, 0, 0)]
    }

    fn enabled(&self, s: &Value) -> Vec<Action> {
        let (chans, procs, mut onext, casts) = self.parts(s);
        let mut out = Vec::new();
        if casts < self.max_casts {
            for p in 0..self.nprocs {
                for m in &self.msgs {
                    out.push(Action::new("Cast", vec![Value::Int(p), m.clone()]));
                }
            }
        }
        for src in 0..self.n() {
            for dst in 0..self.n() {
                if chans[self.chan_idx(src, dst)].is_empty() {
                    continue;
                }
                // Peek: does processing this head deliver?
                let mut c2 = chans.clone();
                let mut p2 = procs.clone();
                match self.process_head(&mut c2, &mut p2, &mut onext, src, dst) {
                    Some(Some(m)) => {
                        out.push(Action::new("Deliver", vec![Value::Int(dst as i64), m]))
                    }
                    Some(None) => out.push(Action::new(
                        "Proc",
                        vec![Value::Int(src as i64), Value::Int(dst as i64)],
                    )),
                    None => {}
                }
            }
        }
        // Holding-buffer releases are deliveries too.
        for (dst, p) in procs.iter().enumerate() {
            if let Some(m) = p.holding_ready() {
                out.push(Action::new("Deliver", vec![Value::Int(dst as i64), m]));
            }
        }
        out.sort();
        out.dedup();
        out
    }

    fn step(&self, s: &Value, a: &Action) -> Vec<Value> {
        let (mut chans, mut procs, mut onext, mut casts) = self.parts(s);
        if a.name == self.cast {
            if casts >= self.max_casts {
                return Vec::new();
            }
            let p = a.args[0].as_int().unwrap() as usize;
            let m = a.args[1].clone();
            let wire = if p == 0 {
                let o = onext;
                onext += 1;
                wire_ord(o, &m)
            } else {
                let l = procs[p].lnext;
                procs[p].lnext += 1;
                wire_unord(p as i64, l, &m)
            };
            for q in 0..self.n() {
                chans[self.chan_idx(p, q)].push(wire.clone());
            }
            casts += 1;
            return vec![self.pack(chans, procs, onext, casts)];
        }
        if a.name == self.proc_ {
            let src = a.args[0].as_int().unwrap() as usize;
            let dst = a.args[1].as_int().unwrap() as usize;
            return match self.process_head(&mut chans, &mut procs, &mut onext, src, dst) {
                Some(None) => vec![self.pack(chans, procs, onext, casts)],
                // A `Proc` that would deliver is not a `Proc` step.
                _ => Vec::new(),
            };
        }
        if a.name == self.deliver {
            let dst = a.args[0].as_int().unwrap() as usize;
            let want = &a.args[1];
            let mut results = Vec::new();
            // Option A: the holding buffer releases `want`.
            {
                let mut p2 = procs.clone();
                if let Some(m) = p2[dst].take_holding_ready() {
                    if &m == want {
                        results.push(self.pack(chans.clone(), p2, onext, casts));
                    }
                }
            }
            // Option B: processing some queue head delivers `want`.
            for src in 0..self.n() {
                let mut c2 = chans.clone();
                let mut p2 = procs.clone();
                let mut o2 = onext;
                if let Some(Some(m)) = self.process_head(&mut c2, &mut p2, &mut o2, src, dst) {
                    if &m == want {
                        results.push(self.pack(c2, p2, o2, casts));
                    }
                }
            }
            results.sort();
            results.dedup();
            return results;
        }
        Vec::new()
    }

    fn in_signature(&self, name: Intern) -> bool {
        self.sig.contains(&name)
    }

    fn is_external(&self, a: &Action) -> bool {
        a.name == self.cast || a.name == self.deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msgs() -> Vec<Value> {
        vec![Value::sym("a"), Value::sym("b")]
    }

    #[test]
    fn fifo_protocol_happy_path() {
        let p = FifoProtocol::new(msgs(), 2);
        let mut s = p.initial().remove(0);
        let send = Action::new("Send", vec![Value::Int(1), Value::sym("a")]);
        s = p.step(&s, &send).remove(0);
        s = p.step(&s, &Action::bare("Transmit")).remove(0);
        let deliver = Action::new("Deliver", vec![Value::Int(1), Value::sym("a")]);
        s = p.step(&s, &deliver).remove(0);
        // The ack flows back and the sender's window advances.
        s = p.step(&s, &Action::bare("RecvAck")).remove(0);
        let (pending, base, ..) = FifoProtocol::parts(&s);
        assert!(pending.is_empty());
        assert_eq!(base, 1);
    }

    #[test]
    fn fifo_protocol_duplicate_not_redelivered() {
        let p = FifoProtocol::new(msgs(), 1);
        let mut s = p.initial().remove(0);
        s = p
            .step(
                &s,
                &Action::new("Send", vec![Value::Int(1), Value::sym("a")]),
            )
            .remove(0);
        s = p.step(&s, &Action::bare("Transmit")).remove(0);
        let deliver = Action::new("Deliver", vec![Value::Int(1), Value::sym("a")]);
        s = p.step(&s, &deliver).remove(0);
        // The copy is still in the channel but expected has advanced.
        assert!(p.step(&s, &deliver).is_empty());
    }

    #[test]
    fn fifo_protocol_retransmits_after_drop() {
        let p = FifoProtocol::new(msgs(), 1);
        let mut s = p.initial().remove(0);
        s = p
            .step(
                &s,
                &Action::new("Send", vec![Value::Int(1), Value::sym("a")]),
            )
            .remove(0);
        s = p.step(&s, &Action::bare("Transmit")).remove(0);
        s = p
            .step(
                &s,
                &Action::new("DropData", vec![Value::Int(0), Value::sym("a")]),
            )
            .remove(0);
        // Transmit is enabled again (retransmission).
        assert!(p.enabled(&s).contains(&Action::bare("Transmit")));
    }

    #[test]
    fn total_protocol_sequencer_cast_delivers_everywhere_in_order() {
        let t = TotalProtocol::new(2, msgs(), 2);
        let mut s = t.initial().remove(0);
        s = t
            .step(
                &s,
                &Action::new("Cast", vec![Value::Int(0), Value::sym("a")]),
            )
            .remove(0);
        // Both processes can deliver "a" (order 0) from their queues.
        let d0 = Action::new("Deliver", vec![Value::Int(0), Value::sym("a")]);
        let d1 = Action::new("Deliver", vec![Value::Int(1), Value::sym("a")]);
        assert!(!t.step(&s, &d0).is_empty());
        s = t.step(&s, &d1).remove(0);
        assert!(!t.step(&s, &d0).is_empty());
    }

    #[test]
    fn total_protocol_member_cast_waits_for_announcement() {
        let t = TotalProtocol::new(2, msgs(), 2);
        let mut s = t.initial().remove(0);
        s = t
            .step(
                &s,
                &Action::new("Cast", vec![Value::Int(1), Value::sym("b")]),
            )
            .remove(0);
        // Process 1 cannot deliver its own cast yet: the loopback head is
        // unordered and the sequencer has not announced.
        let d1 = Action::new("Deliver", vec![Value::Int(1), Value::sym("b")]);
        assert!(t.step(&s, &d1).is_empty(), "no eager self-delivery");
        // Process 1 processes its loopback (stash), sequencer processes
        // the unordered cast (assigns order 0, announces).
        s = t
            .step(&s, &Action::new("Proc", vec![Value::Int(1), Value::Int(1)]))
            .remove(0);
        s = t
            .step(&s, &Action::new("Proc", vec![Value::Int(1), Value::Int(0)]))
            .remove(0);
        // The announcement reaches process 1: delivery unlocks.
        assert!(!t.step(&s, &d1).is_empty());
    }

    #[test]
    fn buggy_total_protocol_delivers_own_cast_eagerly() {
        let t = TotalProtocol::new_buggy(2, msgs(), 2);
        let mut s = t.initial().remove(0);
        s = t
            .step(
                &s,
                &Action::new("Cast", vec![Value::Int(1), Value::sym("b")]),
            )
            .remove(0);
        let d1 = Action::new("Deliver", vec![Value::Int(1), Value::sym("b")]);
        assert!(!t.step(&s, &d1).is_empty(), "the bug: eager delivery");
    }
}
