//! Trace properties.
//!
//! §3.1 distinguishes behaviour specifications from *properties* —
//! "logical predicates on the possible executions of the system". These
//! predicates are applied both to IOA traces and (by the integration
//! tests) to executions of the real protocol stacks.

use crate::value::{Action, Value};
use ensemble_util::Intern;
use std::collections::HashMap;

/// Whether `a` is a prefix of `b`.
pub fn is_prefix<T: PartialEq>(a: &[T], b: &[T]) -> bool {
    a.len() <= b.len() && a.iter().zip(b.iter()).all(|(x, y)| x == y)
}

/// FIFO delivery: per destination, the delivered sequence is a prefix of
/// the sent sequence (no loss *reordering*, no duplication, no creation;
/// trailing sends may still be in flight).
///
/// Expects `Send(dst, msg)` / `Deliver(dst, msg)` actions; others are
/// ignored.
pub fn fifo_ok(trace: &[Action]) -> bool {
    let send = Intern::from("Send");
    let deliver = Intern::from("Deliver");
    let mut sent: HashMap<Value, Vec<Value>> = HashMap::new();
    let mut delivered: HashMap<Value, Vec<Value>> = HashMap::new();
    for a in trace {
        if a.name == send {
            sent.entry(a.args[0].clone())
                .or_default()
                .push(a.args[1].clone());
        } else if a.name == deliver {
            delivered
                .entry(a.args[0].clone())
                .or_default()
                .push(a.args[1].clone());
        }
    }
    delivered.iter().all(|(dst, del)| {
        let snt = sent.get(dst).map(Vec::as_slice).unwrap_or(&[]);
        is_prefix(del, snt)
    })
}

/// No creation: everything delivered was previously sent/cast (counts
/// respected — a message may be delivered at most as many times per
/// destination as it was sent).
pub fn no_creation(trace: &[Action], send_name: &str, deliver_name: &str) -> bool {
    let send = Intern::from(send_name);
    let deliver = Intern::from(deliver_name);
    let mut balance: HashMap<Value, i64> = HashMap::new();
    let mut sent_total: HashMap<Value, i64> = HashMap::new();
    for a in trace {
        if a.name == send {
            *sent_total.entry(a.args[1].clone()).or_default() += 1;
        } else if a.name == deliver {
            let e = balance.entry(a.args[1].clone()).or_default();
            *e += 1;
        }
    }
    // Per destination we cannot tell which copy is which, so the check is
    // per message value: deliveries to any single destination must not
    // exceed the number of times the value was sent.
    let dests: Vec<Value> = trace
        .iter()
        .filter(|a| a.name == deliver)
        .map(|a| a.args[0].clone())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    if dests.is_empty() {
        return true;
    }
    let mut per_dest: HashMap<(Value, Value), i64> = HashMap::new();
    for a in trace {
        if a.name == deliver {
            *per_dest
                .entry((a.args[0].clone(), a.args[1].clone()))
                .or_default() += 1;
        }
    }
    per_dest
        .iter()
        .all(|((_, m), &n)| n <= sent_total.get(m).copied().unwrap_or(0))
}

/// Total-order agreement: for every pair of processes, one delivery
/// sequence is a prefix of the other.
///
/// `deliveries[p]` is the ordered list of items delivered at process `p`.
pub fn total_order_agreement<T: PartialEq>(deliveries: &[Vec<T>]) -> bool {
    for i in 0..deliveries.len() {
        for j in (i + 1)..deliveries.len() {
            let (a, b) = (&deliveries[i], &deliveries[j]);
            if !(is_prefix(a, b) || is_prefix(b, a)) {
                return false;
            }
        }
    }
    true
}

/// Extracts per-process delivery sequences from a trace of
/// `Deliver(p, m)` actions.
pub fn deliveries_by_process(trace: &[Action], nprocs: usize) -> Vec<Vec<Value>> {
    let deliver = Intern::from("Deliver");
    let mut out = vec![Vec::new(); nprocs];
    for a in trace {
        if a.name == deliver {
            let p = a.args[0].as_int().unwrap_or(0) as usize;
            if p < nprocs {
                out[p].push(a.args[1].clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(dst: i64, m: &str) -> Action {
        Action::new("Send", vec![Value::Int(dst), Value::sym(m)])
    }
    fn deliver(dst: i64, m: &str) -> Action {
        Action::new("Deliver", vec![Value::Int(dst), Value::sym(m)])
    }

    #[test]
    fn prefix_relation() {
        assert!(is_prefix(&[1, 2], &[1, 2, 3]));
        assert!(is_prefix::<i32>(&[], &[1]));
        assert!(!is_prefix(&[2], &[1, 2]));
        assert!(!is_prefix(&[1, 2, 3], &[1, 2]));
    }

    #[test]
    fn fifo_accepts_in_order() {
        let t = vec![send(1, "a"), send(1, "b"), deliver(1, "a"), deliver(1, "b")];
        assert!(fifo_ok(&t));
        // Trailing in-flight messages are fine.
        let t = vec![send(1, "a"), send(1, "b"), deliver(1, "a")];
        assert!(fifo_ok(&t));
    }

    #[test]
    fn fifo_rejects_reorder_dup_and_creation() {
        assert!(!fifo_ok(&[send(1, "a"), send(1, "b"), deliver(1, "b")]));
        assert!(!fifo_ok(&[send(1, "a"), deliver(1, "a"), deliver(1, "a")]));
        assert!(!fifo_ok(&[deliver(1, "ghost")]));
    }

    #[test]
    fn fifo_is_per_destination() {
        let t = vec![send(1, "a"), send(2, "x"), deliver(2, "x"), deliver(1, "a")];
        assert!(fifo_ok(&t));
    }

    #[test]
    fn creation_check() {
        let t = vec![send(1, "a"), deliver(1, "a")];
        assert!(no_creation(&t, "Send", "Deliver"));
        let t = vec![deliver(1, "a")];
        assert!(!no_creation(&t, "Send", "Deliver"));
        // Duplicate delivery beyond the sent count is creation.
        let t = vec![send(1, "a"), deliver(1, "a"), deliver(1, "a")];
        assert!(!no_creation(&t, "Send", "Deliver"));
    }

    #[test]
    fn agreement_check() {
        assert!(total_order_agreement(&[vec![1, 2, 3], vec![1, 2]]));
        assert!(total_order_agreement(&[vec![], vec![1]]));
        assert!(!total_order_agreement(&[vec![1, 2], vec![2, 1]]));
    }

    #[test]
    fn extraction() {
        let t = vec![deliver(0, "a"), deliver(1, "b"), deliver(0, "c")];
        let per = deliveries_by_process(&t, 2);
        assert_eq!(per[0], vec![Value::sym("a"), Value::sym("c")]);
        assert_eq!(per[1], vec![Value::sym("b")]);
    }
}
