//! The automaton trait, parallel composition, and hiding.

use crate::value::{Action, Value};
use ensemble_util::Intern;

/// A (possibly nondeterministic) I/O automaton.
///
/// States and action arguments are [`Value`]s so that generic exploration
/// and refinement checking can hash and compare them. `enabled` must
/// return a *finite* set of enabled action instances in the given state;
/// parameterized actions are therefore enumerated over the (finite)
/// alphabets the automaton was constructed with.
pub trait Automaton {
    /// The automaton's initial states.
    fn initial(&self) -> Vec<Value>;

    /// The action instances enabled in `s`.
    fn enabled(&self, s: &Value) -> Vec<Action>;

    /// The successor states of taking `a` in `s` (empty if disabled).
    fn step(&self, s: &Value, a: &Action) -> Vec<Value>;

    /// Whether actions named `name` belong to this automaton's signature.
    fn in_signature(&self, name: Intern) -> bool;

    /// Whether `a` is externally visible (appears in traces).
    fn is_external(&self, a: &Action) -> bool;
}

/// Parallel composition of two automata, synchronizing on every action
/// whose name is in both signatures (the paper's "two events can be tied
/// together by combining the conditions and actions of those events").
pub struct Compose<A, B> {
    /// The left component.
    pub left: A,
    /// The right component.
    pub right: B,
}

impl<A: Automaton, B: Automaton> Compose<A, B> {
    /// Composes two automata.
    pub fn new(left: A, right: B) -> Self {
        Compose { left, right }
    }

    fn split(s: &Value) -> (&Value, &Value) {
        match s {
            Value::List(v) if v.len() == 2 => (&v[0], &v[1]),
            other => panic!("composed state must be a pair, got {other:?}"),
        }
    }
}

impl<A: Automaton, B: Automaton> Automaton for Compose<A, B> {
    fn initial(&self) -> Vec<Value> {
        let mut out = Vec::new();
        for l in self.left.initial() {
            for r in self.right.initial() {
                out.push(Value::pair(l.clone(), r.clone()));
            }
        }
        out
    }

    fn enabled(&self, s: &Value) -> Vec<Action> {
        let (ls, rs) = Self::split(s);
        let mut out = Vec::new();
        for a in self.left.enabled(ls) {
            if self.right.in_signature(a.name) {
                // Synchronized: the right side must also enable it.
                if !self.right.step(rs, &a).is_empty() {
                    out.push(a);
                }
            } else {
                out.push(a);
            }
        }
        for a in self.right.enabled(rs) {
            if self.left.in_signature(a.name) {
                // Already considered from the left side (synchronized), or
                // disabled there.
                continue;
            }
            out.push(a);
        }
        out.sort();
        out.dedup();
        out
    }

    fn step(&self, s: &Value, a: &Action) -> Vec<Value> {
        let (ls, rs) = Self::split(s);
        let lhas = self.left.in_signature(a.name);
        let rhas = self.right.in_signature(a.name);
        let lsucc: Vec<Value> = if lhas {
            self.left.step(ls, a)
        } else {
            vec![ls.clone()]
        };
        let rsucc: Vec<Value> = if rhas {
            self.right.step(rs, a)
        } else {
            vec![rs.clone()]
        };
        if (lhas && lsucc.is_empty()) || (rhas && rsucc.is_empty()) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for l in &lsucc {
            for r in &rsucc {
                out.push(Value::pair(l.clone(), r.clone()));
            }
        }
        out
    }

    fn in_signature(&self, name: Intern) -> bool {
        self.left.in_signature(name) || self.right.in_signature(name)
    }

    fn is_external(&self, a: &Action) -> bool {
        (self.left.in_signature(a.name) && self.left.is_external(a))
            || (self.right.in_signature(a.name) && self.right.is_external(a))
    }
}

/// Internalizes (hides) the named actions of an automaton.
pub struct Hide<A> {
    inner: A,
    hidden: Vec<Intern>,
}

impl<A: Automaton> Hide<A> {
    /// Hides `names` in `inner`.
    pub fn new(inner: A, names: &[&str]) -> Self {
        Hide {
            inner,
            hidden: names.iter().map(|n| Intern::from(n)).collect(),
        }
    }
}

impl<A: Automaton> Automaton for Hide<A> {
    fn initial(&self) -> Vec<Value> {
        self.inner.initial()
    }

    fn enabled(&self, s: &Value) -> Vec<Action> {
        self.inner.enabled(s)
    }

    fn step(&self, s: &Value, a: &Action) -> Vec<Value> {
        self.inner.step(s, a)
    }

    fn in_signature(&self, name: Intern) -> bool {
        self.inner.in_signature(name)
    }

    fn is_external(&self, a: &Action) -> bool {
        if self.hidden.contains(&a.name) {
            return false;
        }
        self.inner.is_external(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy automaton: counts `tick`s up to `max`, emitting `tock` after
    /// each.
    struct Clock {
        max: i64,
        tick: Intern,
        tock: Intern,
    }

    impl Clock {
        fn new(max: i64) -> Self {
            Clock {
                max,
                tick: Intern::from("tick"),
                tock: Intern::from("tock"),
            }
        }
    }

    impl Automaton for Clock {
        fn initial(&self) -> Vec<Value> {
            vec![Value::pair(Value::Int(0), Value::Bool(false))]
        }
        fn enabled(&self, s: &Value) -> Vec<Action> {
            let v = s.as_list().unwrap();
            let (n, pending) = (v[0].as_int().unwrap(), v[1] == Value::Bool(true));
            if pending {
                vec![Action::bare("tock")]
            } else if n < self.max {
                vec![Action::bare("tick")]
            } else {
                vec![]
            }
        }
        fn step(&self, s: &Value, a: &Action) -> Vec<Value> {
            let v = s.as_list().unwrap();
            let (n, pending) = (v[0].as_int().unwrap(), v[1] == Value::Bool(true));
            if a.name == self.tick && !pending && n < self.max {
                vec![Value::pair(Value::Int(n + 1), Value::Bool(true))]
            } else if a.name == self.tock && pending {
                vec![Value::pair(Value::Int(n), Value::Bool(false))]
            } else {
                vec![]
            }
        }
        fn in_signature(&self, name: Intern) -> bool {
            name == self.tick || name == self.tock
        }
        fn is_external(&self, _a: &Action) -> bool {
            true
        }
    }

    #[test]
    fn clock_alternates() {
        let c = Clock::new(2);
        let s0 = c.initial().remove(0);
        let en = c.enabled(&s0);
        assert_eq!(en, vec![Action::bare("tick")]);
        let s1 = c.step(&s0, &en[0]).remove(0);
        assert_eq!(c.enabled(&s1), vec![Action::bare("tock")]);
    }

    #[test]
    fn composition_synchronizes_shared_actions() {
        // Two clocks in lockstep: both have tick/tock in signature.
        let c = Compose::new(Clock::new(1), Clock::new(2));
        let s0 = c.initial().remove(0);
        let en = c.enabled(&s0);
        assert_eq!(en, vec![Action::bare("tick")]);
        let s1 = c.step(&s0, &en[0]).remove(0);
        let s2 = c.step(&s1, &Action::bare("tock")).remove(0);
        // Left clock exhausted at 1: the pair can no longer tick.
        assert!(c.enabled(&s2).is_empty());
    }

    #[test]
    fn hide_makes_actions_internal() {
        let h = Hide::new(Clock::new(1), &["tock"]);
        assert!(h.is_external(&Action::bare("tick")));
        assert!(!h.is_external(&Action::bare("tock")));
        // Behaviour is otherwise unchanged.
        let s0 = h.initial().remove(0);
        assert_eq!(h.enabled(&s0).len(), 1);
    }

    #[test]
    fn disabled_sync_action_blocks_composition() {
        let c = Compose::new(Clock::new(0), Clock::new(5));
        let s0 = c.initial().remove(0);
        // Left clock can never tick, so neither can the composition.
        assert!(c.enabled(&s0).is_empty());
        assert!(c.step(&s0, &Action::bare("tick")).is_empty());
    }
}
