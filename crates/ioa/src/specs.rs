//! Abstract behavioural specifications (Figure 2 of the paper, plus a
//! total-order network).
//!
//! These are the `p.Above` automata against which protocol implementations
//! are checked. They are nondeterministic and use global state — exactly
//! the "abstract" style of §3.1: simple, not executable as protocols, but
//! ideal as refinement targets.

use crate::automaton::Automaton;
use crate::value::{Action, Value};
use ensemble_util::Intern;

fn names(ss: &[&str]) -> Vec<Intern> {
    ss.iter().map(|s| Intern::from(s)).collect()
}

/// Figure 2(a): a network delivering messages in FIFO order.
///
/// State: `[sent_count, queue of (dst, msg)]`. `Send(dst, msg)` appends;
/// `Deliver(dst, msg)` is enabled only for the head pair.
pub struct FifoNetwork {
    /// Destination ids.
    pub dsts: Vec<i64>,
    /// The message alphabet.
    pub msgs: Vec<Value>,
    /// Bound on total sends (keeps the state space finite).
    pub max_sends: i64,
    sig: Vec<Intern>,
    send: Intern,
    deliver: Intern,
}

impl FifoNetwork {
    /// Builds the specification.
    pub fn new(dsts: Vec<i64>, msgs: Vec<Value>, max_sends: i64) -> Self {
        FifoNetwork {
            dsts,
            msgs,
            max_sends,
            sig: names(&["Send", "Deliver"]),
            send: Intern::from("Send"),
            deliver: Intern::from("Deliver"),
        }
    }
}

impl Automaton for FifoNetwork {
    fn initial(&self) -> Vec<Value> {
        vec![Value::pair(Value::Int(0), Value::list(vec![]))]
    }

    fn enabled(&self, s: &Value) -> Vec<Action> {
        let v = s.as_list().unwrap();
        let sent = v[0].as_int().unwrap();
        let queue = v[1].as_list().unwrap();
        let mut out = Vec::new();
        if sent < self.max_sends {
            for &d in &self.dsts {
                for m in &self.msgs {
                    out.push(Action::new("Send", vec![Value::Int(d), m.clone()]));
                }
            }
        }
        if let Some(head) = queue.first() {
            let h = head.as_list().unwrap();
            out.push(Action::new("Deliver", vec![h[0].clone(), h[1].clone()]));
        }
        out
    }

    fn step(&self, s: &Value, a: &Action) -> Vec<Value> {
        let v = s.as_list().unwrap();
        let sent = v[0].as_int().unwrap();
        let mut queue = v[1].as_list().unwrap().to_vec();
        if a.name == self.send && sent < self.max_sends {
            queue.push(Value::pair(a.args[0].clone(), a.args[1].clone()));
            return vec![Value::pair(Value::Int(sent + 1), Value::list(queue))];
        }
        if a.name == self.deliver {
            let want = Value::pair(a.args[0].clone(), a.args[1].clone());
            if queue.first() == Some(&want) {
                queue.remove(0);
                return vec![Value::pair(Value::Int(sent), Value::list(queue))];
            }
        }
        Vec::new()
    }

    fn in_signature(&self, name: Intern) -> bool {
        self.sig.contains(&name)
    }

    fn is_external(&self, _a: &Action) -> bool {
        true
    }
}

/// Figure 2(b): a network that loses, duplicates, and reorders.
///
/// State: `[sent_count, set of (dst, msg)]`. `Deliver` does not remove
/// (duplication); the internal `Drop` removes (loss); set membership
/// ignores order (reordering).
pub struct LossyNetwork {
    /// Destination ids.
    pub dsts: Vec<i64>,
    /// The message alphabet.
    pub msgs: Vec<Value>,
    /// Bound on total sends.
    pub max_sends: i64,
    sig: Vec<Intern>,
    send: Intern,
    deliver: Intern,
    drop: Intern,
}

impl LossyNetwork {
    /// Builds the specification.
    pub fn new(dsts: Vec<i64>, msgs: Vec<Value>, max_sends: i64) -> Self {
        LossyNetwork {
            dsts,
            msgs,
            max_sends,
            sig: names(&["Send", "Deliver", "Drop"]),
            send: Intern::from("Send"),
            deliver: Intern::from("Deliver"),
            drop: Intern::from("Drop"),
        }
    }
}

impl Automaton for LossyNetwork {
    fn initial(&self) -> Vec<Value> {
        vec![Value::pair(Value::Int(0), Value::list(vec![]))]
    }

    fn enabled(&self, s: &Value) -> Vec<Action> {
        let v = s.as_list().unwrap();
        let sent = v[0].as_int().unwrap();
        let bag = v[1].as_list().unwrap();
        let mut out = Vec::new();
        if sent < self.max_sends {
            for &d in &self.dsts {
                for m in &self.msgs {
                    out.push(Action::new("Send", vec![Value::Int(d), m.clone()]));
                }
            }
        }
        for p in bag {
            let h = p.as_list().unwrap();
            out.push(Action::new("Deliver", vec![h[0].clone(), h[1].clone()]));
            out.push(Action::new("Drop", vec![h[0].clone(), h[1].clone()]));
        }
        out
    }

    fn step(&self, s: &Value, a: &Action) -> Vec<Value> {
        let v = s.as_list().unwrap();
        let sent = v[0].as_int().unwrap();
        let mut bag = v[1].as_list().unwrap().to_vec();
        let pair = || Value::pair(a.args[0].clone(), a.args[1].clone());
        if a.name == self.send && sent < self.max_sends {
            let p = pair();
            if !bag.contains(&p) {
                bag.push(p);
                bag.sort();
            }
            return vec![Value::pair(Value::Int(sent + 1), Value::list(bag))];
        }
        if a.name == self.deliver && bag.contains(&pair()) {
            return vec![s.clone()];
        }
        if a.name == self.drop {
            if let Some(i) = bag.iter().position(|x| *x == pair()) {
                bag.remove(i);
                return vec![Value::pair(Value::Int(sent), Value::list(bag))];
            }
        }
        Vec::new()
    }

    fn in_signature(&self, name: Intern) -> bool {
        self.sig.contains(&name)
    }

    fn is_external(&self, a: &Action) -> bool {
        a.name != self.drop
    }
}

/// A totally ordered multicast network.
///
/// State: `[pending multiset, order list, per-process delivery index]`.
/// `Cast(p, m)` adds `m` to the pending pool; the internal `Order(m)`
/// nondeterministically appends a pending message to the agreed order;
/// `Deliver(p, m)` forces every process to follow the order list. Any
/// global order is permitted — what is specified is *agreement*.
pub struct TotalOrderSpec {
    /// Number of processes.
    pub nprocs: i64,
    /// The message alphabet.
    pub msgs: Vec<Value>,
    /// Bound on total casts.
    pub max_casts: i64,
    sig: Vec<Intern>,
    cast: Intern,
    order: Intern,
    deliver: Intern,
}

impl TotalOrderSpec {
    /// Builds the specification.
    pub fn new(nprocs: i64, msgs: Vec<Value>, max_casts: i64) -> Self {
        TotalOrderSpec {
            nprocs,
            msgs,
            max_casts,
            sig: names(&["Cast", "Order", "Deliver"]),
            cast: Intern::from("Cast"),
            order: Intern::from("Order"),
            deliver: Intern::from("Deliver"),
        }
    }

    fn parts(s: &Value) -> (Vec<Value>, Vec<Value>, Vec<Value>) {
        let v = s.as_list().unwrap();
        (
            v[0].as_list().unwrap().to_vec(),
            v[1].as_list().unwrap().to_vec(),
            v[2].as_list().unwrap().to_vec(),
        )
    }
}

impl Automaton for TotalOrderSpec {
    fn initial(&self) -> Vec<Value> {
        let ptrs = vec![Value::Int(0); self.nprocs as usize];
        vec![Value::list(vec![
            Value::list(vec![]),
            Value::list(vec![]),
            Value::list(ptrs),
        ])]
    }

    fn enabled(&self, s: &Value) -> Vec<Action> {
        let (pending, order, ptrs) = Self::parts(s);
        let mut out = Vec::new();
        let casts_so_far = (pending.len() + order.len()) as i64;
        if casts_so_far < self.max_casts {
            for p in 0..self.nprocs {
                for m in &self.msgs {
                    out.push(Action::new("Cast", vec![Value::Int(p), m.clone()]));
                }
            }
        }
        for m in &pending {
            out.push(Action::new("Order", vec![m.clone()]));
        }
        for (p, ptr) in ptrs.iter().enumerate() {
            let i = ptr.as_int().unwrap() as usize;
            if let Some(m) = order.get(i) {
                out.push(Action::new(
                    "Deliver",
                    vec![Value::Int(p as i64), m.clone()],
                ));
            }
        }
        out
    }

    fn step(&self, s: &Value, a: &Action) -> Vec<Value> {
        let (mut pending, mut order, mut ptrs) = Self::parts(s);
        if a.name == self.cast {
            if (pending.len() + order.len()) as i64 >= self.max_casts {
                return Vec::new();
            }
            pending.push(a.args[1].clone());
            pending.sort();
        } else if a.name == self.order {
            match pending.iter().position(|m| *m == a.args[0]) {
                Some(i) => {
                    pending.remove(i);
                    order.push(a.args[0].clone());
                }
                None => return Vec::new(),
            }
        } else if a.name == self.deliver {
            let p = a.args[0].as_int().unwrap() as usize;
            let i = ptrs[p].as_int().unwrap() as usize;
            if order.get(i) != Some(&a.args[1]) {
                return Vec::new();
            }
            ptrs[p] = Value::Int(i as i64 + 1);
        } else {
            return Vec::new();
        }
        vec![Value::list(vec![
            Value::list(pending),
            Value::list(order),
            Value::list(ptrs),
        ])]
    }

    fn in_signature(&self, name: Intern) -> bool {
        self.sig.contains(&name)
    }

    fn is_external(&self, a: &Action) -> bool {
        a.name != self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msgs() -> Vec<Value> {
        vec![Value::sym("a"), Value::sym("b")]
    }

    #[test]
    fn fifo_network_delivers_in_order() {
        let net = FifoNetwork::new(vec![1], msgs(), 2);
        let s0 = net.initial().remove(0);
        let send_a = Action::new("Send", vec![Value::Int(1), Value::sym("a")]);
        let send_b = Action::new("Send", vec![Value::Int(1), Value::sym("b")]);
        let s1 = net.step(&s0, &send_a).remove(0);
        let s2 = net.step(&s1, &send_b).remove(0);
        // Only "a" (the head) can be delivered.
        let deliver_b = Action::new("Deliver", vec![Value::Int(1), Value::sym("b")]);
        assert!(net.step(&s2, &deliver_b).is_empty());
        let deliver_a = Action::new("Deliver", vec![Value::Int(1), Value::sym("a")]);
        let s3 = net.step(&s2, &deliver_a).remove(0);
        assert!(!net.step(&s3, &deliver_b).is_empty());
    }

    #[test]
    fn fifo_network_bounds_sends() {
        let net = FifoNetwork::new(vec![1], msgs(), 1);
        let s0 = net.initial().remove(0);
        let send = Action::new("Send", vec![Value::Int(1), Value::sym("a")]);
        let s1 = net.step(&s0, &send).remove(0);
        assert!(net.step(&s1, &send).is_empty());
        assert!(net
            .enabled(&s1)
            .iter()
            .all(|a| a.name != Intern::from("Send")));
    }

    #[test]
    fn lossy_network_duplicates_and_drops() {
        let net = LossyNetwork::new(vec![1], msgs(), 2);
        let s0 = net.initial().remove(0);
        let send = Action::new("Send", vec![Value::Int(1), Value::sym("a")]);
        let s1 = net.step(&s0, &send).remove(0);
        let deliver = Action::new("Deliver", vec![Value::Int(1), Value::sym("a")]);
        // Deliver twice: duplication.
        let s2 = net.step(&s1, &deliver).remove(0);
        assert!(!net.step(&s2, &deliver).is_empty());
        // Drop removes it.
        let drop = Action::new("Drop", vec![Value::Int(1), Value::sym("a")]);
        let s3 = net.step(&s2, &drop).remove(0);
        assert!(net.step(&s3, &deliver).is_empty());
        assert!(!net.is_external(&drop));
        assert!(net.is_external(&deliver));
    }

    #[test]
    fn total_order_spec_enforces_agreement() {
        let spec = TotalOrderSpec::new(2, msgs(), 2);
        let s0 = spec.initial().remove(0);
        let cast_a = Action::new("Cast", vec![Value::Int(0), Value::sym("a")]);
        let cast_b = Action::new("Cast", vec![Value::Int(1), Value::sym("b")]);
        let s = spec.step(&s0, &cast_a).remove(0);
        let s = spec.step(&s, &cast_b).remove(0);
        // No delivery before ordering.
        let d0a = Action::new("Deliver", vec![Value::Int(0), Value::sym("a")]);
        assert!(spec.step(&s, &d0a).is_empty());
        // Order b first: both processes must deliver b before a.
        let s = spec
            .step(&s, &Action::new("Order", vec![Value::sym("b")]))
            .remove(0);
        assert!(spec.step(&s, &d0a).is_empty());
        let d0b = Action::new("Deliver", vec![Value::Int(0), Value::sym("b")]);
        let s = spec.step(&s, &d0b).remove(0);
        // Now a can be ordered and delivered after.
        let s = spec
            .step(&s, &Action::new("Order", vec![Value::sym("a")]))
            .remove(0);
        assert!(!spec.step(&s, &d0a).is_empty());
        // Process 1 must still deliver b first.
        let d1a = Action::new("Deliver", vec![Value::Int(1), Value::sym("a")]);
        assert!(spec.step(&s, &d1a).is_empty());
    }

    #[test]
    fn total_order_spec_order_is_internal() {
        let spec = TotalOrderSpec::new(2, msgs(), 2);
        assert!(!spec.is_external(&Action::new("Order", vec![Value::sym("a")])));
        assert!(spec.is_external(&Action::new("Cast", vec![Value::Int(0), Value::sym("a")])));
    }
}
