//! State-space exploration and random execution.

use crate::automaton::Automaton;
use crate::value::{Action, Value};
use ensemble_util::DetRng;
use std::collections::HashSet;

/// Enumerates all states reachable within `max_states` (BFS).
///
/// Returns `None` if the bound was exceeded.
pub fn reachable_states<A: Automaton>(a: &A, max_states: usize) -> Option<Vec<Value>> {
    let mut seen: HashSet<Value> = HashSet::new();
    let mut queue: Vec<Value> = Vec::new();
    for s in a.initial() {
        if seen.insert(s.clone()) {
            queue.push(s);
        }
    }
    let mut i = 0;
    while i < queue.len() {
        if queue.len() > max_states {
            return None;
        }
        let s = queue[i].clone();
        i += 1;
        for act in a.enabled(&s) {
            for t in a.step(&s, &act) {
                if seen.insert(t.clone()) {
                    queue.push(t);
                }
            }
        }
    }
    Some(queue)
}

/// One random execution: uniformly picks enabled actions for `steps`
/// steps (or until quiescence) and returns the *external* trace.
pub fn random_trace<A: Automaton>(a: &A, rng: &mut DetRng, steps: usize) -> Vec<Action> {
    let mut inits = a.initial();
    if inits.is_empty() {
        return Vec::new();
    }
    let mut state = inits.remove(rng.index(inits.len()));
    let mut trace = Vec::new();
    for _ in 0..steps {
        let enabled = a.enabled(&state);
        if enabled.is_empty() {
            break;
        }
        let act = enabled[rng.index(enabled.len())].clone();
        let mut succs = a.step(&state, &act);
        if succs.is_empty() {
            // `enabled` promised this action; treat as quiescence rather
            // than panicking so exploration remains usable on imperfect
            // models.
            break;
        }
        state = succs.remove(rng.index(succs.len()));
        if a.is_external(&act) {
            trace.push(act);
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::FifoNetwork;

    #[test]
    fn reachable_counts_fifo() {
        let net = FifoNetwork::new(vec![1], vec![Value::sym("a")], 2);
        let states = reachable_states(&net, 1000).unwrap();
        // Sends ∈ {0,1,2}, queue length ≤ sends: 1 + 2 + 3 = 6 states.
        assert_eq!(states.len(), 6);
    }

    #[test]
    fn bound_returns_none() {
        let net = FifoNetwork::new(vec![1, 2], vec![Value::sym("a"), Value::sym("b")], 4);
        assert!(reachable_states(&net, 3).is_none());
    }

    #[test]
    fn random_traces_are_deterministic_per_seed() {
        let net = FifoNetwork::new(vec![1], vec![Value::sym("a"), Value::sym("b")], 3);
        let t1 = random_trace(&net, &mut DetRng::new(9), 50);
        let t2 = random_trace(&net, &mut DetRng::new(9), 50);
        assert_eq!(t1, t2);
        assert!(!t1.is_empty());
    }
}
