//! Criterion bench for Figure 6: 10-layer stack latency across message
//! sizes (4, 24, 100, 1024 bytes) for MACH / IMP / FUNC.
//!
//! Only the whole-path cost per configuration is benched here (the
//! printable per-segment series is `cargo run --bin fig6`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ensemble_bench::*;
use ensemble_event::{DnEvent, Msg};
use ensemble_ir::models::Case;
use ensemble_transport::marshal;
use ensemble_util::Time;
use std::hint::black_box;

const SIZES: [usize; 4] = [4, 24, 100, 1024];

fn bench_down_by_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_down");
    for size in SIZES {
        let body = payload(size);
        let mut m = mach(STACK_10, 0);
        g.bench_with_input(BenchmarkId::new("MACH", size), &size, |b, &s| {
            b.iter(|| black_box(m.bench_dn_stack(Case::DnCast, 1, s as i64).unwrap()))
        });
        for (name, kind) in [("IMP", Kind::Imp), ("FUNC", Kind::Func)] {
            let mut e = engine(STACK_10, kind, 0);
            g.bench_with_input(BenchmarkId::new(name, size), &size, |b, _| {
                b.iter(|| {
                    // Stack + transport: the send-side critical path.
                    let out =
                        e.inject_dn(Time::ZERO, DnEvent::Cast(Msg::data(body.clone())));
                    let bytes = out.wire.first().and_then(|w| w.msg()).map(marshal);
                    black_box(bytes)
                })
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = fig6;
    config = Criterion::default().sample_size(25);
    targets = bench_down_by_size
}
criterion_main!(fig6);
