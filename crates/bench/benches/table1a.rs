//! Criterion bench for Table 1(a): 10-layer stack code latency per
//! segment for the MACH / IMP / FUNC configurations (4-byte casts).
//!
//! The printable paper-style report is `cargo run --bin table1`; this
//! bench provides statistically grounded per-segment numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use ensemble_bench::*;
use ensemble_event::{DnEvent, Msg};
use ensemble_ir::models::Case;
use ensemble_transport::{marshal, unmarshal, CompressedHdr};
use ensemble_util::Time;
use std::hint::black_box;

const PAYLOAD: usize = 4;

fn bench_down_stack(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1a_down_stack");
    let body = payload(PAYLOAD);

    let mut m = mach(STACK_10, 0);
    g.bench_function("MACH", |b| {
        b.iter(|| black_box(m.bench_dn_stack(Case::DnCast, 1, PAYLOAD as i64).unwrap()))
    });
    for (name, kind) in [("IMP", Kind::Imp), ("FUNC", Kind::Func)] {
        let mut e = engine(STACK_10, kind, 0);
        let mut n = 0u32;
        g.bench_function(name, |b| {
            b.iter(|| {
                n += 1;
                if n.is_multiple_of(8192) {
                    // Stability pruning keeps the retransmission store
                    // bounded across Criterion's long runs (in production
                    // `collect` does this continuously).
                    e.inject_dn(
                        Time::ZERO,
                        DnEvent::Stable(vec![ensemble_util::Seqno(u64::MAX / 2); 2]),
                    );
                }
                black_box(e.inject_dn(Time::ZERO, DnEvent::Cast(Msg::data(body.clone()))))
            })
        });
    }
    g.finish();
}

fn bench_transport(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1a_transport");
    let wire = gen_wire_msgs(STACK_10, 1, PAYLOAD, false).remove(0);
    let bytes = marshal(&wire);
    g.bench_function("IMP_FUNC_marshal", |b| b.iter(|| black_box(marshal(&wire))));
    g.bench_function("IMP_FUNC_unmarshal", |b| {
        b.iter(|| black_box(unmarshal(&bytes).unwrap()))
    });
    let pkt = gen_mach_packets(STACK_10, 1, PAYLOAD, false).remove(0);
    let (hdr, body) = CompressedHdr::decode(&pkt).unwrap();
    let body = body.to_vec();
    g.bench_function("MACH_encode", |b| b.iter(|| black_box(hdr.encode(&body))));
    g.bench_function("MACH_decode", |b| {
        b.iter(|| black_box(CompressedHdr::decode(&pkt).unwrap()))
    });
    g.finish();
}

fn bench_up_stack(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1a_up_stack");
    // Criterion runs an unknown number of iterations; give the receivers
    // long in-sequence feeds and wrap around with fresh receivers.
    const FEED: usize = 200_000;
    let msgs = gen_wire_msgs(STACK_10, FEED, PAYLOAD, false);
    for (name, kind) in [("IMP", Kind::Imp), ("FUNC", Kind::Func)] {
        let mut e = engine(STACK_10, kind, 1);
        let mut i = 0usize;
        g.bench_function(name, |b| {
            b.iter(|| {
                if i == FEED {
                    e = engine(STACK_10, kind, 1);
                    i = 0;
                }
                let out = e.inject_up(Time::ZERO, up_cast_of(msgs[i].clone()));
                i += 1;
                black_box(out)
            })
        });
    }
    let pkts = gen_mach_packets(STACK_10, FEED, PAYLOAD, false);
    let fields: Vec<Vec<u64>> = pkts
        .iter()
        .map(|p| CompressedHdr::decode(p).unwrap().0.fields)
        .collect();
    let mut m = mach(STACK_10, 1);
    let mut i = 0usize;
    g.bench_function("MACH", |b| {
        b.iter(|| {
            if i == FEED {
                m = mach(STACK_10, 1);
                i = 0;
            }
            let out = m.bench_up_stack(Case::UpCast, 0, PAYLOAD as i64, &fields[i]);
            i += 1;
            black_box(out.unwrap())
        })
    });
    g.finish();
}

criterion_group! {
    name = table1a;
    config = Criterion::default().sample_size(30);
    targets = bench_down_stack, bench_transport, bench_up_stack
}
criterion_main!(table1a);
