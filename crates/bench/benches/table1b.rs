//! Criterion bench for Table 1(b): 4-layer stack code latency for the
//! HAND / MACH / IMP / FUNC configurations (4-byte sends).

use criterion::{criterion_group, criterion_main, Criterion};
use ensemble_bench::*;
use ensemble_event::{DnEvent, Msg};
use ensemble_ir::models::Case;
use ensemble_transport::CompressedHdr;
use ensemble_util::{Rank, Time};
use std::hint::black_box;

const PAYLOAD: usize = 4;

fn bench_down(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1b_down_stack");
    let body = payload(PAYLOAD);

    let mut h = hand(0);
    g.bench_function("HAND", |b| b.iter(|| black_box(h.bench_send_state(1))));
    let mut m = mach(STACK_4, 0);
    g.bench_function("MACH", |b| {
        b.iter(|| black_box(m.bench_dn_stack(Case::DnSend, 1, PAYLOAD as i64).unwrap()))
    });
    for (name, kind) in [("IMP", Kind::Imp), ("FUNC", Kind::Func)] {
        let mut e = engine(STACK_4, kind, 0);
        let mut n = 0u32;
        g.bench_function(name, |b| {
            b.iter(|| {
                n += 1;
                if n.is_multiple_of(8192) {
                    // Bound pt2pt's unacked buffer across long runs the
                    // way the peer's cumulative acks would.
                    let mut ack = Msg::control();
                    ack.push_frame(ensemble_event::Frame::Pt2Pt(
                        ensemble_event::Pt2PtHdr::Ack {
                            ack: ensemble_util::Seqno(u64::MAX / 2),
                        },
                    ));
                    e.inject_up(
                        Time::ZERO,
                        ensemble_event::UpEvent::Send {
                            origin: Rank(1),
                            msg: {
                                let mut m = ack;
                                m.push_frame(ensemble_event::Frame::NoHdr);
                                m.push_frame(ensemble_event::Frame::Bottom { view_ltime: 0 });
                                m
                            },
                        },
                    );
                }
                black_box(e.inject_dn(
                    Time::ZERO,
                    DnEvent::Send {
                        dst: Rank(1),
                        msg: Msg::data(body.clone()),
                    },
                ))
            })
        });
    }
    g.finish();
}

fn bench_up(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1b_up_stack");
    const FEED: usize = 200_000;

    let mut h = hand(1);
    let mut i = 0u64;
    g.bench_function("HAND", |b| {
        b.iter(|| {
            let ok = h.bench_send_deliver(0, i, 0);
            i += 1;
            if !ok {
                h = hand(1);
                i = 1;
                assert!(h.bench_send_deliver(0, 0, 0));
            }
            black_box(ok)
        })
    });

    let pkts = gen_mach_packets(STACK_4, FEED, PAYLOAD, true);
    let fields: Vec<Vec<u64>> = pkts
        .iter()
        .map(|p| CompressedHdr::decode(p).unwrap().0.fields)
        .collect();
    let mut m = mach(STACK_4, 1);
    let mut k = 0usize;
    g.bench_function("MACH", |b| {
        b.iter(|| {
            if k == FEED {
                m = mach(STACK_4, 1);
                k = 0;
            }
            let out = m.bench_up_stack(Case::UpSend, 0, PAYLOAD as i64, &fields[k]);
            k += 1;
            black_box(out.unwrap())
        })
    });

    let msgs = gen_wire_msgs(STACK_4, FEED, PAYLOAD, true);
    for (name, kind) in [("IMP", Kind::Imp), ("FUNC", Kind::Func)] {
        let mut e = engine(STACK_4, kind, 1);
        let mut i = 0usize;
        g.bench_function(name, |b| {
            b.iter(|| {
                if i == FEED {
                    e = engine(STACK_4, kind, 1);
                    i = 0;
                }
                let out = e.inject_up(Time::ZERO, up_send_of(msgs[i].clone()));
                i += 1;
                black_box(out)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = table1b;
    config = Criterion::default().sample_size(30);
    targets = bench_down, bench_up
}
criterion_main!(table1b);
