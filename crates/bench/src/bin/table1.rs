//! Regenerates Table 1 of the paper:
//!
//! * (a) 10-layer stack code latency (Down Stack / Down Transport /
//!   Up Transport / Up Stack) for MACH, IMP, FUNC — 4-byte messages;
//! * (b) 4-layer stack code latency for HAND, MACH, IMP, FUNC.
//!
//! Absolute numbers come from this machine (the paper used 300 MHz
//! UltraSparcs); the comparison of interest is the *shape*: MACH beats
//! IMP beats FUNC, HAND edges out MACH, and the transport savings come
//! from header compression.

use ensemble_bench::*;
use ensemble_event::Msg;
use ensemble_ir::models::Case;
use ensemble_transport::{marshal, unmarshal, CompressedHdr};
use ensemble_util::Time;

const PAYLOAD: usize = 4;

/// Measures the four segments for one native engine kind.
fn native_segments(stack: &[&'static str], kind: Kind, send_not_cast: bool) -> [f64; 4] {
    // Down Stack.
    let mut sender = engine(stack, kind, 0);
    let body = payload(PAYLOAD);
    let dn_stack = time_per_op(ROUNDS, |_| {
        let ev = if send_not_cast {
            ensemble_event::DnEvent::Send {
                dst: ensemble_util::Rank(1),
                msg: Msg::data(body.clone()),
            }
        } else {
            ensemble_event::DnEvent::Cast(Msg::data(body.clone()))
        };
        let b = sender.inject_dn(Time::ZERO, ev);
        std::hint::black_box(&b);
    });

    // Down Transport: generic marshaling of a representative wire message.
    let wire = gen_wire_msgs(stack, 1, PAYLOAD, send_not_cast).remove(0);
    let dn_tx = time_per_op(ROUNDS, |_| {
        std::hint::black_box(marshal(std::hint::black_box(&wire)));
    });

    // Up Transport: unmarshaling.
    let bytes = marshal(&wire);
    let up_tx = time_per_op(ROUNDS, |_| {
        std::hint::black_box(unmarshal(std::hint::black_box(&bytes)).unwrap());
    });

    // Up Stack: deliver pre-generated in-sequence messages.
    let msgs = gen_wire_msgs(stack, ROUNDS, PAYLOAD, send_not_cast);
    let mut receiver = engine(stack, kind, 1);
    let up_stack = time_per_op(ROUNDS, |i| {
        let ev = if send_not_cast {
            up_send_of(msgs[i].clone())
        } else {
            up_cast_of(msgs[i].clone())
        };
        let b = receiver.inject_up(Time::ZERO, ev);
        std::hint::black_box(&b);
    });
    [dn_stack, dn_tx, up_tx, up_stack]
}

/// Measures the four segments for the synthesized bypass.
fn mach_segments(stack: &[&'static str], send_not_cast: bool) -> [f64; 4] {
    let (dn_case, up_case) = if send_not_cast {
        (Case::DnSend, Case::UpSend)
    } else {
        (Case::DnCast, Case::UpCast)
    };
    let mut sender = mach(stack, 0);
    let dn_stack = time_per_op(ROUNDS, |_| {
        std::hint::black_box(sender.bench_dn_stack(dn_case, 1, PAYLOAD as i64).unwrap());
    });

    // Down Transport: compressed-header encode (header compression is
    // what shrinks this segment, §4.2).
    let pkts = gen_mach_packets(stack, ROUNDS, PAYLOAD, send_not_cast);
    let (hdr, body) = CompressedHdr::decode(&pkts[0]).unwrap();
    let body = body.to_vec();
    let dn_tx = time_per_op(ROUNDS, |_| {
        std::hint::black_box(hdr.encode(std::hint::black_box(&body)));
    });

    // Up Transport: compressed decode.
    let up_tx = time_per_op(ROUNDS, |_| {
        std::hint::black_box(CompressedHdr::decode(std::hint::black_box(&pkts[0])).unwrap());
    });

    // Up Stack: CCP + state update over the real per-packet fields
    // (pre-decoded outside the timed loop).
    let mut receiver = mach(stack, 1);
    let fields: Vec<Vec<u64>> = pkts
        .iter()
        .map(|p| CompressedHdr::decode(p).unwrap().0.fields)
        .collect();
    let up_stack = time_per_op(ROUNDS, |i| {
        std::hint::black_box(
            receiver
                .bench_up_stack(up_case, 0, PAYLOAD as i64, &fields[i])
                .unwrap(),
        );
    });
    [dn_stack, dn_tx, up_tx, up_stack]
}

/// Measures the four segments for the hand-optimized 4-layer bypass.
fn hand_segments(send_not_cast: bool) -> [f64; 4] {
    let mut sender = hand(0);
    let dn_stack = time_per_op(ROUNDS, |_| {
        if send_not_cast {
            std::hint::black_box(sender.bench_send_state(1));
        } else {
            std::hint::black_box(sender.bench_cast_state());
        }
    });

    let body = payload(PAYLOAD);
    let hdr = CompressedHdr::new(sender.stack_id(), 0, vec![0, 0]);
    let gathered = body.gather();
    let dn_tx = time_per_op(ROUNDS, |_| {
        std::hint::black_box(hdr.encode(std::hint::black_box(&gathered)));
    });

    let bytes = hdr.encode(&gathered);
    let up_tx = time_per_op(ROUNDS, |_| {
        std::hint::black_box(CompressedHdr::decode(std::hint::black_box(&bytes)).unwrap());
    });

    let mut receiver = hand(1);
    let up_stack = time_per_op(ROUNDS, |i| {
        let ok = if send_not_cast {
            receiver.bench_send_deliver(0, i as u64, 0)
        } else {
            receiver.bench_cast_deliver(0, i as u64, 0)
        };
        std::hint::black_box(ok);
    });
    [dn_stack, dn_tx, up_tx, up_stack]
}

fn rows(measured: Vec<[f64; 4]>, paper: [Vec<f64>; 4]) -> Vec<SegmentRow> {
    let names = ["Down Stack", "Down Transport", "Up Transport", "Up Stack"];
    names
        .iter()
        .enumerate()
        .map(|(si, name)| SegmentRow {
            name,
            ns: measured.iter().map(|m| m[si]).collect(),
            paper_us: paper[si].clone(),
        })
        .collect()
}

fn main() {
    // Table 1(a): 10-layer stack, MACH / IMP / FUNC.
    let m = mach_segments(STACK_10, false);
    let i = native_segments(STACK_10, Kind::Imp, false);
    let f = native_segments(STACK_10, Kind::Func, false);
    print_table(
        "Table 1(a): 10-layer stack code latency (4-byte casts)",
        &["MACH", "IMP", "FUNC"],
        &rows(
            vec![m, i, f],
            [
                vec![9.0, 20.0, 42.0],
                vec![8.0, 27.0, 30.0],
                vec![7.0, 20.0, 22.0],
                vec![8.0, 14.0, 38.0],
            ],
        ),
    );

    // Table 1(b): 4-layer stack, HAND / MACH / IMP / FUNC.
    let h4 = hand_segments(true);
    let m4 = mach_segments(STACK_4, true);
    let i4 = native_segments(STACK_4, Kind::Imp, true);
    let f4 = native_segments(STACK_4, Kind::Func, true);
    print_table(
        "Table 1(b): 4-layer stack code latency (4-byte sends)",
        &["HAND", "MACH", "IMP", "FUNC"],
        &rows(
            vec![h4, m4, i4, f4],
            [
                vec![2.0, 2.0, 13.0, 14.0],
                vec![4.0, 6.0, 4.0, 6.0],
                vec![6.0, 7.0, 8.0, 9.0],
                vec![2.0, 4.0, 10.0, 13.0],
            ],
        ),
    );

    // The CCP check cost (§4.2 reports ≈ 3 µs on their hardware).
    let mut b = mach(STACK_10, 0);
    let ccp = time_per_op(ROUNDS, |_| {
        std::hint::black_box(b.bench_ccp(Case::DnCast, 1, PAYLOAD as i64));
    });
    println!("\nCCP check alone: {} (paper: ~3 us)", fmt_ns(ccp));
}
