//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. **Per-layer overhead** — the paper: "a highly optimized layering
//!    system like Ensemble adds about 1 to 2 µs per layer to the latency
//!    of pure layering overhead". Measured by growing a send stack with
//!    transparent layers and fitting the slope.
//! 2. **Header compression** — the same bypass output marshaled with the
//!    compressed format vs. the generic marshaler: wire bytes and time
//!    (§4 optimization 5).
//! 3. **Deferred non-critical processing** — `dn_cast` with buffering
//!    deferred vs. drained inline every message (§4 optimization 3).
//! 4. **CCP guarding** — bypass with the CCP evaluated per message vs.
//!    the unguarded residual (what the guard itself costs).

use ensemble_bench::*;
use ensemble_event::{DnEvent, Msg};
use ensemble_ir::models::Case;
use ensemble_transport::marshal;
use ensemble_util::{Rank, Time};

fn per_layer_overhead() {
    println!("1) per-layer overhead (transparent layers added to a 4-layer send stack)");
    // `elect` is a pure pass-through for sends.
    let mk_stack = |extra: usize| -> Vec<&'static str> {
        let mut v = vec!["top"];
        v.extend(std::iter::repeat_n("elect", extra));
        v.extend(["pt2pt", "mnak", "bottom"]);
        v
    };
    for kind in [Kind::Imp, Kind::Func] {
        let mut points = Vec::new();
        for extra in [0usize, 2, 4, 6, 8] {
            let stack = mk_stack(extra);
            let stack: Vec<&'static str> = stack;
            let mut e = engine(&stack, kind, 0);
            let body = payload(4);
            let ns = time_per_op(ROUNDS, |_| {
                let b = e.inject_dn(
                    Time::ZERO,
                    DnEvent::Send {
                        dst: Rank(1),
                        msg: Msg::data(body.clone()),
                    },
                );
                std::hint::black_box(&b);
            });
            points.push((extra as f64, ns));
        }
        // Least-squares slope: ns per added layer.
        let n = points.len() as f64;
        let sx: f64 = points.iter().map(|(x, _)| x).sum();
        let sy: f64 = points.iter().map(|(_, y)| y).sum();
        let sxy: f64 = points.iter().map(|(x, y)| x * y).sum();
        let sxx: f64 = points.iter().map(|(x, _)| x * x).sum();
        let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        println!(
            "   {:?}: {} per transparent layer (paper: 1-2us per layer in OCaml)",
            kind,
            fmt_ns(slope)
        );
    }
}

fn header_compression() {
    println!("\n2) header compression (4-byte cast, 10-layer stack)");
    let wire = gen_wire_msgs(STACK_10, 1, 4, false).remove(0);
    let generic_bytes = marshal(&wire);
    let t_generic = time_per_op(ROUNDS, |_| {
        std::hint::black_box(marshal(std::hint::black_box(&wire)));
    });
    let pkt = gen_mach_packets(STACK_10, 1, 4, false).remove(0);
    let (hdr, body) = ensemble_transport::CompressedHdr::decode(&pkt).unwrap();
    let body = body.to_vec();
    let t_comp = time_per_op(ROUNDS, |_| {
        std::hint::black_box(hdr.encode(std::hint::black_box(&body)));
    });
    println!(
        "   generic marshaler: {} bytes on wire, {} per encode",
        generic_bytes.len(),
        fmt_ns(t_generic)
    );
    println!(
        "   compressed header: {} bytes on wire, {} per encode  \
         ({:.1}x smaller, {:.1}x faster)",
        pkt.len(),
        fmt_ns(t_comp),
        generic_bytes.len() as f64 / pkt.len() as f64,
        t_generic / t_comp
    );
}

fn deferred_processing() {
    println!("\n3) deferred non-critical processing (MACH dn_cast)");
    // Deferral replaces the retransmission-store insertion the native
    // stack performs inline (an ordered-map insert holding the payload)
    // with a cheap queued record processed off the critical path.
    let body = payload(4);
    let mut a = mach(STACK_10, 0);
    let mut i = 0u64;
    let deferred = time_per_op(ROUNDS, |_| {
        std::hint::black_box(a.bench_dn_stack(ensemble_ir::models::Case::DnCast, 1, 4));
        i += 1;
        if i.is_multiple_of(4096) {
            a.drain_deferred(); // Off the measured path in spirit; ~0 here.
        }
    });
    let mut b = mach(STACK_10, 0);
    let mut store: std::collections::BTreeMap<u64, ensemble_event::Payload> =
        std::collections::BTreeMap::new();
    let mut j = 0u64;
    let inline = time_per_op(ROUNDS, |_| {
        std::hint::black_box(b.bench_dn_stack(ensemble_ir::models::Case::DnCast, 1, 4));
        // The ablation: buffer inline, as the unoptimized stack does.
        store.insert(j, body.clone());
        j += 1;
        if j.is_multiple_of(4096) {
            store = store.split_off(&j); // Stability pruning, as in mnak.
        }
    });
    println!("   buffering deferred: {} per cast", fmt_ns(deferred));
    println!(
        "   buffering inline:   {} per cast  (deferral saves {:.0}% of the fast path)",
        fmt_ns(inline),
        100.0 * (inline - deferred) / inline
    );
}

fn ccp_guard() {
    println!("\n4) the CCP guard itself (10-layer dn_cast)");
    let mut a = mach(STACK_10, 0);
    let guarded = time_per_op(ROUNDS, |_| {
        std::hint::black_box(a.bench_dn_stack(Case::DnCast, 1, 4).unwrap());
    });
    let mut b = mach(STACK_10, 0);
    let ccp_only = time_per_op(ROUNDS, |_| {
        std::hint::black_box(b.bench_ccp(Case::DnCast, 1, 4));
    });
    println!(
        "   full fast path {} of which CCP {} ({:.0}%; paper: ~3us of a 32us path)",
        fmt_ns(guarded),
        fmt_ns(ccp_only),
        100.0 * ccp_only / guarded
    );
}

fn main() {
    println!("ablations over the design choices (see DESIGN.md)\n");
    per_layer_overhead();
    header_compression();
    deferred_processing();
    ccp_guard();
}
