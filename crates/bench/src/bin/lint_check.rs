//! Offline validator for `LINT_stacks.json` and `DF_defer.json`.
//!
//! CI runs `stack_lint --json --all-registered --out LINT_stacks.json
//! --df-out DF_defer.json` and then this binary: it re-reads the
//! documents with the dependency-free parser from `ensemble-obs` and
//! checks the contract the pipeline relies on — zero deny-level
//! findings, every registered stack analyzed with disjoint headers
//! (HS), all four engines verified on every synthesizable stack (CC),
//! and a Defer-commutativity license with nonzero sites on each (DF).
//! With `--df PATH` it additionally validates the `DF_defer.json`
//! certificate report: `all_licensed` must hold, every registered stack
//! must carry a licensed certificate with at least one defer site, and
//! the issue list must be empty. Exits nonzero (with a message) on any
//! violation.
//!
//! ```text
//! cargo run -p ensemble-bench --bin lint_check \
//!     [path/to/LINT_stacks.json] [--df path/to/DF_defer.json]
//! ```

use ensemble_obs::Json;

const ENGINES: [&str; 4] = ["IMP", "FUNC", "HAND", "MACH"];
/// Every stack the registry ships; all four synthesize.
const STACKS: [&str; 4] = ["stack4", "stack10", "vsync", "kv-service"];

fn fail(msg: &str) -> ! {
    eprintln!("lint_check: {msg}");
    std::process::exit(1);
}

fn bool_field(obj: &Json, key: &str, ctx: &str) -> bool {
    match obj.get(key) {
        Some(Json::Bool(b)) => *b,
        _ => fail(&format!("{ctx}: missing boolean field {key:?}")),
    }
}

fn load(path: &str) -> Json {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => fail(&format!("cannot read {path}: {e}")),
    };
    match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => fail(&format!("{path} is not valid JSON: {e:?}")),
    }
}

/// Checks the `DF_defer.json` Defer-commutativity report: the roll-up
/// license, per-stack certificates, and the absence of DF issues.
fn check_df(path: &str) {
    let doc = load(path);
    if doc.get("report").and_then(Json::as_str) != Some("DF_defer") {
        fail(&format!("{path}: field \"report\" must be \"DF_defer\""));
    }
    if doc.get("version").and_then(Json::as_int) != Some(1) {
        fail(&format!("{path}: unsupported document version"));
    }
    if !bool_field(&doc, "all_licensed", path) {
        fail(&format!("{path}: all_licensed is false"));
    }
    let Some(stacks) = doc.get("stacks").and_then(Json::as_arr) else {
        fail(&format!("{path}: missing \"stacks\" array"));
    };
    for name in STACKS {
        let s = stacks
            .iter()
            .find(|s| s.get("stack").and_then(Json::as_str) == Some(name))
            .unwrap_or_else(|| fail(&format!("{path}: no certificate for {name:?}")));
        if !bool_field(s, "licensed", name) {
            fail(&format!("{name}: Defer-commutativity license revoked"));
        }
        let sites = s.get("sites").and_then(Json::as_arr);
        if sites.is_none_or(|a| a.is_empty()) {
            fail(&format!("{name}: certificate carries no defer sites"));
        }
        if let Some(issues) = s.get("issues").and_then(Json::as_arr) {
            if !issues.is_empty() {
                fail(&format!("{name}: {} DF issue(s) recorded", issues.len()));
            }
        }
    }
    println!(
        "lint_check: {path} ok ({} certificates, all licensed)",
        STACKS.len()
    );
}

fn main() {
    let mut path = "LINT_stacks.json".to_string();
    let mut df_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--df" => match args.next() {
                Some(p) => df_path = Some(p),
                None => fail("--df requires a path"),
            },
            p => path = p.to_string(),
        }
    }
    let doc = load(&path);

    if doc.get("tool").and_then(Json::as_str) != Some("stack_lint") {
        fail("field \"tool\" must be \"stack_lint\"");
    }
    if doc.get("version").and_then(Json::as_int) != Some(1) {
        fail("unsupported document version");
    }

    let Some(summary) = doc.get("summary") else {
        fail("missing \"summary\" object");
    };
    match summary.get("deny").and_then(Json::as_int) {
        Some(0) => {}
        Some(n) => fail(&format!("{n} deny-level finding(s) in shipped stacks")),
        None => fail("summary missing integer \"deny\""),
    }

    let Some(stacks) = doc.get("stacks").and_then(Json::as_arr) else {
        fail("missing \"stacks\" array");
    };
    if stacks.len() != STACKS.len() {
        fail(&format!(
            "registry drift: {} stacks analyzed, {} registered",
            stacks.len(),
            STACKS.len()
        ));
    }
    for name in STACKS {
        let s = stacks
            .iter()
            .find(|s| s.get("name").and_then(Json::as_str) == Some(name))
            .unwrap_or_else(|| fail(&format!("stack {name:?} not analyzed")));
        if !bool_field(s, "header_disjoint", name) {
            fail(&format!("{name}: header constructors are not disjoint"));
        }
        if !bool_field(s, "synthesizable", name) {
            fail(&format!("{name}: no longer synthesizes"));
        }
        if !bool_field(s, "defer_licensed", name) {
            fail(&format!("{name}: defer batching is not licensed"));
        }
        if s.get("defer_sites").and_then(Json::as_int).unwrap_or(0) == 0 {
            fail(&format!("{name}: no defer sites in certificate"));
        }
    }

    let Some(engines) = doc.get("engines").and_then(Json::as_arr) else {
        fail("missing \"engines\" array");
    };
    for engine in ENGINES {
        for stack in STACKS {
            let v = engines
                .iter()
                .find(|v| {
                    v.get("engine").and_then(Json::as_str) == Some(engine)
                        && v.get("stack").and_then(Json::as_str) == Some(stack)
                })
                .unwrap_or_else(|| fail(&format!("no verdict for {engine}/{stack}")));
            let ctx = format!("{engine}/{stack}");
            for flag in [
                "header_disjoint",
                "ccp_from_compressed_header",
                "residual_slow_free",
                "wire_layout_stack_ordered",
                "verified",
            ] {
                if !bool_field(v, flag, &ctx) {
                    fail(&format!("{ctx}: {flag} is false"));
                }
            }
        }
    }

    println!(
        "lint_check: {path} ok ({} stacks, {} engines verified, 0 deny, all defer-licensed)",
        STACKS.len(),
        ENGINES.len()
    );

    if let Some(df) = df_path {
        check_df(&df);
    }
}
