//! Offline validator for `LINT_stacks.json`.
//!
//! CI runs `stack_lint --json --out LINT_stacks.json` and then this
//! binary: it re-reads the document with the dependency-free parser from
//! `ensemble-obs` and checks the contract the pipeline relies on — zero
//! deny-level findings, every registered stack analyzed with disjoint
//! headers, and all four engines verified on both synthesizable stacks.
//! Exits nonzero (with a message) on any violation.
//!
//! ```text
//! cargo run -p ensemble-bench --bin lint_check [path/to/LINT_stacks.json]
//! ```

use ensemble_obs::Json;

const ENGINES: [&str; 4] = ["IMP", "FUNC", "HAND", "MACH"];
const STACKS: [&str; 4] = ["stack4", "stack10", "vsync", "kv-service"];
const SYNTHESIZED: [&str; 2] = ["stack4", "stack10"];

fn fail(msg: &str) -> ! {
    eprintln!("lint_check: {msg}");
    std::process::exit(1);
}

fn bool_field(obj: &Json, key: &str, ctx: &str) -> bool {
    match obj.get(key) {
        Some(Json::Bool(b)) => *b,
        _ => fail(&format!("{ctx}: missing boolean field {key:?}")),
    }
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "LINT_stacks.json".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => fail(&format!("cannot read {path}: {e}")),
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => fail(&format!("{path} is not valid JSON: {e:?}")),
    };

    if doc.get("tool").and_then(Json::as_str) != Some("stack_lint") {
        fail("field \"tool\" must be \"stack_lint\"");
    }
    if doc.get("version").and_then(Json::as_int) != Some(1) {
        fail("unsupported document version");
    }

    let Some(summary) = doc.get("summary") else {
        fail("missing \"summary\" object");
    };
    match summary.get("deny").and_then(Json::as_int) {
        Some(0) => {}
        Some(n) => fail(&format!("{n} deny-level finding(s) in shipped stacks")),
        None => fail("summary missing integer \"deny\""),
    }

    let Some(stacks) = doc.get("stacks").and_then(Json::as_arr) else {
        fail("missing \"stacks\" array");
    };
    for name in STACKS {
        let s = stacks
            .iter()
            .find(|s| s.get("name").and_then(Json::as_str) == Some(name))
            .unwrap_or_else(|| fail(&format!("stack {name:?} not analyzed")));
        if !bool_field(s, "header_disjoint", name) {
            fail(&format!("{name}: header constructors are not disjoint"));
        }
    }

    let Some(engines) = doc.get("engines").and_then(Json::as_arr) else {
        fail("missing \"engines\" array");
    };
    for engine in ENGINES {
        for stack in SYNTHESIZED {
            let v = engines
                .iter()
                .find(|v| {
                    v.get("engine").and_then(Json::as_str) == Some(engine)
                        && v.get("stack").and_then(Json::as_str) == Some(stack)
                })
                .unwrap_or_else(|| fail(&format!("no verdict for {engine}/{stack}")));
            let ctx = format!("{engine}/{stack}");
            for flag in [
                "header_disjoint",
                "ccp_from_compressed_header",
                "residual_slow_free",
                "wire_layout_stack_ordered",
                "verified",
            ] {
                if !bool_field(v, flag, &ctx) {
                    fail(&format!("{ctx}: {flag} is false"));
                }
            }
        }
    }

    println!(
        "lint_check: {path} ok ({} stacks, {} engines verified, 0 deny)",
        STACKS.len(),
        ENGINES.len()
    );
}
