//! Regenerates the §4.2 end-to-end analysis:
//!
//! * protocol processing as a share of one-way end-to-end latency,
//!   before and after optimization (paper, 10-layer on Ethernet:
//!   50 % → 29 %; 4-layer: 30 % → 19 %);
//! * the end-to-end improvement from the optimization on Ethernet
//!   (80 µs link) vs VIA (10 µs link) — faster links profit more
//!   (paper: 10-layer 30 % vs 54 %; 4-layer 14 % vs 36 %);
//! * HAND vs MACH (paper: ≈ 25 % faster, attributed to the integrated
//!   transport);
//! * the §1 headline: 4-layer send overhead 13 → 2 µs, delivery
//!   10 → 4 µs.
//!
//! The code latencies are measured on this machine; the link latencies
//! are the paper's models.

use ensemble_bench::*;
use ensemble_event::{DnEvent, Msg};
use ensemble_transport::{marshal, unmarshal};
use ensemble_util::Time;

const PAYLOAD: usize = 4;

/// (send-side code, receive-side code) in ns for a native configuration.
fn native(stack: &[&'static str], kind: Kind, send_not_cast: bool) -> (f64, f64) {
    let mut sender = engine(stack, kind, 0);
    let body = payload(PAYLOAD);
    let dn = time_per_op(ROUNDS, |_| {
        let ev = if send_not_cast {
            DnEvent::Send {
                dst: ensemble_util::Rank(1),
                msg: Msg::data(body.clone()),
            }
        } else {
            DnEvent::Cast(Msg::data(body.clone()))
        };
        let b = sender.inject_dn(Time::ZERO, ev);
        let bytes = b.wire.first().and_then(|w| w.msg()).map(marshal);
        std::hint::black_box(bytes);
    });
    let msgs = gen_wire_msgs(stack, ROUNDS, PAYLOAD, send_not_cast);
    let wire_bytes: Vec<Vec<u8>> = msgs.iter().map(marshal).collect();
    let mut receiver = engine(stack, kind, 1);
    let up = time_per_op(ROUNDS, |i| {
        let m = unmarshal(&wire_bytes[i]).unwrap();
        let ev = if send_not_cast {
            up_send_of(m)
        } else {
            up_cast_of(m)
        };
        std::hint::black_box(receiver.inject_up(Time::ZERO, ev));
    });
    (dn, up)
}

/// (send-side, receive-side) in ns for the synthesized bypass, transport
/// included (whole critical path, CCP checks included).
fn mach_path(stack: &[&'static str], send_not_cast: bool) -> (f64, f64) {
    let mut sender = mach(stack, 0);
    let body = payload(PAYLOAD);
    let dn = time_per_op(ROUNDS, |_| {
        let out = if send_not_cast {
            sender.dn_send(1, &body)
        } else {
            sender.dn_cast(&body)
        };
        std::hint::black_box(out);
    });
    sender.drain_deferred();
    let pkts = gen_mach_packets(stack, ROUNDS, PAYLOAD, send_not_cast);
    let mut receiver = mach(stack, 1);
    let up = time_per_op(ROUNDS, |i| {
        let out = if send_not_cast {
            receiver.up_send(0, &pkts[i])
        } else {
            receiver.up_cast(0, &pkts[i])
        };
        std::hint::black_box(out);
    });
    receiver.drain_deferred();
    (dn, up)
}

/// (send, receive) for the hand-optimized path, transport included.
fn hand_path() -> (f64, f64) {
    let mut sender = hand(0);
    let body = payload(PAYLOAD);
    let dn = time_per_op(ROUNDS, |_| {
        std::hint::black_box(sender.dn_send(1, &body));
    });
    sender.drain_deferred();
    let mut gen = hand(0);
    let pkts: Vec<Vec<u8>> = (0..ROUNDS)
        .map(|_| match gen.dn_send(1, &body) {
            ensemble_hand::HandOutput::Wire { bytes, .. } => bytes,
            other => panic!("{other:?}"),
        })
        .collect();
    let mut receiver = hand(1);
    let up = time_per_op(ROUNDS, |i| {
        std::hint::black_box(receiver.up_send(0, &pkts[i]));
    });
    (dn, up)
}

fn report(label: &str, code_ns: f64, link_us: f64) -> f64 {
    let e2e = code_ns / 1000.0 + link_us;
    println!(
        "  {label:<22} code {:>8.2}us + link {link_us:>4.0}us = {e2e:>8.2}us  \
         (protocol share {:4.1}%)",
        code_ns / 1000.0,
        100.0 * (code_ns / 1000.0) / e2e
    );
    e2e
}

fn main() {
    println!("end-to-end analysis (one-way: sender code + link + receiver code)\n");

    // --- 10-layer stack (casts) ---
    let (imp_dn, imp_up) = native(STACK_10, Kind::Imp, false);
    let (mach_dn, mach_up) = mach_path(STACK_10, false);
    let imp10 = imp_dn + imp_up;
    let mach10 = mach_dn + mach_up;
    println!("10-layer stack (IMP -> MACH):");
    for (net, link) in [("Ethernet", 80.0), ("VIA", 10.0)] {
        let before = report(&format!("{net} original"), imp10, link);
        let after = report(&format!("{net} optimized"), mach10, link);
        println!(
            "  {net}: end-to-end improvement {:.0}% (paper: {}%)\n",
            100.0 * (before - after) / before,
            if net == "Ethernet" { 30 } else { 54 }
        );
    }
    println!(
        "  paper's protocol share on Ethernet: 50% -> 29%; the share shape\n\
         depends on absolute code latency, which is far lower in Rust on\n\
         modern hardware — the *improvement direction* is what carries.\n"
    );

    // --- 4-layer stack (sends) ---
    let (i4dn, i4up) = native(STACK_4, Kind::Imp, true);
    let (m4dn, m4up) = mach_path(STACK_4, true);
    let (h4dn, h4up) = hand_path();
    println!("4-layer stack (IMP -> MACH, HAND):");
    println!(
        "  send overhead   IMP {:>8.2}us -> MACH {:>8.2}us (paper: 13 -> 2us)",
        i4dn / 1000.0,
        m4dn / 1000.0
    );
    println!(
        "  deliver overhead IMP {:>8.2}us -> MACH {:>8.2}us (paper: 10 -> 4us)",
        i4up / 1000.0,
        m4up / 1000.0
    );
    for (net, link) in [("Ethernet", 80.0), ("VIA", 10.0)] {
        let before = report(&format!("{net} original"), i4dn + i4up, link);
        let after = report(&format!("{net} optimized"), m4dn + m4up, link);
        println!(
            "  {net}: end-to-end improvement {:.0}% (paper: {}%)\n",
            100.0 * (before - after) / before,
            if net == "Ethernet" { 14 } else { 36 }
        );
    }
    let hand4 = h4dn + h4up;
    let mach4 = m4dn + m4up;
    println!(
        "HAND vs MACH (4-layer totals): {:.2}us vs {:.2}us — HAND {:.0}% faster\n\
         (paper: ~25%, attributed to the transport being integrated into the\n\
         hand-written path)",
        hand4 / 1000.0,
        mach4 / 1000.0,
        100.0 * (mach4 - hand4) / mach4
    );
}
