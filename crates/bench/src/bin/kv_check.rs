//! Offline validator for `BENCH_kv_e2e.json`.
//!
//! CI runs `kv_load --chaos --out BENCH_kv_e2e.json` and then this
//! binary: it re-reads the document with the dependency-free parser
//! from `ensemble-obs` and checks the contract the pipeline relies on —
//! the run identifies itself as the `kv_e2e` bench, actually measured
//! something (nonzero ops/sec and latency percentiles), ran the chaos
//! schedule it was asked for, and found zero linearizability
//! violations. Exits nonzero (with a message) on any breach.
//!
//! A document produced by `kv_load --crash` (`crash_cycles > 0`) is
//! validated as a durability gate instead: at least 8 crash/restart
//! cycles each recovered from the WAL (`recoveries >= crash_cycles`),
//! the fault plan actually bit (nonzero torn-tail records and absorbed
//! storage errors), checkpoints ran, and the recovery invariants held
//! (zero violations covers "no acked write lost" and "recovered commit
//! index monotonic" — the checker folds them into the same count).
//!
//! ```text
//! cargo run -p ensemble-bench --bin kv_check [path/to/BENCH_kv_e2e.json]
//! ```

use ensemble_obs::Json;

fn fail(msg: &str) -> ! {
    eprintln!("kv_check: {msg}");
    std::process::exit(1);
}

fn int_field(doc: &Json, key: &str) -> i64 {
    match doc.get(key).and_then(Json::as_int) {
        Some(v) => v,
        None => fail(&format!("missing integer field {key:?}")),
    }
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_kv_e2e.json".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => fail(&format!("cannot read {path}: {e}")),
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => fail(&format!("{path} is not valid JSON: {e:?}")),
    };

    if doc.get("bench").and_then(Json::as_str) != Some("kv_e2e") {
        fail("field \"bench\" must be \"kv_e2e\"");
    }

    let replicas = int_field(&doc, "replicas");
    if replicas < 3 {
        fail(&format!("ran with {replicas} replicas, want >= 3"));
    }
    // Crash-mode documents trade client count for crash/restart cycles;
    // the load bar differs accordingly.
    let crash_cycles = int_field(&doc, "crash_cycles");
    let sim_clients = int_field(&doc, "sim_clients");
    let want_clients = if crash_cycles > 0 { 8 } else { 100 };
    if sim_clients < want_clients {
        fail(&format!(
            "ran with {sim_clients} simulated clients, want >= {want_clients}"
        ));
    }

    let ops = int_field(&doc, "ops_total");
    if ops <= 0 {
        fail("no operations completed");
    }
    let commits = int_field(&doc, "commits_total");
    if commits <= 0 {
        fail("no commits recorded");
    }

    let ops_per_sec = match doc.get("ops_per_sec") {
        Some(Json::Num(v)) => *v,
        Some(Json::Int(v)) => *v as f64,
        _ => fail("missing numeric field \"ops_per_sec\""),
    };
    if ops_per_sec.is_nan() || ops_per_sec <= 0.0 {
        fail(&format!("ops_per_sec is {ops_per_sec}, want > 0"));
    }
    for key in ["p50_ns", "p99_ns"] {
        let v = int_field(&doc, key);
        if v <= 0 {
            fail(&format!("{key} is {v}, want > 0 (histogram never fed?)"));
        }
    }

    match int_field(&doc, "violations") {
        0 => {}
        n => fail(&format!("{n} linearizability violation(s)")),
    }

    if crash_cycles > 0 {
        if crash_cycles < 8 {
            fail(&format!(
                "crash gate ran only {crash_cycles} cycles, want >= 8"
            ));
        }
        let recoveries = int_field(&doc, "recoveries");
        if recoveries < crash_cycles {
            fail(&format!(
                "{recoveries} recoveries for {crash_cycles} crash cycles — \
                 some restart skipped the WAL recovery path"
            ));
        }
        for key in ["wal_appends", "wal_bytes", "checkpoints"] {
            let v = int_field(&doc, key);
            if v <= 0 {
                fail(&format!("{key} is {v}, want > 0 — durability plane idle"));
            }
        }
        // The gate must prove the faults fired, not merely tolerate
        // them: a crash schedule that never tears a tail or absorbs an
        // injected storage error tested only the happy path.
        let torn = int_field(&doc, "torn_tail_records");
        if torn <= 0 {
            fail("no torn tail records across the crash schedule — fault injection inert");
        }
        let absorbed = int_field(&doc, "wal_append_failures");
        if absorbed <= 0 {
            fail("no injected storage errors absorbed — fault injection inert");
        }
        println!(
            "kv_check: {path} ok (crash gate: {crash_cycles} cycles, {recoveries} recoveries, \
             {torn} torn tails, {absorbed} absorbed faults, 0 violations)"
        );
        return;
    }

    let rounds = int_field(&doc, "chaos_rounds");
    println!(
        "kv_check: {path} ok ({replicas} replicas, {sim_clients} sim clients, \
         {ops} ops at {ops_per_sec:.0} ops/s, {rounds} chaos rounds, 0 violations)"
    );
}
