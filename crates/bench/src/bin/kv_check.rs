//! Offline validator for `BENCH_kv_e2e.json`.
//!
//! CI runs `kv_load --chaos --out BENCH_kv_e2e.json` and then this
//! binary: it re-reads the document with the dependency-free parser
//! from `ensemble-obs` and checks the contract the pipeline relies on —
//! the run identifies itself as the `kv_e2e` bench, actually measured
//! something (nonzero ops/sec and latency percentiles), ran the chaos
//! schedule it was asked for, and found zero linearizability
//! violations. Exits nonzero (with a message) on any breach.
//!
//! ```text
//! cargo run -p ensemble-bench --bin kv_check [path/to/BENCH_kv_e2e.json]
//! ```

use ensemble_obs::Json;

fn fail(msg: &str) -> ! {
    eprintln!("kv_check: {msg}");
    std::process::exit(1);
}

fn int_field(doc: &Json, key: &str) -> i64 {
    match doc.get(key).and_then(Json::as_int) {
        Some(v) => v,
        None => fail(&format!("missing integer field {key:?}")),
    }
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_kv_e2e.json".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => fail(&format!("cannot read {path}: {e}")),
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => fail(&format!("{path} is not valid JSON: {e:?}")),
    };

    if doc.get("bench").and_then(Json::as_str) != Some("kv_e2e") {
        fail("field \"bench\" must be \"kv_e2e\"");
    }

    let replicas = int_field(&doc, "replicas");
    if replicas < 3 {
        fail(&format!("ran with {replicas} replicas, want >= 3"));
    }
    let sim_clients = int_field(&doc, "sim_clients");
    if sim_clients < 100 {
        fail(&format!(
            "ran with {sim_clients} simulated clients, want >= 100"
        ));
    }

    let ops = int_field(&doc, "ops_total");
    if ops <= 0 {
        fail("no operations completed");
    }
    let commits = int_field(&doc, "commits_total");
    if commits <= 0 {
        fail("no commits recorded");
    }

    let ops_per_sec = match doc.get("ops_per_sec") {
        Some(Json::Num(v)) => *v,
        Some(Json::Int(v)) => *v as f64,
        _ => fail("missing numeric field \"ops_per_sec\""),
    };
    if ops_per_sec.is_nan() || ops_per_sec <= 0.0 {
        fail(&format!("ops_per_sec is {ops_per_sec}, want > 0"));
    }
    for key in ["p50_ns", "p99_ns"] {
        let v = int_field(&doc, key);
        if v <= 0 {
            fail(&format!("{key} is {v}, want > 0 (histogram never fed?)"));
        }
    }

    match int_field(&doc, "violations") {
        0 => {}
        n => fail(&format!("{n} linearizability violation(s)")),
    }

    let rounds = int_field(&doc, "chaos_rounds");
    println!(
        "kv_check: {path} ok ({replicas} replicas, {sim_clients} sim clients, \
         {ops} ops at {ops_per_sec:.0} ops/s, {rounds} chaos rounds, 0 violations)"
    );
}
