//! Offline validator for `BENCH_table2a.json`.
//!
//! CI runs the `table2a` binary and then this one: it re-reads the JSON
//! with the dependency-free parser from `ensemble-obs` and checks the
//! schema the dashboards consume — every engine present, every model
//! counter present and sane. Exits nonzero (with a message) on any
//! violation, so a malformed emit fails the pipeline without python or
//! jq in the image.
//!
//! ```text
//! cargo run -p ensemble-bench --bin obs_check [path/to/BENCH_table2a.json]
//! ```

use ensemble_obs::Json;

const ENGINES: [&str; 4] = ["IMP", "FUNC", "HAND", "MACH"];
const COUNTERS: [&str; 5] = [
    "instructions",
    "data_refs",
    "allocations",
    "dispatches",
    "branches",
];

fn fail(msg: &str) -> ! {
    eprintln!("obs_check: {msg}");
    std::process::exit(1);
}

fn int_field(obj: &Json, key: &str, ctx: &str) -> i64 {
    match obj.get(key).and_then(Json::as_int) {
        Some(v) => v,
        None => fail(&format!("{ctx}: missing integer field {key:?}")),
    }
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_table2a.json".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => fail(&format!("cannot read {path}: {e}")),
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => fail(&format!("{path} is not valid JSON: {e:?}")),
    };

    if doc.get("table").and_then(Json::as_str) != Some("2a") {
        fail("field \"table\" must be \"2a\"");
    }
    let rounds = int_field(&doc, "rounds", "document");
    if rounds <= 0 {
        fail("rounds must be positive");
    }
    let Some(engines) = doc.get("engines") else {
        fail("missing \"engines\" object");
    };

    for engine in ENGINES {
        let Some(e) = engines.get(engine) else {
            fail(&format!("missing engine {engine:?}"));
        };
        for counter in COUNTERS {
            let v = int_field(e, counter, engine);
            if v < 0 {
                fail(&format!("{engine}.{counter} is negative"));
            }
        }
        // Every engine does real work each round.
        if int_field(e, "instructions", engine) == 0 {
            fail(&format!("{engine}.instructions is zero"));
        }
    }

    // The point of the paper: the optimized engines beat the layered ones.
    let insns = |e: &str| int_field(engines.get(e).unwrap(), "instructions", e);
    if insns("MACH") >= insns("IMP") {
        fail("MACH must execute fewer model instructions than IMP");
    }
    if insns("HAND") != insns("MACH") {
        fail("cost model assigns HAND the same instruction count as MACH");
    }

    println!(
        "obs_check: {path} ok ({} engines x {} counters, {rounds} rounds)",
        ENGINES.len(),
        COUNTERS.len()
    );
}
