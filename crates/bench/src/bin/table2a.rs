//! Regenerates Table 2(a): the cost-model counters for 10,000
//! send/receive rounds through the original 10-layer stack vs. the
//! synthesized bypass.
//!
//! The paper read Pentium II performance counters; we do not have the
//! authors' hardware, so the counters come from the *formal cost model*:
//! the IR evaluator charges instructions, data references, allocations,
//! dispatches and branches while executing the full layer models for one
//! round (sender down-path + receiver up-path), and the same while
//! executing the synthesized residual terms. The quantity being
//! reproduced is the ratio (the paper: CPU cycles 34816 → 19963 per
//! round, ≈ 1.74×; TLB misses 59 → 36).

use ensemble_bench::bench_ctx;
use ensemble_ir::eval::Evaluator;
use ensemble_ir::models::{layer_defs, model, Case, ModelCtx};
use ensemble_ir::term::Term;
use ensemble_ir::Val;
use ensemble_obs::{Json, Registry};
use ensemble_synth::synthesize;
use ensemble_util::{Counters, Intern};
use std::collections::HashMap;

const STACK_10: &[&str] = ensemble_layers::STACK_10;
const ROUNDS: u64 = 10_000;

/// Builds a 4-byte message value with no headers.
fn bare_msg() -> Val {
    Val::con("Msg", vec![Val::list(vec![]), Val::Opaque(1), Val::Int(4)])
}

/// Evaluates one term, returning its value and adding costs to `total`.
fn eval_costed(
    t: &Term,
    defs: &ensemble_ir::FnDefs,
    env: &[(Intern, Val)],
    total: &mut Counters,
) -> Val {
    let mut ev = Evaluator::new(defs);
    let mut map: HashMap<Intern, Val> = env.iter().cloned().collect();
    let v = ev.eval(t, &mut map).expect("model evaluates");
    total.merge(&ev.costs);
    v
}

/// One full round through the *original* layer models: sender dn-cast at
/// the sequencer (including the local bounce back up) and receiver
/// up-cast, threading state and message values exactly as the engines do.
fn original_round(ctx: &ModelCtx, sender_states: &mut [Val], recv_states: &mut [Val]) -> Counters {
    let defs = layer_defs();
    let mut costs = Counters::zero();
    let state_var = Intern::from("state");
    let msg_var = Intern::from("msg");
    let origin_var = Intern::from("origin");

    // Sender: route the down cast through each layer, following splits.
    let mut queue: Vec<(usize, bool, Val)> = vec![(0, false, bare_msg())];
    let mut wire: Option<Val> = None;
    while let Some((idx, upward, m)) = queue.pop() {
        if idx >= STACK_10.len() {
            wire = Some(m);
            continue;
        }
        let lm = model(STACK_10[idx], ctx).expect("model");
        costs.dispatches += 1;
        let case = if upward { Case::UpCast } else { Case::DnCast };
        let env = vec![
            (state_var, sender_states[idx].clone()),
            (msg_var, m),
            (origin_var, Val::Int(0)),
        ];
        let out = eval_costed(lm.handler(case), &defs, &env, &mut costs);
        let Val::Con(n, args) = out else { panic!() };
        assert_eq!(n.as_str(), "Out");
        sender_states[idx] = args[0].clone();
        for ev in args[1].un_list().expect("event list") {
            let Val::Con(k, eargs) = ev else { panic!() };
            match k.as_str().as_str() {
                "DnCast" => queue.push((idx + 1, false, eargs[0].clone())),
                "UpCast" => {
                    if idx > 0 {
                        queue.push((idx - 1, true, eargs[1].clone()));
                    }
                }
                "Defer" => {}
                other => panic!("unexpected event {other}"),
            }
        }
    }

    // Receiver: route the wire message up through each layer.
    let mut m = wire.expect("wire message");
    for idx in (0..STACK_10.len()).rev() {
        let lm = model(STACK_10[idx], ctx).expect("model");
        costs.dispatches += 1;
        let env = vec![
            (state_var, recv_states[idx].clone()),
            (msg_var, m.clone()),
            (origin_var, Val::Int(0)),
        ];
        let out = eval_costed(lm.handler(Case::UpCast), &defs, &env, &mut costs);
        let Val::Con(n, args) = out else { panic!() };
        assert_eq!(n.as_str(), "Out", "receiver fast path");
        recv_states[idx] = args[0].clone();
        let evs = args[1].un_list().expect("events");
        let mut next = None;
        for ev in evs {
            let Val::Con(k, eargs) = ev else { panic!() };
            if k.as_str() == "UpCast" {
                next = Some(eargs[1].clone());
            }
        }
        match next {
            Some(nm) => m = nm,
            None => break, // Delivered to the application.
        }
    }
    costs
}

/// One round through the *synthesized* residuals: evaluate the composed
/// CCP, wire-field sources, and state updates of the DnCast stack theorem
/// on the sender's states, and of UpCast on the receiver's, against the
/// same cost model.
fn optimized_round(
    synth: &ensemble_synth::StackSynthesis,
    states_snd: &mut HashMap<Intern, Val>,
    states_rcv: &mut HashMap<Intern, Val>,
) -> Counters {
    let defs = layer_defs();
    let mut costs = Counters::zero();
    let base_env = |states: &HashMap<Intern, Val>| -> Vec<(Intern, Val)> {
        let mut env: Vec<(Intern, Val)> = states.iter().map(|(k, v)| (*k, v.clone())).collect();
        env.push((Intern::from("payload"), Val::Opaque(1)));
        env.push((Intern::from("len"), Val::Int(4)));
        env.push((Intern::from("origin"), Val::Int(0)));
        env.push((Intern::from("dst"), Val::Int(1)));
        env
    };

    // Sender: CCP, wire fields (pre-update state), state updates.
    let th = &synth.cases[&Case::DnCast];
    costs.dispatches += 1; // One guarded dispatch for the whole stack.
    let env = base_env(states_snd);
    for (_, conj) in &th.ccp {
        let v = eval_costed(conj, &defs, &env, &mut costs);
        assert_eq!(v, Val::Bool(true), "dn CCP holds in the common case");
    }
    let mut fields = Vec::new();
    for src in &synth.cast_template.sources {
        fields.push(eval_costed(src, &defs, &env, &mut costs));
    }
    for (layer, st) in &th.state_updates {
        let v = eval_costed(st, &defs, &env, &mut costs);
        let key = Intern::from(&format!("s_{layer}_{}", synth.names[*layer]));
        states_snd.insert(key, v);
    }

    // Receiver: field inputs from the wire, CCP, state updates.
    let th = &synth.cases[&Case::UpCast];
    costs.dispatches += 1;
    let mut env = base_env(states_rcv);
    for (k, v) in fields.iter().enumerate() {
        env.push((Intern::from(&format!("f{k}")), v.clone()));
    }
    for (_, conj) in &th.ccp {
        let v = eval_costed(conj, &defs, &env, &mut costs);
        assert_eq!(v, Val::Bool(true), "up CCP holds in the common case");
    }
    for (layer, st) in &th.state_updates {
        let v = eval_costed(st, &defs, &env, &mut costs);
        let key = Intern::from(&format!("s_{layer}_{}", synth.names[*layer]));
        states_rcv.insert(key, v);
    }
    costs
}

fn main() {
    let ctx = bench_ctx(0);

    // Original stack, one round (costs are identical each round in the
    // common case, so scale).
    let mut sender_states: Vec<Val> = STACK_10
        .iter()
        .map(|n| model(n, &ctx).unwrap().init)
        .collect();
    let mut recv_states = sender_states.clone();
    let per_round_orig = original_round(&ctx, &mut sender_states, &mut recv_states);

    // Optimized stack, one round.
    let synth = synthesize(STACK_10, &ctx).expect("synthesis");
    let mut states_snd: HashMap<Intern, Val> = HashMap::new();
    for (i, (name, m)) in synth.names.iter().zip(synth.models.iter()).enumerate() {
        states_snd.insert(Intern::from(&format!("s_{i}_{name}")), m.init.clone());
    }
    let mut states_rcv = states_snd.clone();
    let per_round_opt = optimized_round(&synth, &mut states_snd, &mut states_rcv);

    let orig = per_round_orig.scaled(ROUNDS);
    let opt = per_round_opt.scaled(ROUNDS);

    println!("Table 2(a): formal cost model, {ROUNDS} send/recv rounds\n");
    println!(
        "{:>22} | {:>14} | {:>14} | ratio",
        "counter", "original", "optimized"
    );
    let rows: [(&str, u64, u64, &str); 5] = [
        (
            "instructions",
            orig.instructions,
            opt.instructions,
            "inst_decoder 182.7M -> 98.0M (1.86x)",
        ),
        (
            "data refs",
            orig.data_refs,
            opt.data_refs,
            "data_mem_refs 86.3M -> 50.9M (1.70x)",
        ),
        (
            "allocations",
            orig.allocations,
            opt.allocations,
            "(GC pressure; no direct counter)",
        ),
        (
            "branches",
            orig.branches,
            opt.branches,
            "ifu_ifetch 172.3M -> 100.1M (1.72x)",
        ),
        (
            "dispatches",
            orig.dispatches,
            opt.dispatches,
            "(layer boundaries crossed)",
        ),
    ];
    for (name, o, p, paper) in rows {
        let ratio = if p == 0 {
            f64::INFINITY
        } else {
            o as f64 / p as f64
        };
        println!("{name:>22} | {o:>14} | {p:>14} | {ratio:5.2}x   paper: {paper}");
    }
    println!(
        "\nper-round model instructions: {} -> {} ({:.2}x; paper's CPU cycles per\n\
         round: 34816 -> 19963, 1.74x; TLB misses 59 -> 36, 1.64x)",
        per_round_orig.instructions,
        per_round_opt.instructions,
        per_round_orig.instructions as f64 / per_round_opt.instructions.max(1) as f64,
    );

    // Per-engine counters, Section 5's four execution strategies:
    //
    // * IMP  — the imperative engine executes the original layer models
    //          directly; its per-round cost IS `original_round`.
    // * FUNC — the functional engine makes the same layer crossings but
    //          closes over state at every boundary: one extra allocation
    //          and two extra data references (capture + re-read) per
    //          dispatch. That overhead is modeled here, not measured.
    // * MACH — the synthesized bypass (the "machine" the paper compiles
    //          to): the residual CCP/wire/update terms, `optimized_round`.
    // * HAND — the hand-written fast path; the formal cost model charges
    //          it the same counters as MACH because both execute exactly
    //          the residual term sequence (the paper found hand ≈ mach).
    let func = Counters {
        allocations: per_round_orig.allocations + per_round_orig.dispatches,
        data_refs: per_round_orig.data_refs + 2 * per_round_orig.dispatches,
        ..per_round_orig
    };
    let engines: [(&str, Counters); 4] = [
        ("IMP", per_round_orig.scaled(ROUNDS)),
        ("FUNC", func.scaled(ROUNDS)),
        ("HAND", per_round_opt.scaled(ROUNDS)),
        ("MACH", per_round_opt.scaled(ROUNDS)),
    ];

    let counter_json = |c: &Counters| {
        Json::obj(vec![
            ("instructions", Json::Int(c.instructions as i64)),
            ("data_refs", Json::Int(c.data_refs as i64)),
            ("allocations", Json::Int(c.allocations as i64)),
            ("dispatches", Json::Int(c.dispatches as i64)),
            ("branches", Json::Int(c.branches as i64)),
        ])
    };
    let json = Json::obj(vec![
        ("table", Json::str("2a")),
        ("rounds", Json::Int(ROUNDS as i64)),
        (
            "engines",
            Json::obj(engines.iter().map(|(n, c)| (*n, counter_json(c))).collect()),
        ),
        (
            "notes",
            Json::obj(vec![
                (
                    "FUNC",
                    Json::str("IMP plus one closure allocation and two data refs per dispatch"),
                ),
                (
                    "HAND",
                    Json::str("cost model charges HAND the same as MACH (both run the residual)"),
                ),
            ]),
        ),
        (
            "paper",
            Json::obj(vec![
                ("cycles_original", Json::Int(34816)),
                ("cycles_optimized", Json::Int(19963)),
                ("ratio", Json::Num(1.74)),
            ]),
        ),
    ]);
    let path = "BENCH_table2a.json";
    std::fs::write(path, json.render()).expect("write BENCH_table2a.json");
    println!("\nwrote {path}");

    // The same counters as Prometheus exposition, for scraping/grepping.
    let mut reg = Registry::new();
    for (engine, c) in &engines {
        for (counter, v) in [
            ("instructions", c.instructions),
            ("data_refs", c.data_refs),
            ("allocations", c.allocations),
            ("dispatches", c.dispatches),
            ("branches", c.branches),
        ] {
            reg.set_int(
                "ensemble_model_cost_total",
                &[("engine", engine), ("counter", counter)],
                v,
            );
        }
    }
    println!("\n--- metrics exposition ---");
    print!("{}", reg.render());
}
