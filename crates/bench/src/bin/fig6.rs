//! Regenerates Figure 6: 10-layer stack processing overhead by message
//! size (4, 24, 100, 1024 bytes) for MACH, IMP, FUNC, split into the four
//! segments.
//!
//! The paper's observation to reproduce: "these processing overheads are
//! mostly independent of message size", because scatter-gather avoids
//! copying payload bytes on the stack segments (only the transport
//! segments touch the payload).

use ensemble_bench::*;
use ensemble_event::{DnEvent, Msg};
use ensemble_ir::models::Case;
use ensemble_transport::{marshal, unmarshal, CompressedHdr};
use ensemble_util::Time;

const SIZES: [usize; 4] = [4, 24, 100, 1024];

fn native(kind: Kind, size: usize) -> [f64; 4] {
    let mut sender = engine(STACK_10, kind, 0);
    let body = payload(size);
    let dn_stack = time_per_op(ROUNDS, |_| {
        let b = sender.inject_dn(Time::ZERO, DnEvent::Cast(Msg::data(body.clone())));
        std::hint::black_box(&b);
    });
    let wire = gen_wire_msgs(STACK_10, 1, size, false).remove(0);
    let dn_tx = time_per_op(ROUNDS, |_| {
        std::hint::black_box(marshal(std::hint::black_box(&wire)));
    });
    let bytes = marshal(&wire);
    let up_tx = time_per_op(ROUNDS, |_| {
        std::hint::black_box(unmarshal(std::hint::black_box(&bytes)).unwrap());
    });
    let msgs = gen_wire_msgs(STACK_10, ROUNDS, size, false);
    let mut receiver = engine(STACK_10, kind, 1);
    let up_stack = time_per_op(ROUNDS, |i| {
        let b = receiver.inject_up(Time::ZERO, up_cast_of(msgs[i].clone()));
        std::hint::black_box(&b);
    });
    [dn_stack, dn_tx, up_tx, up_stack]
}

fn mach_sizes(size: usize) -> [f64; 4] {
    let mut sender = mach(STACK_10, 0);
    let dn_stack = time_per_op(ROUNDS, |_| {
        std::hint::black_box(sender.bench_dn_stack(Case::DnCast, 1, size as i64).unwrap());
    });
    let pkts = gen_mach_packets(STACK_10, ROUNDS, size, false);
    let (hdr, body) = CompressedHdr::decode(&pkts[0]).unwrap();
    let body = body.to_vec();
    let dn_tx = time_per_op(ROUNDS, |_| {
        std::hint::black_box(hdr.encode(std::hint::black_box(&body)));
    });
    let up_tx = time_per_op(ROUNDS, |_| {
        std::hint::black_box(CompressedHdr::decode(std::hint::black_box(&pkts[0])).unwrap());
    });
    let fields: Vec<Vec<u64>> = pkts
        .iter()
        .map(|p| CompressedHdr::decode(p).unwrap().0.fields)
        .collect();
    let mut receiver = mach(STACK_10, 1);
    let up_stack = time_per_op(ROUNDS, |i| {
        std::hint::black_box(
            receiver
                .bench_up_stack(Case::UpCast, 0, size as i64, &fields[i])
                .unwrap(),
        );
    });
    [dn_stack, dn_tx, up_tx, up_stack]
}

fn main() {
    println!("Figure 6: 10-layer code latency by message size (ns per op)");
    println!("segments: DnStack + DnTransport + UpTransport + UpStack = Total\n");
    let segs = ["DnStack", "DnTx", "UpTx", "UpStack"];
    let mut stack_seg_by_size: Vec<(usize, f64)> = Vec::new();
    for size in SIZES {
        println!("--- {size} byte messages ---");
        for (name, m) in [
            ("MACH", mach_sizes(size)),
            ("IMP", native(Kind::Imp, size)),
            ("FUNC", native(Kind::Func, size)),
        ] {
            print!("{name:>5}: ");
            let mut total = 0.0;
            for (s, v) in segs.iter().zip(m.iter()) {
                print!("{s}={:>9} ", fmt_ns(*v));
                total += v;
            }
            println!("total={}", fmt_ns(total));
            if name == "IMP" {
                stack_seg_by_size.push((size, m[0] + m[3]));
            }
        }
    }
    // The paper's observation: stack-segment overheads are mostly
    // independent of message size (scatter-gather avoids payload copies).
    let first = stack_seg_by_size[0].1;
    let last = stack_seg_by_size.last().unwrap().1;
    println!(
        "\nIMP stack segments at 4B vs 1024B: {} vs {} ({:+.0}%) — \
         \"mostly independent of message size\"",
        fmt_ns(first),
        fmt_ns(last),
        (last / first - 1.0) * 100.0
    );
}
