//! Shared plumbing for the benchmark harness.
//!
//! Every table and figure of the paper's evaluation (§4.2) is regenerated
//! by a binary in `src/bin/` (paper-style printed tables) and, for the
//! latency experiments, by a Criterion bench in `benches/`. This module
//! provides the common pieces: the benchmark layer configuration (windows
//! and thresholds pushed out so the CCPs hold throughout, exactly as in
//! the paper where "the outcome of the CCP checks is always the choice to
//! run the bypass code"), stack constructors for the four configurations,
//! wire-message generators, and a simple high-resolution measurement
//! loop ("we ran each test 10,000 times and calculated the average").

#![forbid(unsafe_code)]

use ensemble_event::{DnEvent, Msg, Payload, UpEvent, ViewState};
use ensemble_hand::HandBypass;
use ensemble_ir::models::ModelCtx;
use ensemble_layers::{make_stack, LayerConfig};
use ensemble_stack::{Engine, FuncEngine, ImpEngine};
use ensemble_synth::{synthesize, StackBypass};
use ensemble_util::{Duration as VDuration, Rank, Time};
use std::time::Instant;

/// The paper's 10-layer stack.
pub const STACK_10: &[&str] = ensemble_layers::STACK_10;
/// The paper's 4-layer stack (Figure 4).
pub const STACK_4: &[&str] = ensemble_layers::STACK_4;

/// Members in the measured group (two UltraSparcs in the paper).
pub const NMEMBERS: usize = 2;

/// Iterations per measurement, as in the paper.
pub const ROUNDS: usize = 10_000;

/// Layer configuration for latency measurement: every window/threshold is
/// pushed beyond the horizon so no slow path fires mid-run.
pub fn bench_cfg() -> LayerConfig {
    LayerConfig {
        pt2pt_window: 1 << 40,
        mflow_window: 1 << 40,
        collect_every: 1 << 40,
        frag_max: 1 << 20,
        retrans_timeout: VDuration::from_millis(1 << 20),
        nak_timeout: VDuration::from_millis(1 << 20),
        ..LayerConfig::default()
    }
}

/// The matching model context for synthesis.
pub fn bench_ctx(rank: i64) -> ModelCtx {
    ModelCtx {
        nmembers: NMEMBERS as i64,
        rank,
        view_ltime: 0,
        pt2pt_window: 1 << 40,
        mflow_window: 1 << 40,
        frag_max: 1 << 20,
        collect_every: 1 << 40,
    }
}

/// Which execution engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Central event scheduler.
    Imp,
    /// Recursive functional composition.
    Func,
}

/// Builds an engine over `stack` at `rank`.
pub fn engine(stack: &[&'static str], kind: Kind, rank: u16) -> Box<dyn Engine> {
    let vs = ViewState::initial(NMEMBERS).for_rank(Rank(rank));
    let layers = make_stack(stack, &vs, &bench_cfg()).expect("bench stack builds");
    let mut e: Box<dyn Engine> = match kind {
        Kind::Imp => Box::new(ImpEngine::new(layers)),
        Kind::Func => Box::new(FuncEngine::new(layers)),
    };
    e.init(Time::ZERO);
    e
}

/// Builds the synthesized bypass at `rank`.
pub fn mach(stack: &[&'static str], rank: u16) -> StackBypass {
    let synth = synthesize(stack, &bench_ctx(rank as i64)).expect("synthesis");
    StackBypass::compile(&synth, rank).expect("codegen")
}

/// Builds the hand-optimized bypass at `rank` (4-layer stack only).
pub fn hand(rank: u16) -> HandBypass {
    HandBypass::new(NMEMBERS, rank)
}

/// A `len`-byte payload.
pub fn payload(len: usize) -> Payload {
    Payload::filled(0xAB, len)
}

/// Pre-generates `n` in-sequence wire messages (unmarshaled form) from a
/// fresh rank-0 sender, for feeding receiver-side benches.
pub fn gen_wire_msgs(
    stack: &[&'static str],
    n: usize,
    payload_len: usize,
    send_not_cast: bool,
) -> Vec<Msg> {
    let mut sender = engine(stack, Kind::Imp, 0);
    let body = payload(payload_len);
    (0..n)
        .map(|_| {
            let ev = if send_not_cast {
                DnEvent::Send {
                    dst: Rank(1),
                    msg: Msg::data(body.clone()),
                }
            } else {
                DnEvent::Cast(Msg::data(body.clone()))
            };
            let b = sender.inject_dn(Time::ZERO, ev);
            b.wire
                .into_iter()
                .find_map(|e| match e {
                    DnEvent::Cast(m) => Some(m),
                    DnEvent::Send { msg, .. } => Some(msg),
                    _ => None,
                })
                .expect("sender produced a wire message")
        })
        .collect()
}

/// Pre-generates `n` in-sequence compressed packets from a MACH sender.
pub fn gen_mach_packets(
    stack: &[&'static str],
    n: usize,
    payload_len: usize,
    send_not_cast: bool,
) -> Vec<Vec<u8>> {
    let mut sender = mach(stack, 0);
    let body = payload(payload_len);
    let out = (0..n)
        .map(|_| {
            let o = if send_not_cast {
                sender.dn_send(1, &body)
            } else {
                sender.dn_cast(&body)
            };
            match o {
                ensemble_synth::BypassOutput::Done { wire, .. } => wire.expect("wire").1,
                other => panic!("bypass fell back during generation: {other:?}"),
            }
        })
        .collect();
    sender.drain_deferred();
    out
}

/// Builds an up event delivering `msg` from rank 0.
pub fn up_cast_of(msg: Msg) -> UpEvent {
    UpEvent::Cast {
        origin: Rank(0),
        msg,
    }
}

/// Builds an up event delivering `msg` from rank 0 point-to-point.
pub fn up_send_of(msg: Msg) -> UpEvent {
    UpEvent::Send {
        origin: Rank(0),
        msg,
    }
}

/// Times `n` invocations of `f`, returning nanoseconds per invocation.
pub fn time_per_op<F: FnMut(usize)>(n: usize, mut f: F) -> f64 {
    // Warm up the caches with a small prefix.
    let warm = (n / 100).max(1);
    for i in 0..warm {
        f(i);
    }
    let t0 = Instant::now();
    for i in warm..n {
        f(i);
    }
    t0.elapsed().as_nanos() as f64 / (n - warm) as f64
}

/// Formats nanoseconds compactly.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1000.0 {
        format!("{:7.2}us", ns / 1000.0)
    } else {
        format!("{ns:7.1}ns")
    }
}

/// One row of a Table 1-style report.
pub struct SegmentRow {
    /// Segment name (e.g. "Down Stack").
    pub name: &'static str,
    /// Measured nanoseconds per configuration, in column order.
    pub ns: Vec<f64>,
    /// The paper's microsecond figures for the same row, for comparison.
    pub paper_us: Vec<f64>,
}

/// Prints a Table 1-style report.
pub fn print_table(title: &str, columns: &[&str], rows: &[SegmentRow]) {
    println!("\n=== {title} ===");
    print!("{:>16}", "");
    for c in columns {
        print!(" | {c:>10}");
    }
    println!(" || paper (us): {}", columns.join("/"));
    let mut totals = vec![0.0; columns.len()];
    let mut paper_totals = vec![0.0; columns.len()];
    for row in rows {
        print!("{:>16}", row.name);
        for (i, ns) in row.ns.iter().enumerate() {
            print!(" | {:>10}", fmt_ns(*ns));
            totals[i] += ns;
        }
        print!(" || ");
        for (i, us) in row.paper_us.iter().enumerate() {
            if i > 0 {
                print!("/");
            }
            print!("{us}");
            paper_totals[i] += us;
        }
        println!();
    }
    print!("{:>16}", "Total");
    for t in &totals {
        print!(" | {:>10}", fmt_ns(*t));
    }
    print!(" || ");
    for (i, t) in paper_totals.iter().enumerate() {
        if i > 0 {
            print!("/");
        }
        print!("{t}");
    }
    println!();
    // Shape check: ratios between configurations.
    if totals.len() >= 2 {
        print!("{:>16}", "vs first");
        for t in &totals {
            print!(" | {:>9.2}x", t / totals[0]);
        }
        print!(" || ");
        for (i, t) in paper_totals.iter().enumerate() {
            if i > 0 {
                print!("/");
            }
            print!("{:.2}x", t / paper_totals[0]);
        }
        println!();
    }
}
