//! A tiny string interner used by the formal crates (IOA and IR).
//!
//! Specification actions, IR variables, and header constructor names are
//! compared constantly during model checking and partial evaluation, so we
//! intern them once and compare 32-bit handles thereafter.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// A handle to an interned string.
///
/// Equality and hashing are O(1); the text is recovered with
/// [`Intern::as_str`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Intern(u32);

/// The interner backing store.
///
/// Most users go through the global interner via [`Intern::from`]; an owned
/// `Interner` exists for tests that need isolation.
#[derive(Default)]
pub struct Interner {
    map: HashMap<String, u32>,
    strings: Vec<String>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its handle.
    pub fn intern(&mut self, s: &str) -> Intern {
        if let Some(&id) = self.map.get(s) {
            return Intern(id);
        }
        let id = self.strings.len() as u32;
        self.strings.push(s.to_owned());
        self.map.insert(s.to_owned(), id);
        Intern(id)
    }

    /// Recovers the text for a handle created by this interner.
    pub fn resolve(&self, i: Intern) -> &str {
        &self.strings[i.0 as usize]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

fn global() -> &'static Mutex<Interner> {
    static GLOBAL: OnceLock<Mutex<Interner>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(Interner::new()))
}

impl Intern {
    /// Interns `s` in the global interner.
    pub fn from(s: &str) -> Intern {
        global().lock().expect("interner poisoned").intern(s)
    }

    /// Returns the interned text (owned, since the store is behind a lock).
    pub fn as_str(&self) -> String {
        global()
            .lock()
            .expect("interner poisoned")
            .resolve(*self)
            .to_owned()
    }
}

impl fmt::Debug for Intern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Intern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_string_same_handle() {
        assert_eq!(Intern::from("send"), Intern::from("send"));
        assert_ne!(Intern::from("send"), Intern::from("deliver"));
    }

    #[test]
    fn resolves_text() {
        let h = Intern::from("fifo-network");
        assert_eq!(h.as_str(), "fifo-network");
        assert_eq!(h.to_string(), "fifo-network");
    }

    #[test]
    fn owned_interner_isolated() {
        let mut a = Interner::new();
        let mut b = Interner::new();
        let ha = a.intern("x");
        let hb = b.intern("y");
        assert_eq!(a.resolve(ha), "x");
        assert_eq!(b.resolve(hb), "y");
        assert_eq!(a.len(), 1);
        assert!(!a.is_empty());
    }

    #[test]
    fn owned_interner_dedups() {
        let mut a = Interner::new();
        let h1 = a.intern("z");
        let h2 = a.intern("z");
        assert_eq!(h1, h2);
        assert_eq!(a.len(), 1);
    }
}
