//! Deterministic random-number generation for reproducible simulation.
//!
//! The simulator must be replayable from a seed, so all randomness (drop
//! decisions, reorder delays, workload generation) flows through [`DetRng`],
//! a small splitmix64/xoshiro-style generator with a stable algorithm that
//! will never change underneath a recorded seed.

/// A deterministic PRNG (splitmix64 core).
///
/// # Examples
///
/// ```
/// use ensemble_util::DetRng;
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        DetRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`. Returns 0 when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift rejection-free mapping (Lemire); bias is negligible
        // for simulation bounds which are far below 2^64.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform value in `[lo, hi]` (inclusive).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// A Bernoulli trial with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Forks an independent stream (e.g. one per simulated process).
    pub fn fork(&mut self) -> DetRng {
        DetRng::new(self.next_u64())
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }

    /// Picks a uniformly random element index for a slice of length `len`.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::new(3);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn range_inclusive() {
        let mut r = DetRng::new(4);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.range(5, 8);
            assert!((5..=8).contains(&v));
            seen_lo |= v == 5;
            seen_hi |= v == 8;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(5);
        for _ in 0..100 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0));
        }
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = DetRng::new(6);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = DetRng::new(8);
        for _ in 0..1000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = DetRng::new(9);
        let mut a = root.fork();
        let mut b = root.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = DetRng::new(10);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
