//! Identity types: endpoints, groups, views, ranks, and sequence numbers.
//!
//! Ensemble identifies a participant by an *endpoint* (a stable identity
//! that survives view changes) and, within a view, by its *rank* (the index
//! of the endpoint in the sorted membership list). Messages are numbered
//! with per-sender [`Seqno`]s.

use std::fmt;

/// A stable process identity.
///
/// In the original system this is a host/pid/incarnation triple; here it is
/// a small integer id plus an incarnation counter so a restarted process is
/// distinguishable from its former life.
///
/// # Examples
///
/// ```
/// use ensemble_util::Endpoint;
/// let a = Endpoint::new(0);
/// let b = a.reincarnate();
/// assert_ne!(a, b);
/// assert_eq!(a.id(), b.id());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Endpoint {
    id: u32,
    incarnation: u32,
}

impl Endpoint {
    /// Creates the first incarnation of endpoint `id`.
    pub const fn new(id: u32) -> Self {
        Endpoint { id, incarnation: 0 }
    }

    /// Creates a specific incarnation of endpoint `id`.
    pub const fn with_incarnation(id: u32, incarnation: u32) -> Self {
        Endpoint { id, incarnation }
    }

    /// The stable numeric id.
    pub const fn id(&self) -> u32 {
        self.id
    }

    /// The incarnation number (bumped each restart).
    pub const fn incarnation(&self) -> u32 {
        self.incarnation
    }

    /// Returns the next incarnation of this endpoint.
    pub const fn reincarnate(&self) -> Self {
        Endpoint {
            id: self.id,
            incarnation: self.incarnation + 1,
        }
    }

    /// Packs the endpoint into a `u64` for wire encoding.
    pub const fn to_wire(&self) -> u64 {
        ((self.id as u64) << 32) | self.incarnation as u64
    }

    /// Unpacks an endpoint from its wire encoding.
    pub const fn from_wire(w: u64) -> Self {
        Endpoint {
            id: (w >> 32) as u32,
            incarnation: w as u32,
        }
    }
}

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.incarnation == 0 {
            write!(f, "ep{}", self.id)
        } else {
            write!(f, "ep{}.{}", self.id, self.incarnation)
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A communication group identity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct GroupId(pub u64);

/// Identifies a view: the endpoint that installed it plus a logical counter.
///
/// View ids are totally ordered so that later views compare greater, with
/// the coordinator endpoint breaking ties between concurrent proposals.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ViewId {
    /// Logical time of the view (monotonically increasing).
    pub ltime: u64,
    /// The coordinator that installed the view.
    pub coord: Endpoint,
}

impl ViewId {
    /// The initial view id installed by `coord`.
    pub const fn initial(coord: Endpoint) -> Self {
        ViewId { ltime: 0, coord }
    }

    /// The id of the successor view installed by `coord`.
    pub const fn next(&self, coord: Endpoint) -> Self {
        ViewId {
            ltime: self.ltime + 1,
            coord,
        }
    }
}

/// Rank of an endpoint within a view (0-based index in the membership).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Rank(pub u16);

impl Rank {
    /// Returns the rank as a usable index.
    pub const fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A per-sender message sequence number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Seqno(pub u64);

impl Seqno {
    /// The first sequence number.
    pub const ZERO: Seqno = Seqno(0);

    /// Returns the next sequence number.
    pub const fn next(&self) -> Seqno {
        Seqno(self.0 + 1)
    }

    /// Returns the distance from `other` to `self` (saturating at zero).
    pub const fn distance_from(&self, other: Seqno) -> u64 {
        self.0.saturating_sub(other.0)
    }
}

impl fmt::Display for Seqno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_wire_roundtrip() {
        let e = Endpoint::with_incarnation(0xDEAD, 0xBEEF);
        assert_eq!(Endpoint::from_wire(e.to_wire()), e);
    }

    #[test]
    fn endpoint_reincarnation_orders_after() {
        let e = Endpoint::new(7);
        assert!(e.reincarnate() > e);
        assert_eq!(e.reincarnate().id(), 7);
    }

    #[test]
    fn view_id_ordering() {
        let a = ViewId::initial(Endpoint::new(0));
        let b = a.next(Endpoint::new(3));
        let c = a.next(Endpoint::new(1));
        assert!(b > a);
        assert!(c > a);
        // Same ltime: coordinator breaks the tie deterministically.
        assert!(b > c);
    }

    #[test]
    fn seqno_arithmetic() {
        let s = Seqno(5);
        assert_eq!(s.next(), Seqno(6));
        assert_eq!(s.distance_from(Seqno(2)), 3);
        assert_eq!(Seqno(2).distance_from(s), 0);
    }

    #[test]
    fn rank_index() {
        assert_eq!(Rank(9).index(), 9);
    }

    #[test]
    fn endpoint_display() {
        assert_eq!(Endpoint::new(3).to_string(), "ep3");
        assert_eq!(Endpoint::with_incarnation(3, 2).to_string(), "ep3.2");
    }
}
