//! Virtual time for deterministic simulation.
//!
//! All protocol timers and network latencies are expressed against a virtual
//! clock advanced by the simulator, never against the wall clock. This makes
//! every multi-process run reproducible bit-for-bit from its seed.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Time(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Duration(pub u64);

impl Time {
    /// The simulation epoch.
    pub const ZERO: Time = Time(0);

    /// Nanoseconds since the epoch.
    pub const fn nanos(&self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch (truncated).
    pub const fn micros(&self) -> u64 {
        self.0 / 1_000
    }

    /// Elapsed duration since `earlier` (saturating at zero).
    pub const fn since(&self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Builds a duration from microseconds.
    pub const fn from_micros(us: u64) -> Duration {
        Duration(us * 1_000)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000_000)
    }

    /// The duration in nanoseconds.
    pub const fn nanos(&self) -> u64 {
        self.0
    }

    /// The duration in (truncated) microseconds.
    pub const fn micros(&self) -> u64 {
        self.0 / 1_000
    }

    /// Scales the duration by an integer factor.
    pub const fn scaled(&self, factor: u64) -> Duration {
        Duration(self.0 * factor)
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, d: Duration) -> Time {
        Time(self.0 + d.0)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.0;
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, other: Time) -> Duration {
        self.since(other)
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, d: Duration) -> Duration {
        Duration(self.0 + d.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}us", self.micros())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_subtract() {
        let t = Time::ZERO + Duration::from_micros(5);
        assert_eq!(t.nanos(), 5_000);
        assert_eq!((t - Time::ZERO).micros(), 5);
        // Saturating subtraction.
        assert_eq!((Time::ZERO - t).nanos(), 0);
    }

    #[test]
    fn conversions() {
        assert_eq!(Duration::from_millis(2).micros(), 2_000);
        assert_eq!(Duration::from_micros(80).nanos(), 80_000);
        assert_eq!(Duration::from_micros(10).scaled(3).micros(), 30);
    }

    #[test]
    fn display() {
        assert_eq!(Duration::from_micros(80).to_string(), "80.000us");
        assert_eq!(Duration::from_millis(2).to_string(), "2.000ms");
    }

    #[test]
    fn ordering() {
        assert!(Time(1) < Time(2));
        let mut t = Time(1);
        t += Duration(4);
        assert_eq!(t, Time(5));
    }
}
