//! Cost-model counters for the Table 2(a) experiment.
//!
//! The paper reports Pentium II performance-monitoring counters for the
//! original vs. synthesized stack. We do not have the authors' hardware, so
//! the reproduction counts *model-level* events: instructions executed by
//! the IR evaluator, data references (variable/field/queue accesses),
//! allocations, and dispatches (layer-boundary crossings). The ratios
//! between original and optimized stacks are the quantity of interest.

use std::fmt;

/// An accumulating set of cost counters.
///
/// # Examples
///
/// ```
/// use ensemble_util::Counters;
/// let mut c = Counters::default();
/// c.instructions += 10;
/// c.data_refs += 4;
/// let mut d = Counters::default();
/// d.instructions = 5;
/// c.merge(&d);
/// assert_eq!(c.instructions, 15);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Model instructions executed (IR evaluator steps).
    pub instructions: u64,
    /// Data memory references (variable reads/writes, field and queue ops).
    pub data_refs: u64,
    /// Heap allocations performed.
    pub allocations: u64,
    /// Layer-boundary crossings (event dispatches).
    pub dispatches: u64,
    /// Branches evaluated (if/match decisions).
    pub branches: u64,
}

impl Counters {
    /// A zeroed counter set.
    pub const fn zero() -> Self {
        Counters {
            instructions: 0,
            data_refs: 0,
            allocations: 0,
            dispatches: 0,
            branches: 0,
        }
    }

    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &Counters) {
        self.instructions += other.instructions;
        self.data_refs += other.data_refs;
        self.allocations += other.allocations;
        self.dispatches += other.dispatches;
        self.branches += other.branches;
    }

    /// Multiplies every counter by `n` (e.g. to scale one round to 10 000).
    pub fn scaled(&self, n: u64) -> Counters {
        Counters {
            instructions: self.instructions * n,
            data_refs: self.data_refs * n,
            allocations: self.allocations * n,
            dispatches: self.dispatches * n,
            branches: self.branches * n,
        }
    }

    /// The ratio of this counter set's instructions to `other`'s.
    pub fn speedup_vs(&self, other: &Counters) -> f64 {
        if self.instructions == 0 {
            return f64::INFINITY;
        }
        other.instructions as f64 / self.instructions as f64
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "instr={} refs={} alloc={} dispatch={} branch={}",
            self.instructions, self.data_refs, self.allocations, self.dispatches, self.branches
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = Counters::zero();
        a.instructions = 3;
        a.branches = 1;
        let mut b = Counters::zero();
        b.instructions = 4;
        b.data_refs = 2;
        a.merge(&b);
        assert_eq!(a.instructions, 7);
        assert_eq!(a.data_refs, 2);
        assert_eq!(a.branches, 1);
    }

    #[test]
    fn scaled_multiplies_all() {
        let mut a = Counters::zero();
        a.instructions = 2;
        a.allocations = 1;
        a.dispatches = 3;
        let s = a.scaled(10);
        assert_eq!(s.instructions, 20);
        assert_eq!(s.allocations, 10);
        assert_eq!(s.dispatches, 30);
    }

    #[test]
    fn speedup_ratio() {
        let mut fast = Counters::zero();
        fast.instructions = 50;
        let mut slow = Counters::zero();
        slow.instructions = 100;
        assert!((fast.speedup_vs(&slow) - 2.0).abs() < 1e-12);
        assert!(Counters::zero().speedup_vs(&slow).is_infinite());
    }
}
