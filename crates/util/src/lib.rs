//! Common foundation types for the `ensemble-rs` workspace.
//!
//! This crate hosts the small, dependency-free vocabulary shared by every
//! other crate: endpoint and group identities, ranks, sequence numbers,
//! virtual time, a deterministic random-number generator for reproducible
//! simulations, a string interner used by the formal (IOA / IR) crates, and
//! lightweight metrics counters used by the cost-model experiments.

#![forbid(unsafe_code)]

pub mod id;
pub mod intern;
pub mod metrics;
pub mod rng;
pub mod time;

pub use id::{Endpoint, GroupId, Rank, Seqno, ViewId};
pub use intern::{Intern, Interner};
pub use metrics::Counters;
pub use rng::DetRng;
pub use time::{Duration, Time};
