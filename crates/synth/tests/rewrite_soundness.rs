//! Property-based soundness of the rewriter: simplification must
//! preserve the meaning of every term, under every environment.
//!
//! This is the reproduction's stand-in for Nuprl's guarantee that "every
//! step made by Nuprl has to be accompanied by a proof": instead of a
//! proof per rewrite, the whole rewriting engine is property-tested
//! against the reference evaluator over randomly generated programs.
//!
//! Feature-gated: the default build must resolve with no crates.io
//! access, so `proptest` is not a dev-dependency. To run these, re-add
//! `proptest = "1"` under `[dev-dependencies]` and pass
//! `--features proptests`. `rewrite_soundness_det.rs` carries a
//! deterministic subset of this coverage in the default suite.
#![cfg(feature = "proptests")]

use ensemble_ir::eval::Evaluator;
use ensemble_ir::models::layer_defs;
use ensemble_ir::term::{Prim, Term};
use ensemble_ir::Val;
use ensemble_synth::{simplify, RewriteCtx};
use ensemble_util::Intern;
use proptest::prelude::*;
use std::collections::HashMap;

/// Random integer-valued terms over the variables `x`, `y` and the record
/// `state { a, b, v }` (with `v` a 4-slot vector).
fn int_term(depth: u32) -> BoxedStrategy<Term> {
    let leaf = prop_oneof![
        (-8i64..8).prop_map(Term::Int),
        Just(Term::Var(Intern::from("x"))),
        Just(Term::Var(Intern::from("y"))),
        Just(Term::GetF(
            Box::new(Term::Var(Intern::from("state"))),
            Intern::from("a")
        )),
        Just(Term::GetF(
            Box::new(Term::Var(Intern::from("state"))),
            Intern::from("b")
        )),
    ];
    leaf.prop_recursive(depth, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Term::Prim(Prim::Add, vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Term::Prim(Prim::Sub, vec![a, b])),
            (bool_of(inner.clone()), inner.clone(), inner.clone()).prop_map(|(c, t, e)| Term::If(
                Box::new(c),
                Box::new(t),
                Box::new(e)
            )),
            (inner.clone(), inner.clone()).prop_map(|(v, b)| Term::Let(
                Intern::from("z"),
                Box::new(v),
                Box::new(Term::Prim(Prim::Add, vec![Term::Var(Intern::from("z")), b])),
            )),
            (0i64..4, inner.clone(), inner).prop_map(|(i, x, b)| {
                // VecGet(VecSet(state.v, i, x), i) + b — exercises the
                // read-through lemma.
                let vecref = Term::GetF(
                    Box::new(Term::Var(Intern::from("state"))),
                    Intern::from("v"),
                );
                Term::Prim(
                    Prim::Add,
                    vec![
                        Term::Prim(
                            Prim::VecGet,
                            vec![
                                Term::Prim(Prim::VecSet, vec![vecref, Term::Int(i), x]),
                                Term::Int(i),
                            ],
                        ),
                        b,
                    ],
                )
            }),
        ]
    })
    .boxed()
}

fn bool_of(ints: BoxedStrategy<Term>) -> BoxedStrategy<Term> {
    (ints.clone(), ints)
        .prop_flat_map(|(a, b)| {
            prop_oneof![
                Just(Term::Prim(Prim::Eq, vec![a.clone(), b.clone()])),
                Just(Term::Prim(Prim::Lt, vec![a.clone(), b.clone()])),
                Just(Term::Prim(
                    Prim::Not,
                    vec![Term::Prim(Prim::Lt, vec![b, a])]
                )),
            ]
        })
        .boxed()
}

fn eval_with_env(t: &Term, x: i64, y: i64, a: i64, b: i64, v: [i64; 4]) -> Option<Val> {
    let defs = layer_defs();
    let mut ev = Evaluator::new(&defs);
    let mut env: HashMap<Intern, Val> = HashMap::new();
    env.insert(Intern::from("x"), Val::Int(x));
    env.insert(Intern::from("y"), Val::Int(y));
    env.insert(
        Intern::from("state"),
        Val::record(&[
            ("a", Val::Int(a)),
            ("b", Val::Int(b)),
            ("v", Val::Vector(v.iter().map(|&i| Val::Int(i)).collect())),
        ]),
    );
    ev.eval(t, &mut env).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `simplify` preserves evaluation on arbitrary programs and
    /// environments (no CCP assumptions).
    #[test]
    fn simplify_preserves_meaning(
        t in int_term(4),
        x in -5i64..5, y in -5i64..5, a in -5i64..5, b in -5i64..5,
        v in prop::array::uniform4(-5i64..5),
    ) {
        let defs = layer_defs();
        let ctx = RewriteCtx::new(&defs);
        let s = simplify(&ctx, &t);
        prop_assert_eq!(
            eval_with_env(&t, x, y, a, b, v),
            eval_with_env(&s, x, y, a, b, v),
            "simplify changed the meaning of {:?} (became {:?})", t, s
        );
    }

    /// With instance constants declared, simplification agrees with
    /// evaluation in any environment *consistent with those constants*.
    #[test]
    fn constant_folding_is_consistent(
        t in int_term(3),
        x in -5i64..5, y in -5i64..5, b in -5i64..5,
        v in prop::array::uniform4(-5i64..5),
    ) {
        let defs = layer_defs();
        let mut ctx = RewriteCtx::new(&defs);
        ctx.declare_const("state", "a", Term::Int(3));
        let s = simplify(&ctx, &t);
        prop_assert_eq!(
            eval_with_env(&t, x, y, 3, b, v),
            eval_with_env(&s, x, y, 3, b, v)
        );
    }

    /// CCP-guided simplification agrees with evaluation on environments
    /// satisfying the CCP (here: `x == state.a`).
    #[test]
    fn ccp_simplification_sound_under_ccp(
        t in int_term(3),
        xa in -5i64..5, y in -5i64..5, b in -5i64..5,
        v in prop::array::uniform4(-5i64..5),
    ) {
        let defs = layer_defs();
        let mut ctx = RewriteCtx::new(&defs);
        ctx.assume(Term::Prim(
            Prim::Eq,
            vec![
                Term::Var(Intern::from("x")),
                Term::GetF(Box::new(Term::Var(Intern::from("state"))), Intern::from("a")),
            ],
        ));
        let s = simplify(&ctx, &t);
        // x and state.a share the value `xa`: the CCP holds.
        prop_assert_eq!(
            eval_with_env(&t, xa, y, xa, b, v),
            eval_with_env(&s, xa, y, xa, b, v)
        );
    }

    /// Simplification never grows a term (the directed-lemma termination
    /// argument, observable).
    #[test]
    fn simplify_never_grows_pure_terms(t in int_term(4)) {
        let defs = layer_defs();
        let ctx = RewriteCtx::new(&defs);
        let s = simplify(&ctx, &t);
        prop_assert!(s.size() <= t.size(), "{} -> {}", t.size(), s.size());
    }
}
