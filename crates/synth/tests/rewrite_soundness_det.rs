//! Deterministic subset of the rewriter-soundness property tests.
//!
//! `rewrite_soundness.rs` holds the proptest originals (feature-gated off
//! the default build so it resolves offline); this file replays the same
//! properties — simplification preserves meaning, constant folding is
//! consistent, CCP-guided simplification is sound under the CCP, and
//! simplification never grows a term — over seeded [`DetRng`] programs.

use ensemble_ir::eval::Evaluator;
use ensemble_ir::models::layer_defs;
use ensemble_ir::term::{Prim, Term};
use ensemble_ir::Val;
use ensemble_synth::{simplify, RewriteCtx};
use ensemble_util::{DetRng, Intern};
use std::collections::HashMap;

fn var(n: &str) -> Term {
    Term::Var(Intern::from(n))
}

fn state_field(n: &str) -> Term {
    Term::GetF(Box::new(var("state")), Intern::from(n))
}

/// A random integer-valued term over `x`, `y`, `state.a`, `state.b`, and
/// the 4-slot vector `state.v` — the same grammar as the proptest
/// generator, driven by [`DetRng`].
fn int_term(rng: &mut DetRng, depth: u32) -> Term {
    if depth == 0 || rng.chance(0.3) {
        return match rng.below(5) {
            0 => Term::Int(rng.range(0, 16) as i64 - 8),
            1 => var("x"),
            2 => var("y"),
            3 => state_field("a"),
            _ => state_field("b"),
        };
    }
    match rng.below(5) {
        0 => Term::Prim(
            Prim::Add,
            vec![int_term(rng, depth - 1), int_term(rng, depth - 1)],
        ),
        1 => Term::Prim(
            Prim::Sub,
            vec![int_term(rng, depth - 1), int_term(rng, depth - 1)],
        ),
        2 => Term::If(
            Box::new(bool_term(rng, depth - 1)),
            Box::new(int_term(rng, depth - 1)),
            Box::new(int_term(rng, depth - 1)),
        ),
        3 => Term::Let(
            Intern::from("z"),
            Box::new(int_term(rng, depth - 1)),
            Box::new(Term::Prim(
                Prim::Add,
                vec![var("z"), int_term(rng, depth - 1)],
            )),
        ),
        _ => {
            // VecGet(VecSet(state.v, i, x), i) + b — the read-through lemma.
            let i = rng.below(4) as i64;
            Term::Prim(
                Prim::Add,
                vec![
                    Term::Prim(
                        Prim::VecGet,
                        vec![
                            Term::Prim(
                                Prim::VecSet,
                                vec![state_field("v"), Term::Int(i), int_term(rng, depth - 1)],
                            ),
                            Term::Int(i),
                        ],
                    ),
                    int_term(rng, depth - 1),
                ],
            )
        }
    }
}

fn bool_term(rng: &mut DetRng, depth: u32) -> Term {
    let a = int_term(rng, depth);
    let b = int_term(rng, depth);
    match rng.below(3) {
        0 => Term::Prim(Prim::Eq, vec![a, b]),
        1 => Term::Prim(Prim::Lt, vec![a, b]),
        _ => Term::Prim(Prim::Not, vec![Term::Prim(Prim::Lt, vec![b, a])]),
    }
}

fn eval_with_env(t: &Term, x: i64, y: i64, a: i64, b: i64, v: [i64; 4]) -> Option<Val> {
    let defs = layer_defs();
    let mut ev = Evaluator::new(&defs);
    let mut env: HashMap<Intern, Val> = HashMap::new();
    env.insert(Intern::from("x"), Val::Int(x));
    env.insert(Intern::from("y"), Val::Int(y));
    env.insert(
        Intern::from("state"),
        Val::record(&[
            ("a", Val::Int(a)),
            ("b", Val::Int(b)),
            ("v", Val::Vector(v.iter().map(|&i| Val::Int(i)).collect())),
        ]),
    );
    ev.eval(t, &mut env).ok()
}

fn small(rng: &mut DetRng) -> i64 {
    rng.range(0, 10) as i64 - 5
}

fn small_vec(rng: &mut DetRng) -> [i64; 4] {
    [small(rng), small(rng), small(rng), small(rng)]
}

#[test]
fn simplify_preserves_meaning_det() {
    let mut rng = DetRng::new(0x5148_0001);
    let defs = layer_defs();
    let ctx = RewriteCtx::new(&defs);
    for case in 0..300 {
        let t = int_term(&mut rng, 4);
        let (x, y, a, b) = (
            small(&mut rng),
            small(&mut rng),
            small(&mut rng),
            small(&mut rng),
        );
        let v = small_vec(&mut rng);
        let s = simplify(&ctx, &t);
        assert_eq!(
            eval_with_env(&t, x, y, a, b, v),
            eval_with_env(&s, x, y, a, b, v),
            "case {case}: simplify changed the meaning of {t:?} (became {s:?})"
        );
    }
}

#[test]
fn constant_folding_is_consistent_det() {
    let mut rng = DetRng::new(0x5148_0002);
    let defs = layer_defs();
    let mut ctx = RewriteCtx::new(&defs);
    ctx.declare_const("state", "a", Term::Int(3));
    for case in 0..200 {
        let t = int_term(&mut rng, 3);
        let (x, y, b) = (small(&mut rng), small(&mut rng), small(&mut rng));
        let v = small_vec(&mut rng);
        let s = simplify(&ctx, &t);
        assert_eq!(
            eval_with_env(&t, x, y, 3, b, v),
            eval_with_env(&s, x, y, 3, b, v),
            "case {case}"
        );
    }
}

#[test]
fn ccp_simplification_sound_under_ccp_det() {
    let mut rng = DetRng::new(0x5148_0003);
    let defs = layer_defs();
    let mut ctx = RewriteCtx::new(&defs);
    ctx.assume(Term::Prim(Prim::Eq, vec![var("x"), state_field("a")]));
    for case in 0..200 {
        let t = int_term(&mut rng, 3);
        let (xa, y, b) = (small(&mut rng), small(&mut rng), small(&mut rng));
        let v = small_vec(&mut rng);
        let s = simplify(&ctx, &t);
        // x and state.a share the value `xa`: the CCP holds.
        assert_eq!(
            eval_with_env(&t, xa, y, xa, b, v),
            eval_with_env(&s, xa, y, xa, b, v),
            "case {case}"
        );
    }
}

#[test]
fn simplify_never_grows_pure_terms_det() {
    let mut rng = DetRng::new(0x5148_0004);
    let defs = layer_defs();
    let ctx = RewriteCtx::new(&defs);
    for case in 0..300 {
        let t = int_term(&mut rng, 4);
        let s = simplify(&ctx, &t);
        assert!(
            s.size() <= t.size(),
            "case {case}: {} -> {}",
            t.size(),
            s.size()
        );
    }
}
