//! Per-layer optimization theorems (the static phase, §4.1.2).
//!
//! An optimization theorem records that, under its CCP, a layer's handler
//! for one fundamental case is semantically equal to its residual — in
//! most cases "a single update of the layer's state and a single event to
//! be passed to the next layer". The `Display` implementation renders the
//! paper's presentation:
//!
//! ```text
//! OPTIMIZING LAYER Bottom
//! FOR EVENT DnM(ev, hdr)
//! AND STATE s_bottom
//! ASSUMING getType ev = ESend ∧ s_bottom.enabled
//! YIELDS EVENTS [:DnM(ev, Full_nohdr(hdr)):]
//! AND STATE s_bottom
//! ```

use crate::rewrite::{simplify, RewriteCtx};
use ensemble_ir::models::{Case, LayerModel};
use ensemble_ir::term::Term;
use ensemble_ir::{FnDefs, Val};
use std::fmt;

/// A proven(-by-checking) layer optimization.
#[derive(Clone)]
pub struct OptTheorem {
    /// The layer name.
    pub layer: String,
    /// Which fundamental case this theorem covers.
    pub case: Case,
    /// The CCP conjuncts assumed.
    pub ccp: Vec<Term>,
    /// The residual handler (same free variables as the original).
    pub residual: Term,
    /// Node count of the original handler (Table 2(b) input).
    pub original_size: usize,
}

impl OptTheorem {
    /// Size reduction factor achieved by the optimization.
    pub fn reduction(&self) -> f64 {
        self.original_size as f64 / self.residual.size().max(1) as f64
    }
}

/// Destructures a residual of shape `Out(state', events)` (possibly under
/// `Let`s, which are floated outward by re-binding) into its parts.
///
/// Returns `None` when the residual is not in output form (e.g. the CCP
/// did not eliminate a `Slow` fallback).
pub fn destructure_out(t: &Term) -> Option<(Term, Vec<Term>)> {
    match t {
        Term::Con(n, args) if n.as_str() == "Out" && args.len() == 2 => {
            let events = un_cons(&args[1])?;
            Some((args[0].clone(), events))
        }
        Term::Let(x, v, body) => {
            // Substitute the binding into the parts (residuals are small,
            // duplication is acceptable and keeps parts self-contained).
            let (s, evs) = destructure_out(body)?;
            Some((
                s.subst(*x, v),
                evs.into_iter().map(|e| e.subst(*x, v)).collect(),
            ))
        }
        _ => None,
    }
}

fn un_cons(t: &Term) -> Option<Vec<Term>> {
    let mut out = Vec::new();
    let mut cur = t;
    loop {
        match cur {
            Term::Con(n, args) if n.as_str() == "nil" && args.is_empty() => return Some(out),
            Term::Con(n, args) if n.as_str() == "cons" && args.len() == 2 => {
                out.push(args[0].clone());
                cur = &args[1];
            }
            _ => return None,
        }
    }
}

/// Runs the static optimization of one layer case: assume the CCP, fold
/// the instance constants, simplify to the residual, and state the
/// theorem.
pub fn optimize_layer(
    model: &LayerModel,
    case: Case,
    defs: &FnDefs,
    fold_instance_consts: bool,
) -> OptTheorem {
    let mut ctx = RewriteCtx::new(defs);
    // Instance constants first: CCP conjuncts must normalize under the
    // same constant folding as the handler body, or the syntactic
    // context-dependent simplification would miss them.
    if fold_instance_consts {
        if let Val::Record(fields) = &model.init {
            for f in &model.const_fields {
                let key = ensemble_util::Intern::from(f);
                if let Some(v) = fields.get(&key) {
                    if let Some(i) = v.as_int() {
                        ctx.declare_const("state", f, Term::Int(i));
                    } else if let Some(b) = v.as_bool() {
                        ctx.declare_const("state", f, Term::Bool(b));
                    }
                }
            }
        }
    }
    let handler = model.handler(case);
    // The pre-CCP baseline: same inlining and constant folding, but no
    // common-case assumptions. Comparing residuals against this (rather
    // than the un-inlined source) measures what the CCP alone buys.
    let baseline = simplify(&ctx, handler);
    for conj in model.ccp(case) {
        ctx.assume(conj.clone());
    }
    let residual = simplify(&ctx, handler);
    OptTheorem {
        layer: model.name.to_owned(),
        case,
        ccp: ctx.facts.clone(),
        residual,
        original_size: baseline.size(),
    }
}

impl fmt::Display for OptTheorem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ev = match self.case {
            Case::DnCast => "DnM(Cast, msg)",
            Case::DnSend => "DnM(Send dst, msg)",
            Case::UpCast => "UpM(Cast origin, msg)",
            Case::UpSend => "UpM(Send origin, msg)",
        };
        writeln!(f, "OPTIMIZING LAYER {}", self.layer)?;
        writeln!(f, "FOR EVENT     {ev}")?;
        writeln!(f, "AND STATE     s_{}", self.layer)?;
        if self.ccp.is_empty() {
            writeln!(f, "ASSUMING      true")?;
        } else {
            write!(f, "ASSUMING      ")?;
            for (i, c) in self.ccp.iter().enumerate() {
                if i > 0 {
                    write!(f, " ∧ ")?;
                }
                write!(f, "{c:?}")?;
            }
            writeln!(f)?;
        }
        match destructure_out(&self.residual) {
            Some((state, events)) => {
                write!(f, "YIELDS EVENTS [:")?;
                for (i, e) in events.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{e:?}")?;
                }
                writeln!(f, ":]")?;
                writeln!(f, "AND STATE     {state:?}")?;
            }
            None => {
                writeln!(f, "YIELDS        {:?}", self.residual)?;
            }
        }
        writeln!(
            f,
            "  ({} -> {} nodes, {:.1}x)",
            self.original_size,
            self.residual.size(),
            self.reduction()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemble_ir::models::{layer_defs, model, ModelCtx};

    fn theorem(name: &str, case: Case) -> OptTheorem {
        let defs = layer_defs();
        let m = model(name, &ModelCtx::new(3, 0)).unwrap();
        optimize_layer(&m, case, &defs, true)
    }

    #[test]
    fn bottom_theorem_matches_paper_shape() {
        let th = theorem("bottom", Case::DnSend);
        let (state, events) = destructure_out(&th.residual).expect("output form");
        // State unchanged, one event, header extended with the stamp.
        assert_eq!(state, ensemble_ir::term::var("state"));
        assert_eq!(events.len(), 1);
        let txt = th.to_string();
        assert!(txt.contains("OPTIMIZING LAYER bottom"));
        assert!(txt.contains("YIELDS EVENTS"));
        assert!(txt.contains("BottomHdr(0)"), "{txt}");
    }

    #[test]
    fn mnak_up_theorem_is_single_update_single_event() {
        let th = theorem("mnak", Case::UpCast);
        let (state, events) = destructure_out(&th.residual).expect("output form");
        // One SetF on the state, delivery plus deferred store.
        assert!(matches!(state, Term::SetF(..)));
        assert_eq!(events.len(), 2);
        // The model's slow paths are stubs (`Slow(state, tag)`), so the
        // measured reduction is a conservative floor of the paper's
        // "100-300 lines to a single update".
        assert!(th.reduction() > 1.3, "reduction {}", th.reduction());
    }

    #[test]
    fn local_dn_cast_is_a_split() {
        let th = theorem("local", Case::DnCast);
        let (_, events) = destructure_out(&th.residual).expect("output form");
        assert_eq!(events.len(), 2, "bounce + continue");
    }

    #[test]
    fn total_dn_cast_folds_sequencer_check() {
        let th = theorem("total", Case::DnCast);
        let txt = format!("{:?}", th.residual);
        assert!(
            !txt.contains("sequencer"),
            "rank==sequencer folded away: {txt}"
        );
        destructure_out(&th.residual).expect("fast path only");
    }

    #[test]
    fn every_stack10_case_destructures() {
        for name in [
            "partial_appl",
            "total",
            "local",
            "frag",
            "collect",
            "pt2ptw",
            "mflow",
            "pt2pt",
            "mnak",
            "bottom",
        ] {
            for case in Case::ALL {
                let th = theorem(name, case);
                assert!(
                    destructure_out(&th.residual).is_some(),
                    "{name}/{case:?} residual not in output form:\n{:?}",
                    th.residual
                );
            }
        }
    }

    #[test]
    fn reductions_are_substantial_on_branchy_paths() {
        // §4.1.2: "about 100-300 lines of code … reduced to a single
        // update of the layer's state and a single event". The receive
        // paths carry the interesting branches; our slow paths are stubs,
        // so these reductions are conservative floors.
        let mut total_orig = 0usize;
        let mut total_res = 0usize;
        for name in ["total", "collect", "pt2ptw", "mflow", "pt2pt", "mnak"] {
            for case in [Case::UpCast, Case::UpSend] {
                let th = theorem(name, case);
                total_orig += th.original_size;
                total_res += th.residual.size();
            }
        }
        assert!(
            total_res * 13 < total_orig * 10,
            "expected ≥1.3x reduction on receive paths: {total_orig} -> {total_res}"
        );
        // And no residual retains a slow path.
        for name in ["total", "collect", "pt2ptw", "mflow", "pt2pt", "mnak"] {
            for case in Case::ALL {
                let th = theorem(name, case);
                assert!(
                    !format!("{:?}", th.residual).contains("Slow"),
                    "{name}/{case:?}"
                );
            }
        }
    }
}
