//! The term simplifier: inlining, symbolic evaluation, directed
//! rewriting, and context-dependent simplification.
//!
//! §4.1.2 lists the three basic mechanisms; all are implemented here as a
//! single bottom-up pass iterated to a fixed point:
//!
//! 1. *Function inlining and symbolic evaluation* — `App` nodes whose
//!    callee is in the definition table are unfolded (with binder
//!    freshening); constructors select match arms; known booleans prune
//!    conditionals; primitives fold over constants.
//! 2. *Directed equality substitutions* — a small lemma library
//!    (`x+0 → x`, `¬¬x → x`, `t = t → true`, record-update read-through,
//!    …), each applied left-to-right only, guaranteeing termination.
//! 3. *Context-dependent simplifications* — conditions syntactically
//!    implied (or refuted) by the Common Case Predicate are replaced by
//!    constants, and matches whose scrutinee the CCP equates with a
//!    constructor are resolved, binding the constructor's argument terms.

use ensemble_ir::term::{Pattern, Prim, Term};
use ensemble_ir::FnDefs;
use ensemble_util::Intern;
use std::collections::HashMap;

/// The simplification context: inlinable definitions, CCP facts, and
/// known-constant state fields.
pub struct RewriteCtx<'a> {
    /// Definitions eligible for inlining.
    pub defs: &'a FnDefs,
    /// CCP conjuncts assumed true (normalized by one simplification pass
    /// themselves before use).
    pub facts: Vec<Term>,
    /// Known constant fields of the variable `state` (the dynamic phase's
    /// instance constants: rank, view stamp, windows, …).
    pub consts: HashMap<(Intern, Intern), Term>,
    fresh: std::cell::Cell<u64>,
}

impl<'a> RewriteCtx<'a> {
    /// Builds a context with no facts or constants.
    pub fn new(defs: &'a FnDefs) -> Self {
        RewriteCtx {
            defs,
            facts: Vec::new(),
            consts: HashMap::new(),
            fresh: std::cell::Cell::new(0),
        }
    }

    /// Adds a CCP conjunct (also registering its symmetric form when it
    /// is an equality). The conjunct is normalized first so that it stays
    /// syntactically comparable with simplified handler subterms.
    pub fn assume(&mut self, fact: Term) {
        let fact = simplify(self, &fact);
        if let Term::Prim(Prim::Eq, args) = &fact {
            let sym = Term::Prim(Prim::Eq, vec![args[1].clone(), args[0].clone()]);
            if !self.facts.contains(&sym) {
                self.facts.push(sym);
            }
        }
        if !self.facts.contains(&fact) {
            self.facts.push(fact);
        }
    }

    /// Declares `var.field` to be the constant `value`.
    pub fn declare_const(&mut self, var: &str, field: &str, value: Term) {
        self.consts
            .insert((Intern::from(var), Intern::from(field)), value);
    }

    fn fresh_name(&self, base: Intern) -> Intern {
        let n = self.fresh.get();
        self.fresh.set(n + 1);
        Intern::from(&format!("{base}%{n}"))
    }

    /// Whether `t` is assumed true by the CCP.
    fn implied(&self, t: &Term) -> bool {
        self.facts.contains(t)
    }

    /// Whether `t` is refuted by the CCP.
    fn refuted(&self, t: &Term) -> bool {
        if let Term::Prim(Prim::Not, args) = t {
            return self.implied(&args[0]);
        }
        self.facts.contains(&Term::Prim(Prim::Not, vec![t.clone()]))
    }

    /// Looks up a constructor equated with `t` by the CCP.
    fn equated_con(&self, t: &Term) -> Option<(Intern, Vec<Term>)> {
        for f in &self.facts {
            if let Term::Prim(Prim::Eq, args) = f {
                if &args[0] == t {
                    if let Term::Con(n, cargs) = &args[1] {
                        return Some((*n, cargs.clone()));
                    }
                }
            }
        }
        None
    }
}

/// Whether a term is a *value form* safe to duplicate/substitute freely.
///
/// The language is pure, so the only concern is size blow-up; handler
/// terms are small, and substituting these cheap forms keeps conditions
/// syntactically comparable with CCP facts (the context-dependent
/// simplification is purely syntactic).
fn is_value(t: &Term) -> bool {
    match t {
        Term::Unit | Term::Bool(_) | Term::Int(_) | Term::Var(_) => true,
        Term::Con(_, args) => args.iter().all(is_value),
        Term::GetF(e, _) => is_value(e),
        Term::Prim(_, args) => args.iter().all(is_value),
        _ => false,
    }
}

/// Counts structural occurrences of a free variable.
fn count_var(t: &Term, v: Intern) -> usize {
    match t {
        Term::Var(x) => usize::from(*x == v),
        Term::Unit | Term::Bool(_) | Term::Int(_) => 0,
        Term::Let(x, a, b) => count_var(a, v) + if *x == v { 0 } else { count_var(b, v) },
        Term::If(c, t1, e) => count_var(c, v) + count_var(t1, v) + count_var(e, v),
        Term::Con(_, args) | Term::Prim(_, args) | Term::App(_, args) => {
            args.iter().map(|a| count_var(a, v)).sum()
        }
        Term::Match(s, arms) => {
            count_var(s, v)
                + arms
                    .iter()
                    .map(|(p, b)| match p {
                        Pattern::Con(_, binds) if binds.contains(&v) => 0,
                        _ => count_var(b, v),
                    })
                    .sum::<usize>()
        }
        Term::GetF(e, _) => count_var(e, v),
        Term::SetF(e, _, val) => count_var(e, v) + count_var(val, v),
    }
}

/// Renames every binder in `t` to a fresh name.
///
/// Unused by default: inlining must produce *deterministic* normal forms
/// so that CCP facts and handler subterms stay syntactically comparable;
/// the layer models use globally distinct binder names instead (checked
/// by the capture test below). Kept for callers that inline foreign
/// terms.
#[allow(dead_code)]
fn freshen(ctx: &RewriteCtx<'_>, t: &Term) -> Term {
    fn go(ctx: &RewriteCtx<'_>, t: &Term, ren: &mut HashMap<Intern, Intern>) -> Term {
        match t {
            Term::Var(v) => Term::Var(*ren.get(v).unwrap_or(v)),
            Term::Unit | Term::Bool(_) | Term::Int(_) => t.clone(),
            Term::Let(x, a, b) => {
                let a2 = go(ctx, a, ren);
                let x2 = ctx.fresh_name(*x);
                let old = ren.insert(*x, x2);
                let b2 = go(ctx, b, ren);
                restore(ren, *x, old);
                Term::Let(x2, Box::new(a2), Box::new(b2))
            }
            Term::If(c, t1, e) => Term::If(
                Box::new(go(ctx, c, ren)),
                Box::new(go(ctx, t1, ren)),
                Box::new(go(ctx, e, ren)),
            ),
            Term::Con(n, args) => Term::Con(*n, args.iter().map(|a| go(ctx, a, ren)).collect()),
            Term::Prim(p, args) => Term::Prim(*p, args.iter().map(|a| go(ctx, a, ren)).collect()),
            Term::App(f, args) => Term::App(*f, args.iter().map(|a| go(ctx, a, ren)).collect()),
            Term::Match(s, arms) => {
                let s2 = go(ctx, s, ren);
                let arms2 = arms
                    .iter()
                    .map(|(p, b)| match p {
                        Pattern::Wild => (Pattern::Wild, go(ctx, b, ren)),
                        Pattern::Con(n, binds) => {
                            let binds2: Vec<Intern> =
                                binds.iter().map(|b| ctx.fresh_name(*b)).collect();
                            let olds: Vec<_> = binds
                                .iter()
                                .zip(binds2.iter())
                                .map(|(b, b2)| (*b, ren.insert(*b, *b2)))
                                .collect();
                            let body2 = go(ctx, b, ren);
                            for (b, old) in olds.into_iter().rev() {
                                restore(ren, b, old);
                            }
                            (Pattern::Con(*n, binds2), body2)
                        }
                    })
                    .collect();
                Term::Match(Box::new(s2), arms2)
            }
            Term::GetF(e, f) => Term::GetF(Box::new(go(ctx, e, ren)), *f),
            Term::SetF(e, f, v) => {
                Term::SetF(Box::new(go(ctx, e, ren)), *f, Box::new(go(ctx, v, ren)))
            }
        }
    }
    fn restore(ren: &mut HashMap<Intern, Intern>, k: Intern, old: Option<Intern>) {
        match old {
            Some(o) => {
                ren.insert(k, o);
            }
            None => {
                ren.remove(&k);
            }
        }
    }
    go(ctx, t, &mut HashMap::new())
}

/// One bottom-up simplification pass.
fn pass(ctx: &RewriteCtx<'_>, t: &Term) -> Term {
    match t {
        Term::Unit | Term::Bool(_) | Term::Int(_) | Term::Var(_) => t.clone(),
        Term::Let(x, a, b) => {
            let a2 = pass(ctx, a);
            let b2 = pass(ctx, b);
            let uses = count_var(&b2, *x);
            if uses == 0 {
                // The language is pure: a dead binding can be dropped.
                return b2;
            }
            if is_value(&a2) || uses <= 1 {
                return pass(ctx, &b2.subst(*x, &a2));
            }
            Term::Let(*x, Box::new(a2), Box::new(b2))
        }
        Term::If(c, th, el) => {
            let c2 = pass(ctx, c);
            match &c2 {
                Term::Bool(true) => return pass(ctx, th),
                Term::Bool(false) => return pass(ctx, el),
                _ => {}
            }
            if ctx.implied(&c2) {
                return pass(ctx, th);
            }
            if ctx.refuted(&c2) {
                return pass(ctx, el);
            }
            Term::If(
                Box::new(c2),
                Box::new(pass(ctx, th)),
                Box::new(pass(ctx, el)),
            )
        }
        Term::Con(n, args) => Term::Con(*n, args.iter().map(|a| pass(ctx, a)).collect()),
        Term::Match(s, arms) => {
            let s2 = pass(ctx, s);
            // Constructor scrutinee: select the arm.
            let resolved = match &s2 {
                Term::Con(n, cargs) => Some((*n, cargs.clone())),
                _ => ctx.equated_con(&s2),
            };
            if let Some((n, cargs)) = resolved {
                for (p, body) in arms {
                    match p {
                        Pattern::Wild => return pass(ctx, body),
                        Pattern::Con(pn, binds) if *pn == n && binds.len() == cargs.len() => {
                            let mut b = body.clone();
                            for (bind, arg) in binds.iter().zip(cargs.iter()) {
                                b = b.subst(*bind, arg);
                            }
                            return pass(ctx, &b);
                        }
                        _ => {}
                    }
                }
                // Fall through: leave the match (shape mismatch is a
                // model bug that concrete evaluation will surface).
            }
            Term::Match(
                Box::new(s2),
                arms.iter()
                    .map(|(p, b)| (p.clone(), pass(ctx, b)))
                    .collect(),
            )
        }
        Term::Prim(p, args) => {
            let args2: Vec<Term> = args.iter().map(|a| pass(ctx, a)).collect();
            fold_prim(ctx, *p, args2)
        }
        Term::GetF(e, f) => {
            let e2 = pass(ctx, e);
            // Read-through of functional record updates (directed lemma).
            if let Term::SetF(inner, g, v) = &e2 {
                if g == f {
                    return pass(ctx, v);
                }
                return pass(ctx, &Term::GetF(inner.clone(), *f));
            }
            // Instance constants.
            if let Term::Var(v) = &e2 {
                if let Some(c) = ctx.consts.get(&(*v, *f)) {
                    return c.clone();
                }
            }
            Term::GetF(Box::new(e2), *f)
        }
        Term::SetF(e, f, v) => {
            let e2 = pass(ctx, e);
            let v2 = pass(ctx, v);
            // Collapse repeated writes to the same field.
            if let Term::SetF(inner, g, _) = &e2 {
                if g == f {
                    return Term::SetF(inner.clone(), *f, Box::new(v2));
                }
            }
            Term::SetF(Box::new(e2), *f, Box::new(v2))
        }
        Term::App(fname, args) => {
            let args2: Vec<Term> = args.iter().map(|a| pass(ctx, a)).collect();
            if let Some((params, body)) = ctx.defs.get(*fname) {
                let params = params.to_vec();
                let mut b = body.clone();
                for (p, a) in params.iter().zip(args2.iter()) {
                    b = b.subst(*p, a);
                }
                return pass(ctx, &b);
            }
            Term::App(*fname, args2)
        }
    }
}

fn fold_prim(ctx: &RewriteCtx<'_>, p: Prim, args: Vec<Term>) -> Term {
    use Term::{Bool, Int};
    let t = Term::Prim(p, args.clone());
    if ctx.implied(&t) {
        return Bool(true);
    }
    if ctx.refuted(&t) {
        return Bool(false);
    }
    match (p, args.as_slice()) {
        (Prim::Add, [Int(a), Int(b)]) => Int(a + b),
        (Prim::Add, [x, Int(0)]) | (Prim::Add, [Int(0), x]) => x.clone(),
        (Prim::Sub, [Int(a), Int(b)]) => Int(a - b),
        (Prim::Sub, [x, Int(0)]) => x.clone(),
        (Prim::Sub, [a, b]) if a == b && is_value(a) => Int(0),
        (Prim::Eq, [a, b]) if a == b && is_value(a) => Bool(true),
        (Prim::Eq, [Int(a), Int(b)]) => Bool(a == b),
        (Prim::Eq, [Bool(a), Bool(b)]) => Bool(a == b),
        (Prim::Eq, [Term::Con(n1, a1), Term::Con(n2, a2)])
            if n1 != n2 && a1.iter().all(is_value) && a2.iter().all(is_value) =>
        {
            Bool(false)
        }
        // Constructor-equality decomposition: `C(a…) = C(b…)` becomes the
        // conjunction of the argument equalities (injectivity of data
        // constructors).
        (Prim::Eq, [Term::Con(n1, a1), Term::Con(n2, a2)]) if n1 == n2 && a1.len() == a2.len() => {
            let mut acc = Bool(true);
            for (x, y) in a1.iter().zip(a2.iter()) {
                let e = fold_prim(ctx, Prim::Eq, vec![x.clone(), y.clone()]);
                acc = fold_prim(ctx, Prim::And, vec![acc, e]);
            }
            acc
        }
        (Prim::Lt, [Int(a), Int(b)]) => Bool(a < b),
        (Prim::And, [Bool(true), x]) | (Prim::And, [x, Bool(true)]) => x.clone(),
        (Prim::And, [Bool(false), _]) | (Prim::And, [_, Bool(false)]) => Bool(false),
        (Prim::Or, [Bool(false), x]) | (Prim::Or, [x, Bool(false)]) => x.clone(),
        (Prim::Or, [Bool(true), _]) | (Prim::Or, [_, Bool(true)]) => Bool(true),
        (Prim::Not, [Bool(b)]) => Bool(!b),
        (Prim::Not, [Term::Prim(Prim::Not, inner)]) => inner[0].clone(),
        (Prim::VecGet, [Term::Prim(Prim::VecSet, set_args), idx])
            if &set_args[1] == idx && is_value(idx) =>
        {
            // Read-through of a vector update at the same index.
            set_args[2].clone()
        }
        _ => t,
    }
}

/// Simplifies `t` to a fixed point (bounded at 64 passes).
pub fn simplify(ctx: &RewriteCtx<'_>, t: &Term) -> Term {
    let mut cur = t.clone();
    for _ in 0..64 {
        let next = pass(ctx, &cur);
        if next == cur {
            return cur;
        }
        cur = next;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemble_ir::models::{layer_defs, model, Case, ModelCtx};
    use ensemble_ir::term::{add, app, con, eq, getf, if_, let_, match_, pat, setf, var};

    fn defs() -> FnDefs {
        layer_defs()
    }

    #[test]
    fn constant_folding() {
        let d = defs();
        let ctx = RewriteCtx::new(&d);
        assert_eq!(
            simplify(&ctx, &add(Term::Int(2), Term::Int(3))),
            Term::Int(5)
        );
        assert_eq!(simplify(&ctx, &add(var("x"), Term::Int(0))), var("x"));
    }

    #[test]
    fn if_pruning_by_fact() {
        let d = defs();
        let mut ctx = RewriteCtx::new(&d);
        ctx.assume(eq(var("a"), var("b")));
        let t = if_(eq(var("a"), var("b")), Term::Int(1), Term::Int(2));
        assert_eq!(simplify(&ctx, &t), Term::Int(1));
        // Symmetric form works too.
        let t = if_(eq(var("b"), var("a")), Term::Int(1), Term::Int(2));
        assert_eq!(simplify(&ctx, &t), Term::Int(1));
    }

    #[test]
    fn match_resolution_by_fact() {
        let d = defs();
        let mut ctx = RewriteCtx::new(&d);
        ctx.assume(eq(var("h"), con("Data", vec![var("s")])));
        let t = match_(
            var("h"),
            vec![
                (pat("Data", &["x"]), add(var("x"), Term::Int(1))),
                (pat("Ack", &["a"]), Term::Int(0)),
            ],
        );
        assert_eq!(simplify(&ctx, &t), add(var("s"), Term::Int(1)));
    }

    #[test]
    fn inlining_unfolds_definitions() {
        let d = defs();
        let ctx = RewriteCtx::new(&d);
        // push then pop is the identity on an explicit message.
        let m = con(
            "Msg",
            vec![con("nil", vec![]), var("payload"), Term::Int(4)],
        );
        let t = app("pop", vec![app("push", vec![m.clone(), con("H", vec![])])]);
        assert_eq!(simplify(&ctx, &t), m);
    }

    #[test]
    fn record_read_through() {
        let d = defs();
        let ctx = RewriteCtx::new(&d);
        let t = getf(setf(var("s"), "n", Term::Int(5)), "n");
        assert_eq!(simplify(&ctx, &t), Term::Int(5));
        let t = getf(setf(var("s"), "n", Term::Int(5)), "other");
        assert_eq!(simplify(&ctx, &t), getf(var("s"), "other"));
    }

    #[test]
    fn instance_constants_fold() {
        let d = defs();
        let mut ctx = RewriteCtx::new(&d);
        ctx.declare_const("state", "rank", Term::Int(0));
        ctx.declare_const("state", "sequencer", Term::Int(0));
        let t = eq(getf(var("state"), "rank"), getf(var("state"), "sequencer"));
        assert_eq!(simplify(&ctx, &t), Term::Bool(true));
    }

    #[test]
    fn let_inlining_of_values() {
        let d = defs();
        let ctx = RewriteCtx::new(&d);
        let t = let_("x", getf(var("s"), "n"), add(var("x"), Term::Int(1)));
        assert_eq!(simplify(&ctx, &t), add(getf(var("s"), "n"), Term::Int(1)));
    }

    /// The paper's Bottom example: under the CCP the down-send residual is
    /// a single event with the header extended, and the state unchanged.
    #[test]
    fn bottom_dn_send_reduces_to_single_event() {
        let d = defs();
        let ctxm = ModelCtx::new(3, 0);
        let m = model("bottom", &ctxm).unwrap();
        let mut ctx = RewriteCtx::new(&d);
        ctx.declare_const("state", "view_ltime", Term::Int(0));
        // Entry message shape: empty payload msg with symbolic hdr list.
        let entry = m.handler(Case::DnSend).clone();
        let s = simplify(&ctx, &entry);
        // Residual: Out(state, cons(DnSend(dst, Msg(cons(BottomHdr(0), …)…)), nil))
        // — i.e. no If, no Match on state, no App left except none.
        let txt = format!("{s:?}");
        assert!(txt.contains("BottomHdr(0)"), "constants folded: {txt}");
        assert!(!txt.contains("slow"), "no slow path: {txt}");
        assert!(txt.starts_with("Out") || txt.contains("Out("), "{txt}");
    }

    #[test]
    fn mnak_up_cast_reduces_under_ccp() {
        let d = defs();
        let ctxm = ModelCtx::new(3, 0);
        let m = model("mnak", &ctxm).unwrap();
        let mut ctx = RewriteCtx::new(&d);
        for f in m.ccp(Case::UpCast) {
            ctx.assume(f.clone());
        }
        let s = simplify(&ctx, m.handler(Case::UpCast));
        let txt = format!("{s:?}");
        assert!(!txt.contains("Slow"), "slow path eliminated: {txt}");
        assert!(txt.contains("UpCast"), "delivers: {txt}");
        // The residual is dramatically smaller than the original.
        assert!(
            s.size() * 2 < m.handler(Case::UpCast).size() * 3,
            "{} vs {}",
            s.size(),
            m.handler(Case::UpCast).size()
        );
    }
}
