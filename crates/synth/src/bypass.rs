//! Code generation: from stack theorems to executable bypass code.
//!
//! The final step of §4.1.3: "their results are converted into OCaml code
//! that can be compiled and linked to the rest of the communication
//! system". Here the composed residuals are compiled into a compact
//! stack-machine program over a *flattened* state (every layer's scalar
//! and vector fields in two dense arrays), plus the compressed-header
//! templates. The resulting [`StackBypass`] is the MACH configuration of
//! §4.2: each call first evaluates the compiled CCP; on failure the caller
//! must route the event through the real stack instead.
//!
//! Non-critical work the theorems marked `Defer` is queued and replayed
//! off the critical path via [`StackBypass::drain_deferred`] (§4
//! optimization 3: "delaying non-critical message processing").

use crate::compose::{StackSynthesis, StackTheorem};
use crate::compress::HeaderTemplate;
use ensemble_event::Payload;
use ensemble_ir::models::Case;
use ensemble_ir::term::{Prim, Term};
use ensemble_ir::Val;
use ensemble_transport::CompressedHdr;
use ensemble_util::Intern;
use std::collections::HashMap;
use std::fmt;

/// One stack-machine instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Push a constant.
    Const(i64),
    /// Push call input `k` (origin/dst, len, f0…).
    Input(u8),
    /// Push scalar state field.
    Field(u16),
    /// Pop an index; push `vec[idx]`.
    VecAt(u16),
    /// Push the minimum element of a vector field, excluding `skip`
    /// (mflow's "slowest receiver" with the sender's own slot ignored).
    MinVecSkip(u16, u16),
    /// Arithmetic / logic (pop two, push one — `Not` pops one).
    Add,
    /// Subtraction.
    Sub,
    /// Equality.
    Eq,
    /// Less-than.
    Lt,
    /// Conjunction.
    And,
    /// Disjunction.
    Or,
    /// Negation.
    Not,
    /// Pop a value into a scalar field.
    StoreField(u16),
    /// Pop an index, then a value, into a vector field.
    StoreVecAt(u16),
}

/// A straight-line program.
#[derive(Clone, Debug, Default)]
pub struct Program {
    ops: Vec<Op>,
}

impl Program {
    /// Number of instructions (the Table 2(b) size metric for bypasses).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Executes over the given state, returning the top of stack (0 for
    /// store-only programs).
    fn run(&self, scalars: &mut [i64], vecs: &mut [Vec<i64>], inputs: &[i64]) -> i64 {
        let mut stack: [i64; 16] = [0; 16];
        let mut sp = 0usize;
        macro_rules! push {
            ($v:expr) => {{
                stack[sp] = $v;
                sp += 1;
            }};
        }
        macro_rules! pop {
            () => {{
                sp -= 1;
                stack[sp]
            }};
        }
        for op in &self.ops {
            match *op {
                Op::Const(c) => push!(c),
                Op::Input(k) => push!(inputs[k as usize]),
                Op::Field(f) => push!(scalars[f as usize]),
                Op::VecAt(f) => {
                    let i = pop!() as usize;
                    push!(vecs[f as usize][i]);
                }
                Op::MinVecSkip(f, skip) => {
                    let v = &vecs[f as usize];
                    let m = v
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != skip as usize)
                        .map(|(_, &x)| x)
                        .min()
                        .unwrap_or(i64::MAX);
                    push!(m);
                }
                Op::Add => {
                    let b = pop!();
                    let a = pop!();
                    push!(a + b);
                }
                Op::Sub => {
                    let b = pop!();
                    let a = pop!();
                    push!(a - b);
                }
                Op::Eq => {
                    let b = pop!();
                    let a = pop!();
                    push!(i64::from(a == b));
                }
                Op::Lt => {
                    let b = pop!();
                    let a = pop!();
                    push!(i64::from(a < b));
                }
                Op::And => {
                    let b = pop!();
                    let a = pop!();
                    push!(a & b);
                }
                Op::Or => {
                    let b = pop!();
                    let a = pop!();
                    push!(a | b);
                }
                Op::Not => {
                    let a = pop!();
                    push!(i64::from(a == 0));
                }
                Op::StoreField(f) => {
                    scalars[f as usize] = pop!();
                }
                Op::StoreVecAt(f) => {
                    let i = pop!() as usize;
                    let v = pop!();
                    vecs[f as usize][i] = v;
                }
            }
        }
        if sp > 0 {
            stack[sp - 1]
        } else {
            0
        }
    }
}

/// Code-generation failures.
#[derive(Clone, Debug)]
pub enum CodegenError {
    /// A term form the compiler does not support survived simplification.
    Unsupported(String),
    /// A state variable referenced an unknown layer/field.
    UnknownField(String),
    /// A delivery event still carried headers.
    ResidualHeaders(String),
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::Unsupported(t) => write!(f, "unsupported term: {t}"),
            CodegenError::UnknownField(t) => write!(f, "unknown state field: {t}"),
            CodegenError::ResidualHeaders(t) => write!(f, "delivery kept headers: {t}"),
        }
    }
}

impl std::error::Error for CodegenError {}

/// A compiled fundamental case.
#[derive(Clone, Debug, Default)]
struct CompiledCase {
    /// The CCP (returns a boolean).
    ccp: Program,
    /// Wire field programs, in template order.
    wire_fields: Vec<Program>,
    /// The wire destination (sends only; returns the rank).
    wire_dst: Option<Program>,
    /// State updates (store-only program).
    update: Program,
    /// Origin program for an application delivery, if the case delivers.
    deliver_origin: Option<Program>,
}

/// Dense case index.
fn case_index(case: Case) -> usize {
    match case {
        Case::DnCast => 0,
        Case::UpCast => 1,
        Case::DnSend => 2,
        Case::UpSend => 3,
    }
}

/// A deferred (non-critical) work item.
#[derive(Clone, Debug)]
pub struct Deferred {
    /// Which layer deferred it.
    pub layer: usize,
    /// The work tag (e.g. `StoreOwn`).
    pub tag: String,
    /// The payload retained for buffering, if any.
    pub payload: Option<Payload>,
}

/// The wire half of a bypass result: `(dst rank or None for cast, bytes)`.
type WireOut = Option<(Option<u16>, Vec<u8>)>;
/// The delivery half of a bypass result: `(origin, payload)`.
type DeliverOut = Option<(u16, Payload)>;

/// The output of one bypass invocation.
#[derive(Clone, Debug)]
pub enum BypassOutput {
    /// The CCP failed: the event must take the real stack.
    Fallback,
    /// The fast path ran.
    Done {
        /// Wire bytes to transmit: `(dst rank or None for cast, bytes)`.
        wire: Option<(Option<u16>, Vec<u8>)>,
        /// A local delivery `(origin, payload)`.
        deliver: Option<(u16, Payload)>,
    },
}

/// The executable machine-synthesized bypass (MACH).
pub struct StackBypass {
    /// The base stack identifier.
    pub stack_id: u32,
    /// Wire identifier for cast traffic (base id ⊕ template constants).
    cast_id: u32,
    /// Wire identifier for send traffic.
    send_id: u32,
    scalars: Vec<i64>,
    vecs: Vec<Vec<i64>>,
    cases: [CompiledCase; 4],
    cast_template: HeaderTemplate,
    send_template: HeaderTemplate,
    deferred: Vec<Deferred>,
    defer_specs: [Vec<(usize, String)>; 4],
    /// CCP failures observed (fallbacks taken).
    pub fallbacks: u64,
}

/// Maps `(layer, field)` names to flat slots.
struct Layout {
    scalars: HashMap<(usize, Intern), u16>,
    vecs: HashMap<(usize, Intern), u16>,
    init_scalars: Vec<i64>,
    init_vecs: Vec<Vec<i64>>,
}

fn build_layout(synth: &StackSynthesis) -> Layout {
    let mut l = Layout {
        scalars: HashMap::new(),
        vecs: HashMap::new(),
        init_scalars: Vec::new(),
        init_vecs: Vec::new(),
    };
    for (i, m) in synth.models.iter().enumerate() {
        if let Val::Record(fields) = &m.init {
            for (name, v) in fields {
                match v {
                    Val::Int(x) => {
                        l.scalars.insert((i, *name), l.init_scalars.len() as u16);
                        l.init_scalars.push(*x);
                    }
                    Val::Bool(b) => {
                        l.scalars.insert((i, *name), l.init_scalars.len() as u16);
                        l.init_scalars.push(i64::from(*b));
                    }
                    Val::Vector(xs) => {
                        l.vecs.insert((i, *name), l.init_vecs.len() as u16);
                        l.init_vecs
                            .push(xs.iter().map(|x| x.as_int().unwrap_or(0)).collect());
                    }
                    _ => {}
                }
            }
        }
    }
    l
}

/// Parses a composition state variable `s_<idx>_<name>` into its index.
fn state_index(v: Intern) -> Option<usize> {
    let s = v.as_str();
    let rest = s.strip_prefix("s_")?;
    let idx_part = rest.split('_').next()?;
    idx_part.parse().ok()
}

struct Compiler<'a> {
    layout: &'a Layout,
    inputs: HashMap<Intern, u8>,
}

impl<'a> Compiler<'a> {
    fn expr(&self, t: &Term, ops: &mut Vec<Op>) -> Result<(), CodegenError> {
        match t {
            Term::Int(i) => ops.push(Op::Const(*i)),
            Term::Bool(b) => ops.push(Op::Const(i64::from(*b))),
            Term::Var(v) => {
                let k = self
                    .inputs
                    .get(v)
                    .ok_or_else(|| CodegenError::Unsupported(format!("free var {v}")))?;
                ops.push(Op::Input(*k));
            }
            Term::GetF(e, f) => match &**e {
                Term::Var(v) => {
                    let idx = state_index(*v)
                        .ok_or_else(|| CodegenError::UnknownField(format!("{v}.{f}")))?;
                    let slot = self
                        .layout
                        .scalars
                        .get(&(idx, *f))
                        .ok_or_else(|| CodegenError::UnknownField(format!("{v}.{f}")))?;
                    ops.push(Op::Field(*slot));
                }
                other => return Err(CodegenError::Unsupported(format!("GetF on {other:?}"))),
            },
            Term::Prim(Prim::VecGet, args) => {
                let slot = self.vec_slot(&args[0])?;
                self.expr(&args[1], ops)?;
                ops.push(Op::VecAt(slot));
            }
            Term::Prim(Prim::MinVecSkip, args) => {
                let slot = self.vec_slot(&args[0])?;
                let skip = match &args[1] {
                    Term::Int(i) => *i as u16,
                    other => {
                        return Err(CodegenError::Unsupported(format!(
                            "non-constant MinVecSkip index {other:?}"
                        )))
                    }
                };
                ops.push(Op::MinVecSkip(slot, skip));
            }
            Term::Prim(p, args) => {
                for a in args {
                    self.expr(a, ops)?;
                }
                ops.push(match p {
                    Prim::Add => Op::Add,
                    Prim::Sub => Op::Sub,
                    Prim::Eq => Op::Eq,
                    Prim::Lt => Op::Lt,
                    Prim::And => Op::And,
                    Prim::Or => Op::Or,
                    Prim::Not => Op::Not,
                    other => return Err(CodegenError::Unsupported(format!("{other:?}"))),
                });
            }
            other => return Err(CodegenError::Unsupported(format!("{other:?}"))),
        }
        Ok(())
    }

    fn vec_slot(&self, t: &Term) -> Result<u16, CodegenError> {
        match t {
            Term::GetF(e, f) => match &**e {
                Term::Var(v) => {
                    let idx = state_index(*v)
                        .ok_or_else(|| CodegenError::UnknownField(format!("{v}.{f}")))?;
                    self.layout
                        .vecs
                        .get(&(idx, *f))
                        .copied()
                        .ok_or_else(|| CodegenError::UnknownField(format!("{v}.{f}")))
                }
                other => Err(CodegenError::Unsupported(format!("vec base {other:?}"))),
            },
            other => Err(CodegenError::Unsupported(format!("vec ref {other:?}"))),
        }
    }

    /// Compiles a state-update term (a `SetF` chain over `s_i_…`).
    fn update(&self, layer: usize, t: &Term, ops: &mut Vec<Op>) -> Result<(), CodegenError> {
        // Collect (field, value) pairs innermost-first.
        let mut chain = Vec::new();
        let mut cur = t;
        loop {
            match cur {
                Term::SetF(inner, f, v) => {
                    chain.push((*f, (**v).clone()));
                    cur = inner;
                }
                Term::Var(v) if state_index(*v) == Some(layer) => break,
                other => {
                    return Err(CodegenError::Unsupported(format!(
                        "state update base {other:?}"
                    )))
                }
            }
        }
        chain.reverse();
        // Two-phase: evaluate all values against the pre-state, then
        // store (reverse order so the stack pops match).
        let mut stores: Vec<Op> = Vec::new();
        for (f, v) in &chain {
            if let Some(&slot) = self.layout.scalars.get(&(layer, *f)) {
                self.expr(v, ops)?;
                stores.push(Op::StoreField(slot));
            } else if let Some(&slot) = self.layout.vecs.get(&(layer, *f)) {
                // Value must be `VecSet(GetF(s, f), idx, x)`.
                match v {
                    Term::Prim(Prim::VecSet, args) => {
                        self.expr(&args[2], ops)?;
                        self.expr(&args[1], ops)?;
                        stores.push(Op::StoreVecAt(slot));
                    }
                    other => {
                        return Err(CodegenError::Unsupported(format!(
                            "vector update {other:?}"
                        )))
                    }
                }
            } else {
                return Err(CodegenError::UnknownField(format!("{layer}.{f}")));
            }
        }
        for s in stores.into_iter().rev() {
            ops.push(s);
        }
        Ok(())
    }
}

fn compile_case(
    synth: &StackSynthesis,
    layout: &Layout,
    case: Case,
) -> Result<CompiledCase, CodegenError> {
    let Some(th): Option<&StackTheorem> = synth.cases.get(&case) else {
        // This rank has no fast path for the case: compile a CCP that
        // always fails, so every such event takes the real stack.
        return Ok(CompiledCase {
            ccp: Program {
                ops: vec![Op::Const(0)],
            },
            ..CompiledCase::default()
        });
    };
    let template = match case {
        Case::DnCast | Case::UpCast => &synth.cast_template,
        Case::DnSend | Case::UpSend => &synth.send_template,
    };
    let mut inputs: HashMap<Intern, u8> = HashMap::new();
    inputs.insert(Intern::from("origin"), 0);
    inputs.insert(Intern::from("dst"), 0);
    inputs.insert(Intern::from("len"), 1);
    for k in 0..template.nfields() {
        inputs.insert(Intern::from(&format!("f{k}")), 2 + k as u8);
    }
    let c = Compiler { layout, inputs };

    let mut cc = CompiledCase::default();

    // CCP: conjunction of all conjuncts.
    let mut ops = Vec::new();
    ops.push(Op::Const(1));
    for (_, conj) in &th.ccp {
        c.expr(conj, &mut ops)?;
        ops.push(Op::And);
    }
    cc.ccp = Program { ops };

    // Wire fields (down cases only produce wire events).
    if let Some(wire_ev) = th.wire_events.first() {
        for src in &template.sources {
            let mut ops = Vec::new();
            c.expr(src, &mut ops)?;
            cc.wire_fields.push(Program { ops });
        }
        if let Term::Con(n, args) = wire_ev {
            if n.as_str() == "DnSend" {
                let mut ops = Vec::new();
                c.expr(&args[0], &mut ops)?;
                cc.wire_dst = Some(Program { ops });
            }
        }
    }

    // Application delivery.
    if let Some(Term::Con(_, args)) = th.app_events.first() {
        {
            // args = [origin, msg]; the delivered message must be bare.
            if let Term::Con(mn, margs) = &args[1] {
                if mn.as_str() == "Msg" {
                    let empty =
                        matches!(&margs[0], Term::Con(h, a) if h.as_str() == "nil" && a.is_empty());
                    if !empty {
                        return Err(CodegenError::ResidualHeaders(format!("{:?}", margs[0])));
                    }
                }
            }
            let mut ops = Vec::new();
            c.expr(&args[0], &mut ops)?;
            cc.deliver_origin = Some(Program { ops });
        }
    }

    // State updates.
    let mut ops = Vec::new();
    for (layer, st) in &th.state_updates {
        c.update(*layer, st, &mut ops)?;
    }
    cc.update = Program { ops };
    Ok(cc)
}

impl StackBypass {
    /// Compiles a synthesized stack into an executable bypass for the
    /// process at `my_rank`.
    pub fn compile(synth: &StackSynthesis, _my_rank: u16) -> Result<StackBypass, CodegenError> {
        let layout = build_layout(synth);
        let mut cases: [CompiledCase; 4] = Default::default();
        let mut defer_specs: [Vec<(usize, String)>; 4] = Default::default();
        for case in Case::ALL {
            cases[case_index(case)] = compile_case(synth, &layout, case)?;
            let Some(th) = synth.cases.get(&case) else {
                continue; // Absent case: always falls back, defers nothing.
            };
            defer_specs[case_index(case)] = th
                .defers
                .iter()
                .map(|(l, d)| {
                    let tag = match d {
                        Term::Con(_, args) => match args.first() {
                            Some(Term::Con(t, _)) => t.as_str(),
                            _ => "work".to_owned(),
                        },
                        _ => "work".to_owned(),
                    };
                    (*l, tag)
                })
                .collect::<Vec<_>>();
        }
        Ok(StackBypass {
            stack_id: synth.stack_id,
            cast_id: synth.stack_id ^ synth.cast_template.const_hash(),
            send_id: synth.stack_id ^ synth.send_template.const_hash(),
            scalars: layout.init_scalars,
            vecs: layout.init_vecs,
            cases,
            cast_template: synth.cast_template.clone(),
            send_template: synth.send_template.clone(),
            deferred: Vec::new(),
            defer_specs,
            fallbacks: 0,
        })
    }

    fn run_case(
        &mut self,
        case: Case,
        who: u16,
        len: i64,
        fields: &[u64],
        payload: &Payload,
    ) -> Option<(WireOut, DeliverOut)> {
        let mut inputs: [i64; 10] = [0; 10];
        inputs[0] = who as i64;
        inputs[1] = len;
        for (k, &f) in fields.iter().enumerate().take(8) {
            inputs[2 + k] = f as i64;
        }
        // Field-level split borrows: programs are read-only, state is
        // mutable — no per-call cloning on the critical path.
        let cc = &self.cases[case_index(case)];
        if cc.ccp.run(&mut self.scalars, &mut self.vecs, &inputs) == 0 {
            self.fallbacks += 1;
            return None;
        }
        // Wire output first (the critical path), then the state update.
        let wire = if cc.wire_fields.is_empty() {
            None
        } else {
            let case_tag = case_tag(case);
            let wire_id = match case {
                Case::DnCast | Case::UpCast => self.cast_id,
                Case::DnSend | Case::UpSend => self.send_id,
            };
            let fields: Vec<u64> = cc
                .wire_fields
                .iter()
                .map(|p| p.run(&mut self.scalars, &mut self.vecs, &inputs) as u64)
                .collect();
            let hdr = CompressedHdr::new(wire_id, case_tag, fields);
            let bytes = hdr.encode(&payload.gather());
            let dst = cc
                .wire_dst
                .as_ref()
                .map(|p| p.run(&mut self.scalars, &mut self.vecs, &inputs) as u16);
            Some((dst, bytes))
        };
        let deliver = cc.deliver_origin.as_ref().map(|p| {
            let o = p.run(&mut self.scalars, &mut self.vecs, &inputs) as u16;
            (o, payload.clone())
        });
        cc.update.run(&mut self.scalars, &mut self.vecs, &inputs);
        // Queue the deferred work (buffering etc.) off the critical path.
        let specs = &self.defer_specs[case_index(case)];
        for (l, tag) in specs {
            self.deferred.push(Deferred {
                layer: *l,
                tag: tag.clone(),
                payload: Some(payload.clone()),
            });
        }
        Some((wire, deliver))
    }

    /// Sends a multicast through the bypass.
    pub fn dn_cast(&mut self, payload: &Payload) -> BypassOutput {
        match self.run_case(Case::DnCast, 0, payload.len() as i64, &[], payload) {
            None => BypassOutput::Fallback,
            Some((wire, deliver)) => BypassOutput::Done { wire, deliver },
        }
    }

    /// Sends a point-to-point message through the bypass.
    pub fn dn_send(&mut self, dst: u16, payload: &Payload) -> BypassOutput {
        match self.run_case(Case::DnSend, dst, payload.len() as i64, &[], payload) {
            None => BypassOutput::Fallback,
            Some((wire, deliver)) => BypassOutput::Done { wire, deliver },
        }
    }

    fn up_common(&mut self, case: Case, origin: u16, bytes: &[u8]) -> BypassOutput {
        let Ok((hdr, body)) = CompressedHdr::decode(bytes) else {
            self.fallbacks += 1;
            return BypassOutput::Fallback;
        };
        let wire_id = match case {
            Case::DnCast | Case::UpCast => self.cast_id,
            Case::DnSend | Case::UpSend => self.send_id,
        };
        if hdr.stack_id != wire_id || hdr.case != case_tag(case_dn_of(case)) {
            self.fallbacks += 1;
            return BypassOutput::Fallback;
        }
        let payload = Payload::from_slice(body);
        match self.run_case(case, origin, payload.len() as i64, &hdr.fields, &payload) {
            None => BypassOutput::Fallback,
            Some((wire, deliver)) => BypassOutput::Done { wire, deliver },
        }
    }

    /// Whether `bytes` carry *this* stack's compressed wire format for
    /// the given direction (stack id and case tag both match),
    /// regardless of whether the CCP would accept them right now. The
    /// runtime's receive triage uses this to tell an out-of-order
    /// fast-path packet (stash it) from generic engine traffic (route it
    /// to the full stack): `CompressedHdr::decode` alone is not a
    /// discriminator — it has no magic and parses many byte strings.
    pub fn recognizes(&self, bytes: &[u8], is_cast: bool) -> bool {
        let Ok((hdr, _)) = CompressedHdr::decode(bytes) else {
            return false;
        };
        let (wire_id, case) = if is_cast {
            (self.cast_id, Case::UpCast)
        } else {
            (self.send_id, Case::UpSend)
        };
        hdr.stack_id == wire_id && hdr.case == case_tag(case_dn_of(case))
    }

    /// Receives a multicast's compressed bytes.
    pub fn up_cast(&mut self, origin: u16, bytes: &[u8]) -> BypassOutput {
        self.up_common(Case::UpCast, origin, bytes)
    }

    /// Receives a point-to-point message's compressed bytes.
    pub fn up_send(&mut self, origin: u16, bytes: &[u8]) -> BypassOutput {
        self.up_common(Case::UpSend, origin, bytes)
    }

    /// Bench hook: the Table 1 "stack" segment of a down case — CCP,
    /// wire-field computation, and state update, with the transport
    /// encoding and the deferred buffering excluded (they are measured
    /// separately / off the critical path). Returns the field count, or
    /// `None` on CCP failure.
    pub fn bench_dn_stack(&mut self, case: Case, who: u16, len: i64) -> Option<usize> {
        let mut inputs: [i64; 10] = [0; 10];
        inputs[0] = who as i64;
        inputs[1] = len;
        let cc = &self.cases[case_index(case)];
        if cc.ccp.run(&mut self.scalars, &mut self.vecs, &inputs) == 0 {
            return None;
        }
        let mut nf = 0;
        for p in &cc.wire_fields {
            let _ = p.run(&mut self.scalars, &mut self.vecs, &inputs);
            nf += 1;
        }
        if let Some(p) = &cc.wire_dst {
            let _ = p.run(&mut self.scalars, &mut self.vecs, &inputs);
        }
        cc.update.run(&mut self.scalars, &mut self.vecs, &inputs);
        Some(nf)
    }

    /// Bench hook: the Table 1 "stack" segment of an up case — CCP, state
    /// update and delivery-origin computation over already-decoded fields
    /// (the transport decode is measured separately).
    pub fn bench_up_stack(
        &mut self,
        case: Case,
        origin: u16,
        len: i64,
        fields: &[u64],
    ) -> Option<u16> {
        let mut inputs: [i64; 10] = [0; 10];
        inputs[0] = origin as i64;
        inputs[1] = len;
        for (k, &f) in fields.iter().enumerate().take(8) {
            inputs[2 + k] = f as i64;
        }
        let cc = &self.cases[case_index(case)];
        if cc.ccp.run(&mut self.scalars, &mut self.vecs, &inputs) == 0 {
            return None;
        }
        let o = cc
            .deliver_origin
            .as_ref()
            .map(|p| p.run(&mut self.scalars, &mut self.vecs, &inputs) as u16)
            .unwrap_or(origin);
        cc.update.run(&mut self.scalars, &mut self.vecs, &inputs);
        Some(o)
    }

    /// Bench hook: the CCP check alone (the paper reports ≈ 3 µs).
    pub fn bench_ccp(&mut self, case: Case, who: u16, len: i64) -> bool {
        let mut inputs: [i64; 10] = [0; 10];
        inputs[0] = who as i64;
        inputs[1] = len;
        let cc = &self.cases[case_index(case)];
        cc.ccp.run(&mut self.scalars, &mut self.vecs, &inputs) != 0
    }

    /// Pending deferred work items.
    pub fn deferred_len(&self) -> usize {
        self.deferred.len()
    }

    /// Processes (drains) the deferred non-critical work, returning how
    /// many items were handled.
    pub fn drain_deferred(&mut self) -> usize {
        let n = self.deferred.len();
        self.deferred.clear();
        n
    }

    /// Instruction counts per case (CCP, wire, update) — the generated
    /// "object code size" reported in Table 2(b).
    pub fn program_sizes(&self, case: Case) -> (usize, usize, usize) {
        let cc = &self.cases[case_index(case)];
        (
            cc.ccp.len(),
            cc.wire_fields.iter().map(Program::len).sum::<usize>()
                + cc.wire_dst.as_ref().map(Program::len).unwrap_or(0),
            cc.update.len(),
        )
    }

    /// The compressed wire size for a case's traffic kind.
    pub fn wire_bytes(&self, case: Case) -> usize {
        match case {
            Case::DnCast | Case::UpCast => self.cast_template.wire_bytes(),
            Case::DnSend | Case::UpSend => self.send_template.wire_bytes(),
        }
    }

    /// A scalar state field value, for tests (`layer.field` by flat slot).
    pub fn scalar(&self, slot: usize) -> i64 {
        self.scalars[slot]
    }
}

fn case_tag(case: Case) -> u8 {
    match case {
        Case::DnCast | Case::UpCast => 0,
        Case::DnSend | Case::UpSend => 1,
    }
}

/// The sending case whose wire format an up case consumes.
fn case_dn_of(case: Case) -> Case {
    match case {
        Case::UpCast | Case::DnCast => Case::DnCast,
        Case::UpSend | Case::DnSend => Case::DnSend,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::synthesize;
    use ensemble_ir::models::ModelCtx;

    const STACK_10: &[&str] = &[
        "partial_appl",
        "total",
        "local",
        "frag",
        "collect",
        "pt2ptw",
        "mflow",
        "pt2pt",
        "mnak",
        "bottom",
    ];
    const STACK_4: &[&str] = &["top", "pt2pt", "mnak", "bottom"];

    fn bypass(names: &[&str], rank: i64) -> StackBypass {
        let s = synthesize(names, &ModelCtx::new(3, rank)).unwrap();
        StackBypass::compile(&s, rank as u16).unwrap()
    }

    #[test]
    fn ten_layer_cast_roundtrip() {
        let mut sender = bypass(STACK_10, 0);
        let mut receiver = bypass(STACK_10, 1);
        let payload = Payload::from_slice(b"ping");
        let out = sender.dn_cast(&payload);
        let (wire, deliver) = match out {
            BypassOutput::Done { wire, deliver } => (wire, deliver),
            other => panic!("{other:?}"),
        };
        // Self-delivery through the local bounce.
        let (o, p) = deliver.expect("self delivery");
        assert_eq!(o, 0);
        assert_eq!(p, payload);
        let (dst, bytes) = wire.expect("wire output");
        assert!(dst.is_none(), "cast");
        // Receiver decodes and delivers.
        match receiver.up_cast(0, &bytes) {
            BypassOutput::Done { deliver, wire } => {
                assert!(wire.is_none());
                let (o, p) = deliver.expect("delivery");
                assert_eq!(o, 0);
                assert_eq!(p, payload);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sequenced_casts_stay_in_order() {
        // A high gossip threshold: every `collect_every`-th delivery
        // legitimately needs the slow path (the gossip cast), and this
        // test runs the bypass without a stack behind it.
        // Flow-control credit rounds are slow-path too; push them out of
        // this window as well.
        let mut ctx = ModelCtx::new(3, 0);
        ctx.collect_every = 1_000;
        ctx.mflow_window = 1_000;
        let s = synthesize(STACK_10, &ctx).unwrap();
        let mut sender = StackBypass::compile(&s, 0).unwrap();
        let mut ctx1 = ModelCtx::new(3, 1);
        ctx1.collect_every = 1_000;
        ctx1.mflow_window = 1_000;
        let s1 = synthesize(STACK_10, &ctx1).unwrap();
        let mut receiver = StackBypass::compile(&s1, 1).unwrap();
        for i in 0..50u8 {
            let payload = Payload::from_slice(&[i]);
            let out = sender.dn_cast(&payload);
            let BypassOutput::Done { wire, .. } = out else {
                panic!("fallback at {i}");
            };
            let (_, bytes) = wire.unwrap();
            match receiver.up_cast(0, &bytes) {
                BypassOutput::Done { deliver, .. } => {
                    assert_eq!(deliver.unwrap().1.gather(), vec![i]);
                }
                other => panic!("{other:?} at {i}"),
            }
        }
        assert_eq!(receiver.fallbacks, 0);
    }

    #[test]
    fn gossip_boundary_falls_back() {
        // With the default threshold (16), the 16th cast must take the
        // real stack on *both* sides — sender-side gossip and
        // receiver-side gossip are slow paths the bypass excludes.
        let mut sender = bypass(STACK_10, 0);
        let mut receiver = bypass(STACK_10, 1);
        let mut sender_fallbacks = 0;
        let mut receiver_fallbacks = 0;
        for i in 0..16u8 {
            match sender.dn_cast(&Payload::from_slice(&[i])) {
                BypassOutput::Done { wire, .. } => {
                    if matches!(
                        receiver.up_cast(0, &wire.unwrap().1),
                        BypassOutput::Fallback
                    ) {
                        receiver_fallbacks += 1;
                    }
                }
                BypassOutput::Fallback => sender_fallbacks += 1,
            }
        }
        assert_eq!(sender_fallbacks, 1, "the sender's gossip boundary");
        // The receiver saw one fewer fast-path cast, so it has not hit
        // its own boundary yet.
        assert_eq!(receiver_fallbacks, 0);
    }

    #[test]
    fn out_of_order_cast_falls_back() {
        let mut sender = bypass(STACK_10, 0);
        let mut receiver = bypass(STACK_10, 1);
        let b1 = match sender.dn_cast(&Payload::from_slice(b"1")) {
            BypassOutput::Done { wire, .. } => wire.unwrap().1,
            other => panic!("{other:?}"),
        };
        let b2 = match sender.dn_cast(&Payload::from_slice(b"2")) {
            BypassOutput::Done { wire, .. } => wire.unwrap().1,
            other => panic!("{other:?}"),
        };
        // Deliver out of order: the CCP rejects and the caller must fall
        // back to the real stack (which buffers and NAKs).
        assert!(matches!(receiver.up_cast(0, &b2), BypassOutput::Fallback));
        assert_eq!(receiver.fallbacks, 1);
        // In-order still works.
        assert!(matches!(
            receiver.up_cast(0, &b1),
            BypassOutput::Done { .. }
        ));
    }

    #[test]
    fn four_layer_send_roundtrip() {
        let mut a = bypass(STACK_4, 0);
        let mut b = bypass(STACK_4, 1);
        let payload = Payload::from_slice(b"req");
        let out = a.dn_send(1, &payload);
        let BypassOutput::Done { wire, deliver } = out else {
            panic!("{out:?}");
        };
        assert!(deliver.is_none());
        let (dst, bytes) = wire.unwrap();
        assert_eq!(dst, Some(1));
        match b.up_send(0, &bytes) {
            BypassOutput::Done { deliver, .. } => {
                assert_eq!(deliver.unwrap().1, payload);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wrong_stack_id_falls_back() {
        let mut a = bypass(STACK_4, 0);
        let mut b = bypass(STACK_10, 1);
        let out = a.dn_send(1, &Payload::from_slice(b"x"));
        let BypassOutput::Done { wire, .. } = out else {
            panic!("{out:?}");
        };
        assert!(matches!(
            b.up_send(0, &wire.unwrap().1),
            BypassOutput::Fallback
        ));
    }

    #[test]
    fn garbage_bytes_fall_back() {
        let mut b = bypass(STACK_4, 1);
        assert!(matches!(b.up_send(0, &[1, 2]), BypassOutput::Fallback));
    }

    #[test]
    fn deferred_work_accumulates_and_drains() {
        let mut sender = bypass(STACK_10, 0);
        sender.dn_cast(&Payload::from_slice(b"a"));
        sender.dn_cast(&Payload::from_slice(b"b"));
        assert!(sender.deferred_len() >= 2, "buffering deferred");
        let n = sender.drain_deferred();
        assert!(n >= 2);
        assert_eq!(sender.deferred_len(), 0);
    }

    #[test]
    fn generated_programs_are_compact() {
        let b = bypass(STACK_10, 0);
        let (ccp, wire, update) = b.program_sizes(Case::DnCast);
        // The whole 10-layer down path in a few dozen instructions.
        assert!(ccp + wire + update < 120, "{ccp}+{wire}+{update}");
        assert!(update > 0);
        assert_eq!(b.wire_bytes(Case::DnCast) % 8, 0);
    }

    #[test]
    fn large_payload_falls_back_to_fragmentation() {
        let mut sender = bypass(STACK_10, 0);
        let big = Payload::filled(9, 4096);
        // frag_max is 1400: the CCP must reject.
        assert!(matches!(sender.dn_cast(&big), BypassOutput::Fallback));
    }
}
