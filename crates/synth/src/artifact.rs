//! Analyzable theorem artifacts.
//!
//! [`synthesize`](crate::synthesize) produces a [`StackSynthesis`] whose
//! parts (rewrite contexts, definition tables, models) are geared toward
//! *executing* the bypass. Static analysis wants the opposite: a plain
//! data snapshot of what was proved — the CCP conjuncts, the residual
//! events, the per-layer residual terms, and the compressed-header
//! layout — with no machinery attached. [`BypassArtifact`] is that
//! snapshot; `ensemble-analyze` consumes it to prove residual soundness
//! and CCP decidability without reaching into synthesis internals.

use crate::compose::StackSynthesis;
use crate::compress::FieldSpec;
use ensemble_ir::models::Case;
use ensemble_ir::term::Term;

/// One composed case's theorem, as plain data.
#[derive(Clone, Debug)]
pub struct CaseTheorem {
    /// The fundamental case.
    pub case: Case,
    /// CCP conjuncts: `(layer index, condition)`.
    pub ccp: Vec<(usize, Term)>,
    /// Wire-bound events, in order.
    pub wire_events: Vec<Term>,
    /// Application deliveries, in order.
    pub app_events: Vec<Term>,
    /// Deferred non-critical work: `(layer index, work)`.
    pub defers: Vec<(usize, Term)>,
    /// Final symbolic state per changed layer.
    pub state_updates: Vec<(usize, Term)>,
}

/// A compressed-header layout, as plain data.
#[derive(Clone, Debug)]
pub struct TemplateArtifact {
    /// Frames outermost-first: `(constructor name, field specs)`.
    pub frames: Vec<(String, Vec<FieldSpec>)>,
    /// The receiver's abstract view of the wire message (`f0, f1, …`).
    pub abstract_msg: Term,
    /// Wire size in bytes.
    pub wire_bytes: usize,
}

/// The full analyzable snapshot of one synthesized stack at one rank.
#[derive(Clone, Debug)]
pub struct BypassArtifact {
    /// Layer names, top first.
    pub names: Vec<String>,
    /// The wire identifier of the stack.
    pub stack_id: u32,
    /// The rank the stack was synthesized for.
    pub rank: i64,
    /// Composed case theorems (a case may be absent when this rank has
    /// no fast path for it).
    pub cases: Vec<CaseTheorem>,
    /// Cast-side compressed-header layout.
    pub cast_template: TemplateArtifact,
    /// Send-side compressed-header layout.
    pub send_template: TemplateArtifact,
    /// Per-layer residual terms, one `(case, residual)` entry per case,
    /// in `Case::ALL` order.
    pub layer_residuals: Vec<Vec<(Case, Term)>>,
}

impl BypassArtifact {
    /// Snapshots a synthesis. `rank` is the rank the `ModelCtx` carried.
    pub fn of(s: &StackSynthesis, rank: i64) -> Self {
        let cases = Case::ALL
            .iter()
            .filter_map(|c| s.cases.get(c))
            .map(|th| CaseTheorem {
                case: th.case,
                ccp: th.ccp.clone(),
                wire_events: th.wire_events.clone(),
                app_events: th.app_events.clone(),
                defers: th.defers.clone(),
                state_updates: th.state_updates.clone(),
            })
            .collect();
        let tpl = |t: &crate::compress::HeaderTemplate| TemplateArtifact {
            frames: t.frames.clone(),
            abstract_msg: t.abstract_msg.clone(),
            wire_bytes: t.wire_bytes(),
        };
        let layer_residuals = s
            .layer_theorems
            .iter()
            .map(|tbl| {
                Case::ALL
                    .iter()
                    .filter_map(|c| tbl.get(c).map(|th| (*c, th.residual.clone())))
                    .collect()
            })
            .collect();
        BypassArtifact {
            names: s.names.clone(),
            stack_id: s.stack_id,
            rank,
            cases,
            cast_template: tpl(&s.cast_template),
            send_template: tpl(&s.send_template),
            layer_residuals,
        }
    }

    /// The composed theorem for `case`, if this rank has a fast path.
    pub fn case(&self, case: Case) -> Option<&CaseTheorem> {
        self.cases.iter().find(|t| t.case == case)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::synthesize;
    use ensemble_ir::models::ModelCtx;

    #[test]
    fn artifact_snapshots_all_cases() {
        let s = synthesize(&["top", "pt2pt", "mnak", "bottom"], &ModelCtx::new(2, 0)).unwrap();
        let a = BypassArtifact::of(&s, 0);
        assert_eq!(a.names.len(), 4);
        assert_eq!(a.stack_id, s.stack_id);
        assert_eq!(a.cases.len(), s.cases.len());
        assert!(a.case(Case::DnSend).is_some());
        assert_eq!(a.layer_residuals.len(), 4);
        for per_layer in &a.layer_residuals {
            assert_eq!(per_layer.len(), 4, "one residual per fundamental case");
        }
        assert_eq!(a.cast_template.wire_bytes, s.cast_template.wire_bytes());
    }
}
