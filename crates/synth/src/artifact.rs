//! Analyzable theorem artifacts.
//!
//! [`synthesize`](crate::synthesize) produces a [`StackSynthesis`] whose
//! parts (rewrite contexts, definition tables, models) are geared toward
//! *executing* the bypass. Static analysis wants the opposite: a plain
//! data snapshot of what was proved — the CCP conjuncts, the residual
//! events, the per-layer residual terms, and the compressed-header
//! layout — with no machinery attached. [`BypassArtifact`] is that
//! snapshot; `ensemble-analyze` consumes it to prove residual soundness
//! and CCP decidability without reaching into synthesis internals.

use crate::compose::StackSynthesis;
use crate::compress::FieldSpec;
use ensemble_ir::models::Case;
use ensemble_ir::term::Term;
use ensemble_ir::val::Val;
use ensemble_ir::visit::{
    defer_index_is_monotone, state_footprint, walk, FieldWrite, Walk, WriteKind,
};

/// One composed case's theorem, as plain data.
#[derive(Clone, Debug)]
pub struct CaseTheorem {
    /// The fundamental case.
    pub case: Case,
    /// CCP conjuncts: `(layer index, condition)`.
    pub ccp: Vec<(usize, Term)>,
    /// Wire-bound events, in order.
    pub wire_events: Vec<Term>,
    /// Application deliveries, in order.
    pub app_events: Vec<Term>,
    /// Deferred non-critical work: `(layer index, work)`.
    pub defers: Vec<(usize, Term)>,
    /// Final symbolic state per changed layer.
    pub state_updates: Vec<(usize, Term)>,
}

/// A compressed-header layout, as plain data.
#[derive(Clone, Debug)]
pub struct TemplateArtifact {
    /// Frames outermost-first: `(constructor name, field specs)`.
    pub frames: Vec<(String, Vec<FieldSpec>)>,
    /// The receiver's abstract view of the wire message (`f0, f1, …`).
    pub abstract_msg: Term,
    /// Wire size in bytes.
    pub wire_bytes: usize,
}

/// The full analyzable snapshot of one synthesized stack at one rank.
#[derive(Clone, Debug)]
pub struct BypassArtifact {
    /// Layer names, top first.
    pub names: Vec<String>,
    /// The wire identifier of the stack.
    pub stack_id: u32,
    /// The rank the stack was synthesized for.
    pub rank: i64,
    /// Composed case theorems (a case may be absent when this rank has
    /// no fast path for it).
    pub cases: Vec<CaseTheorem>,
    /// Cast-side compressed-header layout.
    pub cast_template: TemplateArtifact,
    /// Send-side compressed-header layout.
    pub send_template: TemplateArtifact,
    /// Per-layer residual terms, one `(case, residual)` entry per case,
    /// in `Case::ALL` order.
    pub layer_residuals: Vec<Vec<(Case, Term)>>,
}

impl BypassArtifact {
    /// Snapshots a synthesis. `rank` is the rank the `ModelCtx` carried.
    pub fn of(s: &StackSynthesis, rank: i64) -> Self {
        let cases = Case::ALL
            .iter()
            .filter_map(|c| s.cases.get(c))
            .map(|th| CaseTheorem {
                case: th.case,
                ccp: th.ccp.clone(),
                wire_events: th.wire_events.clone(),
                app_events: th.app_events.clone(),
                defers: th.defers.clone(),
                state_updates: th.state_updates.clone(),
            })
            .collect();
        let tpl = |t: &crate::compress::HeaderTemplate| TemplateArtifact {
            frames: t.frames.clone(),
            abstract_msg: t.abstract_msg.clone(),
            wire_bytes: t.wire_bytes(),
        };
        let layer_residuals = s
            .layer_theorems
            .iter()
            .map(|tbl| {
                Case::ALL
                    .iter()
                    .filter_map(|c| tbl.get(c).map(|th| (*c, th.residual.clone())))
                    .collect()
            })
            .collect();
        BypassArtifact {
            names: s.names.clone(),
            stack_id: s.stack_id,
            rank,
            cases,
            cast_template: tpl(&s.cast_template),
            send_template: tpl(&s.send_template),
            layer_residuals,
        }
    }

    /// The composed theorem for `case`, if this rank has a fast path.
    pub fn case(&self, case: Case) -> Option<&CaseTheorem> {
        self.cases.iter().find(|t| t.case == case)
    }
}

/// One analyzed `Defer` site: a `(layer, tag)` pair with the classified
/// read/write footprint of its declared state effect.
#[derive(Clone, Debug)]
pub struct DeferSiteReport {
    /// Layer name (registry name).
    pub layer: String,
    /// Index of the layer in the stack, top first.
    pub layer_index: usize,
    /// The deferred-work constructor tag.
    pub tag: String,
    /// The fundamental cases whose handlers emit this tag.
    pub cases: Vec<Case>,
    /// Declared parameter names, in constructor-argument order.
    pub params: Vec<String>,
    /// Classified writes of the work's state effect.
    pub writes: Vec<FieldWrite>,
    /// Pure-input fields of the state effect (the `Recompute` inputs).
    pub reads: Vec<String>,
    /// For indexed inserts: whether the index was proven unique per
    /// instance (drawn from a monotone counter in every emitting
    /// handler). `None` when the site has no indexed insert.
    pub index_monotone: Option<bool>,
}

/// One reason a stack's deferred work may NOT be drained in batches.
/// `rule` names the diagnostic family member (`DF001`–`DF003`) the
/// analyzer will report it under.
#[derive(Clone, Debug)]
pub struct DeferIssue {
    /// Diagnostic rule id: `DF001` (non-commuting pair), `DF002`
    /// (undeclared state), `DF003` (observes delivery order).
    pub rule: &'static str,
    /// The layer the offending site(s) belong to.
    pub layer: String,
    /// Human-readable explanation.
    pub detail: String,
}

/// The Defer-commutativity certificate for one synthesized stack at one
/// rank: the dataflow evidence that every pair of deferred work items
/// commutes and no item observes delivery order, so draining the defer
/// queue in one batch at a quiescent point is observably identical to
/// draining it after every delivery.
///
/// Layers keep disjoint state records, so cross-layer pairs commute by
/// construction; the proof obligations are per layer:
///
/// * **self-commutativity** — two instances of the same site must
///   commute: every write is an increment, a max-merge, an idempotent
///   recompute, or an indexed insert whose index is proven unique per
///   instance ([`defer_index_is_monotone`]); otherwise **DF001**;
/// * **pairwise commutativity** — distinct sites sharing a written
///   field must both write it with the same merge-style kind
///   (increment/max-merge), and no site may purely read a field another
///   site writes; otherwise **DF001**;
/// * **declared footprints** — every touched field must exist in the
///   layer's initial state record, and every emitted tag must carry a
///   [`DeferSpec`](ensemble_ir::models::DeferSpec); otherwise **DF002**;
/// * **delivery independence** — a site's pure-input fields must be
///   instance constants or only ever written monotonically
///   (increment/max-merge) by the layer's handlers, so the value read
///   at drain time does not depend on *which* deliveries happened in
///   between; otherwise **DF003**.
#[derive(Clone, Debug)]
pub struct DeferCertificate {
    /// The stack's wire identifier (must match the installed artifact).
    pub stack_id: u32,
    /// The rank the stack was synthesized for.
    pub rank: i64,
    /// Every analyzed `(layer, tag)` site.
    pub sites: Vec<DeferSiteReport>,
    /// Proof failures; empty iff batching is licensed.
    pub issues: Vec<DeferIssue>,
}

impl DeferCertificate {
    /// Runs the dataflow proof over a synthesis. `rank` is the rank the
    /// `ModelCtx` carried.
    pub fn of(s: &StackSynthesis, rank: i64) -> Self {
        let mut sites = Vec::new();
        let mut issues = Vec::new();
        for (li, m) in s.models.iter().enumerate() {
            let layer = s.names[li].clone();
            let init_fields: Vec<String> = match &m.init {
                Val::Record(fs) => fs.keys().map(|f| f.as_str()).collect(),
                _ => vec![],
            };
            // Which tags do this layer's handlers actually defer, and
            // from which cases?
            let mut tags: Vec<(String, Vec<Case>)> = Vec::new();
            for case in Case::ALL {
                walk(m.handler(case), &mut |sub| {
                    if let Term::Con(n, args) = sub {
                        if n.as_str() == "Defer" && args.len() == 1 {
                            if let Term::Con(t, _) = &args[0] {
                                let t = t.as_str();
                                match tags.iter_mut().find(|(x, _)| *x == t) {
                                    Some((_, cs)) => {
                                        if !cs.contains(&case) {
                                            cs.push(case);
                                        }
                                    }
                                    None => tags.push((t, vec![case])),
                                }
                            }
                        }
                    }
                    Walk::Continue
                });
            }
            let layer_start = sites.len();
            for (tag, cases) in tags {
                let Some(spec) = m.defer_specs.iter().find(|sp| sp.tag == tag) else {
                    issues.push(DeferIssue {
                        rule: "DF002",
                        layer: layer.clone(),
                        detail: format!(
                            "defer `{tag}` has no declared state effect (DeferSpec missing)"
                        ),
                    });
                    continue;
                };
                let fp = state_footprint(&spec.body, "state");
                for f in fp.touched() {
                    if !init_fields.contains(&f.as_str()) {
                        issues.push(DeferIssue {
                            rule: "DF002",
                            layer: layer.clone(),
                            detail: format!(
                                "defer `{tag}` touches undeclared state field `{}`",
                                f.as_str()
                            ),
                        });
                    }
                }
                // Self-commutativity: two instances of this site.
                let mut index_monotone = None;
                for w in &fp.writes {
                    match w.kind {
                        WriteKind::Increment | WriteKind::MergeMax | WriteKind::Recompute => {}
                        WriteKind::IndexedInsert => {
                            let proven = w
                                .index
                                .and_then(|ix| spec.params.iter().position(|p| *p == ix.as_str()))
                                .map(|pos| {
                                    cases.iter().all(|c| {
                                        defer_index_is_monotone(m.handler(*c), "state", &tag, pos)
                                    })
                                })
                                .unwrap_or(false);
                            index_monotone = Some(proven);
                            if !proven {
                                issues.push(DeferIssue {
                                    rule: "DF001",
                                    layer: layer.clone(),
                                    detail: format!(
                                        "two instances of defer `{tag}` may collide on \
                                         `{}[..]`: index not proven unique per instance",
                                        w.field.as_str()
                                    ),
                                });
                            }
                        }
                        WriteKind::Overwrite => {
                            issues.push(DeferIssue {
                                rule: "DF001",
                                layer: layer.clone(),
                                detail: format!(
                                    "defer `{tag}` opaquely overwrites `{}`; instances do \
                                     not commute",
                                    w.field.as_str()
                                ),
                            });
                        }
                    }
                }
                // Delivery independence: pure inputs must be instance
                // constants or only written monotonically by the
                // layer's own handlers.
                for r in &fp.reads {
                    let rname = r.as_str();
                    if m.const_fields.contains(&rname.as_str()) {
                        continue;
                    }
                    let monotone = Case::ALL.iter().all(|c| {
                        state_footprint(m.handler(*c), "state")
                            .writes
                            .iter()
                            .filter(|w| w.field == *r)
                            .all(|w| matches!(w.kind, WriteKind::Increment | WriteKind::MergeMax))
                    });
                    if !monotone {
                        issues.push(DeferIssue {
                            rule: "DF003",
                            layer: layer.clone(),
                            detail: format!(
                                "defer `{tag}` reads `{rname}`, which the handlers write \
                                 non-monotonically: the result depends on when the batch \
                                 drains"
                            ),
                        });
                    }
                }
                sites.push(DeferSiteReport {
                    layer: layer.clone(),
                    layer_index: li,
                    tag,
                    cases,
                    params: spec.params.iter().map(|p| (*p).to_owned()).collect(),
                    writes: fp.writes,
                    reads: fp.reads.iter().map(|r| r.as_str()).collect(),
                    index_monotone,
                });
            }
            // Pairwise commutativity between this layer's distinct sites.
            for i in layer_start..sites.len() {
                for j in (i + 1)..sites.len() {
                    let (a, b) = (&sites[i], &sites[j]);
                    for wa in &a.writes {
                        for wb in &b.writes {
                            if wa.field == wb.field
                                && !(wa.kind == wb.kind
                                    && matches!(
                                        wa.kind,
                                        WriteKind::Increment | WriteKind::MergeMax
                                    ))
                            {
                                issues.push(DeferIssue {
                                    rule: "DF001",
                                    layer: layer.clone(),
                                    detail: format!(
                                        "defers `{}` and `{}` write `{}` with \
                                         non-mergeable kinds ({}/{})",
                                        a.tag,
                                        b.tag,
                                        wa.field.as_str(),
                                        wa.kind.name(),
                                        wb.kind.name()
                                    ),
                                });
                            }
                        }
                    }
                    let crossed = a
                        .reads
                        .iter()
                        .any(|r| b.writes.iter().any(|w| w.field.as_str() == *r))
                        || b.reads
                            .iter()
                            .any(|r| a.writes.iter().any(|w| w.field.as_str() == *r));
                    if crossed {
                        issues.push(DeferIssue {
                            rule: "DF001",
                            layer: layer.clone(),
                            detail: format!(
                                "defers `{}` and `{}` have a read/write overlap; their \
                                 order is observable",
                                a.tag, b.tag
                            ),
                        });
                    }
                }
            }
        }
        DeferCertificate {
            stack_id: s.stack_id,
            rank,
            sites,
            issues,
        }
    }

    /// Whether the proof went through: batched draining is licensed iff
    /// there are no issues.
    pub fn licensed(&self) -> bool {
        self.issues.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::synthesize;
    use ensemble_ir::models::ModelCtx;

    #[test]
    fn artifact_snapshots_all_cases() {
        let s = synthesize(&["top", "pt2pt", "mnak", "bottom"], &ModelCtx::new(2, 0)).unwrap();
        let a = BypassArtifact::of(&s, 0);
        assert_eq!(a.names.len(), 4);
        assert_eq!(a.stack_id, s.stack_id);
        assert_eq!(a.cases.len(), s.cases.len());
        assert!(a.case(Case::DnSend).is_some());
        assert_eq!(a.layer_residuals.len(), 4);
        for per_layer in &a.layer_residuals {
            assert_eq!(per_layer.len(), 4, "one residual per fundamental case");
        }
        assert_eq!(a.cast_template.wire_bytes, s.cast_template.wire_bytes());
    }

    #[test]
    fn default_stack_certificate_is_licensed() {
        let s = synthesize(&["top", "pt2pt", "mnak", "bottom"], &ModelCtx::new(2, 0)).unwrap();
        let cert = DeferCertificate::of(&s, 0);
        assert!(
            cert.licensed(),
            "expected a clean certificate, got {:?}",
            cert.issues
        );
        assert_eq!(cert.stack_id, s.stack_id);
        // pt2pt: BufferUnacked + AckAndPrune; mnak: StoreOwn + Store.
        let mut tags: Vec<&str> = cert.sites.iter().map(|st| st.tag.as_str()).collect();
        tags.sort_unstable();
        assert_eq!(
            tags,
            vec!["AckAndPrune", "BufferUnacked", "Store", "StoreOwn"]
        );
        // StoreOwn's indexed insert is proven unique via the monotone
        // cast counter.
        let own = cert.sites.iter().find(|st| st.tag == "StoreOwn").unwrap();
        assert_eq!(own.index_monotone, Some(true));
    }

    #[test]
    fn stack10_certificate_is_licensed() {
        let names = [
            "partial_appl",
            "total",
            "local",
            "frag",
            "collect",
            "pt2ptw",
            "mflow",
            "pt2pt",
            "mnak",
            "bottom",
        ];
        let s = synthesize(&names, &ModelCtx::new(3, 0)).unwrap();
        let cert = DeferCertificate::of(&s, 0);
        assert!(
            cert.licensed(),
            "expected a clean certificate, got {:?}",
            cert.issues
        );
        // collect's stability recompute reads the seen counters, which
        // handlers only ever increment — delivery independence holds.
        let stab = cert
            .sites
            .iter()
            .find(|st| st.tag == "RecomputeStability")
            .unwrap();
        assert!(stab.reads.contains(&"seen".to_string()));
    }

    #[test]
    fn vsync_stack_synthesizes_and_certifies_with_membership_models() {
        let names = [
            "top",
            "partial_appl",
            "total",
            "local",
            "gmp",
            "sync",
            "elect",
            "suspect",
            "frag",
            "collect",
            "pt2ptw",
            "mflow",
            "pt2pt",
            "mnak",
            "bottom",
        ];
        for rank in [0, 1] {
            let s = synthesize(&names, &ModelCtx::new(3, rank))
                .unwrap_or_else(|e| panic!("vsync rank {rank} failed to synthesize: {e:?}"));
            if rank == 0 {
                // The coordinator composes a fast path for all four
                // fundamental cases.
                assert_eq!(s.cases.len(), 4, "{:?}", s.cases.keys());
            }
            let cert = DeferCertificate::of(&s, rank);
            assert!(
                cert.licensed(),
                "vsync rank {rank} certificate: {:?}",
                cert.issues
            );
            // Membership defers are analyzed: sync counts + suspect
            // liveness ride the data path.
            for tag in ["CountOwn", "CountSeen", "Heard"] {
                assert!(
                    cert.sites.iter().any(|st| st.tag == tag),
                    "missing site {tag}"
                );
            }
        }
    }

    #[test]
    fn undeclared_defer_tag_fails_df002() {
        use ensemble_ir::term::var;
        let mut s = synthesize(&["top", "pt2pt", "mnak", "bottom"], &ModelCtx::new(2, 0)).unwrap();
        // Strip mnak's StoreOwn spec: the emitted tag loses its declared
        // state effect.
        let mnak = s.models.iter_mut().find(|m| m.name == "mnak").unwrap();
        mnak.defer_specs.retain(|sp| sp.tag != "StoreOwn");
        let cert = DeferCertificate::of(&s, 0);
        assert!(!cert.licensed());
        assert!(cert
            .issues
            .iter()
            .any(|i| i.rule == "DF002" && i.layer == "mnak" && i.detail.contains("StoreOwn")));
        // And an opaque last-writer-wins overwrite fails DF001: plain
        // `recv_hi := seq` depends on drain order.
        let mut s = synthesize(&["top", "pt2pt", "mnak", "bottom"], &ModelCtx::new(2, 0)).unwrap();
        let mnak = s.models.iter_mut().find(|m| m.name == "mnak").unwrap();
        for sp in mnak.defer_specs.iter_mut() {
            if sp.tag == "Store" {
                sp.body = ensemble_ir::term::setf(var("state"), "recv_hi", var("seq"));
            }
        }
        let cert = DeferCertificate::of(&s, 0);
        assert!(cert
            .issues
            .iter()
            .any(|i| i.rule == "DF001" && i.detail.contains("Store")));
    }
}
