//! The dynamic phase: composing layer theorems into stack theorems
//! (§4.1.3).
//!
//! Given only the layer names, the composer instantiates each layer's
//! optimization theorems and routes a symbolic event through the stack,
//! threading every layer's (symbolic) state. Each routing step applies
//! one *composition theorem*:
//!
//! * **linear** — the event passes straight through a layer;
//! * **bounce** — a layer emits an event in the opposite direction
//!   (`local`'s loopback), which is then routed through the layers on the
//!   other side;
//! * **split** — a layer emits several events, each routed independently.
//!
//! Conditions a layer theorem could not discharge locally (e.g. `total`'s
//! "the loopback order equals my delivery cursor", which holds only in
//! the quiescent common case) are *lifted* into the stack CCP, exactly as
//! the paper allows the programmer (or the composer) to extend the
//! automatically generated CCPs.
//!
//! The up-path theorems are generated against the *exact wire message* the
//! down-path theorem produces (abstracted over its varying fields by the
//! compression template), realizing "the optimization theorems … tell us
//! exactly which headers are added to a typical data message by the
//! sender's stack and how the receiver's stack processes these headers".

use crate::compress::{templatize, CompressError, HeaderTemplate};
use crate::rewrite::{simplify, RewriteCtx};
use crate::theorem::{destructure_out, optimize_layer, OptTheorem};
use ensemble_ir::models::{layer_defs, model, Case, LayerModel, ModelCtx};
use ensemble_ir::term::{con, list, var, Term};
use ensemble_ir::FnDefs;
use ensemble_transport::stack_id;
use std::collections::HashMap;
use std::fmt;

/// Composition-step statistics (which composition theorems fired).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ComposeStats {
    /// Straight-through applications.
    pub linear: usize,
    /// Direction-reversing applications.
    pub bounce: usize,
    /// Multi-event applications.
    pub split: usize,
}

/// A composed, stack-level optimization theorem for one fundamental case.
#[derive(Clone)]
pub struct StackTheorem {
    /// The fundamental case.
    pub case: Case,
    /// Instantiated CCP conjuncts: `(layer index, condition)`.
    pub ccp: Vec<(usize, Term)>,
    /// Message events exiting the bottom (wire-bound), in order.
    pub wire_events: Vec<Term>,
    /// Events exiting the top (application deliveries), in order.
    pub app_events: Vec<Term>,
    /// Deferred non-critical work: `(layer index, work term)`.
    pub defers: Vec<(usize, Term)>,
    /// Final symbolic state per layer (only layers whose state changed).
    pub state_updates: Vec<(usize, Term)>,
    /// Which composition theorems were applied.
    pub stats: ComposeStats,
}

/// A fully synthesized stack: per-layer theorems, the composed cases
/// (a case may be absent when this rank has no fast path for it — e.g.
/// a non-sequencer has no down-cast bypass, exactly as in Ensemble where
/// only some paths are optimized), and the compression templates.
pub struct StackSynthesis {
    /// Layer names, top first.
    pub names: Vec<String>,
    /// Per-layer models (instantiated).
    pub models: Vec<LayerModel>,
    /// Per-layer optimization theorems, one per case.
    pub layer_theorems: Vec<HashMap<Case, OptTheorem>>,
    /// The composed stack theorems for the cases that have a fast path.
    pub cases: HashMap<Case, StackTheorem>,
    /// Compression template for casts.
    pub cast_template: HeaderTemplate,
    /// Compression template for sends.
    pub send_template: HeaderTemplate,
    /// The stack identifier folded into compressed headers.
    pub stack_id: u32,
    /// The definition table used throughout.
    pub defs: FnDefs,
}

/// Errors from synthesis.
#[derive(Clone, Debug)]
pub enum SynthError {
    /// A layer has no IR model.
    NoModel(String),
    /// A residual could not be reduced to output form.
    NotComposable {
        /// The layer that got stuck.
        layer: String,
        /// The case being composed.
        case: Case,
        /// The stuck residual (for diagnosis).
        residual: String,
    },
    /// Header-compression extraction failed.
    Compress(CompressError),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::NoModel(n) => write!(f, "layer {n:?} has no IR model"),
            SynthError::NotComposable {
                layer,
                case,
                residual,
            } => write!(f, "{layer}/{case:?} not composable: {residual}"),
            SynthError::Compress(e) => write!(f, "compression: {e}"),
        }
    }
}

impl std::error::Error for SynthError {}

/// A symbolic event in flight during composition.
#[derive(Clone, Debug)]
enum Flight {
    Dn { layer: usize, ev: Term },
    Up { layer: usize, ev: Term },
}

fn state_var(name: &str, idx: usize) -> Term {
    var(&format!("s_{idx}_{name}"))
}

/// Whether a term mentions the `Slow` fallback constructor.
fn mentions_slow(t: &Term) -> bool {
    ensemble_ir::visit::mentions_con(t, "Slow")
}

/// Lifts undischarged guards of slow paths into extra CCP conjuncts.
fn lift_conditions(mut t: Term, lifted: &mut Vec<Term>, defs: &FnDefs) -> Term {
    loop {
        match t {
            Term::If(c, a, b) => {
                if mentions_slow(&b) && !mentions_slow(&a) {
                    lifted.push((*c).clone());
                    let mut ctx = RewriteCtx::new(defs);
                    ctx.assume((*c).clone());
                    t = simplify(&ctx, &a);
                } else if mentions_slow(&a) && !mentions_slow(&b) {
                    let neg = Term::Prim(ensemble_ir::term::Prim::Not, vec![(*c).clone()]);
                    lifted.push(neg.clone());
                    let mut ctx = RewriteCtx::new(defs);
                    ctx.assume(neg);
                    t = simplify(&ctx, &b);
                } else {
                    return Term::If(c, a, b);
                }
            }
            other => return other,
        }
    }
}

/// Composes one fundamental case through the stack.
#[allow(clippy::too_many_arguments)]
fn compose_case(
    case: Case,
    names: &[String],
    theorems: &[HashMap<Case, OptTheorem>],
    defs: &FnDefs,
    entry_msg: Term,
) -> Result<StackTheorem, SynthError> {
    let n = names.len();
    let mut cur_state: Vec<Term> = names
        .iter()
        .enumerate()
        .map(|(i, nm)| state_var(nm, i))
        .collect();
    let mut ccp: Vec<(usize, Term)> = Vec::new();
    let mut wire_events = Vec::new();
    let mut app_events = Vec::new();
    let mut defers = Vec::new();
    let mut stats = ComposeStats::default();

    // Entry event.
    let mut queue: Vec<Flight> = vec![match case {
        Case::DnCast => Flight::Dn {
            layer: 0,
            ev: con("DnCast", vec![entry_msg]),
        },
        Case::DnSend => Flight::Dn {
            layer: 0,
            ev: con("DnSend", vec![var("dst"), entry_msg]),
        },
        Case::UpCast => Flight::Up {
            layer: n - 1,
            ev: con("UpCast", vec![var("origin"), entry_msg]),
        },
        Case::UpSend => Flight::Up {
            layer: n - 1,
            ev: con("UpSend", vec![var("origin"), entry_msg]),
        },
    }];

    let mut guard = 0usize;
    while !queue.is_empty() {
        guard += 1;
        assert!(guard < 10_000, "composition diverged");
        let flight = queue.remove(0);
        let (layer, dir_up, ev) = match flight {
            Flight::Dn { layer, ev } => (layer, false, ev),
            Flight::Up { layer, ev } => (layer, true, ev),
        };
        // Decode the event constructor.
        let (kind, args) = match &ev {
            Term::Con(k, a) => (k.as_str(), a.clone()),
            other => panic!("non-constructor event in flight: {other:?}"),
        };
        let this_case = match (dir_up, kind.as_str()) {
            (false, "DnCast") => Case::DnCast,
            (false, "DnSend") => Case::DnSend,
            (true, "UpCast") => Case::UpCast,
            (true, "UpSend") => Case::UpSend,
            other => panic!("unroutable event {other:?}"),
        };
        let th = &theorems[layer][&this_case];
        // Instantiate the residual and the CCP with the event bindings.
        let bind = |t: &Term| -> Term {
            let mut t = t.subst(ensemble_util::Intern::from("state"), &cur_state[layer]);
            match this_case {
                Case::DnCast => {
                    t = t.subst(ensemble_util::Intern::from("msg"), &args[0]);
                }
                Case::DnSend => {
                    t = t.subst(ensemble_util::Intern::from("dst"), &args[0]);
                    t = t.subst(ensemble_util::Intern::from("msg"), &args[1]);
                }
                Case::UpCast | Case::UpSend => {
                    t = t.subst(ensemble_util::Intern::from("origin"), &args[0]);
                    t = t.subst(ensemble_util::Intern::from("msg"), &args[1]);
                }
            }
            t
        };
        let plain = RewriteCtx::new(defs);
        // Instantiate the layer CCP, flattening conjunctions and resolving
        // existential pattern variables (`any_*`) by unification with the
        // received field they equate to.
        let mut existentials: Vec<(ensemble_util::Intern, Term)> = Vec::new();
        for conj in &th.ccp {
            let inst = simplify(&plain, &bind(conj));
            for c in flatten_and(inst) {
                if let Some((v, def)) = existential_of(&c) {
                    existentials.push((v, def));
                    continue;
                }
                if c != Term::Bool(true) && !ccp.iter().any(|(_, cc)| *cc == c) {
                    ccp.push((layer, c));
                }
            }
        }
        // Simplify the instantiated residual under the collected facts.
        let mut ctx = RewriteCtx::new(defs);
        for (_, c) in &ccp {
            ctx.assume(c.clone());
        }
        let mut bound_residual = bind(&th.residual);
        for (v, def) in &existentials {
            bound_residual = bound_residual.subst(*v, def);
        }
        let mut residual = simplify(&ctx, &bound_residual);
        // Lift any remaining slow-guards into the CCP.
        let mut lifted = Vec::new();
        residual = lift_conditions(residual, &mut lifted, defs);
        for c in lifted {
            let mut ctx2 = RewriteCtx::new(defs);
            for (_, cc) in &ccp {
                ctx2.assume(cc.clone());
            }
            let norm = simplify(&ctx2, &c);
            if norm != Term::Bool(true) {
                ccp.push((layer, norm));
            }
        }
        // Re-simplify under the enlarged fact set.
        let mut ctx3 = RewriteCtx::new(defs);
        for (_, c) in &ccp {
            ctx3.assume(c.clone());
        }
        residual = simplify(&ctx3, &residual);
        let Some((state2, events)) = destructure_out(&residual) else {
            return Err(SynthError::NotComposable {
                layer: names[layer].clone(),
                case: this_case,
                residual: format!("{residual:?}"),
            });
        };
        cur_state[layer] = state2;
        // Classify for composition-theorem accounting.
        let non_defer = events
            .iter()
            .filter(|e| !matches!(e, Term::Con(n, _) if n.as_str() == "Defer"))
            .count();
        let reversing = events.iter().any(|e| match e {
            Term::Con(n, _) => {
                let up = n.as_str().starts_with("Up");
                up != dir_up
            }
            _ => false,
        });
        if non_defer > 1 {
            stats.split += 1;
        } else if reversing {
            stats.bounce += 1;
        } else {
            stats.linear += 1;
        }
        // Route.
        for e in events {
            match &e {
                Term::Con(k, _) => match k.as_str().as_str() {
                    "Defer" => defers.push((layer, e)),
                    "DnCast" | "DnSend" => {
                        if layer + 1 == n {
                            wire_events.push(e);
                        } else {
                            queue.push(Flight::Dn {
                                layer: layer + 1,
                                ev: e,
                            });
                        }
                    }
                    "UpCast" | "UpSend" => {
                        if layer == 0 {
                            app_events.push(e);
                        } else {
                            queue.push(Flight::Up {
                                layer: layer - 1,
                                ev: e,
                            });
                        }
                    }
                    other => panic!("unknown event constructor {other}"),
                },
                other => panic!("non-constructor event {other:?}"),
            }
        }
    }

    let state_updates = cur_state
        .into_iter()
        .enumerate()
        .filter(|(i, s)| *s != state_var(&names[*i], *i))
        .collect();
    Ok(StackTheorem {
        case,
        ccp,
        wire_events,
        app_events,
        defers,
        state_updates,
        stats,
    })
}

/// Splits nested conjunctions into their conjuncts.
fn flatten_and(t: Term) -> Vec<Term> {
    match t {
        Term::Prim(ensemble_ir::term::Prim::And, args) => {
            let mut v = Vec::new();
            for a in args {
                v.extend(flatten_and(a));
            }
            v
        }
        other => vec![other],
    }
}

/// Recognizes an existential binding `any_x = def` (or symmetric) in an
/// instantiated CCP conjunct.
fn existential_of(t: &Term) -> Option<(ensemble_util::Intern, Term)> {
    if let Term::Prim(ensemble_ir::term::Prim::Eq, args) = t {
        if let Term::Var(v) = &args[0] {
            if v.as_str().starts_with("any_") {
                return Some((*v, args[1].clone()));
            }
        }
        if let Term::Var(v) = &args[1] {
            if v.as_str().starts_with("any_") {
                return Some((*v, args[0].clone()));
            }
        }
    }
    None
}

/// Extracts the message term from a wire event.
fn wire_msg_of(ev: &Term) -> &Term {
    match ev {
        Term::Con(n, args) if n.as_str() == "DnCast" => &args[0],
        Term::Con(n, args) if n.as_str() == "DnSend" => &args[1],
        other => panic!("not a wire event: {other:?}"),
    }
}

/// Per-layer theorem tables, one map per layer.
type TheoremTables = Vec<HashMap<Case, OptTheorem>>;

fn theorems_for(
    names: &[&str],
    ctx: &ModelCtx,
    defs: &FnDefs,
) -> Result<(Vec<LayerModel>, TheoremTables), SynthError> {
    let mut models = Vec::new();
    for n in names {
        models.push(model(n, ctx).ok_or_else(|| SynthError::NoModel((*n).to_owned()))?);
    }
    let theorems = models
        .iter()
        .map(|m| {
            Case::ALL
                .iter()
                .map(|c| (*c, optimize_layer(m, *c, defs, true)))
                .collect()
        })
        .collect();
    Ok((models, theorems))
}

/// Runs the full dynamic optimization for a stack given by layer names.
///
/// The wire format (compression templates) is always derived from the
/// *coordinator's* down paths, because that is what the common-case
/// traffic looks like on the wire; this rank's own cases are composed
/// separately and may lack a fast path (e.g. a non-sequencer's down-cast
/// always takes the full stack).
pub fn synthesize(names: &[&str], ctx: &ModelCtx) -> Result<StackSynthesis, SynthError> {
    let defs = layer_defs();
    let (models, layer_theorems) = theorems_for(names, ctx, &defs)?;
    let owned_names: Vec<String> = names.iter().map(|s| (*s).to_owned()).collect();

    let entry = con("Msg", vec![list(vec![]), var("payload"), var("len")]);

    // Coordinator-side down paths define the wire format.
    let coord_ctx = ModelCtx { rank: 0, ..*ctx };
    let (_, coord_theorems) = theorems_for(names, &coord_ctx, &defs)?;
    let coord_dn_cast = compose_case(
        Case::DnCast,
        &owned_names,
        &coord_theorems,
        &defs,
        entry.clone(),
    )?;
    let coord_dn_send = compose_case(
        Case::DnSend,
        &owned_names,
        &coord_theorems,
        &defs,
        entry.clone(),
    )?;
    let cast_template =
        templatize(wire_msg_of(&coord_dn_cast.wire_events[0])).map_err(SynthError::Compress)?;
    let send_template =
        templatize(wire_msg_of(&coord_dn_send.wire_events[0])).map_err(SynthError::Compress)?;

    let mut cases = HashMap::new();
    if ctx.rank == 0 {
        cases.insert(Case::DnCast, coord_dn_cast);
        cases.insert(Case::DnSend, coord_dn_send);
    } else {
        for (case, entry_msg) in [(Case::DnCast, entry.clone()), (Case::DnSend, entry)] {
            if let Ok(th) = compose_case(case, &owned_names, &layer_theorems, &defs, entry_msg) {
                cases.insert(case, th);
            }
        }
    }
    for (case, tpl) in [
        (Case::UpCast, &cast_template),
        (Case::UpSend, &send_template),
    ] {
        if let Ok(th) = compose_case(
            case,
            &owned_names,
            &layer_theorems,
            &defs,
            tpl.abstract_msg.clone(),
        ) {
            cases.insert(case, th);
        }
    }

    Ok(StackSynthesis {
        stack_id: stack_id(names),
        names: owned_names,
        models,
        layer_theorems,
        cases,
        cast_template,
        send_template,
        defs,
    })
}

impl fmt::Display for StackTheorem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "STACK THEOREM {:?}", self.case)?;
        write!(f, "ASSUMING      ")?;
        if self.ccp.is_empty() {
            write!(f, "true")?;
        }
        for (i, (l, c)) in self.ccp.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "[{l}]{c:?}")?;
        }
        writeln!(f)?;
        for e in &self.wire_events {
            writeln!(f, "WIRE          {e:?}")?;
        }
        for e in &self.app_events {
            writeln!(f, "DELIVER       {e:?}")?;
        }
        for (l, d) in &self.defers {
            writeln!(f, "DEFER [{l}]    {d:?}")?;
        }
        for (l, s) in &self.state_updates {
            writeln!(f, "STATE [{l}]    {s:?}")?;
        }
        writeln!(
            f,
            "  (composition: {} linear, {} bounce, {} split)",
            self.stats.linear, self.stats.bounce, self.stats.split
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STACK_10: &[&str] = &[
        "partial_appl",
        "total",
        "local",
        "frag",
        "collect",
        "pt2ptw",
        "mflow",
        "pt2pt",
        "mnak",
        "bottom",
    ];
    const STACK_4: &[&str] = &["top", "pt2pt", "mnak", "bottom"];

    #[test]
    fn four_layer_stack_synthesizes() {
        let s = synthesize(STACK_4, &ModelCtx::new(2, 0)).unwrap();
        assert_eq!(s.names.len(), 4);
        let dn = &s.cases[&Case::DnSend];
        assert_eq!(dn.wire_events.len(), 1, "one wire message");
        assert!(dn.app_events.is_empty());
        let up = &s.cases[&Case::UpSend];
        assert_eq!(up.app_events.len(), 1, "one delivery");
    }

    #[test]
    fn ten_layer_dn_cast_bounces_self_delivery() {
        let s = synthesize(STACK_10, &ModelCtx::new(3, 0)).unwrap();
        let dn = &s.cases[&Case::DnCast];
        assert_eq!(dn.wire_events.len(), 1, "{:?}", dn.wire_events);
        assert_eq!(
            dn.app_events.len(),
            1,
            "local loopback ordered and delivered: {:?}",
            dn.app_events
        );
        assert!(dn.stats.split >= 1, "local split fired: {:?}", dn.stats);
        assert!(!dn.defers.is_empty(), "buffering deferred");
    }

    #[test]
    fn ten_layer_cast_header_compresses_small() {
        let s = synthesize(STACK_10, &ModelCtx::new(3, 0)).unwrap();
        // Paper: headers compress "typically to just 16 bytes". Our cast
        // header carries the mnak seqno and the total order.
        assert!(s.cast_template.wire_bytes() <= 24, "{}", s.cast_template);
        assert!(s.cast_template.nconsts() >= 8, "{}", s.cast_template);
    }

    #[test]
    fn ten_layer_up_cast_delivers_with_ccp() {
        let s = synthesize(STACK_10, &ModelCtx::new(3, 0)).unwrap();
        let up = &s.cases[&Case::UpCast];
        assert_eq!(up.app_events.len(), 1, "{:?}", up.app_events);
        assert!(up.wire_events.is_empty(), "{:?}", up.wire_events);
        // The CCP includes the mnak in-sequence check against a field var.
        let ccp_txt: Vec<String> = up.ccp.iter().map(|(_, c)| format!("{c:?}")).collect();
        assert!(
            ccp_txt.iter().any(|c| c.contains("f0") || c.contains("f1")),
            "{ccp_txt:?}"
        );
    }

    #[test]
    fn state_updates_are_increments() {
        let s = synthesize(STACK_10, &ModelCtx::new(3, 0)).unwrap();
        let dn = &s.cases[&Case::DnCast];
        // mnak bumps cast_next, total bumps order_next (and deliver_next
        // via the bounce), collect bumps seen, mflow bumps sent.
        assert!(dn.state_updates.len() >= 4, "{:?}", dn.state_updates.len());
    }

    #[test]
    fn stack_ids_differ_by_composition() {
        let a = synthesize(STACK_4, &ModelCtx::new(2, 0)).unwrap();
        let b = synthesize(STACK_10, &ModelCtx::new(2, 0)).unwrap();
        assert_ne!(a.stack_id, b.stack_id);
    }

    #[test]
    fn unknown_layer_is_an_error() {
        assert!(matches!(
            synthesize(&["top", "mystery", "bottom"], &ModelCtx::new(2, 0)),
            Err(SynthError::NoModel(_))
        ));
    }

    #[test]
    fn theorem_display_renders() {
        let s = synthesize(STACK_4, &ModelCtx::new(2, 0)).unwrap();
        let txt = s.cases[&Case::DnSend].to_string();
        assert!(txt.contains("STACK THEOREM"));
        assert!(txt.contains("WIRE"));
        assert!(txt.contains("composition:"));
    }
}
