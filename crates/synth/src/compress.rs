//! Header compression (§4.1.3).
//!
//! The composed down-path theorem exhibits the exact header structure the
//! sender's stack adds to a common-case message. Most of its fields are
//! constants of the stack instance; only the rest need to travel. This
//! module extracts a [`HeaderTemplate`] from the symbolic wire message:
//! constant fields are folded into the (stack id, case) pair of the
//! compressed wire format (`ensemble-transport::CompressedHdr`), and each
//! varying field records the *sender-side source term* that computes it —
//! which the code generator compiles into the bypass.

use ensemble_ir::term::Term;
use std::fmt;

/// One header field in the template.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FieldSpec {
    /// A constant, folded into the stack identifier.
    Const(i64),
    /// The k-th varying field carried on the wire.
    Var(usize),
}

/// The compressed-header layout of one case of one stack.
#[derive(Clone, Debug)]
pub struct HeaderTemplate {
    /// Frames outermost-first: `(constructor name, fields)`.
    pub frames: Vec<(String, Vec<FieldSpec>)>,
    /// Sender-side source terms, one per varying field.
    pub sources: Vec<Term>,
    /// The message term with varying fields replaced by `f0, f1, …`
    /// (the receiver's view of the wire message).
    pub abstract_msg: Term,
}

impl HeaderTemplate {
    /// Number of varying fields (8 bytes each on the wire).
    pub fn nfields(&self) -> usize {
        self.sources.len()
    }

    /// The wire size of the compressed header in bytes.
    pub fn wire_bytes(&self) -> usize {
        ensemble_transport::COMPRESSED_BASE_LEN + 8 * self.nfields()
    }

    /// A stable hash of the folded constants (frame names, field shapes,
    /// constant values). Folded into the wire identifier so that two
    /// instances differing only in constants — e.g. successive views —
    /// reject each other's compressed traffic (§4.1.3: the constants are
    /// "combined into a single, short identifier").
    pub fn const_hash(&self) -> u32 {
        let mut h: u32 = 0x811C_9DC5;
        let mut eat = |b: u8| {
            h ^= b as u32;
            h = h.wrapping_mul(0x0100_0193);
        };
        for (name, fields) in &self.frames {
            for b in name.bytes() {
                eat(b);
            }
            eat(0xFF);
            for f in fields {
                match f {
                    FieldSpec::Var(_) => eat(0xFE),
                    FieldSpec::Const(c) => {
                        for b in c.to_le_bytes() {
                            eat(b);
                        }
                    }
                }
            }
        }
        h
    }

    /// Total constant fields folded away.
    pub fn nconsts(&self) -> usize {
        self.frames
            .iter()
            .map(|(_, fs)| {
                fs.iter()
                    .filter(|f| matches!(f, FieldSpec::Const(_)))
                    .count()
            })
            .sum::<usize>()
            // Every frame's constructor tag is itself a folded constant.
            + self.frames.len()
    }
}

impl fmt::Display for HeaderTemplate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compressed header [{} bytes]:", self.wire_bytes())?;
        for (name, fields) in &self.frames {
            write!(f, " {name}(")?;
            for (i, fs) in fields.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                match fs {
                    FieldSpec::Const(c) => write!(f, "{c}")?,
                    FieldSpec::Var(k) => write!(f, "f{k}")?,
                }
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Errors from template extraction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompressError {
    /// The wire message was not an explicit `Msg(hdrs, payload, len)`.
    NotExplicit(String),
    /// The payload was transformed by some layer (unsupported for
    /// compression-based bypasses; such stacks fall back to the full
    /// path).
    PayloadTransformed,
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::NotExplicit(what) => {
                write!(f, "wire message not fully explicit: {what}")
            }
            CompressError::PayloadTransformed => {
                write!(f, "payload-transforming layers are not compressible")
            }
        }
    }
}

impl std::error::Error for CompressError {}

/// Extracts the compression template from a symbolic wire message.
pub fn templatize(msg: &Term) -> Result<HeaderTemplate, CompressError> {
    let (hdrs, payload, len) = match msg {
        Term::Con(n, args) if n.as_str() == "Msg" && args.len() == 3 => {
            (&args[0], &args[1], &args[2])
        }
        other => return Err(CompressError::NotExplicit(format!("{other:?}"))),
    };
    match payload {
        Term::Var(v) if v.as_str() == "payload" => {}
        _ => return Err(CompressError::PayloadTransformed),
    }
    let mut frames = Vec::new();
    let mut sources = Vec::new();
    let mut abstract_frames = Vec::new();
    let mut cur = hdrs;
    loop {
        match cur {
            Term::Con(n, args) if n.as_str() == "nil" && args.is_empty() => break,
            Term::Con(n, args) if n.as_str() == "cons" && args.len() == 2 => {
                let frame = &args[0];
                match frame {
                    Term::Con(fname, fargs) => {
                        let mut fields = Vec::new();
                        let mut abs_args = Vec::new();
                        for a in fargs {
                            match a {
                                Term::Int(c) => {
                                    fields.push(FieldSpec::Const(*c));
                                    abs_args.push(Term::Int(*c));
                                }
                                varying => {
                                    let k = sources.len();
                                    fields.push(FieldSpec::Var(k));
                                    sources.push(varying.clone());
                                    abs_args.push(ensemble_ir::term::var(&format!("f{k}")));
                                }
                            }
                        }
                        frames.push((fname.as_str(), fields));
                        abstract_frames.push(Term::Con(*fname, abs_args));
                    }
                    other => return Err(CompressError::NotExplicit(format!("{other:?}"))),
                }
                cur = &args[1];
            }
            other => return Err(CompressError::NotExplicit(format!("{other:?}"))),
        }
    }
    let abstract_msg = Term::Con(
        ensemble_util::Intern::from("Msg"),
        vec![
            ensemble_ir::term::list(abstract_frames),
            payload.clone(),
            len.clone(),
        ],
    );
    Ok(HeaderTemplate {
        frames,
        sources,
        abstract_msg,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemble_ir::term::{con, getf, list, var};

    fn wire_msg() -> Term {
        // Msg([MnakData(s_mnak.cast_next), BottomHdr(0)], payload, len)
        con(
            "Msg",
            vec![
                list(vec![
                    con("MnakData", vec![getf(var("s_mnak"), "cast_next")]),
                    con("BottomHdr", vec![Term::Int(0)]),
                ]),
                var("payload"),
                var("len"),
            ],
        )
    }

    #[test]
    fn extracts_constants_and_fields() {
        let t = templatize(&wire_msg()).unwrap();
        assert_eq!(t.nfields(), 1, "only the seqno varies");
        assert_eq!(t.sources[0], getf(var("s_mnak"), "cast_next"));
        assert_eq!(t.frames.len(), 2);
        assert_eq!(t.frames[1].1, vec![FieldSpec::Const(0)]);
        // One varying u64 → the paper's 16-byte compressed header.
        assert_eq!(t.wire_bytes(), 16);
        assert_eq!(t.nconsts(), 3, "two frame tags + one constant field");
    }

    #[test]
    fn abstract_msg_uses_field_vars() {
        let t = templatize(&wire_msg()).unwrap();
        let txt = format!("{:?}", t.abstract_msg);
        assert!(txt.contains("MnakData(f0)"), "{txt}");
        assert!(txt.contains("BottomHdr(0)"), "{txt}");
    }

    #[test]
    fn display_renders_layout() {
        let t = templatize(&wire_msg()).unwrap();
        let txt = t.to_string();
        assert!(txt.contains("16 bytes"), "{txt}");
        assert!(txt.contains("MnakData(f0)"), "{txt}");
    }

    #[test]
    fn rejects_transformed_payload() {
        let m = con(
            "Msg",
            vec![
                list(vec![]),
                con("Cipher", vec![var("payload")]),
                var("len"),
            ],
        );
        assert!(matches!(
            templatize(&m),
            Err(CompressError::PayloadTransformed)
        ));
    }

    #[test]
    fn rejects_symbolic_structure() {
        assert!(matches!(
            templatize(&var("mystery")),
            Err(CompressError::NotExplicit(_))
        ));
    }
}
