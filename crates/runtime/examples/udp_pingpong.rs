//! Two group members ping-ponging over real UDP sockets on 127.0.0.1.
//!
//! Demonstrates the full runtime path: two `Node`s (each with its own
//! worker pool), UDP transports wired peer-to-peer, a 4-layer stack, the
//! MACH bypass on both sides, and the per-shard `RuntimeStats` printed at
//! the end. Run with:
//!
//! ```text
//! cargo run --release -p ensemble-runtime --example udp_pingpong
//! ```
//!
//! Pass `--metrics` to print the Prometheus text exposition for both
//! nodes, and `--jsonl PATH` to dump every drained trace event to PATH
//! as one JSON object per line.

use ensemble_event::ViewState;
use ensemble_layers::{LayerConfig, STACK_4};
use ensemble_runtime::{Delivery, Node, RuntimeConfig, UdpTransport};
use ensemble_stack::EngineKind;
use ensemble_util::Rank;
use std::time::{Duration, Instant};

const ROUNDS: u32 = 200;

fn main() {
    // Shard workers run on their own threads; a panic there (lost ping
    // assertions, bypass divergence) must take the process exit code
    // with it so CI can trust a zero exit.
    let default_panic = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        default_panic(info);
        std::process::exit(101);
    }));

    let mut metrics = false;
    let mut jsonl: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--metrics" => metrics = true,
            "--jsonl" => jsonl = Some(argv.next().expect("--jsonl needs a path")),
            other => {
                eprintln!("unknown flag {other}; usage: udp_pingpong [--metrics] [--jsonl PATH]");
                std::process::exit(2);
            }
        }
    }
    let vs = ViewState::initial(2);

    // Phase 1: bind both sockets (ephemeral loopback ports).
    let mut ta = match UdpTransport::bind(vs.members[0]) {
        Ok(t) => t,
        Err(e) => {
            println!("skipping: cannot bind UDP on 127.0.0.1 ({e})");
            return;
        }
    };
    let mut tb = UdpTransport::bind(vs.members[1]).expect("second bind");
    let (addr_a, addr_b) = (ta.local_addr().unwrap(), tb.local_addr().unwrap());
    println!("member 0 on {addr_a}, member 1 on {addr_b}");

    // Phase 2: exchange addresses (a membership service in a deployment).
    ta.add_peer(vs.members[1], addr_b);
    tb.add_peer(vs.members[0], addr_a);

    // One Node per process image; separate nodes here to prove the
    // traffic really crosses the sockets.
    let mut node_a = Node::new(RuntimeConfig::default());
    let mut node_b = Node::new(RuntimeConfig::default());
    let a = node_a
        .join(
            STACK_4,
            vs.for_rank(Rank(0)),
            EngineKind::Imp,
            LayerConfig::default(),
            Box::new(ta),
        )
        .expect("join a");
    let b = node_b
        .join(
            STACK_4,
            vs.for_rank(Rank(1)),
            EngineKind::Imp,
            LayerConfig::default(),
            Box::new(tb),
        )
        .expect("join b");

    // Install the synthesized fast path on both members.
    a.install_bypass().expect("bypass a");
    b.install_bypass().expect("bypass b");

    let started = Instant::now();
    let deadline = Duration::from_secs(10);
    let mut rtt_worst = Duration::ZERO;
    for round in 0..ROUNDS {
        let sent = Instant::now();
        a.cast(format!("ping {round}").as_bytes())
            .expect("cast ping");
        // Member 1 waits for the ping and answers.
        loop {
            match b.recv_timeout(deadline) {
                Some(Delivery::Cast { origin: 0, bytes }) => {
                    let text = String::from_utf8_lossy(&bytes);
                    b.cast(format!("pong for [{text}]").as_bytes())
                        .expect("cast pong");
                    break;
                }
                Some(_) => continue,
                None => panic!("ping lost beyond the stack's recovery"),
            }
        }
        // Member 0 waits for the pong (STACK_4 has no self-delivery).
        loop {
            match a.recv_timeout(deadline) {
                Some(Delivery::Cast { origin: 1, .. }) => break,
                Some(_) => continue,
                None => panic!("pong lost beyond the stack's recovery"),
            }
        }
        rtt_worst = rtt_worst.max(sent.elapsed());
    }
    let elapsed = started.elapsed();
    println!(
        "{ROUNDS} round trips in {:.1} ms ({:.0} µs/rt, worst {:.0} µs)",
        elapsed.as_secs_f64() * 1e3,
        elapsed.as_secs_f64() * 1e6 / f64::from(ROUNDS),
        rtt_worst.as_secs_f64() * 1e6,
    );

    println!("--- node 0 runtime stats ---");
    println!("{}", node_a.stats());
    println!("--- node 1 runtime stats ---");
    println!("{}", node_b.stats());

    let hits = node_a.stats().totals().bypass_hits + node_b.stats().totals().bypass_hits;
    println!("combined bypass hits: {hits}");

    if metrics {
        println!("--- node 0 metrics exposition ---");
        print!("{}", node_a.metrics_text());
        println!("--- node 1 metrics exposition ---");
        print!("{}", node_b.metrics_text());
    }
    if let Some(path) = jsonl {
        let mut events = node_a.obs().drain();
        events.extend(node_b.obs().drain());
        events.sort_by_key(|e| e.t_ns);
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path).expect("create jsonl"));
        ensemble_obs::write_jsonl(&mut f, &events).expect("write jsonl");
        println!("wrote {} trace events to {path}", events.len());
    }
}
