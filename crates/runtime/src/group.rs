//! Per-group protocol state, independent of threads and sockets.
//!
//! A [`GroupCore`] owns one stack engine (and optionally one compiled
//! MACH bypass) and turns application commands, arriving packets, and
//! timer fires into [`Action`]s — transmissions, timer requests, and
//! application deliveries. It performs no I/O and reads no clock, so the
//! same code is driven by the shard workers here and by unit tests
//! feeding it events directly.
//!
//! ## Bypass routing
//!
//! The compiled bypass keeps its *own* flattened state, separate from the
//! engine's (exactly as in the paper, where the synthesized code has its
//! own compiled state record). The two states are never reconciled, so
//! the runtime routes *all* application data through the bypass while one
//! is installed; the engine continues to run protocol timers only. The
//! consequences are honest:
//!
//! * a sender-side CCP failure re-routes that message through the engine
//!   (both engines are still in step with each other, so engine-path
//!   messages deliver FIFO among themselves — but ordering *between* the
//!   bypass stream and the engine stream is not guaranteed);
//! * a receiver-side CCP failure on a well-formed compressed header is an
//!   out-of-order arrival: it parks in a bounded stash retried after each
//!   subsequent fast-path delivery;
//! * loss on the bypass stream has no retransmission (the bypass compiles
//!   the common case; recovery lives in the skipped layers), so the fast
//!   path should only be installed on links whose loss the application
//!   tolerates — or dropped back off at the first stash overflow.
//!
//! On a view change the bypass is discarded: it was synthesized for one
//! membership, and Ensemble likewise rebuilds per view.
//!
//! ## Analysis-gated deferred-work batching
//!
//! Each bypass hit may queue non-critical work (`Defer` items:
//! buffering, acknowledgments, stability bookkeeping). When the
//! installed stack's [`DeferCertificate`] proves every pair of deferred
//! items commutes and none observes delivery order (the DF rules in
//! `ensemble-analyze`), the core *batches* that work and drains it in
//! one pass at quiescent points — a full batch, an engine fallback, a
//! view change, or an explicit bypass drop. Stacks without a valid
//! certificate keep the immediate-drain behavior: every bypass hit pays
//! the drain on the spot. The split is observable through the
//! `defer_batched` / `defer_flushes` counters
//! ([`GroupCore::take_defer_delta`]) and `DeferFlush` trace events.
//!
//! The cross-stream ordering hole the fallback opens (bypass stream vs.
//! engine stream, first bullet above) is pinned down by the
//! `sender_ccp_fallback_keeps_streams_fifo` regression test below; a
//! shared sequencing cursor between the two paths (future work) is what
//! would close it.

use ensemble_event::{DnEvent, Msg, Payload, UpEvent, ViewState};
use ensemble_ir::models::{Case, ModelCtx};
use ensemble_layers::{make_stack, LayerConfig, StackError};
use ensemble_obs::{CcpFailure, Direction, EventKind};
use ensemble_stack::{Boundary, Engine, EngineKind};
use ensemble_synth::{synthesize, BypassOutput, DeferCertificate, StackBypass};
use ensemble_transport::{marshal, unmarshal, Dest, Packet};
use ensemble_util::{Counters, Endpoint, Rank, Time};

/// Most out-of-order compressed packets parked awaiting their gap fill.
const STASH_LIMIT: usize = 128;

/// Most deferred work items accumulated before a licensed batch drains
/// anyway (bounds memory; commutativity makes the cut point free).
const DEFER_BATCH_LIMIT: usize = 64;

/// Most application sends parked during a flush window. Beyond this the
/// oldest parked message is dropped (the application outran the view
/// change; backpressure should have throttled it long before).
const PARK_LIMIT: usize = 4096;

/// An application message parked while the stack is blocked (flush
/// window). Sends remember the destination *endpoint*, not its rank: the
/// new view reranks survivors, so the rank is remapped at replay.
#[derive(Clone, Debug)]
enum Parked {
    Cast(Vec<u8>),
    Send(Endpoint, Vec<u8>),
}

/// Where in the group a trace event originated. The core knows layers by
/// index only; the worker resolves indices to names (and pseudo-layers to
/// the `app` / `bypass` / `engine` tags) when folding events into the
/// node's recorder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoreLayer {
    /// The application boundary (casts in, deliveries out).
    App,
    /// The synthesized fast path.
    Bypass,
    /// The full layer-stack engine.
    Engine,
    /// A specific stack layer, by index from the top.
    Layer(usize),
}

/// One structured trace event buffered by a [`GroupCore`].
///
/// The core performs no I/O and reads no clock, so it stamps events with
/// the [`Time`] its caller passed in and parks them in a buffer; the
/// shard worker drains the buffer ([`GroupCore::take_events`]) into the
/// node-wide flight recorder after every call. When tracing is off
/// ([`GroupCore::set_tracing`]) nothing is buffered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreEvent {
    /// The caller's clock at the event.
    pub t: Time,
    /// Originating (pseudo-)layer.
    pub layer: CoreLayer,
    /// What happened.
    pub kind: EventKind,
    /// Which way the event was travelling.
    pub dir: Direction,
    /// Per-group event ordinal (monotonic across the group's lifetime).
    pub seqno: u64,
    /// CCP-failure reason for bypass outcomes.
    pub ccp: CcpFailure,
    /// Event-specific extra (payload length, stash depth, …).
    pub aux: u64,
}

/// An application-visible event from the group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Delivery {
    /// A multicast from `origin` (endpoint id).
    Cast {
        /// Sender's endpoint id.
        origin: u32,
        /// Payload bytes.
        bytes: Vec<u8>,
    },
    /// A point-to-point message from `origin` (endpoint id).
    Send {
        /// Sender's endpoint id.
        origin: u32,
        /// Payload bytes.
        bytes: Vec<u8>,
    },
    /// A new view was installed.
    View(ViewState),
    /// The stack asks the application to stop sending (flush protocol).
    Block,
    /// The stack has left the group.
    Exit,
    /// An updated stability vector.
    Stable(Vec<u64>),
}

/// One effect of processing an event.
#[derive(Debug)]
pub enum Action {
    /// Hand this packet to the transport.
    Transmit(Packet),
    /// Ask the timer wheel for a callback.
    Timer {
        /// Stack layer to wake.
        layer: usize,
        /// Absolute deadline.
        deadline: Time,
        /// Stack generation the request belongs to.
        generation: u64,
    },
    /// Hand this event to the application.
    Deliver(Delivery),
}

/// Why [`GroupCore::install_bypass`] refused.
#[derive(Debug)]
pub enum BypassError {
    /// The synthesis pipeline rejected the stack.
    Synthesis(String),
    /// Code generation failed.
    Codegen(String),
}

impl std::fmt::Display for BypassError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BypassError::Synthesis(e) => write!(f, "synthesis failed: {e}"),
            BypassError::Codegen(e) => write!(f, "codegen failed: {e}"),
        }
    }
}

/// The runtime's per-group state machine.
pub struct GroupCore {
    names: Vec<&'static str>,
    kind: EngineKind,
    cfg: LayerConfig,
    vs: ViewState,
    ep: Endpoint,
    engine: Box<dyn Engine>,
    generation: u64,
    alive: bool,
    bypass: Option<StackBypass>,
    /// Out-of-order compressed packets: `(origin rank, bytes, is_cast)`.
    stash: Vec<(u16, Vec<u8>, bool)>,
    /// The stack asked the application to stop sending (flush window).
    /// While set, application casts/sends are parked, not injected: a
    /// message entering the stack after its `FlushOk` row was reported
    /// would be missing from the agreed cut and could be lost or
    /// delivered inconsistently across the view change.
    blocked: bool,
    /// The cluster driver stalled this group: its partition component
    /// lacks quorum. Casts/sends park (like a flush window) and ingress
    /// is *dropped* — while stalled the stack must neither originate nor
    /// consume traffic, or the minority could deliver messages the
    /// primary partition never agrees on. Cleared by the next installed
    /// view (the merge) or an explicit unstall.
    stalled: bool,
    /// Ingress packets dropped while stalled (delta; see
    /// [`GroupCore::take_stall_drops`]).
    stall_drops: u64,
    /// Messages parked during the flush window, replayed through the
    /// fresh stack right after the new view installs.
    parked: Vec<Parked>,
    bypass_hits: u64,
    bypass_misses: u64,
    /// The installed bypass's Defer-commutativity certificate held
    /// (DF001–DF003): deferred work may drain in batches.
    defer_licensed: bool,
    /// Deferred items already counted into the current batch.
    defer_seen: usize,
    /// Work items accumulated into batches (licensed stacks only).
    defer_batched: u64,
    /// Drain passes (batch flushes when licensed, per-hit drains when
    /// not).
    defer_flushes: u64,
    cost: Counters,
    tracing: bool,
    events: Vec<CoreEvent>,
    event_ord: u64,
}

impl GroupCore {
    /// Builds the stack for `vs`; the returned actions are the init
    /// boundary (initial timers, mostly).
    pub fn new(
        names: &[&'static str],
        vs: ViewState,
        kind: EngineKind,
        cfg: LayerConfig,
        now: Time,
    ) -> Result<(GroupCore, Vec<Action>), StackError> {
        let mut engine = kind.build(make_stack(names, &vs, &cfg)?);
        let boundary = engine.init(now);
        let mut core = GroupCore {
            names: names.to_vec(),
            kind,
            cfg,
            ep: vs.my_endpoint(),
            vs,
            engine,
            generation: 0,
            alive: true,
            bypass: None,
            stash: Vec::new(),
            blocked: false,
            stalled: false,
            stall_drops: 0,
            parked: Vec::new(),
            bypass_hits: 0,
            bypass_misses: 0,
            defer_licensed: false,
            defer_seen: 0,
            defer_batched: 0,
            defer_flushes: 0,
            cost: Counters::zero(),
            tracing: false,
            events: Vec::new(),
            event_ord: 0,
        };
        let mut out = Vec::new();
        core.route(now, boundary, &mut out);
        Ok((core, out))
    }

    /// This process's endpoint.
    pub fn endpoint(&self) -> Endpoint {
        self.ep
    }

    /// This process's rank in the current view.
    pub fn rank(&self) -> Rank {
        self.vs.rank
    }

    /// The current view.
    pub fn view(&self) -> &ViewState {
        &self.vs
    }

    /// Whether the stack is still running (no Exit yet).
    pub fn alive(&self) -> bool {
        self.alive
    }

    /// Whether a bypass is currently installed.
    pub fn has_bypass(&self) -> bool {
        self.bypass.is_some()
    }

    /// Whether the stack is in a flush window (sends are being parked).
    pub fn is_blocked(&self) -> bool {
        self.blocked
    }

    /// Whether the group is stalled for lack of quorum.
    pub fn is_stalled(&self) -> bool {
        self.stalled
    }

    /// Stalls or unstalls the group (see the `stalled` field docs).
    /// Unstalling without a view change replays parked messages into the
    /// current view.
    pub fn set_stalled(&mut self, now: Time, on: bool) -> Vec<Action> {
        let mut out = Vec::new();
        if !self.alive || self.stalled == on {
            return out;
        }
        self.stalled = on;
        self.trace(
            now,
            CoreLayer::App,
            EventKind::MinorityStall,
            if on { Direction::Dn } else { Direction::Up },
            CcpFailure::None,
            on as u64,
        );
        if !on && !self.blocked {
            self.replay_parked(now, &mut out);
        }
        out
    }

    /// Takes and resets the stalled-ingress drop count.
    pub fn take_stall_drops(&mut self) -> u64 {
        std::mem::take(&mut self.stall_drops)
    }

    /// Installs a view handed in from *outside* the stack — a merge
    /// grant from the primary partition's coordinator, arriving on the
    /// control plane because this member never saw the flush that
    /// produced it. Guarded: only a strictly newer view (by `ltime`) is
    /// accepted, so a delayed or duplicated grant cannot roll the group
    /// back. Clears any quorum stall and replays parked messages into
    /// the merged view.
    pub fn install_external_view(&mut self, now: Time, vs: ViewState) -> Vec<Action> {
        let mut out = Vec::new();
        if !self.alive || vs.view_id.ltime <= self.vs.view_id.ltime {
            return out;
        }
        self.stalled = false;
        self.install_view(now, vs, &mut out);
        out
    }

    /// Asks the stack to admit `members` (partition healing): `gmp`
    /// flushes the current view and announces the grown view.
    pub fn merge(&mut self, now: Time, members: Vec<Endpoint>) -> Vec<Action> {
        let mut out = Vec::new();
        if self.alive {
            self.trace(
                now,
                CoreLayer::App,
                EventKind::MergeGrant,
                Direction::Dn,
                CcpFailure::None,
                members.len() as u64,
            );
            let b = self.inject_dn(now, DnEvent::Merge { members });
            self.route(now, b, &mut out);
        }
        out
    }

    /// Messages currently parked awaiting the next view.
    pub fn parked_depth(&self) -> usize {
        self.parked.len()
    }

    /// Parks one application message for replay after the view change.
    fn park(&mut self, now: Time, p: Parked) {
        if self.parked.len() >= PARK_LIMIT {
            self.parked.remove(0);
        }
        self.parked.push(p);
        self.trace(
            now,
            CoreLayer::App,
            EventKind::StashPark,
            Direction::Dn,
            CcpFailure::None,
            self.parked.len() as u64,
        );
    }

    /// Takes and resets the bypass hit/miss deltas.
    pub fn take_bypass_delta(&mut self) -> (u64, u64) {
        let d = (self.bypass_hits, self.bypass_misses);
        self.bypass_hits = 0;
        self.bypass_misses = 0;
        d
    }

    /// Takes and resets the `(defer_batched, defer_flushes)` deltas.
    pub fn take_defer_delta(&mut self) -> (u64, u64) {
        let d = (self.defer_batched, self.defer_flushes);
        self.defer_batched = 0;
        self.defer_flushes = 0;
        d
    }

    /// Whether deferred work is currently drained in batches: a bypass
    /// is installed *and* its Defer-commutativity certificate held.
    pub fn defer_batching_active(&self) -> bool {
        self.bypass.is_some() && self.defer_licensed
    }

    /// Takes and resets the model-cost delta.
    pub fn take_cost_delta(&mut self) -> Counters {
        std::mem::take(&mut self.cost)
    }

    /// Turns structured event buffering on or off (off by default; the
    /// shard worker enables it when the node's observability is on).
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
        if !on {
            self.events.clear();
        }
    }

    /// The stack's layer names, top first (resolves [`CoreLayer::Layer`]).
    pub fn layer_names(&self) -> &[&'static str] {
        &self.names
    }

    /// Takes the buffered trace events (empty when tracing is off).
    pub fn take_events(&mut self, out: &mut Vec<CoreEvent>) {
        out.append(&mut self.events);
    }

    fn trace(
        &mut self,
        t: Time,
        layer: CoreLayer,
        kind: EventKind,
        dir: Direction,
        ccp: CcpFailure,
        aux: u64,
    ) {
        if !self.tracing {
            return;
        }
        self.event_ord += 1;
        self.events.push(CoreEvent {
            t,
            layer,
            kind,
            dir,
            seqno: self.event_ord,
            ccp,
            aux,
        });
    }

    /// Synthesizes and installs the MACH bypass for the current view and
    /// layer configuration. Idempotent per view (reinstall recompiles).
    pub fn install_bypass(&mut self) -> Result<(), BypassError> {
        let mut ctx = ModelCtx::new(self.vs.nmembers() as i64, self.vs.rank.0 as i64);
        ctx.pt2pt_window = self.cfg.pt2pt_window as i64;
        ctx.mflow_window = self.cfg.mflow_window as i64;
        ctx.frag_max = self.cfg.frag_max as i64;
        ctx.collect_every = self.cfg.collect_every as i64;
        let synth =
            synthesize(&self.names, &ctx).map_err(|e| BypassError::Synthesis(format!("{e:?}")))?;
        let bypass = StackBypass::compile(&synth, self.vs.rank.0)
            .map_err(|e| BypassError::Codegen(format!("{e:?}")))?;
        // The Defer-commutativity certificate decides the drain policy:
        // licensed stacks batch deferred work to quiescent points,
        // anything else drains after every bypass hit.
        self.defer_licensed = DeferCertificate::of(&synth, self.vs.rank.0 as i64).licensed();
        self.defer_seen = 0;
        self.bypass = Some(bypass);
        self.stash.clear();
        Ok(())
    }

    /// Removes the bypass; subsequent traffic takes the engine. Any
    /// batched deferred work drains first (a quiescent point).
    pub fn drop_bypass(&mut self) {
        if let Some(b) = self.bypass.as_mut() {
            if b.drain_deferred() > 0 {
                self.defer_flushes += 1;
            }
        }
        self.defer_seen = 0;
        self.defer_licensed = false;
        self.bypass = None;
        self.stash.clear();
    }

    /// An application multicast.
    pub fn cast(&mut self, now: Time, payload: &[u8]) -> Vec<Action> {
        let mut out = Vec::new();
        if !self.alive {
            return out;
        }
        self.trace(
            now,
            CoreLayer::App,
            EventKind::Cast,
            Direction::Dn,
            CcpFailure::None,
            payload.len() as u64,
        );
        if self.blocked || self.stalled {
            self.park(now, Parked::Cast(payload.to_vec()));
            return out;
        }
        if let Some(bypass) = self.bypass.as_mut() {
            let p = Payload::from_slice(payload);
            let result = bypass.dn_cast(&p);
            if self.apply_bypass(now, Case::DnCast, result, &mut out) {
                self.settle_deferred(now);
                return out;
            }
            // CCP failed: this message takes the engine (see module docs
            // for the ordering caveat between the two streams). The
            // EngineFallback event is the observable edge of that
            // cross-stream reordering window. Falling back is a
            // quiescent point: the batch drains before engine traffic
            // interleaves.
            self.flush_deferred(now);
            self.trace(
                now,
                CoreLayer::Engine,
                EventKind::EngineFallback,
                Direction::Dn,
                CcpFailure::SenderCcp,
                0,
            );
        }
        let ev = DnEvent::Cast(Msg::data(Payload::from_slice(payload)));
        let b = self.inject_dn(now, ev);
        self.route(now, b, &mut out);
        out
    }

    /// An application point-to-point send to `dst` (rank).
    pub fn send(&mut self, now: Time, dst: Rank, payload: &[u8]) -> Vec<Action> {
        let mut out = Vec::new();
        if !self.alive || dst.index() >= self.vs.nmembers() {
            return out;
        }
        self.trace(
            now,
            CoreLayer::App,
            EventKind::Send,
            Direction::Dn,
            CcpFailure::None,
            payload.len() as u64,
        );
        if self.blocked || self.stalled {
            let dst_ep = self.vs.endpoint_of(dst);
            self.park(now, Parked::Send(dst_ep, payload.to_vec()));
            return out;
        }
        if let Some(bypass) = self.bypass.as_mut() {
            let p = Payload::from_slice(payload);
            let result = bypass.dn_send(dst.0, &p);
            if self.apply_bypass(now, Case::DnSend, result, &mut out) {
                self.settle_deferred(now);
                return out;
            }
            self.flush_deferred(now);
            self.trace(
                now,
                CoreLayer::Engine,
                EventKind::EngineFallback,
                Direction::Dn,
                CcpFailure::SenderCcp,
                0,
            );
        }
        let ev = DnEvent::Send {
            dst,
            msg: Msg::data(Payload::from_slice(payload)),
        };
        let b = self.inject_dn(now, ev);
        self.route(now, b, &mut out);
        out
    }

    /// Asks the stack to declare `ranks` suspected.
    pub fn suspect(&mut self, now: Time, ranks: Vec<Rank>) -> Vec<Action> {
        let mut out = Vec::new();
        if self.alive {
            self.trace(
                now,
                CoreLayer::App,
                EventKind::Suspect,
                Direction::Dn,
                CcpFailure::None,
                ranks.len() as u64,
            );
            let b = self.inject_dn(now, DnEvent::Suspect { ranks });
            self.route(now, b, &mut out);
        }
        out
    }

    /// Gracefully leaves the group.
    pub fn leave(&mut self, now: Time) -> Vec<Action> {
        let mut out = Vec::new();
        if self.alive {
            self.trace(
                now,
                CoreLayer::App,
                EventKind::Leave,
                Direction::Dn,
                CcpFailure::None,
                0,
            );
            let b = self.inject_dn(now, DnEvent::Leave);
            self.route(now, b, &mut out);
        }
        out
    }

    /// A packet arrived from the transport.
    pub fn deliver_packet(&mut self, now: Time, pkt: Packet) -> Vec<Action> {
        let mut out = Vec::new();
        if !self.alive {
            return out;
        }
        if self.stalled {
            // Quarantine: a stalled minority must not consume traffic
            // from a primary view it never installed (stale seqno state
            // would NAK and mis-deliver across the epoch boundary).
            self.stall_drops += 1;
            return out;
        }
        let Some(origin) = self.vs.rank_of(pkt.src) else {
            return out; // Sender not in our view.
        };
        let is_cast = matches!(pkt.dst, Dest::Cast);
        if let Some(bypass) = self.bypass.as_mut() {
            let result = if is_cast {
                bypass.up_cast(origin.0, &pkt.bytes)
            } else {
                bypass.up_send(origin.0, &pkt.bytes)
            };
            // This stack's compressed format, or generic engine bytes?
            // (`CompressedHdr::decode` alone is not a discriminator —
            // it has no magic; the id/case check is what decides.)
            let ours = bypass.recognizes(&pkt.bytes, is_cast);
            let case = if is_cast { Case::UpCast } else { Case::UpSend };
            match result {
                BypassOutput::Done { .. } => {
                    self.apply_bypass(now, case, result, &mut out);
                    self.retry_stash(now, &mut out);
                    self.settle_deferred(now);
                    return out;
                }
                BypassOutput::Fallback => {
                    if ours {
                        // Compressed but CCP-rejected: an out-of-order
                        // fast-path packet. Park it for the gap fill.
                        self.bypass_misses += 1;
                        if self.stash.len() >= STASH_LIMIT {
                            self.stash.remove(0);
                            self.trace(
                                now,
                                CoreLayer::Bypass,
                                EventKind::StashPark,
                                Direction::Up,
                                CcpFailure::StashOverflow,
                                STASH_LIMIT as u64,
                            );
                        }
                        self.stash.push((origin.0, pkt.bytes, is_cast));
                        self.trace(
                            now,
                            CoreLayer::Bypass,
                            EventKind::StashPark,
                            Direction::Up,
                            CcpFailure::OutOfOrder,
                            self.stash.len() as u64,
                        );
                        return out;
                    }
                    // Not compressed at all: a generic-path packet.
                    self.trace(
                        now,
                        CoreLayer::Bypass,
                        EventKind::BypassMiss,
                        Direction::Up,
                        CcpFailure::ForeignFormat,
                        0,
                    );
                }
            }
        }
        let Ok(msg) = unmarshal(&pkt.bytes) else {
            return out; // Corrupt or foreign: drop.
        };
        self.cost.allocations += 1;
        self.cost.data_refs += 1;
        let ev = if is_cast {
            UpEvent::Cast { origin, msg }
        } else {
            UpEvent::Send { origin, msg }
        };
        let b = self.inject_up(now, ev);
        self.route(now, b, &mut out);
        out
    }

    /// Fires a layer timer requested by generation `generation`.
    pub fn fire_timer(&mut self, now: Time, layer: usize, generation: u64) -> Vec<Action> {
        let mut out = Vec::new();
        if !self.alive || generation != self.generation {
            return out; // Stale timer from a replaced stack.
        }
        self.trace(
            now,
            CoreLayer::Layer(layer),
            EventKind::TimerFire,
            Direction::None,
            CcpFailure::None,
            0,
        );
        let b = self.engine.fire_timer(now, layer);
        self.cost.dispatches += 1;
        self.route(now, b, &mut out);
        if self.stalled {
            // Timers keep rescheduling (an unstall must find the stack
            // live), but a stalled group stays silent on the wire.
            out.retain(|a| !matches!(a, Action::Transmit(_)));
        }
        out
    }

    fn inject_dn(&mut self, now: Time, ev: DnEvent) -> Boundary {
        self.cost.dispatches += self.engine.layer_count() as u64;
        self.engine.inject_dn(now, ev)
    }

    fn inject_up(&mut self, now: Time, ev: UpEvent) -> Boundary {
        self.cost.dispatches += self.engine.layer_count() as u64;
        self.engine.inject_up(now, ev)
    }

    /// Applies a bypass result; `true` when the fast path handled it.
    fn apply_bypass(
        &mut self,
        now: Time,
        case: Case,
        result: BypassOutput,
        out: &mut Vec<Action>,
    ) -> bool {
        let dir = match case {
            Case::DnCast | Case::DnSend => Direction::Dn,
            Case::UpCast | Case::UpSend => Direction::Up,
        };
        match result {
            BypassOutput::Fallback => {
                self.bypass_misses += 1;
                // Fallback only reaches here on the sender side; the
                // receiver side triages fallbacks in `deliver_packet`.
                self.trace(
                    now,
                    CoreLayer::Bypass,
                    EventKind::BypassMiss,
                    dir,
                    CcpFailure::SenderCcp,
                    0,
                );
                false
            }
            BypassOutput::Done { wire, deliver } => {
                self.bypass_hits += 1;
                let b = self.bypass.as_ref().expect("bypass ran");
                let (ccp, wire_ops, update) = b.program_sizes(case);
                self.cost.instructions += (ccp + wire_ops + update) as u64;
                // The CCP is all conditionals; the wire and update
                // programs move header fields and state words.
                self.cost.branches += ccp as u64;
                self.cost.data_refs += (wire_ops + update) as u64;
                self.trace(
                    now,
                    CoreLayer::Bypass,
                    EventKind::BypassHit,
                    dir,
                    CcpFailure::None,
                    (ccp + wire_ops + update) as u64,
                );
                if let Some((dst, bytes)) = wire {
                    let pkt = match dst {
                        None => Packet::cast(self.ep, bytes),
                        Some(rank) => {
                            Packet::point(self.ep, self.vs.endpoint_of(Rank(rank)), bytes)
                        }
                    };
                    out.push(Action::Transmit(pkt));
                }
                if let Some((origin, payload)) = deliver {
                    let oid = self.vs.endpoint_of(Rank(origin)).id();
                    let bytes = payload.gather();
                    self.trace(
                        now,
                        CoreLayer::Bypass,
                        EventKind::Deliver,
                        Direction::Up,
                        CcpFailure::None,
                        bytes.len() as u64,
                    );
                    let d = match case {
                        Case::DnCast | Case::UpCast => Delivery::Cast { origin: oid, bytes },
                        Case::DnSend | Case::UpSend => Delivery::Send { origin: oid, bytes },
                    };
                    out.push(Action::Deliver(d));
                }
                true
            }
        }
    }

    /// Settles deferred work after a bypass hit: licensed stacks
    /// accumulate it into the batch (draining only when the batch
    /// fills), uncertified stacks drain on the spot.
    fn settle_deferred(&mut self, now: Time) {
        let Some(b) = self.bypass.as_mut() else {
            return;
        };
        let pending = b.deferred_len();
        if !self.defer_licensed {
            let n = b.drain_deferred();
            if n > 0 {
                self.defer_flushes += 1;
                self.trace(
                    now,
                    CoreLayer::Bypass,
                    EventKind::DeferFlush,
                    Direction::None,
                    CcpFailure::None,
                    n as u64,
                );
            }
            self.defer_seen = 0;
            return;
        }
        if pending > self.defer_seen {
            self.defer_batched += (pending - self.defer_seen) as u64;
            self.defer_seen = pending;
        }
        if pending >= DEFER_BATCH_LIMIT {
            self.flush_deferred(now);
        }
    }

    /// Drains the deferred-work batch at a quiescent point (full batch,
    /// engine fallback, view change, bypass drop).
    fn flush_deferred(&mut self, now: Time) {
        if let Some(b) = self.bypass.as_mut() {
            let n = b.drain_deferred();
            if n > 0 {
                self.defer_flushes += 1;
                self.trace(
                    now,
                    CoreLayer::Bypass,
                    EventKind::DeferFlush,
                    Direction::None,
                    CcpFailure::None,
                    n as u64,
                );
            }
        }
        self.defer_seen = 0;
    }

    /// Retries parked out-of-order packets until no further progress.
    fn retry_stash(&mut self, now: Time, out: &mut Vec<Action>) {
        loop {
            let mut progressed = false;
            let mut i = 0;
            while i < self.stash.len() {
                let (origin, ref bytes, is_cast) = self.stash[i];
                let result = {
                    let b = self.bypass.as_mut().expect("stash implies bypass");
                    if is_cast {
                        b.up_cast(origin, bytes)
                    } else {
                        b.up_send(origin, bytes)
                    }
                };
                match result {
                    BypassOutput::Done { .. } => {
                        let case = if is_cast { Case::UpCast } else { Case::UpSend };
                        self.stash.remove(i);
                        self.trace(
                            now,
                            CoreLayer::Bypass,
                            EventKind::StashReplay,
                            Direction::Up,
                            CcpFailure::None,
                            self.stash.len() as u64,
                        );
                        self.apply_bypass(now, case, result, out);
                        progressed = true;
                    }
                    BypassOutput::Fallback => i += 1,
                }
            }
            if !progressed {
                return;
            }
        }
    }

    /// Routes an engine boundary into actions (recursing through view
    /// installs, which rebuild the stack).
    fn route(&mut self, now: Time, mut b: Boundary, out: &mut Vec<Action>) {
        for (layer, deadline) in b.timers.drain(..) {
            out.push(Action::Timer {
                layer,
                deadline: deadline.max(now),
                generation: self.generation,
            });
        }
        for ev in b.wire.drain(..) {
            match ev {
                DnEvent::Cast(msg) => {
                    self.cost.allocations += 1;
                    self.cost.data_refs += 1;
                    out.push(Action::Transmit(Packet::cast(self.ep, marshal(&msg))));
                }
                DnEvent::Send { dst, msg } => {
                    self.cost.allocations += 1;
                    self.cost.data_refs += 1;
                    let dst_ep = self.vs.endpoint_of(dst);
                    out.push(Action::Transmit(Packet::point(
                        self.ep,
                        dst_ep,
                        marshal(&msg),
                    )));
                }
                // Other control events are absorbed at the boundary,
                // matching the simulator.
                _ => {}
            }
        }
        let app: Vec<UpEvent> = b.app.drain(..).collect();
        for ev in app {
            match ev {
                UpEvent::Cast { origin, msg } => {
                    let oid = self.vs.endpoint_of(origin).id();
                    let bytes = msg.payload().gather();
                    self.trace(
                        now,
                        CoreLayer::Engine,
                        EventKind::Deliver,
                        Direction::Up,
                        CcpFailure::None,
                        bytes.len() as u64,
                    );
                    out.push(Action::Deliver(Delivery::Cast { origin: oid, bytes }));
                }
                UpEvent::Send { origin, msg } => {
                    let oid = self.vs.endpoint_of(origin).id();
                    let bytes = msg.payload().gather();
                    self.trace(
                        now,
                        CoreLayer::Engine,
                        EventKind::Deliver,
                        Direction::Up,
                        CcpFailure::None,
                        bytes.len() as u64,
                    );
                    out.push(Action::Deliver(Delivery::Send { origin: oid, bytes }));
                }
                UpEvent::View(vs) => self.install_view(now, vs, out),
                UpEvent::Block => {
                    self.blocked = true;
                    self.trace(
                        now,
                        CoreLayer::Engine,
                        EventKind::Block,
                        Direction::Up,
                        CcpFailure::None,
                        0,
                    );
                    out.push(Action::Deliver(Delivery::Block));
                }
                UpEvent::Exit => {
                    self.alive = false;
                    self.blocked = false;
                    self.parked.clear();
                    self.trace(
                        now,
                        CoreLayer::Engine,
                        EventKind::Exit,
                        Direction::Up,
                        CcpFailure::None,
                        0,
                    );
                    out.push(Action::Deliver(Delivery::Exit));
                }
                UpEvent::Stable(v) => {
                    out.push(Action::Deliver(Delivery::Stable(
                        v.iter().map(|s| s.0).collect(),
                    )));
                }
                _ => {}
            }
        }
    }

    /// Installs a new view: fresh stack, new generation, bypass dropped.
    fn install_view(&mut self, now: Time, vs: ViewState, out: &mut Vec<Action>) {
        self.trace(
            now,
            CoreLayer::Engine,
            EventKind::ViewInstall,
            Direction::Up,
            CcpFailure::None,
            vs.nmembers() as u64,
        );
        self.generation += 1;
        self.flush_deferred(now);
        self.defer_licensed = false;
        self.bypass = None;
        self.stash.clear();
        self.blocked = false;
        self.stalled = false;
        let mut engine = self
            .kind
            .build(make_stack(&self.names, &vs, &self.cfg).expect("stack built once already"));
        let boundary = engine.init(now);
        self.engine = engine;
        self.vs = vs.clone();
        out.push(Action::Deliver(Delivery::View(vs)));
        self.route(now, boundary, out);
        self.replay_parked(now, out);
    }

    /// Replays messages parked during the flush window through the fresh
    /// stack: they are delivered exactly once, in the new view, in the
    /// order the application issued them. Sends whose destination left
    /// the group are dropped (the peer is gone).
    fn replay_parked(&mut self, now: Time, out: &mut Vec<Action>) {
        if self.parked.is_empty() {
            return;
        }
        let parked = std::mem::take(&mut self.parked);
        for p in parked {
            // A replayed message may hit a new Block (back-to-back view
            // changes): `cast`/`send` re-park it for the next view.
            self.trace(
                now,
                CoreLayer::App,
                EventKind::StashReplay,
                Direction::Dn,
                CcpFailure::None,
                self.parked.len() as u64,
            );
            match p {
                Parked::Cast(bytes) => {
                    let mut acts = self.cast(now, &bytes);
                    out.append(&mut acts);
                }
                Parked::Send(dst_ep, bytes) => {
                    let Some(dst) = self.vs.rank_of(dst_ep) else {
                        continue; // Destination excluded from the new view.
                    };
                    let mut acts = self.send(now, dst, &bytes);
                    out.append(&mut acts);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemble_layers::STACK_4;

    fn core(rank: u16, n: usize) -> (GroupCore, Vec<Action>) {
        let vs = ViewState::initial(n).for_rank(Rank(rank));
        GroupCore::new(
            STACK_4,
            vs,
            EngineKind::Imp,
            LayerConfig::fast(),
            Time::ZERO,
        )
        .unwrap()
    }

    fn transmits(actions: &[Action]) -> Vec<&Packet> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Transmit(p) => Some(p),
                _ => None,
            })
            .collect()
    }

    fn casts(actions: &[Action]) -> Vec<(u32, Vec<u8>)> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Deliver(Delivery::Cast { origin, bytes }) => Some((*origin, bytes.clone())),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn cast_crosses_two_cores() {
        let (mut a, _) = core(0, 2);
        let (mut b, _) = core(1, 2);
        let out = a.cast(Time::ZERO, b"hello");
        // STACK_4 has no `local` layer: no self-delivery at the sender.
        assert!(casts(&out).is_empty());
        let wire = transmits(&out);
        assert_eq!(wire.len(), 1);
        let got = b.deliver_packet(Time::ZERO, wire[0].clone());
        assert_eq!(casts(&got), vec![(0, b"hello".to_vec())]);
    }

    #[test]
    fn bypass_fast_path_delivers_and_counts() {
        let (mut a, _) = core(0, 2);
        let (mut b, _) = core(1, 2);
        a.install_bypass().unwrap();
        b.install_bypass().unwrap();
        for i in 0..10u8 {
            let out = a.cast(Time::ZERO, &[i]);
            let wire = transmits(&out);
            assert_eq!(wire.len(), 1, "cast {i} must hit the fast path");
            let got = b.deliver_packet(Time::ZERO, wire[0].clone());
            assert_eq!(casts(&got), vec![(0, vec![i])]);
        }
        let (hits_a, misses_a) = a.take_bypass_delta();
        let (hits_b, misses_b) = b.take_bypass_delta();
        assert_eq!(hits_a, 10);
        assert_eq!(misses_a, 0);
        assert_eq!(hits_b, 10);
        assert_eq!(misses_b, 0);
        assert!(a.take_cost_delta().instructions > 0);
    }

    #[test]
    fn bypass_reorder_is_stashed_and_replayed() {
        let (mut a, _) = core(0, 2);
        let (mut b, _) = core(1, 2);
        a.install_bypass().unwrap();
        b.install_bypass().unwrap();
        let w1 = transmits(&a.cast(Time::ZERO, b"first"))[0].clone();
        let w2 = transmits(&a.cast(Time::ZERO, b"second"))[0].clone();
        // Deliver out of order: the second parks, the first releases it.
        let got2 = b.deliver_packet(Time::ZERO, w2);
        assert!(casts(&got2).is_empty(), "gap must stall delivery");
        let got1 = b.deliver_packet(Time::ZERO, w1);
        assert_eq!(
            casts(&got1),
            vec![(0, b"first".to_vec()), (0, b"second".to_vec())],
            "stash replays in order after the gap fills"
        );
    }

    fn vsync_core(rank: u16, n: usize) -> (GroupCore, Vec<Action>) {
        let vs = ViewState::initial(n).for_rank(Rank(rank));
        GroupCore::new(
            ensemble_layers::STACK_VSYNC,
            vs,
            EngineKind::Imp,
            LayerConfig::fast(),
            Time::ZERO,
        )
        .unwrap()
    }

    /// Shuttles packets between cores (skipping `dead` endpoints) until
    /// quiescent, appending each core's deliveries to `sink`.
    fn pump(
        cores: &mut [GroupCore],
        dead: &[u32],
        pending: &mut std::collections::VecDeque<Packet>,
        sink: &mut [Vec<Delivery>],
    ) {
        while let Some(pkt) = pending.pop_front() {
            if dead.contains(&pkt.src.id()) {
                continue;
            }
            let targets: Vec<usize> = match pkt.dst {
                Dest::Cast => (0..cores.len())
                    .filter(|&i| {
                        cores[i].endpoint() != pkt.src && !dead.contains(&cores[i].endpoint().id())
                    })
                    .collect(),
                Dest::Point(dst) => (0..cores.len())
                    .filter(|&i| cores[i].endpoint() == dst && !dead.contains(&dst.id()))
                    .collect(),
            };
            for i in targets {
                let acts = cores[i].deliver_packet(Time::ZERO, pkt.clone());
                for a in acts {
                    match a {
                        Action::Transmit(p) => pending.push_back(p),
                        Action::Deliver(d) => sink[i].push(d),
                        Action::Timer { .. } => {}
                    }
                }
            }
        }
    }

    /// Delivers the currently pending packets only, collecting the
    /// responses into a fresh queue — lets a test observe mid-flush state.
    fn pump_one_level(
        cores: &mut [GroupCore],
        dead: &[u32],
        pending: &mut std::collections::VecDeque<Packet>,
        sink: &mut [Vec<Delivery>],
    ) {
        let mut next = std::collections::VecDeque::new();
        while let Some(pkt) = pending.pop_front() {
            if dead.contains(&pkt.src.id()) {
                continue;
            }
            let targets: Vec<usize> = match pkt.dst {
                Dest::Cast => (0..cores.len())
                    .filter(|&i| {
                        cores[i].endpoint() != pkt.src && !dead.contains(&cores[i].endpoint().id())
                    })
                    .collect(),
                Dest::Point(dst) => (0..cores.len())
                    .filter(|&i| cores[i].endpoint() == dst && !dead.contains(&dst.id()))
                    .collect(),
            };
            for i in targets {
                let acts = cores[i].deliver_packet(Time::ZERO, pkt.clone());
                for a in acts {
                    match a {
                        Action::Transmit(p) => next.push_back(p),
                        Action::Deliver(d) => sink[i].push(d),
                        Action::Timer { .. } => {}
                    }
                }
            }
        }
        *pending = next;
    }

    fn split(
        actions: Vec<Action>,
        pending: &mut std::collections::VecDeque<Packet>,
        sink: &mut Vec<Delivery>,
    ) {
        for a in actions {
            match a {
                Action::Transmit(p) => pending.push_back(p),
                Action::Deliver(d) => sink.push(d),
                Action::Timer { .. } => {}
            }
        }
    }

    fn cast_bodies(deliveries: &[Delivery]) -> Vec<(u32, Vec<u8>)> {
        deliveries
            .iter()
            .filter_map(|d| match d {
                Delivery::Cast { origin, bytes } => Some((*origin, bytes.clone())),
                _ => None,
            })
            .collect()
    }

    fn views(deliveries: &[Delivery]) -> Vec<ViewState> {
        deliveries
            .iter()
            .filter_map(|d| match d {
                Delivery::View(v) => Some(v.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn blocked_casts_park_and_replay_exactly_once_in_new_view() {
        let (mut c0, _) = vsync_core(0, 3);
        let (c1, _) = vsync_core(1, 3);
        let mut pending = std::collections::VecDeque::new();
        let mut sink = vec![Vec::new(), Vec::new()];

        // The coordinator suspects member 2 (dead): flush begins and the
        // coordinator blocks synchronously.
        let acts = c0.suspect(Time::ZERO, vec![Rank(2)]);
        split(acts, &mut pending, &mut sink[0]);
        assert!(c0.is_blocked(), "coordinator enters the flush window");
        assert!(
            sink[0].contains(&Delivery::Block),
            "Block surfaced to the app"
        );

        // A cast issued inside the window parks instead of entering the
        // old stack (it would miss the agreed cut).
        let acts = c0.cast(Time::ZERO, b"during-0");
        assert!(
            !acts.iter().any(|a| matches!(a, Action::Transmit(_))),
            "blocked cast must not transmit"
        );
        assert_eq!(c0.parked_depth(), 1);

        // Let the Flush reach member 1, which blocks too; its own cast
        // during the window also parks. A single pump level delivers
        // core0's outgoing frames without yet returning the responses.
        let mut cores = [c0, c1];
        pump_one_level(&mut cores, &[2], &mut pending, &mut sink);
        assert!(cores[1].is_blocked(), "member blocks on Flush");
        let acts = cores[1].cast(Time::ZERO, b"during-1");
        assert!(!acts.iter().any(|a| matches!(a, Action::Transmit(_))));
        assert_eq!(cores[1].parked_depth(), 1);

        // Drive the flush to completion: new view on both survivors, and
        // the parked casts replay through the fresh stacks.
        pump(&mut cores, &[2], &mut pending, &mut sink);
        for (i, s) in sink.iter().enumerate() {
            let v = views(s);
            assert_eq!(v.len(), 1, "core {i} installs exactly one new view");
            assert_eq!(v[0].nmembers(), 2, "core {i}");
        }
        assert_eq!(
            views(&sink[0])[0].view_id,
            views(&sink[1])[0].view_id,
            "survivors agree on the new view"
        );
        // Exactly-once: each parked cast delivered once per survivor
        // (vsync includes `local`, so senders deliver their own casts).
        for (i, s) in sink.iter().enumerate() {
            let bodies = cast_bodies(s);
            assert_eq!(
                bodies.iter().filter(|(_, b)| b == b"during-0").count(),
                1,
                "core {i}: {bodies:?}"
            );
            assert_eq!(
                bodies.iter().filter(|(_, b)| b == b"during-1").count(),
                1,
                "core {i}: {bodies:?}"
            );
        }
        assert!(!cores[0].is_blocked(), "window closes at install");
        assert_eq!(cores[0].parked_depth(), 0);
    }

    #[test]
    fn parked_send_remaps_endpoint_to_new_rank() {
        // Members 0,1,2; member 1 dies, so ep2 reranks from 2 to 1.
        let (mut c0, _) = vsync_core(0, 3);
        let (c2, _) = vsync_core(2, 3);
        let mut pending = std::collections::VecDeque::new();
        let mut sink = vec![Vec::new(), Vec::new()];

        let acts = c0.suspect(Time::ZERO, vec![Rank(1)]);
        split(acts, &mut pending, &mut sink[0]);
        assert!(c0.is_blocked());
        // Parked send to old Rank(2) == ep2 (reranked after the change),
        // and one to the dead member (dropped at replay).
        c0.send(Time::ZERO, Rank(2), b"to-ep2");
        c0.send(Time::ZERO, Rank(1), b"to-dead");
        assert_eq!(c0.parked_depth(), 2);

        let mut cores = [c0, c2];
        pump(&mut cores, &[1], &mut pending, &mut sink);
        let v = views(&sink[1]);
        assert_eq!(v.len(), 1);
        let sends: Vec<&Delivery> = sink[1]
            .iter()
            .filter(|d| matches!(d, Delivery::Send { .. }))
            .collect();
        assert_eq!(
            sends,
            vec![&Delivery::Send {
                origin: 0,
                bytes: b"to-ep2".to_vec()
            }],
            "send remapped to ep2's new rank; send to the dead member dropped"
        );
        assert_eq!(cores[0].parked_depth(), 0);
    }

    /// `(batched, flushes)` as returned by [`GroupCore::take_defer_delta`].
    type DeferDelta = (u64, u64);

    /// Runs a fixed cast sequence through a bypass pair, returning the
    /// receiver's delivery trace and both cores' defer deltas.
    fn run_cast_sequence(
        a: &mut GroupCore,
        b: &mut GroupCore,
        n: u8,
    ) -> (Vec<(u32, Vec<u8>)>, DeferDelta, DeferDelta) {
        let mut delivered = Vec::new();
        for i in 0..n {
            let out = a.cast(Time::ZERO, &[i, i.wrapping_mul(7)]);
            for pkt in transmits(&out) {
                let got = b.deliver_packet(Time::ZERO, pkt.clone());
                delivered.extend(casts(&got));
            }
        }
        (delivered, a.take_defer_delta(), b.take_defer_delta())
    }

    #[test]
    fn deferred_work_batches_iff_certificate_licensed() {
        // Licensed (stack4's certificate proves DF001–DF003): deferred
        // work accumulates; nothing drains until a quiescent point.
        let (mut a, _) = core(0, 2);
        let (mut b, _) = core(1, 2);
        a.install_bypass().unwrap();
        b.install_bypass().unwrap();
        assert!(
            a.defer_batching_active(),
            "stack4 certificate licenses batching"
        );
        let (batched_trace, (a_batched, a_flushes), (b_batched, _)) =
            run_cast_sequence(&mut a, &mut b, 10);
        assert!(
            a_batched >= 10,
            "sender batched one item per cast: {a_batched}"
        );
        assert!(
            b_batched >= 10,
            "receiver batched one item per cast: {b_batched}"
        );
        assert_eq!(a_flushes, 0, "no quiescent point reached yet");
        a.drop_bypass();
        let (_, a_flushes) = a.take_defer_delta();
        assert_eq!(a_flushes, 1, "dropping the bypass drains the batch");

        // Unlicensed (certificate withheld): same traffic drains after
        // every hit — and the delivery trace is identical.
        let (mut a2, _) = core(0, 2);
        let (mut b2, _) = core(1, 2);
        a2.install_bypass().unwrap();
        b2.install_bypass().unwrap();
        a2.defer_licensed = false;
        b2.defer_licensed = false;
        assert!(!a2.defer_batching_active());
        let (immediate_trace, (a2_batched, a2_flushes), (b2_batched, b2_flushes)) =
            run_cast_sequence(&mut a2, &mut b2, 10);
        assert_eq!(a2_batched, 0, "uncertified stacks never batch");
        assert_eq!(b2_batched, 0);
        assert_eq!(a2_flushes, 10, "one immediate drain per bypass hit");
        assert_eq!(b2_flushes, 10);
        assert_eq!(
            batched_trace, immediate_trace,
            "batched and immediate draining must be observably identical"
        );
    }

    #[test]
    fn batch_limit_is_a_quiescent_point() {
        let (mut a, _) = core(0, 2);
        let (mut b, _) = core(1, 2);
        a.install_bypass().unwrap();
        b.install_bypass().unwrap();
        let n = (DEFER_BATCH_LIMIT + 5) as u8;
        let (_, (a_batched, a_flushes), _) = run_cast_sequence(&mut a, &mut b, n);
        assert!(a_batched >= n as u64);
        assert!(
            a_flushes >= 1,
            "a full batch drains without waiting for a view event"
        );
    }

    fn stack10_core(rank: u16, n: usize) -> (GroupCore, Vec<Action>) {
        let vs = ViewState::initial(n).for_rank(Rank(rank));
        GroupCore::new(
            ensemble_layers::STACK_10,
            vs,
            EngineKind::Imp,
            LayerConfig::fast(),
            Time::ZERO,
        )
        .unwrap()
    }

    /// The cross-stream ordering hole (module docs): a mid-stream
    /// sender-CCP failure re-routes one message through the engine while
    /// the bypass stream keeps flowing. This pins down what IS
    /// guaranteed today — the observable `EngineFallback` edge, and FIFO
    /// delivery *within* each stream — and documents the hole a shared
    /// sequencing cursor between the two paths would close: nothing
    /// orders the engine message against the bypass messages around it.
    #[test]
    fn sender_ccp_fallback_keeps_streams_fifo() {
        let (mut a, _) = stack10_core(0, 2);
        let (mut b, _) = stack10_core(1, 2);
        a.install_bypass().unwrap();
        b.install_bypass().unwrap();
        a.set_tracing(true);
        b.set_tracing(true);

        // Payloads over frag_max fail the sender CCP deterministically
        // (fragmentation is slow-path work); small ones stay fast.
        let big = vec![0xAB; 2000];
        let sends: Vec<(Vec<u8>, bool)> = vec![
            (vec![1], false),
            (vec![2], false),
            (big.clone(), true), // mid-stream fallback
            (vec![3], false),
            (vec![4], false),
        ];

        let mut fast_sent = Vec::new();
        let mut slow_sent = Vec::new();
        let mut fast_got = Vec::new();
        let mut slow_got = Vec::new();
        let mut events = Vec::new();
        for (payload, expect_fallback) in &sends {
            let out = a.cast(Time::ZERO, payload);
            events.clear();
            a.take_events(&mut events);
            let fell_back = events
                .iter()
                .any(|e| e.kind == EventKind::EngineFallback && e.ccp == CcpFailure::SenderCcp);
            assert_eq!(
                fell_back,
                *expect_fallback,
                "payload of {} bytes: wrong path",
                payload.len()
            );
            if fell_back {
                slow_sent.push(payload.clone());
            } else {
                fast_sent.push(payload.clone());
            }
            for pkt in transmits(&out) {
                let got = b.deliver_packet(Time::ZERO, pkt.clone());
                events.clear();
                b.take_events(&mut events);
                let via_bypass = events
                    .iter()
                    .any(|e| e.kind == EventKind::Deliver && e.layer == CoreLayer::Bypass);
                for (_, bytes) in casts(&got) {
                    if via_bypass {
                        fast_got.push(bytes);
                    } else {
                        slow_got.push(bytes);
                    }
                }
            }
        }
        // Each stream delivers FIFO; ordering BETWEEN the streams is the
        // hole (here the engine message happens to arrive in issue order
        // because the test delivers packets synchronously — the runtime
        // makes no such promise).
        assert_eq!(fast_got, fast_sent, "bypass stream must stay FIFO");
        assert_eq!(slow_got, slow_sent, "engine stream must stay FIFO");
        assert_eq!(slow_sent.len(), 1);
    }

    #[test]
    fn timer_from_stale_generation_is_ignored() {
        let (mut a, init) = core(0, 2);
        let timer = init.iter().find_map(|x| match x {
            Action::Timer { layer, .. } => Some(*layer),
            _ => None,
        });
        // Whatever timers exist, generation 99 never matches.
        if let Some(layer) = timer {
            assert!(a.fire_timer(Time::ZERO, layer, 99).is_empty());
        }
    }
}
