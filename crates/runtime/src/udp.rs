//! A UDP driver for the transport seam.
//!
//! One non-blocking `UdpSocket` per endpoint, bound to 127.0.0.1 on an
//! ephemeral port. Group membership is static wiring here: after binding
//! every node, exchange `(endpoint, local_addr)` pairs out of band and
//! call [`UdpTransport::add_peer`] for each — the same two-phase setup a
//! deployment would do through a membership service. Casts fan out as one
//! `send_to` per peer (no multicast: loopback IGMP support varies and the
//! stacks don't need it).
//!
//! Loss semantics match the seam contract: a full socket buffer drops
//! (`WouldBlock` on send is counted, not retried) and the stacks' own
//! retransmission recovers.

use crate::transport::{Transport, TransportIoErrors};
use ensemble_transport::{decode_datagram, encode_datagram, Dest, Packet};
use ensemble_util::Endpoint;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, UdpSocket};

/// A [`Transport`] over a real UDP socket on 127.0.0.1.
pub struct UdpTransport {
    ep: Endpoint,
    sock: UdpSocket,
    peers: HashMap<u64, SocketAddr>,
    buf: Vec<u8>,
    /// Datagrams the socket refused to queue (kernel buffer full), or
    /// that hit transient ICMP-driven errors — loss-like, not failures.
    pub egress_drops: u64,
    /// Datagrams that failed the envelope check (foreign traffic).
    pub foreign_drops: u64,
    /// Hard send/recv failures since the last [`Transport::take_io_errors`]
    /// drain — previously swallowed silently.
    pub io_errors: TransportIoErrors,
}

impl UdpTransport {
    /// Binds `ep` to an ephemeral loopback port.
    pub fn bind(ep: Endpoint) -> io::Result<UdpTransport> {
        let sock = UdpSocket::bind("127.0.0.1:0")?;
        sock.set_nonblocking(true)?;
        Ok(UdpTransport {
            ep,
            sock,
            peers: HashMap::new(),
            buf: vec![0u8; 65_536],
            egress_drops: 0,
            foreign_drops: 0,
            io_errors: TransportIoErrors::default(),
        })
    }

    /// The bound socket address (to hand to the other nodes' `add_peer`).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.sock.local_addr()
    }

    /// Wires a remote endpoint to its socket address.
    pub fn add_peer(&mut self, ep: Endpoint, addr: SocketAddr) {
        self.peers.insert(ep.to_wire(), addr);
    }

    fn send_to(&mut self, frame: &[u8], addr: SocketAddr) {
        match self.sock.send_to(frame, addr) {
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => self.egress_drops += 1,
            // Transient ICMP-driven errors (e.g. a peer not yet bound)
            // are indistinguishable from loss at this seam.
            Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => self.egress_drops += 1,
            // Anything else is a hard failure the operator should see.
            Err(_) => self.io_errors.send += 1,
        }
    }
}

impl Transport for UdpTransport {
    fn local_ep(&self) -> Endpoint {
        self.ep
    }

    fn send(&mut self, pkt: &Packet) -> io::Result<()> {
        let frame = encode_datagram(pkt);
        if frame.len() > self.max_datagram() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "datagram exceeds max size; fragment above the transport",
            ));
        }
        match pkt.dst {
            Dest::Cast => {
                let me = self.ep.to_wire();
                let targets: Vec<SocketAddr> = self
                    .peers
                    .iter()
                    .filter(|(ep, _)| **ep != me)
                    .map(|(_, a)| *a)
                    .collect();
                for addr in targets {
                    self.send_to(&frame, addr);
                }
            }
            Dest::Point(dst) => {
                if let Some(addr) = self.peers.get(&dst.to_wire()).copied() {
                    self.send_to(&frame, addr);
                }
            }
        }
        Ok(())
    }

    fn try_recv(&mut self) -> io::Result<Option<Packet>> {
        loop {
            match self.sock.recv_from(&mut self.buf) {
                Ok((n, _from)) => match decode_datagram(&self.buf[..n]) {
                    Ok(pkt) => return Ok(Some(pkt)),
                    Err(_) => {
                        self.foreign_drops += 1;
                        continue;
                    }
                },
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Connection-refused style errors surface asynchronously
                // on unconnected UDP sockets; treat as an empty poll.
                Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => return Ok(None),
                Err(e) => {
                    self.io_errors.recv += 1;
                    return Err(e);
                }
            }
        }
    }

    fn take_io_errors(&mut self) -> TransportIoErrors {
        std::mem::take(&mut self.io_errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Binds a pair of wired-up transports, or `None` when the sandbox
    /// denies loopback sockets (tests then skip rather than fail).
    fn pair() -> Option<(UdpTransport, UdpTransport)> {
        let mut a = UdpTransport::bind(Endpoint::new(0)).ok()?;
        let mut b = UdpTransport::bind(Endpoint::new(1)).ok()?;
        let (aa, ba) = (a.local_addr().ok()?, b.local_addr().ok()?);
        a.add_peer(Endpoint::new(1), ba);
        b.add_peer(Endpoint::new(0), aa);
        Some((a, b))
    }

    fn recv_spin(t: &mut UdpTransport) -> Option<Packet> {
        for _ in 0..2000 {
            if let Some(p) = t.try_recv().unwrap() {
                return Some(p);
            }
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
        None
    }

    #[test]
    fn udp_roundtrip_on_loopback() {
        let Some((mut a, mut b)) = pair() else {
            eprintln!("skipping: UDP bind on 127.0.0.1 denied");
            return;
        };
        a.send(&Packet::cast(Endpoint::new(0), b"ping".to_vec()))
            .unwrap();
        let p = recv_spin(&mut b).expect("datagram arrives on loopback");
        assert_eq!(p.bytes, b"ping");
        assert_eq!(p.src, Endpoint::new(0));
        b.send(&Packet::point(
            Endpoint::new(1),
            Endpoint::new(0),
            b"pong".to_vec(),
        ))
        .unwrap();
        let p = recv_spin(&mut a).expect("reply arrives");
        assert_eq!(p.bytes, b"pong");
    }

    #[test]
    fn foreign_datagrams_are_dropped() {
        let Some((a, mut b)) = pair() else {
            eprintln!("skipping: UDP bind on 127.0.0.1 denied");
            return;
        };
        let raw = UdpSocket::bind("127.0.0.1:0").unwrap();
        raw.send_to(b"not an ensemble frame", b.local_addr().unwrap())
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(b.try_recv().unwrap().is_none());
        assert_eq!(b.foreign_drops, 1);
        drop(a);
    }

    #[test]
    fn io_error_drain_has_delta_semantics() {
        let Some((mut a, _b)) = pair() else {
            eprintln!("skipping: UDP bind on 127.0.0.1 denied");
            return;
        };
        a.io_errors.send = 3;
        a.io_errors.recv = 1;
        let d = a.take_io_errors();
        assert_eq!(d, TransportIoErrors { send: 3, recv: 1 });
        assert!(a.take_io_errors().is_zero(), "drain resets the tallies");
    }

    #[test]
    fn oversized_datagram_is_refused() {
        let Some((mut a, _b)) = pair() else {
            eprintln!("skipping: UDP bind on 127.0.0.1 denied");
            return;
        };
        let big = Packet::cast(Endpoint::new(0), vec![0u8; 70_000]);
        assert!(a.send(&big).is_err());
    }
}
