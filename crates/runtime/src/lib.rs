//! A real-socket, thread-pooled runtime for the ensemble layer stacks.
//!
//! The deterministic simulator (`ensemble::sim`) executes stacks over a
//! modeled network in virtual time. This crate executes the *same* stacks
//! — same layers, same engines, same marshaling, same synthesized
//! bypasses — over real transports in wall-clock time:
//!
//! * [`Transport`] is the seam: datagrams in, datagrams out, loss allowed.
//!   [`LoopbackHub`] provides an in-process hub with deterministic,
//!   seedable fault injection; [`UdpTransport`] provides real UDP sockets
//!   on 127.0.0.1.
//! * [`Node`] runs M shard workers; each joined group is pinned to one
//!   shard, so protocol state is single-threaded and lock-free while
//!   distinct groups run in parallel.
//! * A hierarchical [`TimerWheel`] per shard feeds `Layer::timer`
//!   deadlines (retransmission, NAK, suspicion, stability).
//! * [`GroupHandle`] is the application API: `cast`, `send`, `recv`,
//!   `install_bypass` — mirroring the simulator's surface so tests can be
//!   ported between the two with mechanical changes.
//! * [`Node::stats`] snapshots per-shard counters ([`RuntimeStats`]),
//!   including the model-cost vocabulary of the paper's Table 2(a).
//!
//! ```no_run
//! use ensemble_runtime::{LoopbackHub, Node, RuntimeConfig};
//! use ensemble_layers::{LayerConfig, STACK_4};
//! use ensemble_stack::EngineKind;
//! use ensemble_event::ViewState;
//! use ensemble_util::Rank;
//!
//! let hub = LoopbackHub::new(7);
//! let mut node = Node::new(RuntimeConfig::default());
//! let vs = ViewState::initial(2);
//! let a = node
//!     .join(STACK_4, vs.for_rank(Rank(0)), EngineKind::Imp,
//!           LayerConfig::default(),
//!           Box::new(hub.attach(vs.members[0])))
//!     .unwrap();
//! let b = node
//!     .join(STACK_4, vs.for_rank(Rank(1)), EngineKind::Imp,
//!           LayerConfig::default(),
//!           Box::new(hub.attach(vs.members[1])))
//!     .unwrap();
//! a.cast(b"hello").unwrap();
//! let d = b.recv_timeout(std::time::Duration::from_secs(1));
//! println!("{d:?}\n{}", node.stats());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod group;
pub mod metrics;
pub mod node;
pub mod obs;
pub mod timer;
pub mod transport;
pub mod udp;

pub use group::{Action, BypassError, CoreEvent, CoreLayer, Delivery, GroupCore};
pub use metrics::{RuntimeStats, ShardMetrics, ShardSnapshot, TransportHealth};
pub use node::{GroupHandle, GroupSender, Node, RuntimeConfig, RuntimeError};
pub use obs::NodeObs;
pub use timer::TimerWheel;
pub use transport::{
    FaultCounts, FaultPlan, LoopbackHub, LoopbackTransport, PartitionOp, PartitionScript,
    PartitionStatus, Transport, TransportIoErrors, Waker,
};
pub use udp::UdpTransport;
