//! The runtime's transport seam.
//!
//! A [`Transport`] moves [`Packet`]-shaped datagrams between endpoints.
//! It is deliberately the same seam the simulator's `Network` models —
//! unreliable, unordered, datagram-oriented — so a stack that survives the
//! simulator's fault models runs unchanged over a real socket. Two drivers
//! are provided:
//!
//! * [`LoopbackHub`] — an in-process hub over bounded channels, with a
//!   deterministic, seedable [`FaultPlan`] (drop / duplicate / reorder) for
//!   integration tests;
//! * [`crate::UdpTransport`] — real UDP sockets on 127.0.0.1.
//!
//! Both are polled (`try_recv`) rather than callback-driven: the shard
//! worker owns the poll loop, so a transport never needs its own thread.

use ensemble_transport::{decode_datagram, encode_datagram, Packet};
use ensemble_util::{DetRng, Endpoint};
use std::collections::HashMap;
use std::io;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};

/// Wakes an idle shard worker when work arrives (a command, a join, or a
/// datagram), replacing a fixed-interval polling sleep.
///
/// Parking is cooperative: the worker re-checks every queue after each
/// wake, so a notification racing a drain costs at most one extra loop
/// iteration (counted as a spurious wakeup in `RuntimeStats`). A wake
/// posted while the worker is busy is latched and consumed by the next
/// park, so notifications are never lost.
pub struct Waker {
    pending: Mutex<bool>,
    cv: Condvar,
}

impl Waker {
    /// A waker with no notification pending.
    pub fn new() -> Waker {
        Waker {
            pending: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    /// Posts a notification; cheap when one is already pending.
    pub fn wake(&self) {
        let mut pending = self
            .pending
            .lock()
            .expect("waker mutex poisoned: a worker thread panicked mid-park");
        if !*pending {
            *pending = true;
            self.cv.notify_one();
        }
    }

    /// Parks the caller up to `timeout` unless a notification is already
    /// pending. Returns `true` when released by [`Waker::wake`], `false`
    /// on timeout.
    pub fn park(&self, timeout: std::time::Duration) -> bool {
        let mut pending = self
            .pending
            .lock()
            .expect("waker mutex poisoned: a worker thread panicked mid-park");
        if !*pending {
            let (guard, _) = self
                .cv
                .wait_timeout(pending, timeout)
                .expect("waker mutex poisoned: a worker thread panicked mid-park");
            pending = guard;
        }
        let woken = *pending;
        *pending = false;
        woken
    }
}

impl Default for Waker {
    fn default() -> Waker {
        Waker::new()
    }
}

/// Socket errors a transport accumulated since the last drain. Lossy
/// conditions (full buffers, `WouldBlock`) are *not* errors — the stacks
/// recover from loss; these are hard failures that were previously
/// swallowed silently.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportIoErrors {
    /// Hard send failures.
    pub send: u64,
    /// Hard recv failures.
    pub recv: u64,
}

impl TransportIoErrors {
    /// True when no errors were recorded.
    pub fn is_zero(&self) -> bool {
        self.send == 0 && self.recv == 0
    }
}

/// A datagram driver bound to one local endpoint.
///
/// Implementations must be `Send` (the shard worker owns them) and
/// non-blocking on both paths. Loss is allowed at any point — the layer
/// stacks (mnak, pt2pt) recover — but a delivered datagram must arrive
/// intact and at the right endpoint.
pub trait Transport: Send {
    /// The endpoint this transport receives for.
    fn local_ep(&self) -> Endpoint;

    /// Enqueues one packet (cast fan-out is the driver's job). A full
    /// egress queue may drop — like a UDP socket buffer — never block.
    fn send(&mut self, pkt: &Packet) -> io::Result<()>;

    /// Polls one packet; `Ok(None)` when nothing is pending.
    fn try_recv(&mut self) -> io::Result<Option<Packet>>;

    /// Like [`Transport::send`], carrying the sender-side origin
    /// timestamp (nanoseconds on the obs clock) alongside the packet.
    /// Drivers that can propagate it in-band (the loopback hub) let the
    /// receiver measure true cast→deliver latency; the default discards
    /// the stamp, which is all a wire protocol without a timestamp field
    /// (UDP here) can do.
    fn send_at(&mut self, pkt: &Packet, origin_ns: u64) -> io::Result<()> {
        let _ = origin_ns;
        self.send(pkt)
    }

    /// Polls one packet with its origin stamp, when the driver carries
    /// one. The default adapts [`Transport::try_recv`] with no stamp.
    fn try_recv_stamped(&mut self) -> io::Result<Option<(Packet, Option<u64>)>> {
        Ok(self.try_recv()?.map(|p| (p, None)))
    }

    /// Largest datagram the driver accepts.
    fn max_datagram(&self) -> usize {
        60_000
    }

    /// Installs a waker the driver should nudge when ingress arrives
    /// while the owning worker may be parked. Drivers with no delivery
    /// hook (a plain UDP socket) ignore it — the worker's park timeout
    /// bounds their latency instead.
    fn set_waker(&mut self, waker: Arc<Waker>) {
        let _ = waker;
    }

    /// Drains socket error counts accumulated since the last call
    /// (delta semantics: the driver resets its tallies). The default
    /// reports none.
    fn take_io_errors(&mut self) -> TransportIoErrors {
        TransportIoErrors::default()
    }
}

/// Fault probabilities applied per (packet, recipient) on the loopback hub.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Probability a datagram is silently dropped.
    pub drop_p: f64,
    /// Probability a datagram is delivered twice.
    pub dup_p: f64,
    /// Probability a datagram is held back and swapped behind the next
    /// datagram to the same recipient (adjacent reordering).
    pub reorder_p: f64,
}

impl FaultPlan {
    /// No faults: every datagram delivered exactly once, in order.
    pub fn clean() -> FaultPlan {
        FaultPlan::default()
    }

    /// A lossy, reordering link for stress tests.
    pub fn lossy(drop_p: f64, dup_p: f64, reorder_p: f64) -> FaultPlan {
        FaultPlan {
            drop_p,
            dup_p,
            reorder_p,
        }
    }
}

/// Counts of faults the hub actually injected (plus backpressure drops).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Datagrams dropped by the plan.
    pub dropped: u64,
    /// Datagrams duplicated by the plan.
    pub duplicated: u64,
    /// Datagrams held back for reordering.
    pub reordered: u64,
    /// Datagrams dropped because a recipient's ingress queue was full.
    pub backpressure_drops: u64,
}

struct HubPeer {
    /// Frames carry the sender's origin stamp (obs-clock ns) in-band so
    /// receivers can measure cast→deliver latency.
    tx: SyncSender<(u64, Vec<u8>)>,
    /// Nudged after each enqueue so a parked recipient shard wakes.
    waker: Option<Arc<Waker>>,
}

struct HubInner {
    peers: HashMap<u64, HubPeer>,
    rng: DetRng,
    plan: FaultPlan,
    /// Held-back datagrams per recipient, delivered after the next
    /// datagram to the same recipient (or flushed by an idle receiver).
    holdback: HashMap<u64, Vec<(u64, Vec<u8>)>>,
    counts: FaultCounts,
}

impl HubInner {
    fn push(&mut self, dst: u64, stamp: u64, frame: Vec<u8>) {
        let Some(peer) = self.peers.get(&dst) else {
            return;
        };
        if peer.tx.try_send((stamp, frame)).is_err() {
            self.counts.backpressure_drops += 1;
        } else if let Some(w) = &peer.waker {
            w.wake();
        }
    }

    /// Applies the fault plan to one datagram bound for `dst`.
    fn deliver(&mut self, dst: u64, stamp: u64, frame: &[u8]) {
        if !self.peers.contains_key(&dst) {
            return;
        }
        if self.rng.chance(self.plan.drop_p) {
            self.counts.dropped += 1;
            return;
        }
        if self.rng.chance(self.plan.reorder_p) {
            self.counts.reordered += 1;
            self.holdback
                .entry(dst)
                .or_default()
                .push((stamp, frame.to_vec()));
            return;
        }
        let copies = if self.rng.chance(self.plan.dup_p) {
            self.counts.duplicated += 1;
            2
        } else {
            1
        };
        for _ in 0..copies {
            self.push(dst, stamp, frame.to_vec());
        }
        self.flush_holdback(dst);
    }

    fn flush_holdback(&mut self, dst: u64) {
        let Some(held) = self.holdback.remove(&dst) else {
            return;
        };
        for (stamp, frame) in held {
            self.push(dst, stamp, frame);
        }
    }
}

/// An in-process datagram hub connecting [`LoopbackTransport`] endpoints.
///
/// Cloning the hub handle is cheap; all clones share one registry. The
/// fault plan is driven by a seeded [`DetRng`], so a failing integration
/// test replays bit-for-bit.
#[derive(Clone)]
pub struct LoopbackHub {
    inner: Arc<Mutex<HubInner>>,
    capacity: usize,
}

impl LoopbackHub {
    /// A fault-free hub (still seedable: the plan can be swapped later).
    pub fn new(seed: u64) -> LoopbackHub {
        LoopbackHub::with_faults(seed, FaultPlan::clean())
    }

    /// A hub injecting `plan` faults, deterministically from `seed`.
    pub fn with_faults(seed: u64, plan: FaultPlan) -> LoopbackHub {
        LoopbackHub {
            inner: Arc::new(Mutex::new(HubInner {
                peers: HashMap::new(),
                rng: DetRng::new(seed),
                plan,
                holdback: HashMap::new(),
                counts: FaultCounts::default(),
            })),
            capacity: 4096,
        }
    }

    /// Ingress queue capacity (datagrams) for transports attached later.
    pub fn with_capacity(mut self, capacity: usize) -> LoopbackHub {
        self.capacity = capacity.max(1);
        self
    }

    /// Registers `ep` and returns its transport.
    ///
    /// # Panics
    ///
    /// Panics if `ep` is already attached — two receivers for one
    /// endpoint is a wiring bug, not a runtime condition.
    pub fn attach(&self, ep: Endpoint) -> LoopbackTransport {
        let (tx, rx) = sync_channel(self.capacity);
        let mut inner = self
            .inner
            .lock()
            .expect("loopback hub mutex poisoned: a peer worker thread panicked mid-operation");
        let prev = inner
            .peers
            .insert(ep.to_wire(), HubPeer { tx, waker: None });
        assert!(prev.is_none(), "endpoint attached twice: {ep:?}");
        LoopbackTransport {
            ep,
            hub: Arc::clone(&self.inner),
            rx,
        }
    }

    /// Replaces the fault plan (e.g. to stop faults for a drain phase).
    pub fn set_plan(&self, plan: FaultPlan) {
        self.inner
            .lock()
            .expect("loopback hub mutex poisoned: a peer worker thread panicked mid-operation")
            .plan = plan;
    }

    /// Faults injected so far.
    pub fn fault_counts(&self) -> FaultCounts {
        self.inner
            .lock()
            .expect("loopback hub mutex poisoned: a peer worker thread panicked mid-operation")
            .counts
    }
}

/// One endpoint's view of a [`LoopbackHub`].
pub struct LoopbackTransport {
    ep: Endpoint,
    hub: Arc<Mutex<HubInner>>,
    rx: Receiver<(u64, Vec<u8>)>,
}

impl Transport for LoopbackTransport {
    fn local_ep(&self) -> Endpoint {
        self.ep
    }

    fn send(&mut self, pkt: &Packet) -> io::Result<()> {
        self.send_at(pkt, ensemble_obs::now_ns())
    }

    fn send_at(&mut self, pkt: &Packet, origin_ns: u64) -> io::Result<()> {
        let frame = encode_datagram(pkt);
        let mut inner = self
            .hub
            .lock()
            .expect("loopback hub mutex poisoned: a peer worker thread panicked mid-operation");
        match pkt.dst {
            ensemble_transport::Dest::Cast => {
                let peers: Vec<u64> = inner.peers.keys().copied().collect();
                let me = self.ep.to_wire();
                for dst in peers {
                    if dst != me {
                        inner.deliver(dst, origin_ns, &frame);
                    }
                }
            }
            ensemble_transport::Dest::Point(dst) => {
                inner.deliver(dst.to_wire(), origin_ns, &frame);
            }
        }
        Ok(())
    }

    fn try_recv(&mut self) -> io::Result<Option<Packet>> {
        Ok(self.try_recv_stamped()?.map(|(p, _)| p))
    }

    fn set_waker(&mut self, waker: Arc<Waker>) {
        let mut inner = self
            .hub
            .lock()
            .expect("loopback hub mutex poisoned: a peer worker thread panicked mid-operation");
        if let Some(peer) = inner.peers.get_mut(&self.ep.to_wire()) {
            peer.waker = Some(waker);
        }
    }

    fn try_recv_stamped(&mut self) -> io::Result<Option<(Packet, Option<u64>)>> {
        loop {
            match self.rx.try_recv() {
                Ok((stamp, frame)) => match decode_datagram(&frame) {
                    Ok(pkt) => return Ok(Some((pkt, Some(stamp)))),
                    Err(_) => continue, // foreign datagram: drop, keep polling
                },
                Err(TryRecvError::Empty) => {
                    // Idle: release anything held back for us so a
                    // reordered datagram cannot be starved forever.
                    let me = self.ep.to_wire();
                    self.hub.lock().expect("loopback hub mutex poisoned: a peer worker thread panicked mid-operation").flush_holdback(me);
                    return match self.rx.try_recv() {
                        Ok((stamp, frame)) => {
                            Ok(decode_datagram(&frame).ok().map(|p| (p, Some(stamp))))
                        }
                        Err(_) => Ok(None),
                    };
                }
                Err(TryRecvError::Disconnected) => return Ok(None),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cast(src: u32, body: &[u8]) -> Packet {
        Packet::cast(Endpoint::new(src), body.to_vec())
    }

    #[test]
    fn clean_hub_delivers_casts_to_everyone_else() {
        let hub = LoopbackHub::new(1);
        let mut a = hub.attach(Endpoint::new(0));
        let mut b = hub.attach(Endpoint::new(1));
        let mut c = hub.attach(Endpoint::new(2));
        a.send(&cast(0, b"hi")).unwrap();
        assert!(a.try_recv().unwrap().is_none(), "no self-delivery");
        let pb = b.try_recv().unwrap().expect("b receives");
        let pc = c.try_recv().unwrap().expect("c receives");
        assert_eq!(pb.bytes, b"hi");
        assert_eq!(pc.src, Endpoint::new(0));
    }

    #[test]
    fn point_reaches_only_the_target() {
        let hub = LoopbackHub::new(1);
        let mut a = hub.attach(Endpoint::new(0));
        let mut b = hub.attach(Endpoint::new(1));
        let mut c = hub.attach(Endpoint::new(2));
        let pkt = Packet::point(Endpoint::new(0), Endpoint::new(2), b"x".to_vec());
        a.send(&pkt).unwrap();
        assert!(b.try_recv().unwrap().is_none());
        assert_eq!(c.try_recv().unwrap().unwrap().bytes, b"x");
    }

    #[test]
    fn drop_plan_loses_packets_deterministically() {
        let run = |seed| {
            let hub = LoopbackHub::with_faults(seed, FaultPlan::lossy(0.5, 0.0, 0.0));
            let a = hub.attach(Endpoint::new(0));
            let mut b = hub.attach(Endpoint::new(1));
            let mut a = a;
            for i in 0..100u8 {
                a.send(&cast(0, &[i])).unwrap();
            }
            let mut got = Vec::new();
            while let Some(p) = b.try_recv().unwrap() {
                got.push(p.bytes[0]);
            }
            got
        };
        let first = run(7);
        assert!(first.len() < 100, "some packets must drop");
        assert!(!first.is_empty(), "some packets must survive");
        assert_eq!(first, run(7), "same seed, same faults");
    }

    #[test]
    fn reorder_swaps_adjacent_packets() {
        let hub = LoopbackHub::with_faults(3, FaultPlan::lossy(0.0, 0.0, 0.4));
        let mut a = hub.attach(Endpoint::new(0));
        let mut b = hub.attach(Endpoint::new(1));
        for i in 0..200u8 {
            a.send(&cast(0, &[i])).unwrap();
        }
        let mut got = Vec::new();
        while let Some(p) = b.try_recv().unwrap() {
            got.push(p.bytes[0]);
        }
        assert_eq!(got.len(), 200, "reordering must not lose packets");
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_ne!(got, sorted, "some packets must arrive out of order");
        assert_eq!(sorted, (0..200u8).collect::<Vec<_>>());
    }

    #[test]
    fn duplication_delivers_twice() {
        let hub = LoopbackHub::with_faults(9, FaultPlan::lossy(0.0, 1.0, 0.0));
        let mut a = hub.attach(Endpoint::new(0));
        let mut b = hub.attach(Endpoint::new(1));
        a.send(&cast(0, b"dup")).unwrap();
        assert_eq!(b.try_recv().unwrap().unwrap().bytes, b"dup");
        assert_eq!(b.try_recv().unwrap().unwrap().bytes, b"dup");
        assert!(b.try_recv().unwrap().is_none());
    }

    #[test]
    fn waker_latches_a_wake_posted_before_park() {
        let w = Waker::new();
        w.wake();
        w.wake(); // redundant wakes coalesce
        assert!(w.park(std::time::Duration::ZERO), "latched wake consumed");
        assert!(
            !w.park(std::time::Duration::from_millis(1)),
            "second park times out"
        );
    }

    #[test]
    fn waker_releases_a_parked_thread() {
        let w = Arc::new(Waker::new());
        let w2 = Arc::clone(&w);
        let t = std::thread::spawn(move || w2.park(std::time::Duration::from_secs(5)));
        std::thread::sleep(std::time::Duration::from_millis(10));
        w.wake();
        assert!(t.join().unwrap(), "park released by wake, not timeout");
    }

    #[test]
    fn hub_send_nudges_the_recipients_waker() {
        let hub = LoopbackHub::new(2);
        let mut a = hub.attach(Endpoint::new(0));
        let mut b = hub.attach(Endpoint::new(1));
        let w = Arc::new(Waker::new());
        b.set_waker(Arc::clone(&w));
        a.send(&cast(0, b"ping")).unwrap();
        assert!(w.park(std::time::Duration::ZERO), "delivery posted a wake");
        assert_eq!(b.try_recv().unwrap().unwrap().bytes, b"ping");
    }

    #[test]
    fn full_ingress_queue_drops_not_blocks() {
        let hub = LoopbackHub::new(5).with_capacity(4);
        let mut a = hub.attach(Endpoint::new(0));
        let _b = hub.attach(Endpoint::new(1));
        for i in 0..10u8 {
            a.send(&cast(0, &[i])).unwrap(); // must not block
        }
        assert_eq!(hub.fault_counts().backpressure_drops, 6);
    }
}
