//! The runtime's transport seam.
//!
//! A [`Transport`] moves [`Packet`]-shaped datagrams between endpoints.
//! It is deliberately the same seam the simulator's `Network` models —
//! unreliable, unordered, datagram-oriented — so a stack that survives the
//! simulator's fault models runs unchanged over a real socket. Two drivers
//! are provided:
//!
//! * [`LoopbackHub`] — an in-process hub over bounded channels, with a
//!   deterministic, seedable [`FaultPlan`] (drop / duplicate / reorder) for
//!   integration tests;
//! * [`crate::UdpTransport`] — real UDP sockets on 127.0.0.1.
//!
//! Both are polled (`try_recv`) rather than callback-driven: the shard
//! worker owns the poll loop, so a transport never needs its own thread.

use ensemble_transport::{decode_datagram, encode_datagram, Packet};
use ensemble_util::{DetRng, Endpoint};
use std::collections::HashMap;
use std::io;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};

/// Wakes an idle shard worker when work arrives (a command, a join, or a
/// datagram), replacing a fixed-interval polling sleep.
///
/// Parking is cooperative: the worker re-checks every queue after each
/// wake, so a notification racing a drain costs at most one extra loop
/// iteration (counted as a spurious wakeup in `RuntimeStats`). A wake
/// posted while the worker is busy is latched and consumed by the next
/// park, so notifications are never lost.
pub struct Waker {
    pending: Mutex<bool>,
    cv: Condvar,
}

impl Waker {
    /// A waker with no notification pending.
    pub fn new() -> Waker {
        Waker {
            pending: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    /// Posts a notification; cheap when one is already pending.
    pub fn wake(&self) {
        let mut pending = self
            .pending
            .lock()
            .expect("waker mutex poisoned: a worker thread panicked mid-park");
        if !*pending {
            *pending = true;
            self.cv.notify_one();
        }
    }

    /// Parks the caller up to `timeout` unless a notification is already
    /// pending. Returns `true` when released by [`Waker::wake`], `false`
    /// on timeout.
    pub fn park(&self, timeout: std::time::Duration) -> bool {
        let mut pending = self
            .pending
            .lock()
            .expect("waker mutex poisoned: a worker thread panicked mid-park");
        if !*pending {
            let (guard, _) = self
                .cv
                .wait_timeout(pending, timeout)
                .expect("waker mutex poisoned: a worker thread panicked mid-park");
            pending = guard;
        }
        let woken = *pending;
        *pending = false;
        woken
    }
}

impl Default for Waker {
    fn default() -> Waker {
        Waker::new()
    }
}

/// Socket errors a transport accumulated since the last drain. Lossy
/// conditions (full buffers, `WouldBlock`) are *not* errors — the stacks
/// recover from loss; these are hard failures that were previously
/// swallowed silently.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportIoErrors {
    /// Hard send failures.
    pub send: u64,
    /// Hard recv failures.
    pub recv: u64,
}

impl TransportIoErrors {
    /// True when no errors were recorded.
    pub fn is_zero(&self) -> bool {
        self.send == 0 && self.recv == 0
    }
}

/// A datagram driver bound to one local endpoint.
///
/// Implementations must be `Send` (the shard worker owns them) and
/// non-blocking on both paths. Loss is allowed at any point — the layer
/// stacks (mnak, pt2pt) recover — but a delivered datagram must arrive
/// intact and at the right endpoint.
pub trait Transport: Send {
    /// The endpoint this transport receives for.
    fn local_ep(&self) -> Endpoint;

    /// Enqueues one packet (cast fan-out is the driver's job). A full
    /// egress queue may drop — like a UDP socket buffer — never block.
    fn send(&mut self, pkt: &Packet) -> io::Result<()>;

    /// Polls one packet; `Ok(None)` when nothing is pending.
    fn try_recv(&mut self) -> io::Result<Option<Packet>>;

    /// Like [`Transport::send`], carrying the sender-side origin
    /// timestamp (nanoseconds on the obs clock) alongside the packet.
    /// Drivers that can propagate it in-band (the loopback hub) let the
    /// receiver measure true cast→deliver latency; the default discards
    /// the stamp, which is all a wire protocol without a timestamp field
    /// (UDP here) can do.
    fn send_at(&mut self, pkt: &Packet, origin_ns: u64) -> io::Result<()> {
        let _ = origin_ns;
        self.send(pkt)
    }

    /// Polls one packet with its origin stamp, when the driver carries
    /// one. The default adapts [`Transport::try_recv`] with no stamp.
    fn try_recv_stamped(&mut self) -> io::Result<Option<(Packet, Option<u64>)>> {
        Ok(self.try_recv()?.map(|p| (p, None)))
    }

    /// Largest datagram the driver accepts.
    fn max_datagram(&self) -> usize {
        60_000
    }

    /// Installs a waker the driver should nudge when ingress arrives
    /// while the owning worker may be parked. Drivers with no delivery
    /// hook (a plain UDP socket) ignore it — the worker's park timeout
    /// bounds their latency instead.
    fn set_waker(&mut self, waker: Arc<Waker>) {
        let _ = waker;
    }

    /// Drains socket error counts accumulated since the last call
    /// (delta semantics: the driver resets its tallies). The default
    /// reports none.
    fn take_io_errors(&mut self) -> TransportIoErrors {
        TransportIoErrors::default()
    }
}

/// Fault probabilities applied per (packet, recipient) on the loopback hub.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Probability a datagram is silently dropped.
    pub drop_p: f64,
    /// Probability a datagram is delivered twice.
    pub dup_p: f64,
    /// Probability a datagram is held back and swapped behind the next
    /// datagram to the same recipient (adjacent reordering).
    pub reorder_p: f64,
}

impl FaultPlan {
    /// No faults: every datagram delivered exactly once, in order.
    pub fn clean() -> FaultPlan {
        FaultPlan::default()
    }

    /// A lossy, reordering link for stress tests.
    pub fn lossy(drop_p: f64, dup_p: f64, reorder_p: f64) -> FaultPlan {
        FaultPlan {
            drop_p,
            dup_p,
            reorder_p,
        }
    }
}

/// Counts of faults the hub actually injected (plus backpressure drops).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Datagrams dropped by the plan.
    pub dropped: u64,
    /// Datagrams duplicated by the plan.
    pub duplicated: u64,
    /// Datagrams held back for reordering.
    pub reordered: u64,
    /// Datagrams dropped because a recipient's ingress queue was full.
    pub backpressure_drops: u64,
    /// Datagrams dropped because sender and recipient sat in different
    /// partition components.
    pub partition_drops: u64,
    /// Datagrams dropped by an asymmetric one-way link kill.
    pub link_drops: u64,
}

/// One step of a scripted link-matrix schedule.
///
/// Components and links are keyed by the 32-bit endpoint *id* (not the
/// full wire key), so a member that rejoins with a fresh incarnation
/// stays inside the component its id belongs to — exactly what a real
/// partition does to a restarted process on the same host.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartitionOp {
    /// Partition the listed endpoint ids into disjoint components:
    /// traffic between two listed ids flows only within a component.
    /// Ids absent from every group are unrestricted.
    Split(Vec<Vec<u32>>),
    /// Remove the component map. One-way drops installed by
    /// [`PartitionOp::DropLink`] stay in force until restored.
    Heal,
    /// Install an asymmetric one-way drop: datagrams from `from` to
    /// `to` are discarded (the reverse direction is unaffected).
    DropLink {
        /// Sender id whose datagrams are discarded.
        from: u32,
        /// Recipient id that stops hearing `from`.
        to: u32,
    },
    /// Remove a one-way drop installed by [`PartitionOp::DropLink`].
    RestoreLink {
        /// Sender id of the drop to remove.
        from: u32,
        /// Recipient id of the drop to remove.
        to: u32,
    },
}

/// A virtual-time partition schedule: `(offset_ns, op)` steps applied in
/// order as the hub's clock (the obs clock carried on every datagram)
/// passes `arm time + offset`. Armed with [`LoopbackHub::run_script`];
/// fully determined by its steps — no randomness is involved, so a chaos
/// run replays the same schedule every time.
#[derive(Clone, Debug, Default)]
pub struct PartitionScript {
    steps: Vec<(u64, PartitionOp)>,
}

impl PartitionScript {
    /// An empty schedule.
    pub fn new() -> PartitionScript {
        PartitionScript::default()
    }

    /// Appends a step at `offset_ns` after the script is armed. Steps
    /// are sorted by offset when armed, so call order does not matter.
    pub fn at(mut self, offset_ns: u64, op: PartitionOp) -> PartitionScript {
        self.steps.push((offset_ns, op));
        self
    }

    /// Number of steps in the schedule.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the schedule has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Snapshot of a hub's active link restrictions, for test asserts and
/// the metrics exposition.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PartitionStatus {
    /// Disjoint components currently enforced (endpoint ids, sorted);
    /// empty when the hub is healed.
    pub components: Vec<Vec<u32>>,
    /// Active one-way drops, sorted.
    pub dead_links: Vec<(u32, u32)>,
    /// Script steps armed but not yet applied.
    pub pending_steps: usize,
}

impl PartitionStatus {
    /// True when any component split or one-way drop is in force.
    pub fn is_partitioned(&self) -> bool {
        !self.components.is_empty() || !self.dead_links.is_empty()
    }
}

struct HubPeer {
    /// Frames carry the sender's origin stamp (obs-clock ns) in-band so
    /// receivers can measure cast→deliver latency.
    tx: SyncSender<(u64, Vec<u8>)>,
    /// Nudged after each enqueue so a parked recipient shard wakes.
    waker: Option<Arc<Waker>>,
}

struct HubInner {
    peers: HashMap<u64, HubPeer>,
    rng: DetRng,
    plan: FaultPlan,
    /// Held-back datagrams per recipient (src id, stamp, frame),
    /// delivered after the next datagram to the same recipient (or
    /// flushed by an idle receiver). The src id is kept so a flush
    /// re-checks the link matrix — a datagram held back before a split
    /// must not leak across it afterwards.
    holdback: HashMap<u64, Vec<(u32, u64, Vec<u8>)>>,
    counts: FaultCounts,
    /// Endpoint id → partition component; unmapped ids are unrestricted.
    component: HashMap<u32, usize>,
    /// Asymmetric one-way drops `(from, to)` by endpoint id.
    dead_links: std::collections::HashSet<(u32, u32)>,
    /// Armed schedule: absolute deadlines (obs-clock ns) with the next
    /// unapplied step at `script_cursor`.
    script: Vec<(u64, PartitionOp)>,
    script_cursor: usize,
}

impl HubInner {
    fn push(&mut self, dst: u64, stamp: u64, frame: Vec<u8>) {
        let Some(peer) = self.peers.get(&dst) else {
            return;
        };
        if peer.tx.try_send((stamp, frame)).is_err() {
            self.counts.backpressure_drops += 1;
        } else if let Some(w) = &peer.waker {
            w.wake();
        }
    }

    /// Applies script steps whose deadline has passed.
    fn advance_script(&mut self, now: u64) {
        while let Some((deadline, op)) = self.script.get(self.script_cursor) {
            if *deadline > now {
                break;
            }
            let op = op.clone();
            self.script_cursor += 1;
            self.apply_op(&op);
        }
    }

    fn apply_op(&mut self, op: &PartitionOp) {
        match op {
            PartitionOp::Split(groups) => {
                self.component.clear();
                for (idx, group) in groups.iter().enumerate() {
                    for id in group {
                        self.component.insert(*id, idx);
                    }
                }
            }
            PartitionOp::Heal => self.component.clear(),
            PartitionOp::DropLink { from, to } => {
                self.dead_links.insert((*from, *to));
            }
            PartitionOp::RestoreLink { from, to } => {
                self.dead_links.remove(&(*from, *to));
            }
        }
    }

    /// Whether the link matrix blocks `src → dst`, counting the drop.
    fn link_blocked(&mut self, src: u32, dst: u32) -> bool {
        if self.dead_links.contains(&(src, dst)) {
            self.counts.link_drops += 1;
            return true;
        }
        if let (Some(a), Some(b)) = (self.component.get(&src), self.component.get(&dst)) {
            if a != b {
                self.counts.partition_drops += 1;
                return true;
            }
        }
        false
    }

    /// Applies the link matrix and fault plan to one datagram from
    /// endpoint id `src` bound for wire key `dst`.
    fn deliver(&mut self, src: u32, dst: u64, stamp: u64, frame: &[u8]) {
        if !self.peers.contains_key(&dst) {
            return;
        }
        if self.link_blocked(src, (dst >> 32) as u32) {
            return;
        }
        if self.rng.chance(self.plan.drop_p) {
            self.counts.dropped += 1;
            return;
        }
        if self.rng.chance(self.plan.reorder_p) {
            self.counts.reordered += 1;
            self.holdback
                .entry(dst)
                .or_default()
                .push((src, stamp, frame.to_vec()));
            return;
        }
        let copies = if self.rng.chance(self.plan.dup_p) {
            self.counts.duplicated += 1;
            2
        } else {
            1
        };
        for _ in 0..copies {
            self.push(dst, stamp, frame.to_vec());
        }
        self.flush_holdback(dst);
    }

    fn flush_holdback(&mut self, dst: u64) {
        let Some(held) = self.holdback.remove(&dst) else {
            return;
        };
        let dst_id = (dst >> 32) as u32;
        for (src, stamp, frame) in held {
            if self.link_blocked(src, dst_id) {
                continue;
            }
            self.push(dst, stamp, frame);
        }
    }

    fn partition_status(&self) -> PartitionStatus {
        let mut by_component: HashMap<usize, Vec<u32>> = HashMap::new();
        for (id, comp) in &self.component {
            by_component.entry(*comp).or_default().push(*id);
        }
        let mut components: Vec<Vec<u32>> = by_component.into_values().collect();
        for group in &mut components {
            group.sort_unstable();
        }
        components.sort();
        let mut dead_links: Vec<(u32, u32)> = self.dead_links.iter().copied().collect();
        dead_links.sort_unstable();
        PartitionStatus {
            components,
            dead_links,
            pending_steps: self.script.len() - self.script_cursor,
        }
    }
}

/// An in-process datagram hub connecting [`LoopbackTransport`] endpoints.
///
/// Cloning the hub handle is cheap; all clones share one registry. The
/// fault plan is driven by a seeded [`DetRng`], so a failing integration
/// test replays bit-for-bit.
#[derive(Clone)]
pub struct LoopbackHub {
    inner: Arc<Mutex<HubInner>>,
    capacity: usize,
}

impl LoopbackHub {
    /// A fault-free hub (still seedable: the plan can be swapped later).
    pub fn new(seed: u64) -> LoopbackHub {
        LoopbackHub::with_faults(seed, FaultPlan::clean())
    }

    /// A hub injecting `plan` faults, deterministically from `seed`.
    pub fn with_faults(seed: u64, plan: FaultPlan) -> LoopbackHub {
        LoopbackHub {
            inner: Arc::new(Mutex::new(HubInner {
                peers: HashMap::new(),
                rng: DetRng::new(seed),
                plan,
                holdback: HashMap::new(),
                counts: FaultCounts::default(),
                component: HashMap::new(),
                dead_links: std::collections::HashSet::new(),
                script: Vec::new(),
                script_cursor: 0,
            })),
            capacity: 4096,
        }
    }

    /// Ingress queue capacity (datagrams) for transports attached later.
    pub fn with_capacity(mut self, capacity: usize) -> LoopbackHub {
        self.capacity = capacity.max(1);
        self
    }

    /// Registers `ep` and returns its transport.
    ///
    /// # Panics
    ///
    /// Panics if `ep` is already attached — two receivers for one
    /// endpoint is a wiring bug, not a runtime condition.
    pub fn attach(&self, ep: Endpoint) -> LoopbackTransport {
        let (tx, rx) = sync_channel(self.capacity);
        let mut inner = self
            .inner
            .lock()
            .expect("loopback hub mutex poisoned: a peer worker thread panicked mid-operation");
        let prev = inner
            .peers
            .insert(ep.to_wire(), HubPeer { tx, waker: None });
        assert!(prev.is_none(), "endpoint attached twice: {ep:?}");
        LoopbackTransport {
            ep,
            hub: Arc::clone(&self.inner),
            rx,
        }
    }

    /// Replaces the fault plan (e.g. to stop faults for a drain phase).
    pub fn set_plan(&self, plan: FaultPlan) {
        self.inner
            .lock()
            .expect("loopback hub mutex poisoned: a peer worker thread panicked mid-operation")
            .plan = plan;
    }

    /// Faults injected so far.
    pub fn fault_counts(&self) -> FaultCounts {
        self.inner
            .lock()
            .expect("loopback hub mutex poisoned: a peer worker thread panicked mid-operation")
            .counts
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, HubInner> {
        self.inner
            .lock()
            .expect("loopback hub mutex poisoned: a peer worker thread panicked mid-operation")
    }

    /// Arms `script` relative to the current obs clock, replacing any
    /// previously armed schedule. Steps fire as datagram traffic (or an
    /// idle receiver poll) moves the hub clock past each deadline.
    pub fn run_script(&self, script: PartitionScript) {
        let t0 = ensemble_obs::now_ns();
        let mut steps = script.steps;
        steps.sort_by_key(|(offset, _)| *offset);
        let mut inner = self.locked();
        inner.script = steps
            .into_iter()
            .map(|(offset, op)| (t0.saturating_add(offset), op))
            .collect();
        inner.script_cursor = 0;
    }

    /// Immediately partitions the listed endpoint ids into disjoint
    /// components (see [`PartitionOp::Split`]).
    pub fn split(&self, groups: Vec<Vec<u32>>) {
        self.locked().apply_op(&PartitionOp::Split(groups));
    }

    /// Immediately removes the component map.
    pub fn heal(&self) {
        self.locked().apply_op(&PartitionOp::Heal);
    }

    /// Immediately installs a one-way drop from `from` to `to`.
    pub fn drop_link(&self, from: u32, to: u32) {
        self.locked().apply_op(&PartitionOp::DropLink { from, to });
    }

    /// Immediately removes a one-way drop.
    pub fn restore_link(&self, from: u32, to: u32) {
        self.locked()
            .apply_op(&PartitionOp::RestoreLink { from, to });
    }

    /// The active link restrictions and remaining script steps.
    pub fn partition_status(&self) -> PartitionStatus {
        self.locked().partition_status()
    }

    /// Fault totals and partition layout in one snapshot, the shape
    /// [`crate::RuntimeStats`] carries. Hand
    /// `move || hub.health()` to
    /// [`crate::Node::set_transport_health_source`] to surface it from
    /// [`crate::Node::stats`] and the metrics exposition.
    pub fn health(&self) -> crate::metrics::TransportHealth {
        let inner = self.locked();
        crate::metrics::TransportHealth {
            faults: inner.counts,
            partition: inner.partition_status(),
        }
    }
}

/// One endpoint's view of a [`LoopbackHub`].
pub struct LoopbackTransport {
    ep: Endpoint,
    hub: Arc<Mutex<HubInner>>,
    rx: Receiver<(u64, Vec<u8>)>,
}

impl Transport for LoopbackTransport {
    fn local_ep(&self) -> Endpoint {
        self.ep
    }

    fn send(&mut self, pkt: &Packet) -> io::Result<()> {
        self.send_at(pkt, ensemble_obs::now_ns())
    }

    fn send_at(&mut self, pkt: &Packet, origin_ns: u64) -> io::Result<()> {
        let frame = encode_datagram(pkt);
        let src = self.ep.id();
        let mut inner = self
            .hub
            .lock()
            .expect("loopback hub mutex poisoned: a peer worker thread panicked mid-operation");
        inner.advance_script(origin_ns);
        match pkt.dst {
            ensemble_transport::Dest::Cast => {
                let peers: Vec<u64> = inner.peers.keys().copied().collect();
                let me = self.ep.to_wire();
                for dst in peers {
                    if dst != me {
                        inner.deliver(src, dst, origin_ns, &frame);
                    }
                }
            }
            ensemble_transport::Dest::Point(dst) => {
                inner.deliver(src, dst.to_wire(), origin_ns, &frame);
            }
        }
        Ok(())
    }

    fn try_recv(&mut self) -> io::Result<Option<Packet>> {
        Ok(self.try_recv_stamped()?.map(|(p, _)| p))
    }

    fn set_waker(&mut self, waker: Arc<Waker>) {
        let mut inner = self
            .hub
            .lock()
            .expect("loopback hub mutex poisoned: a peer worker thread panicked mid-operation");
        if let Some(peer) = inner.peers.get_mut(&self.ep.to_wire()) {
            peer.waker = Some(waker);
        }
    }

    fn try_recv_stamped(&mut self) -> io::Result<Option<(Packet, Option<u64>)>> {
        loop {
            match self.rx.try_recv() {
                Ok((stamp, frame)) => match decode_datagram(&frame) {
                    Ok(pkt) => return Ok(Some((pkt, Some(stamp)))),
                    Err(_) => continue, // foreign datagram: drop, keep polling
                },
                Err(TryRecvError::Empty) => {
                    // Idle: release anything held back for us so a
                    // reordered datagram cannot be starved forever, and
                    // keep the script moving on a quiet hub.
                    let me = self.ep.to_wire();
                    {
                        let mut inner = self.hub.lock().expect("loopback hub mutex poisoned: a peer worker thread panicked mid-operation");
                        inner.advance_script(ensemble_obs::now_ns());
                        inner.flush_holdback(me);
                    }
                    return match self.rx.try_recv() {
                        Ok((stamp, frame)) => {
                            Ok(decode_datagram(&frame).ok().map(|p| (p, Some(stamp))))
                        }
                        Err(_) => Ok(None),
                    };
                }
                Err(TryRecvError::Disconnected) => return Ok(None),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cast(src: u32, body: &[u8]) -> Packet {
        Packet::cast(Endpoint::new(src), body.to_vec())
    }

    #[test]
    fn clean_hub_delivers_casts_to_everyone_else() {
        let hub = LoopbackHub::new(1);
        let mut a = hub.attach(Endpoint::new(0));
        let mut b = hub.attach(Endpoint::new(1));
        let mut c = hub.attach(Endpoint::new(2));
        a.send(&cast(0, b"hi")).unwrap();
        assert!(a.try_recv().unwrap().is_none(), "no self-delivery");
        let pb = b.try_recv().unwrap().expect("b receives");
        let pc = c.try_recv().unwrap().expect("c receives");
        assert_eq!(pb.bytes, b"hi");
        assert_eq!(pc.src, Endpoint::new(0));
    }

    #[test]
    fn point_reaches_only_the_target() {
        let hub = LoopbackHub::new(1);
        let mut a = hub.attach(Endpoint::new(0));
        let mut b = hub.attach(Endpoint::new(1));
        let mut c = hub.attach(Endpoint::new(2));
        let pkt = Packet::point(Endpoint::new(0), Endpoint::new(2), b"x".to_vec());
        a.send(&pkt).unwrap();
        assert!(b.try_recv().unwrap().is_none());
        assert_eq!(c.try_recv().unwrap().unwrap().bytes, b"x");
    }

    #[test]
    fn drop_plan_loses_packets_deterministically() {
        let run = |seed| {
            let hub = LoopbackHub::with_faults(seed, FaultPlan::lossy(0.5, 0.0, 0.0));
            let a = hub.attach(Endpoint::new(0));
            let mut b = hub.attach(Endpoint::new(1));
            let mut a = a;
            for i in 0..100u8 {
                a.send(&cast(0, &[i])).unwrap();
            }
            let mut got = Vec::new();
            while let Some(p) = b.try_recv().unwrap() {
                got.push(p.bytes[0]);
            }
            got
        };
        let first = run(7);
        assert!(first.len() < 100, "some packets must drop");
        assert!(!first.is_empty(), "some packets must survive");
        assert_eq!(first, run(7), "same seed, same faults");
    }

    #[test]
    fn reorder_swaps_adjacent_packets() {
        let hub = LoopbackHub::with_faults(3, FaultPlan::lossy(0.0, 0.0, 0.4));
        let mut a = hub.attach(Endpoint::new(0));
        let mut b = hub.attach(Endpoint::new(1));
        for i in 0..200u8 {
            a.send(&cast(0, &[i])).unwrap();
        }
        let mut got = Vec::new();
        while let Some(p) = b.try_recv().unwrap() {
            got.push(p.bytes[0]);
        }
        assert_eq!(got.len(), 200, "reordering must not lose packets");
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_ne!(got, sorted, "some packets must arrive out of order");
        assert_eq!(sorted, (0..200u8).collect::<Vec<_>>());
    }

    #[test]
    fn duplication_delivers_twice() {
        let hub = LoopbackHub::with_faults(9, FaultPlan::lossy(0.0, 1.0, 0.0));
        let mut a = hub.attach(Endpoint::new(0));
        let mut b = hub.attach(Endpoint::new(1));
        a.send(&cast(0, b"dup")).unwrap();
        assert_eq!(b.try_recv().unwrap().unwrap().bytes, b"dup");
        assert_eq!(b.try_recv().unwrap().unwrap().bytes, b"dup");
        assert!(b.try_recv().unwrap().is_none());
    }

    #[test]
    fn waker_latches_a_wake_posted_before_park() {
        let w = Waker::new();
        w.wake();
        w.wake(); // redundant wakes coalesce
        assert!(w.park(std::time::Duration::ZERO), "latched wake consumed");
        assert!(
            !w.park(std::time::Duration::from_millis(1)),
            "second park times out"
        );
    }

    #[test]
    fn waker_releases_a_parked_thread() {
        let w = Arc::new(Waker::new());
        let w2 = Arc::clone(&w);
        let t = std::thread::spawn(move || w2.park(std::time::Duration::from_secs(5)));
        std::thread::sleep(std::time::Duration::from_millis(10));
        w.wake();
        assert!(t.join().unwrap(), "park released by wake, not timeout");
    }

    #[test]
    fn hub_send_nudges_the_recipients_waker() {
        let hub = LoopbackHub::new(2);
        let mut a = hub.attach(Endpoint::new(0));
        let mut b = hub.attach(Endpoint::new(1));
        let w = Arc::new(Waker::new());
        b.set_waker(Arc::clone(&w));
        a.send(&cast(0, b"ping")).unwrap();
        assert!(w.park(std::time::Duration::ZERO), "delivery posted a wake");
        assert_eq!(b.try_recv().unwrap().unwrap().bytes, b"ping");
    }

    #[test]
    fn split_blocks_cross_component_traffic_both_ways() {
        let hub = LoopbackHub::new(11);
        let mut a = hub.attach(Endpoint::new(0));
        let mut b = hub.attach(Endpoint::new(1));
        let mut c = hub.attach(Endpoint::new(2));
        hub.split(vec![vec![0, 1], vec![2]]);
        a.send(&cast(0, b"in")).unwrap();
        c.send(&cast(2, b"out")).unwrap();
        assert_eq!(b.try_recv().unwrap().unwrap().bytes, b"in");
        assert!(b.try_recv().unwrap().is_none(), "c is cut off from b");
        assert!(c.try_recv().unwrap().is_none(), "a is cut off from c");
        assert_eq!(hub.fault_counts().partition_drops, 3);
        assert!(hub.partition_status().is_partitioned());
        hub.heal();
        a.send(&cast(0, b"again")).unwrap();
        assert_eq!(c.try_recv().unwrap().unwrap().bytes, b"again");
        assert!(!hub.partition_status().is_partitioned());
    }

    #[test]
    fn split_keys_on_id_so_reincarnations_stay_inside() {
        let hub = LoopbackHub::new(11);
        let mut a = hub.attach(Endpoint::new(0));
        let mut b2 = hub.attach(Endpoint::new(1).reincarnate());
        hub.split(vec![vec![0], vec![1]]);
        a.send(&cast(0, b"x")).unwrap();
        assert!(
            b2.try_recv().unwrap().is_none(),
            "id 1 is partitioned regardless of incarnation"
        );
        let _ = a;
    }

    #[test]
    fn one_way_drop_is_asymmetric() {
        let hub = LoopbackHub::new(4);
        let mut a = hub.attach(Endpoint::new(0));
        let mut b = hub.attach(Endpoint::new(1));
        hub.drop_link(0, 1);
        a.send(&cast(0, b"lost")).unwrap();
        b.send(&cast(1, b"heard")).unwrap();
        assert!(b.try_recv().unwrap().is_none(), "a→b is dead");
        assert_eq!(a.try_recv().unwrap().unwrap().bytes, b"heard");
        assert_eq!(hub.fault_counts().link_drops, 1);
        hub.restore_link(0, 1);
        a.send(&cast(0, b"back")).unwrap();
        assert_eq!(b.try_recv().unwrap().unwrap().bytes, b"back");
    }

    #[test]
    fn script_splits_and_heals_on_the_virtual_clock() {
        let hub = LoopbackHub::new(8);
        let mut a = hub.attach(Endpoint::new(0));
        let mut b = hub.attach(Endpoint::new(1));
        // Split immediately, heal 5ms after arming.
        hub.run_script(
            PartitionScript::new()
                .at(0, PartitionOp::Split(vec![vec![0], vec![1]]))
                .at(5_000_000, PartitionOp::Heal),
        );
        a.send(&cast(0, b"early")).unwrap();
        assert!(b.try_recv().unwrap().is_none(), "split step applied");
        assert_eq!(hub.partition_status().pending_steps, 1);
        std::thread::sleep(std::time::Duration::from_millis(6));
        a.send(&cast(0, b"late")).unwrap();
        assert_eq!(b.try_recv().unwrap().unwrap().bytes, b"late");
        assert_eq!(hub.partition_status().pending_steps, 0);
    }

    #[test]
    fn holdback_does_not_leak_across_a_later_split() {
        // Force every datagram into holdback, then split before the
        // flush: the held datagram must be re-checked and dropped.
        let hub = LoopbackHub::with_faults(2, FaultPlan::lossy(0.0, 0.0, 1.0));
        let mut a = hub.attach(Endpoint::new(0));
        let mut b = hub.attach(Endpoint::new(1));
        a.send(&cast(0, b"held")).unwrap();
        hub.split(vec![vec![0], vec![1]]);
        assert!(
            b.try_recv().unwrap().is_none(),
            "flush re-checks the matrix"
        );
        assert_eq!(hub.fault_counts().partition_drops, 1);
    }

    #[test]
    fn full_ingress_queue_drops_not_blocks() {
        let hub = LoopbackHub::new(5).with_capacity(4);
        let mut a = hub.attach(Endpoint::new(0));
        let _b = hub.attach(Endpoint::new(1));
        for i in 0..10u8 {
            a.send(&cast(0, &[i])).unwrap(); // must not block
        }
        assert_eq!(hub.fault_counts().backpressure_drops, 6);
    }
}
