//! Per-shard runtime counters and their immutable snapshot.
//!
//! Each worker owns one [`ShardMetrics`] (lock-free atomics, updated on the
//! hot path) and [`crate::Node::stats`] folds every shard into a
//! [`RuntimeStats`] snapshot. The model-cost [`Counters`] from
//! `ensemble-util` ride along so the runtime reports the same cost
//! vocabulary as the Table 2(a) experiments: bypass hits add the compiled
//! program's instruction count, generic-path events add one dispatch per
//! layer crossed.

use crate::transport::{FaultCounts, PartitionStatus};
use ensemble_util::Counters;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters for one shard (one worker thread).
#[derive(Debug, Default)]
pub struct ShardMetrics {
    /// Groups currently assigned to this shard.
    pub groups: AtomicU64,
    /// Packets ingested from the transports.
    pub msgs_in: AtomicU64,
    /// Packets handed to the transports.
    pub msgs_out: AtomicU64,
    /// Bypass invocations whose CCP held (fast path taken).
    pub bypass_hits: AtomicU64,
    /// Bypass invocations that fell back (CCP failed or foreign format).
    pub bypass_misses: AtomicU64,
    /// Deferred work items accumulated into batches (only stacks whose
    /// Defer-commutativity certificate held batch at all).
    pub defer_batched: AtomicU64,
    /// Deferred-work drain passes (batch flushes at quiescent points,
    /// or per-hit drains on uncertified stacks).
    pub defer_flushes: AtomicU64,
    /// Timer-wheel entries fired into `Layer::timer` handlers.
    pub timers_fired: AtomicU64,
    /// Transmissions triggered by timer events (mnak/pt2pt recovery).
    pub retransmits: AtomicU64,
    /// Commands queued by application handles, not yet drained.
    pub cmd_depth: AtomicU64,
    /// Deliveries queued for applications, not yet consumed.
    pub delivery_depth: AtomicU64,
    /// Parker wakeups after which the worker's next iteration found no
    /// work (the notification raced with a drain, or was redundant).
    pub spurious_wakeups: AtomicU64,
    /// Socket send errors reported by this shard's transports.
    pub transport_send_errors: AtomicU64,
    /// Socket recv errors reported by this shard's transports.
    pub transport_recv_errors: AtomicU64,
    /// Ingress packets quarantined by stalled (quorum-less) groups.
    pub stall_drops: AtomicU64,
    /// Modeled instruction cost of bypass hits (compiled program sizes).
    pub cost_instructions: AtomicU64,
    /// Layer-boundary crossings taken by generic-path events.
    pub cost_dispatches: AtomicU64,
    /// Marshal/unmarshal buffer allocations on the generic path.
    pub cost_allocations: AtomicU64,
    /// Header-field and state-word moves (bypass wire/update programs,
    /// marshal/unmarshal buffer walks).
    pub cost_data_refs: AtomicU64,
    /// CCP conjuncts evaluated on bypass invocations.
    pub cost_branches: AtomicU64,
}

impl ShardMetrics {
    /// Reads every counter into an immutable snapshot.
    pub fn snapshot(&self, shard: usize) -> ShardSnapshot {
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ShardSnapshot {
            shard,
            groups: ld(&self.groups),
            msgs_in: ld(&self.msgs_in),
            msgs_out: ld(&self.msgs_out),
            bypass_hits: ld(&self.bypass_hits),
            bypass_misses: ld(&self.bypass_misses),
            defer_batched: ld(&self.defer_batched),
            defer_flushes: ld(&self.defer_flushes),
            timers_fired: ld(&self.timers_fired),
            retransmits: ld(&self.retransmits),
            cmd_depth: ld(&self.cmd_depth),
            delivery_depth: ld(&self.delivery_depth),
            spurious_wakeups: ld(&self.spurious_wakeups),
            transport_send_errors: ld(&self.transport_send_errors),
            transport_recv_errors: ld(&self.transport_recv_errors),
            stall_drops: ld(&self.stall_drops),
            model_cost: Counters {
                instructions: ld(&self.cost_instructions),
                data_refs: ld(&self.cost_data_refs),
                allocations: ld(&self.cost_allocations),
                dispatches: ld(&self.cost_dispatches),
                branches: ld(&self.cost_branches),
            },
        }
    }

    /// Adds a group's model-cost delta into the shard totals.
    pub fn add_cost(&self, c: &Counters) {
        self.cost_instructions
            .fetch_add(c.instructions, Ordering::Relaxed);
        self.cost_dispatches
            .fetch_add(c.dispatches, Ordering::Relaxed);
        self.cost_allocations
            .fetch_add(c.allocations, Ordering::Relaxed);
        self.cost_data_refs
            .fetch_add(c.data_refs, Ordering::Relaxed);
        self.cost_branches.fetch_add(c.branches, Ordering::Relaxed);
    }
}

/// One shard's counters at a point in time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Shard index (== worker index).
    pub shard: usize,
    /// Groups assigned.
    pub groups: u64,
    /// Packets in from transports.
    pub msgs_in: u64,
    /// Packets out to transports.
    pub msgs_out: u64,
    /// Fast-path invocations that held.
    pub bypass_hits: u64,
    /// Fast-path invocations that fell back.
    pub bypass_misses: u64,
    /// Deferred work items accumulated into batches.
    pub defer_batched: u64,
    /// Deferred-work drain passes.
    pub defer_flushes: u64,
    /// Timer handlers fired.
    pub timers_fired: u64,
    /// Timer-triggered transmissions.
    pub retransmits: u64,
    /// Pending application commands.
    pub cmd_depth: u64,
    /// Pending application deliveries.
    pub delivery_depth: u64,
    /// Parker wakeups that found no work on the next iteration.
    pub spurious_wakeups: u64,
    /// Socket send errors from this shard's transports.
    pub transport_send_errors: u64,
    /// Socket recv errors from this shard's transports.
    pub transport_recv_errors: u64,
    /// Ingress packets quarantined by stalled (quorum-less) groups.
    pub stall_drops: u64,
    /// Model-level cost counters (same vocabulary as Table 2(a)).
    pub model_cost: Counters,
}

impl ShardSnapshot {
    /// Fraction of bypass invocations that took the fast path.
    pub fn bypass_hit_ratio(&self) -> f64 {
        let total = self.bypass_hits + self.bypass_misses;
        if total == 0 {
            return 0.0;
        }
        self.bypass_hits as f64 / total as f64
    }
}

/// Health of the node's transport fabric at snapshot time: injected
/// fault totals plus the live partition picture. Only populated when the
/// node runs over a [`crate::transport::LoopbackHub`] (or another source
/// registered via [`crate::Node::set_transport_health_source`]); real
/// sockets report `None`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TransportHealth {
    /// Cumulative injected-fault counters (drops, dups, reorders,
    /// partition and link-matrix drops).
    pub faults: FaultCounts,
    /// The active partition layout and remaining script steps.
    pub partition: PartitionStatus,
}

/// A whole-node snapshot: one entry per shard.
#[derive(Clone, Debug, Default)]
pub struct RuntimeStats {
    /// Per-shard counters, indexed by shard id.
    pub shards: Vec<ShardSnapshot>,
    /// Transport fabric health, when a source is registered.
    pub transport: Option<TransportHealth>,
}

impl RuntimeStats {
    /// Sums every shard into one aggregate row (`shard` is meaningless
    /// there and set to `usize::MAX`).
    pub fn totals(&self) -> ShardSnapshot {
        let mut t = ShardSnapshot {
            shard: usize::MAX,
            ..ShardSnapshot::default()
        };
        for s in &self.shards {
            t.groups += s.groups;
            t.msgs_in += s.msgs_in;
            t.msgs_out += s.msgs_out;
            t.bypass_hits += s.bypass_hits;
            t.bypass_misses += s.bypass_misses;
            t.defer_batched += s.defer_batched;
            t.defer_flushes += s.defer_flushes;
            t.timers_fired += s.timers_fired;
            t.retransmits += s.retransmits;
            t.cmd_depth += s.cmd_depth;
            t.delivery_depth += s.delivery_depth;
            t.spurious_wakeups += s.spurious_wakeups;
            t.transport_send_errors += s.transport_send_errors;
            t.transport_recv_errors += s.transport_recv_errors;
            t.stall_drops += s.stall_drops;
            t.model_cost.merge(&s.model_cost);
        }
        t
    }
}

impl fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.shards {
            writeln!(
                f,
                "shard {}: groups={} in={} out={} bypass={}/{} (hit {:.1}%) defer={}b/{}f timers={} retrans={} qdepth cmd={} dlv={} spurious={} ioerr snd={} rcv={} stall_drops={}",
                s.shard,
                s.groups,
                s.msgs_in,
                s.msgs_out,
                s.bypass_hits,
                s.bypass_hits + s.bypass_misses,
                100.0 * s.bypass_hit_ratio(),
                s.defer_batched,
                s.defer_flushes,
                s.timers_fired,
                s.retransmits,
                s.cmd_depth,
                s.delivery_depth,
                s.spurious_wakeups,
                s.transport_send_errors,
                s.transport_recv_errors,
                s.stall_drops,
            )?;
        }
        let t = self.totals();
        write!(
            f,
            "total: groups={} in={} out={} bypass={}/{} (hit {:.1}%) defer={}b/{}f timers={} retrans={} qdepth cmd={} dlv={} spurious={} ioerr snd={} rcv={} stall_drops={} cost: {}",
            t.groups,
            t.msgs_in,
            t.msgs_out,
            t.bypass_hits,
            t.bypass_hits + t.bypass_misses,
            100.0 * t.bypass_hit_ratio(),
            t.defer_batched,
            t.defer_flushes,
            t.timers_fired,
            t.retransmits,
            t.cmd_depth,
            t.delivery_depth,
            t.spurious_wakeups,
            t.transport_send_errors,
            t.transport_recv_errors,
            t.stall_drops,
            t.model_cost
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_counters() {
        let m = ShardMetrics::default();
        m.msgs_in.fetch_add(3, Ordering::Relaxed);
        m.bypass_hits.fetch_add(2, Ordering::Relaxed);
        m.bypass_misses.fetch_add(2, Ordering::Relaxed);
        let s = m.snapshot(1);
        assert_eq!(s.shard, 1);
        assert_eq!(s.msgs_in, 3);
        assert!((s.bypass_hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn totals_aggregate_shards() {
        let a = ShardSnapshot {
            shard: 0,
            msgs_in: 5,
            bypass_hits: 1,
            ..ShardSnapshot::default()
        };
        let b = ShardSnapshot {
            shard: 1,
            msgs_in: 7,
            retransmits: 2,
            ..ShardSnapshot::default()
        };
        let stats = RuntimeStats {
            shards: vec![a, b],
            transport: None,
        };
        let t = stats.totals();
        assert_eq!(t.msgs_in, 12);
        assert_eq!(t.retransmits, 2);
        assert_eq!(t.bypass_hits, 1);
    }

    #[test]
    fn cost_merges_into_snapshot() {
        let m = ShardMetrics::default();
        let mut c = Counters::zero();
        c.instructions = 10;
        c.dispatches = 4;
        c.data_refs = 3;
        c.branches = 2;
        m.add_cost(&c);
        m.add_cost(&c);
        let s = m.snapshot(0);
        assert_eq!(s.model_cost.instructions, 20);
        assert_eq!(s.model_cost.dispatches, 8);
        assert_eq!(s.model_cost.data_refs, 6, "data_refs must not be dropped");
        assert_eq!(s.model_cost.branches, 4, "branches must not be dropped");
    }

    #[test]
    fn defer_counters_flow_to_totals_and_display() {
        let m = ShardMetrics::default();
        m.defer_batched.fetch_add(64, Ordering::Relaxed);
        m.defer_flushes.fetch_add(2, Ordering::Relaxed);
        let s = m.snapshot(0);
        assert_eq!(s.defer_batched, 64);
        assert_eq!(s.defer_flushes, 2);
        let stats = RuntimeStats {
            shards: vec![s, s],
            transport: None,
        };
        let t = stats.totals();
        assert_eq!(t.defer_batched, 128);
        assert_eq!(t.defer_flushes, 4);
        let text = format!("{stats}");
        assert!(
            text.lines().last().unwrap().contains("defer=128b/4f"),
            "got: {text}"
        );
    }

    #[test]
    fn io_error_and_wakeup_counters_flow_to_totals_and_display() {
        let m = ShardMetrics::default();
        m.spurious_wakeups.fetch_add(4, Ordering::Relaxed);
        m.transport_send_errors.fetch_add(2, Ordering::Relaxed);
        m.transport_recv_errors.fetch_add(1, Ordering::Relaxed);
        let s = m.snapshot(0);
        assert_eq!(s.spurious_wakeups, 4);
        assert_eq!(s.transport_send_errors, 2);
        assert_eq!(s.transport_recv_errors, 1);
        let stats = RuntimeStats {
            shards: vec![s, s],
            transport: None,
        };
        let t = stats.totals();
        assert_eq!(t.spurious_wakeups, 8);
        assert_eq!(t.transport_send_errors, 4);
        assert_eq!(t.transport_recv_errors, 2);
        let text = format!("{stats}");
        assert!(
            text.lines().last().unwrap().contains("ioerr snd=4 rcv=2"),
            "got: {text}"
        );
    }

    #[test]
    fn display_labels_queue_depths_and_completes_totals() {
        let stats = RuntimeStats {
            shards: vec![ShardSnapshot {
                shard: 0,
                groups: 1,
                msgs_in: 2,
                msgs_out: 3,
                bypass_hits: 4,
                timers_fired: 5,
                cmd_depth: 6,
                delivery_depth: 7,
                ..ShardSnapshot::default()
            }],
            transport: None,
        };
        let text = format!("{stats}");
        assert!(text.contains("qdepth cmd=6 dlv=7"), "got: {text}");
        let total = text.lines().last().unwrap();
        for needle in ["groups=1", "bypass=4/4", "timers=5", "qdepth cmd=6 dlv=7"] {
            assert!(
                total.contains(needle),
                "totals line missing {needle}: {total}"
            );
        }
    }
}
