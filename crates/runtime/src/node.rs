//! The thread-pooled executor: [`Node`], shards, and [`GroupHandle`].
//!
//! A node owns M worker threads (shards). Each group a process joins is
//! assigned to one shard (round-robin), and the shard's worker drives
//! every group it owns through one poll loop:
//!
//! 1. accept newly joined groups;
//! 2. drain a bounded batch of application commands per group;
//! 3. drain a bounded batch of transport ingress per group;
//! 4. advance the shard's timer wheel and fire due layer timers;
//! 5. if nothing happened, sleep briefly (~50 µs) to yield the CPU.
//!
//! Sharding gives groups-to-cores parallelism without any locking on the
//! protocol path: a group's stack is only ever touched by its shard's
//! thread. The channels at both edges are bounded; see the backpressure
//! notes on [`GroupHandle`].

use crate::group::{Action, CoreEvent, CoreLayer, Delivery, GroupCore};
use crate::metrics::{RuntimeStats, ShardMetrics, TransportHealth};
use crate::obs::NodeObs;
use crate::timer::TimerWheel;
use crate::transport::{Transport, Waker};
use ensemble_layers::LayerConfig;
use ensemble_obs::{now_ns, Event, EventKind, Histogram, Tag};
use ensemble_stack::EngineKind;
use ensemble_util::{Endpoint, Rank, Time};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender, TryRecvError};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// Tuning knobs for a [`Node`].
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Worker threads (= shards). Default: 2.
    pub workers: usize,
    /// Application command queue capacity per group.
    pub cmd_capacity: usize,
    /// Application delivery queue capacity per group.
    pub delivery_capacity: usize,
    /// Commands / packets drained per group per loop iteration.
    pub batch: usize,
    /// Longest a worker parks when a loop iteration did no work. Handles
    /// and waker-aware transports (the loopback hub) wake the worker
    /// early; this bound keeps polled transports (UDP) and timers live.
    pub idle_sleep: std::time::Duration,
    /// Structured tracing + latency histograms ([`Node::obs`]). The cost
    /// when off is one branch per event; when on, a handful of relaxed
    /// atomic stores. Default: on.
    pub obs: bool,
    /// Flight-recorder capacity (events) per shard ring.
    pub obs_ring_capacity: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: 2,
            cmd_capacity: 1024,
            delivery_capacity: 4096,
            batch: 64,
            idle_sleep: std::time::Duration::from_micros(50),
            obs: true,
            obs_ring_capacity: 8192,
        }
    }
}

/// Why a handle operation failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuntimeError {
    /// The node (or this group's worker) has shut down.
    Closed,
    /// The group failed to build or install a bypass; details were
    /// reported on the join/install result channel.
    Rejected,
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Closed => write!(f, "runtime has shut down"),
            RuntimeError::Rejected => write!(f, "request rejected by the worker"),
        }
    }
}

enum Command {
    Cast(Vec<u8>),
    Send(Rank, Vec<u8>),
    Suspect(Vec<Rank>),
    /// Admit endpoints into the group via gmp's merge flush.
    Merge(Vec<Endpoint>),
    /// Install a view granted from outside the stack (partition heal).
    InstallView(ensemble_event::ViewState),
    /// Stall (true) or resume (false) the group for lack of quorum.
    Stall(bool),
    Leave,
    /// Synthesize + compile the MACH bypass; the result goes back on the
    /// provided channel.
    InstallBypass(Sender<Result<(), String>>),
    DropBypass,
    /// Register a waker nudged after every delivery is queued, so a
    /// consumer parked on [`Waker::park`] (instead of a blocking channel
    /// recv) learns about new deliveries without polling.
    SetDeliveryWaker(Arc<Waker>),
}

struct JoinSpec {
    names: Vec<&'static str>,
    vs: ensemble_event::ViewState,
    kind: EngineKind,
    cfg: LayerConfig,
    transport: Box<dyn Transport>,
    cmd_rx: Receiver<Command>,
    delivery_tx: SyncSender<Delivery>,
    /// Reports stack-build success/failure back to `join`.
    built: Sender<Result<(), String>>,
}

struct GroupSlot {
    core: GroupCore,
    transport: Box<dyn Transport>,
    cmd_rx: Receiver<Command>,
    delivery_tx: SyncSender<Delivery>,
    /// Nudged after each queued delivery (see `Command::SetDeliveryWaker`).
    delivery_waker: Option<Arc<Waker>>,
    tags: SlotTags,
}

/// Pre-resolved recorder tags and histogram handles for one group, built
/// once at join so the event loop never touches a string or a lock.
struct SlotTags {
    group: u32,
    app: Tag,
    bypass: Tag,
    engine: Tag,
    wire: Tag,
    layers: Vec<Tag>,
    layer_hists: Vec<Arc<Histogram>>,
}

impl SlotTags {
    fn new(core: &GroupCore, obs: &NodeObs) -> SlotTags {
        let names = core.layer_names();
        SlotTags {
            group: core.endpoint().id(),
            app: obs.recorder.register("app"),
            bypass: obs.recorder.register("bypass"),
            engine: obs.recorder.register("engine"),
            wire: obs.recorder.register("wire"),
            layers: names.iter().map(|n| obs.recorder.register(n)).collect(),
            layer_hists: names.iter().map(|n| obs.layer_handler_ns.get(n)).collect(),
        }
    }

    fn resolve(&self, layer: CoreLayer) -> Tag {
        match layer {
            CoreLayer::App => self.app,
            CoreLayer::Bypass => self.bypass,
            CoreLayer::Engine => self.engine,
            CoreLayer::Layer(i) => self.layers.get(i).copied().unwrap_or(self.engine),
        }
    }
}

/// A handle to one joined group.
///
/// ## Backpressure
///
/// Both queues are bounded. A full *command* queue blocks the caller in
/// [`GroupHandle::cast`]/[`GroupHandle::send`] until the shard catches up
/// — the application feels the stack's pace. A full *delivery* queue
/// blocks the shard worker: the runtime never drops an application
/// delivery, so a consumer that stops reading eventually stalls its whole
/// shard (every group on it). Drain deliveries promptly or size
/// `delivery_capacity` for the burst.
pub struct GroupHandle {
    ep: Endpoint,
    rank: Rank,
    cmd_tx: SyncSender<Command>,
    delivery_rx: Receiver<Delivery>,
    metrics: Arc<ShardMetrics>,
    waker: Arc<Waker>,
}

impl GroupHandle {
    /// This member's endpoint.
    pub fn endpoint(&self) -> Endpoint {
        self.ep
    }

    /// This member's rank in the initial view.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// A cloneable send-only handle for this group, so one thread can own
    /// `recv` while others cast/send (e.g. a cluster driver draining
    /// deliveries while the application keeps publishing).
    pub fn sender(&self) -> GroupSender {
        GroupSender {
            ep: self.ep,
            rank: self.rank,
            cmd_tx: self.cmd_tx.clone(),
            metrics: Arc::clone(&self.metrics),
            waker: Arc::clone(&self.waker),
        }
    }

    fn command(&self, c: Command) -> Result<(), RuntimeError> {
        self.metrics.cmd_depth.fetch_add(1, Ordering::Relaxed);
        self.cmd_tx.send(c).map_err(|_| {
            self.metrics.cmd_depth.fetch_sub(1, Ordering::Relaxed);
            RuntimeError::Closed
        })?;
        self.waker.wake();
        Ok(())
    }

    /// Multicasts `payload` to the group (blocks on a full queue).
    pub fn cast(&self, payload: &[u8]) -> Result<(), RuntimeError> {
        self.command(Command::Cast(payload.to_vec()))
    }

    /// Sends `payload` point-to-point to `dst` (blocks on a full queue).
    pub fn send(&self, dst: Rank, payload: &[u8]) -> Result<(), RuntimeError> {
        self.command(Command::Send(dst, payload.to_vec()))
    }

    /// Asks the stack to suspect `ranks`.
    pub fn suspect(&self, ranks: Vec<Rank>) -> Result<(), RuntimeError> {
        self.command(Command::Suspect(ranks))
    }

    /// Asks the stack to admit `members` (partition healing): gmp runs
    /// a flush and announces the grown view to the current members.
    pub fn merge(&self, members: Vec<Endpoint>) -> Result<(), RuntimeError> {
        self.command(Command::Merge(members))
    }

    /// Installs a strictly newer view handed in from outside the stack
    /// (a control-plane merge grant). Older or equal views are ignored.
    pub fn install_view(&self, vs: ensemble_event::ViewState) -> Result<(), RuntimeError> {
        self.command(Command::InstallView(vs))
    }

    /// Stalls (`true`) or resumes (`false`) the group: while stalled,
    /// application traffic parks and ingress is quarantined — the
    /// minority-partition safety mode.
    pub fn stall(&self, on: bool) -> Result<(), RuntimeError> {
        self.command(Command::Stall(on))
    }

    /// Gracefully leaves the group.
    pub fn leave(&self) -> Result<(), RuntimeError> {
        self.command(Command::Leave)
    }

    /// Registers a waker the shard nudges after every queued delivery.
    ///
    /// A consumer multiplexing deliveries with other work (a cluster
    /// driver, a service loop) can park on the waker instead of sleeping
    /// a fixed interval between `try_recv` polls, cutting delivery
    /// forwarding latency from the poll period to microseconds.
    pub fn set_delivery_waker(&self, waker: Arc<Waker>) -> Result<(), RuntimeError> {
        self.command(Command::SetDeliveryWaker(waker))
    }

    /// Synthesizes and installs the MACH bypass for the current view,
    /// waiting for the worker to compile it.
    pub fn install_bypass(&self) -> Result<(), RuntimeError> {
        let (tx, rx) = mpsc::channel();
        self.command(Command::InstallBypass(tx))?;
        match rx.recv() {
            Ok(Ok(())) => Ok(()),
            Ok(Err(_)) => Err(RuntimeError::Rejected),
            Err(_) => Err(RuntimeError::Closed),
        }
    }

    /// Removes the bypass.
    pub fn drop_bypass(&self) -> Result<(), RuntimeError> {
        self.command(Command::DropBypass)
    }

    /// Blocks up to `timeout` for the next delivery.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Option<Delivery> {
        match self.delivery_rx.recv_timeout(timeout) {
            Ok(d) => {
                self.metrics.delivery_depth.fetch_sub(1, Ordering::Relaxed);
                Some(d)
            }
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Non-blocking poll for the next delivery.
    pub fn try_recv(&self) -> Option<Delivery> {
        match self.delivery_rx.try_recv() {
            Ok(d) => {
                self.metrics.delivery_depth.fetch_sub(1, Ordering::Relaxed);
                Some(d)
            }
            Err(_) => None,
        }
    }
}

/// A send-only, cloneable handle to a joined group (no delivery side).
///
/// Obtained from [`GroupHandle::sender`]. Commands share the group's
/// bounded queue, so the backpressure notes on [`GroupHandle`] apply.
#[derive(Clone)]
pub struct GroupSender {
    ep: Endpoint,
    rank: Rank,
    cmd_tx: SyncSender<Command>,
    metrics: Arc<ShardMetrics>,
    waker: Arc<Waker>,
}

impl GroupSender {
    /// This member's endpoint.
    pub fn endpoint(&self) -> Endpoint {
        self.ep
    }

    /// This member's rank in the initial view.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    fn command(&self, c: Command) -> Result<(), RuntimeError> {
        self.metrics.cmd_depth.fetch_add(1, Ordering::Relaxed);
        self.cmd_tx.send(c).map_err(|_| {
            self.metrics.cmd_depth.fetch_sub(1, Ordering::Relaxed);
            RuntimeError::Closed
        })?;
        self.waker.wake();
        Ok(())
    }

    /// Multicasts `payload` to the group (blocks on a full queue).
    pub fn cast(&self, payload: &[u8]) -> Result<(), RuntimeError> {
        self.command(Command::Cast(payload.to_vec()))
    }

    /// Sends `payload` point-to-point to `dst` (blocks on a full queue).
    pub fn send(&self, dst: Rank, payload: &[u8]) -> Result<(), RuntimeError> {
        self.command(Command::Send(dst, payload.to_vec()))
    }

    /// Asks the stack to suspect `ranks`.
    pub fn suspect(&self, ranks: Vec<Rank>) -> Result<(), RuntimeError> {
        self.command(Command::Suspect(ranks))
    }

    /// Gracefully leaves the group.
    pub fn leave(&self) -> Result<(), RuntimeError> {
        self.command(Command::Leave)
    }
}

struct Shard {
    join_tx: Sender<JoinSpec>,
    metrics: Arc<ShardMetrics>,
    waker: Arc<Waker>,
    worker: Option<JoinHandle<()>>,
}

/// A runtime node: M shard workers executing any number of groups.
pub struct Node {
    shards: Vec<Shard>,
    stop: Arc<AtomicBool>,
    next_shard: usize,
    cfg: RuntimeConfig,
    obs: Arc<NodeObs>,
    health: Option<Arc<dyn Fn() -> TransportHealth + Send + Sync>>,
}

impl Node {
    /// Starts the worker pool.
    pub fn new(cfg: RuntimeConfig) -> Node {
        let stop = Arc::new(AtomicBool::new(false));
        let workers = cfg.workers.max(1);
        // One ring per shard worker plus one auxiliary ring for a single
        // non-worker writer (the cluster driver) — the recorder's
        // single-writer-per-ring discipline holds for all of them.
        let obs = Arc::new(NodeObs::new(cfg.obs, workers + 1, cfg.obs_ring_capacity));
        let mut shards = Vec::with_capacity(workers);
        for shard_id in 0..workers {
            let (join_tx, join_rx) = mpsc::channel::<JoinSpec>();
            let metrics = Arc::new(ShardMetrics::default());
            let waker = Arc::new(Waker::new());
            let m = Arc::clone(&metrics);
            let s = Arc::clone(&stop);
            let c = cfg.clone();
            let o = Arc::clone(&obs);
            let w = Arc::clone(&waker);
            let worker = std::thread::Builder::new()
                .name(format!("ensemble-shard-{shard_id}"))
                .spawn(move || worker_loop(shard_id, join_rx, m, s, c, o, w))
                .expect("failed to spawn shard worker OS thread (resource limit?)");
            shards.push(Shard {
                join_tx,
                metrics,
                waker,
                worker: Some(worker),
            });
        }
        Node {
            shards,
            stop,
            next_shard: 0,
            cfg,
            obs,
            health: None,
        }
    }

    /// A node with default tuning.
    pub fn with_defaults() -> Node {
        Node::new(RuntimeConfig::default())
    }

    /// The node's monotonic clock, as stack [`Time`]. This is the
    /// process-global obs clock, so every node in the process (and every
    /// trace event) shares one timeline.
    pub fn now(&self) -> Time {
        Time(now_ns())
    }

    /// The node's observability surface: flight recorder + histograms.
    pub fn obs(&self) -> &NodeObs {
        &self.obs
    }

    /// A clone of the obs handle, for a driver thread that outlives
    /// borrows of the node.
    pub fn obs_arc(&self) -> Arc<NodeObs> {
        Arc::clone(&self.obs)
    }

    /// The ring index reserved for a single auxiliary (non-worker)
    /// recorder writer, e.g. a cluster driver thread. At most one thread
    /// may record into it.
    pub fn aux_obs_shard(&self) -> usize {
        self.shards.len()
    }

    /// Renders current metrics in Prometheus text exposition format.
    pub fn metrics_text(&self) -> String {
        self.obs.metrics_text(&self.stats())
    }

    /// Joins a group: builds the stack for `vs` on the next shard and
    /// connects it to `transport`.
    pub fn join(
        &mut self,
        names: &[&'static str],
        vs: ensemble_event::ViewState,
        kind: EngineKind,
        cfg: LayerConfig,
        transport: Box<dyn Transport>,
    ) -> Result<GroupHandle, RuntimeError> {
        let shard = self.next_shard % self.shards.len();
        self.next_shard += 1;
        let (cmd_tx, cmd_rx) = sync_channel(self.cfg.cmd_capacity);
        let (delivery_tx, delivery_rx) = sync_channel(self.cfg.delivery_capacity);
        let (built_tx, built_rx) = mpsc::channel();
        let ep = vs.my_endpoint();
        let rank = vs.rank;
        let spec = JoinSpec {
            names: names.to_vec(),
            vs,
            kind,
            cfg,
            transport,
            cmd_rx,
            delivery_tx,
            built: built_tx,
        };
        self.shards[shard]
            .join_tx
            .send(spec)
            .map_err(|_| RuntimeError::Closed)?;
        self.shards[shard].waker.wake();
        match built_rx.recv() {
            Ok(Ok(())) => Ok(GroupHandle {
                ep,
                rank,
                cmd_tx,
                delivery_rx,
                metrics: Arc::clone(&self.shards[shard].metrics),
                waker: Arc::clone(&self.shards[shard].waker),
            }),
            Ok(Err(_)) | Err(_) => Err(RuntimeError::Rejected),
        }
    }

    /// Registers the source [`Node::stats`] polls for transport health
    /// (fault totals + partition layout). Typically
    /// `node.set_transport_health_source(move || hub.health())` when the
    /// node runs over a [`crate::transport::LoopbackHub`].
    pub fn set_transport_health_source<F>(&mut self, source: F)
    where
        F: Fn() -> TransportHealth + Send + Sync + 'static,
    {
        self.health = Some(Arc::new(source));
    }

    /// Snapshots every shard's counters.
    pub fn stats(&self) -> RuntimeStats {
        RuntimeStats {
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| s.metrics.snapshot(i))
                .collect(),
            transport: self.health.as_ref().map(|h| h()),
        }
    }

    /// Stops the workers and joins them.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for s in &self.shards {
            s.waker.wake();
        }
        for s in &mut self.shards {
            if let Some(w) = s.worker.take() {
                let _ = w.join();
            }
        }
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One shard's event loop. Owns its groups exclusively.
fn worker_loop(
    shard: usize,
    join_rx: Receiver<JoinSpec>,
    metrics: Arc<ShardMetrics>,
    stop: Arc<AtomicBool>,
    cfg: RuntimeConfig,
    obs: Arc<NodeObs>,
    waker: Arc<Waker>,
) {
    let mut groups: Vec<GroupSlot> = Vec::new();
    let mut wheel: TimerWheel<(usize, usize, u64)> = TimerWheel::new(Time(now_ns()));
    let mut fired: Vec<(Time, (usize, usize, u64))> = Vec::new();
    let mut actions: Vec<Action> = Vec::new();
    let mut events: Vec<CoreEvent> = Vec::new();
    let obs_on = obs.enabled();
    // True when the previous park was ended by a wake: if this iteration
    // then finds no work, that wake was spurious (raced with a drain).
    let mut woke = false;

    while !stop.load(Ordering::Relaxed) {
        let mut busy = false;
        let now = Time(now_ns());

        // 1. Accept new groups.
        while let Ok(mut spec) = join_rx.try_recv() {
            busy = true;
            spec.transport.set_waker(Arc::clone(&waker));
            match GroupCore::new(&spec.names, spec.vs, spec.kind, spec.cfg, now) {
                Ok((mut core, init_actions)) => {
                    core.set_tracing(obs_on);
                    let tags = SlotTags::new(&core, &obs);
                    let gidx = groups.len();
                    groups.push(GroupSlot {
                        core,
                        transport: spec.transport,
                        cmd_rx: spec.cmd_rx,
                        delivery_tx: spec.delivery_tx,
                        delivery_waker: None,
                        tags,
                    });
                    metrics.groups.fetch_add(1, Ordering::Relaxed);
                    let _ = spec.built.send(Ok(()));
                    let mut ctx = RouteCtx {
                        wheel: &mut wheel,
                        metrics: &metrics,
                        obs: &obs,
                        shard,
                        from_timer: false,
                        origin_ns: now.0,
                    };
                    route_actions(&mut groups, gidx, init_actions, &mut ctx);
                }
                Err(e) => {
                    let _ = spec.built.send(Err(format!("{e:?}")));
                }
            }
        }

        for gidx in 0..groups.len() {
            // 2. Application commands.
            for _ in 0..cfg.batch {
                let cmd = match groups[gidx].cmd_rx.try_recv() {
                    Ok(c) => c,
                    Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                };
                metrics.cmd_depth.fetch_sub(1, Ordering::Relaxed);
                busy = true;
                let now = Time(now_ns());
                actions.clear();
                match cmd {
                    Command::Cast(p) => actions = groups[gidx].core.cast(now, &p),
                    Command::Send(dst, p) => actions = groups[gidx].core.send(now, dst, &p),
                    Command::Suspect(ranks) => actions = groups[gidx].core.suspect(now, ranks),
                    Command::Merge(members) => actions = groups[gidx].core.merge(now, members),
                    Command::InstallView(vs) => {
                        actions = groups[gidx].core.install_external_view(now, vs)
                    }
                    Command::Stall(on) => actions = groups[gidx].core.set_stalled(now, on),
                    Command::Leave => actions = groups[gidx].core.leave(now),
                    Command::InstallBypass(reply) => {
                        let r = groups[gidx]
                            .core
                            .install_bypass()
                            .map_err(|e| e.to_string());
                        let _ = reply.send(r);
                    }
                    Command::DropBypass => groups[gidx].core.drop_bypass(),
                    Command::SetDeliveryWaker(w) => groups[gidx].delivery_waker = Some(w),
                }
                let acts = std::mem::take(&mut actions);
                let mut ctx = RouteCtx {
                    wheel: &mut wheel,
                    metrics: &metrics,
                    obs: &obs,
                    shard,
                    from_timer: false,
                    // Outbound packets inherit the command-drain stamp, so
                    // a receiver's cast→deliver latency covers the full
                    // path: sender stack, wire, receiver stack.
                    origin_ns: now.0,
                };
                route_actions(&mut groups, gidx, acts, &mut ctx);
                if obs_on {
                    obs.handler_ns.record(now_ns().saturating_sub(now.0));
                    fold_events(&mut groups[gidx], shard, &obs, &mut events);
                }
            }

            // 3. Transport ingress.
            for _ in 0..cfg.batch {
                let (pkt, stamp) = match groups[gidx].transport.try_recv_stamped() {
                    Ok(Some(p)) => p,
                    Ok(None) => break,
                    Err(_) => break,
                };
                busy = true;
                metrics.msgs_in.fetch_add(1, Ordering::Relaxed);
                let now = Time(now_ns());
                if obs_on {
                    let t = &groups[gidx].tags;
                    obs.recorder.record(
                        shard,
                        &Event {
                            t_ns: now.0,
                            layer: t.wire,
                            kind: EventKind::PacketIn,
                            dir: ensemble_obs::Direction::Up,
                            group: t.group,
                            seqno: 0,
                            ccp: ensemble_obs::CcpFailure::None,
                            aux: pkt.bytes.len() as u64,
                        },
                    );
                }
                let acts = groups[gidx].core.deliver_packet(now, pkt);
                if obs_on {
                    if let Some(origin) = stamp {
                        // One sample per application payload delivered by
                        // this packet (a packet can release stashed ones).
                        let delivered = acts
                            .iter()
                            .filter(|a| {
                                matches!(
                                    a,
                                    Action::Deliver(Delivery::Cast { .. })
                                        | Action::Deliver(Delivery::Send { .. })
                                )
                            })
                            .count();
                        for _ in 0..delivered {
                            obs.cast_to_deliver_ns.record(now.0.saturating_sub(origin));
                        }
                    }
                }
                let mut ctx = RouteCtx {
                    wheel: &mut wheel,
                    metrics: &metrics,
                    obs: &obs,
                    shard,
                    from_timer: false,
                    origin_ns: now.0,
                };
                route_actions(&mut groups, gidx, acts, &mut ctx);
                if obs_on {
                    obs.handler_ns.record(now_ns().saturating_sub(now.0));
                    fold_events(&mut groups[gidx], shard, &obs, &mut events);
                }
            }
        }

        // 4. Timers.
        let now = Time(now_ns());
        fired.clear();
        wheel.advance(now, &mut fired);
        for (deadline, (gidx, layer, generation)) in fired.drain(..) {
            busy = true;
            metrics.timers_fired.fetch_add(1, Ordering::Relaxed);
            if obs_on {
                obs.timer_lateness_ns
                    .record(now.0.saturating_sub(deadline.0));
            }
            let t0 = now_ns();
            let acts = groups[gidx].core.fire_timer(now, layer, generation);
            let mut ctx = RouteCtx {
                wheel: &mut wheel,
                metrics: &metrics,
                obs: &obs,
                shard,
                from_timer: true,
                origin_ns: now.0,
            };
            route_actions(&mut groups, gidx, acts, &mut ctx);
            if obs_on {
                let dt = now_ns().saturating_sub(t0);
                obs.handler_ns.record(dt);
                if let Some(h) = groups[gidx].tags.layer_hists.get(layer) {
                    h.record(dt);
                }
                fold_events(&mut groups[gidx], shard, &obs, &mut events);
            }
        }

        // Fold the groups' counter deltas into the shard metrics.
        for g in &mut groups {
            let (hits, misses) = g.core.take_bypass_delta();
            if hits > 0 {
                metrics.bypass_hits.fetch_add(hits, Ordering::Relaxed);
            }
            if misses > 0 {
                metrics.bypass_misses.fetch_add(misses, Ordering::Relaxed);
            }
            let (batched, flushes) = g.core.take_defer_delta();
            if batched > 0 {
                metrics.defer_batched.fetch_add(batched, Ordering::Relaxed);
            }
            if flushes > 0 {
                metrics.defer_flushes.fetch_add(flushes, Ordering::Relaxed);
            }
            let cost = g.core.take_cost_delta();
            if cost != ensemble_util::Counters::zero() {
                metrics.add_cost(&cost);
            }
            let stalled = g.core.take_stall_drops();
            if stalled > 0 {
                metrics.stall_drops.fetch_add(stalled, Ordering::Relaxed);
            }
            let io = g.transport.take_io_errors();
            if !io.is_zero() {
                metrics
                    .transport_send_errors
                    .fetch_add(io.send, Ordering::Relaxed);
                metrics
                    .transport_recv_errors
                    .fetch_add(io.recv, Ordering::Relaxed);
            }
        }

        // 5. Idle: park until woken (command, join, loopback delivery) or
        // until the timeout that keeps polled transports and timers live.
        if !busy {
            if woke {
                metrics.spurious_wakeups.fetch_add(1, Ordering::Relaxed);
            }
            woke = waker.park(cfg.idle_sleep);
        } else {
            woke = false;
        }
    }
}

/// Drains a group's buffered trace events into the shard's ring.
fn fold_events(slot: &mut GroupSlot, shard: usize, obs: &NodeObs, buf: &mut Vec<CoreEvent>) {
    slot.core.take_events(buf);
    for e in buf.drain(..) {
        obs.recorder.record(
            shard,
            &Event {
                t_ns: e.t.0,
                layer: slot.tags.resolve(e.layer),
                kind: e.kind,
                dir: e.dir,
                group: slot.tags.group,
                seqno: e.seqno,
                ccp: e.ccp,
                aux: e.aux,
            },
        );
    }
}

/// Everything [`route_actions`] needs besides the groups themselves.
struct RouteCtx<'a> {
    wheel: &'a mut TimerWheel<(usize, usize, u64)>,
    metrics: &'a ShardMetrics,
    obs: &'a NodeObs,
    shard: usize,
    from_timer: bool,
    /// Origin stamp handed to the transport with each transmission.
    origin_ns: u64,
}

/// Applies one batch of actions for group `gidx`.
fn route_actions(groups: &mut [GroupSlot], gidx: usize, actions: Vec<Action>, ctx: &mut RouteCtx) {
    let g = &mut groups[gidx];
    for a in actions {
        match a {
            Action::Transmit(pkt) => {
                ctx.metrics.msgs_out.fetch_add(1, Ordering::Relaxed);
                if ctx.from_timer {
                    ctx.metrics.retransmits.fetch_add(1, Ordering::Relaxed);
                }
                if ctx.obs.enabled() {
                    ctx.obs.recorder.record(
                        ctx.shard,
                        &Event {
                            t_ns: now_ns(),
                            layer: g.tags.wire,
                            kind: EventKind::PacketOut,
                            dir: ensemble_obs::Direction::Dn,
                            group: g.tags.group,
                            seqno: 0,
                            ccp: ensemble_obs::CcpFailure::None,
                            aux: pkt.bytes.len() as u64,
                        },
                    );
                }
                let _ = g.transport.send_at(&pkt, ctx.origin_ns);
            }
            Action::Timer {
                layer,
                deadline,
                generation,
            } => {
                ctx.wheel.schedule(deadline, (gidx, layer, generation));
            }
            Action::Deliver(d) => {
                ctx.metrics.delivery_depth.fetch_add(1, Ordering::Relaxed);
                // Blocking: lossless backpressure onto this shard (see
                // GroupHandle docs). A dropped handle discards instead.
                if g.delivery_tx.send(d).is_err() {
                    ctx.metrics.delivery_depth.fetch_sub(1, Ordering::Relaxed);
                } else if let Some(w) = &g.delivery_waker {
                    w.wake();
                }
            }
        }
    }
}
