//! A hierarchical timer wheel for layer timers.
//!
//! The stacks request timers constantly (retransmission, NAK probing,
//! suspicion, stability gossip), so the runtime needs cheap schedule and
//! cheap advance. This is a classic two-level wheel: level 0 holds one
//! tick (~131 µs) per slot across 256 slots (~33 ms horizon), level 1 holds
//! 256-tick spans (~8.6 s horizon), and everything beyond parks in an
//! overflow list cascaded down as the wheel turns. Deadlines are absolute
//! [`Time`] values on the node's monotonic clock.

use ensemble_util::Time;

/// log2 of the tick length in nanoseconds (2^17 ns ≈ 131 µs).
const TICK_SHIFT: u32 = 17;
/// Slots per level (must be a power of two).
const SLOTS: usize = 256;
const MASK: u64 = (SLOTS as u64) - 1;

struct Entry<T> {
    deadline: Time,
    seq: u64,
    item: T,
}

/// A two-level hierarchical timer wheel.
pub struct TimerWheel<T> {
    l0: Vec<Vec<Entry<T>>>,
    l1: Vec<Vec<Entry<T>>>,
    overflow: Vec<Entry<T>>,
    /// The tick the wheel has advanced to (everything before it fired).
    now_tick: u64,
    seq: u64,
    len: usize,
}

impl<T> TimerWheel<T> {
    /// An empty wheel positioned at `now`.
    pub fn new(now: Time) -> Self {
        TimerWheel {
            l0: (0..SLOTS).map(|_| Vec::new()).collect(),
            l1: (0..SLOTS).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            now_tick: now.nanos() >> TICK_SHIFT,
            seq: 0,
            len: 0,
        }
    }

    /// Pending timers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `item` to fire at `deadline` (clamped to the present:
    /// past deadlines fire on the next [`TimerWheel::advance`]).
    pub fn schedule(&mut self, deadline: Time, item: T) {
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        let e = Entry {
            deadline,
            seq,
            item,
        };
        self.insert(e);
    }

    fn insert(&mut self, e: Entry<T>) {
        let tick = (e.deadline.nanos() >> TICK_SHIFT).max(self.now_tick);
        let delta = tick - self.now_tick;
        if delta < SLOTS as u64 {
            self.l0[(tick & MASK) as usize].push(e);
        } else if delta < (SLOTS * SLOTS) as u64 {
            self.l1[((tick >> 8) & MASK) as usize].push(e);
        } else {
            self.overflow.push(e);
        }
    }

    /// Advances the wheel to `now`, appending every due `(deadline, item)`
    /// to `fired` in deadline order (schedule order breaks ties).
    pub fn advance(&mut self, now: Time, fired: &mut Vec<(Time, T)>) {
        let target = now.nanos() >> TICK_SHIFT;
        if target < self.now_tick {
            return;
        }
        let mut due: Vec<Entry<T>> = Vec::new();
        if target - self.now_tick >= (SLOTS * SLOTS) as u64 {
            // The clock jumped past the whole wheel: linear sweep.
            let mut all: Vec<Entry<T>> = Vec::new();
            for slot in self.l0.iter_mut().chain(self.l1.iter_mut()) {
                all.append(slot);
            }
            all.append(&mut self.overflow);
            self.len = 0;
            self.now_tick = target;
            for e in all {
                if e.deadline.nanos() >> TICK_SHIFT <= target {
                    due.push(e);
                } else {
                    self.schedule_cascaded(e);
                }
            }
            due.sort_by_key(|e| (e.deadline, e.seq));
            fired.extend(due.into_iter().map(|e| (e.deadline, e.item)));
            return;
        }
        while self.now_tick <= target {
            let tick = self.now_tick;
            // Entries in this slot may belong to a later wheel round.
            let slot = &mut self.l0[(tick & MASK) as usize];
            let mut i = 0;
            while i < slot.len() {
                if slot[i].deadline.nanos() >> TICK_SHIFT <= tick {
                    let e = slot.swap_remove(i);
                    self.len -= 1;
                    due.push(e);
                } else {
                    i += 1;
                }
            }
            self.now_tick += 1;
            // Crossing into a new level-0 round: cascade the level-1 slot
            // (and the overflow when a whole level-1 round completed).
            if self.now_tick & MASK == 0 {
                let l1_slot = ((self.now_tick >> 8) & MASK) as usize;
                let entries: Vec<Entry<T>> = self.l1[l1_slot].drain(..).collect();
                for e in entries {
                    self.len -= 1;
                    self.schedule_cascaded(e);
                }
                if self.now_tick & (((SLOTS * SLOTS) as u64) - 1) == 0 {
                    let entries: Vec<Entry<T>> = self.overflow.drain(..).collect();
                    for e in entries {
                        self.len -= 1;
                        self.schedule_cascaded(e);
                    }
                }
            }
        }
        due.sort_by_key(|e| (e.deadline, e.seq));
        fired.extend(due.into_iter().map(|e| (e.deadline, e.item)));
    }

    fn schedule_cascaded(&mut self, e: Entry<T>) {
        self.len += 1;
        self.insert(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemble_util::Duration;

    fn t(us: u64) -> Time {
        Time(Duration::from_micros(us).nanos())
    }

    #[test]
    fn near_timer_fires_in_order() {
        let mut w = TimerWheel::new(Time::ZERO);
        w.schedule(t(500), "b");
        w.schedule(t(300), "a");
        w.schedule(t(900), "c");
        let mut fired = Vec::new();
        w.advance(t(600), &mut fired);
        assert_eq!(
            fired.iter().map(|(_, x)| *x).collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        assert_eq!(w.len(), 1);
        w.advance(t(1000), &mut fired);
        assert_eq!(fired.last().unwrap().1, "c");
        assert!(w.is_empty());
    }

    #[test]
    fn level1_timer_cascades_and_fires() {
        let mut w = TimerWheel::new(Time::ZERO);
        // ~100 ms: beyond level 0 (33 ms), inside level 1.
        w.schedule(t(100_000), "far");
        let mut fired = Vec::new();
        w.advance(t(50_000), &mut fired);
        assert!(fired.is_empty());
        w.advance(t(100_200), &mut fired);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].1, "far");
    }

    #[test]
    fn overflow_timer_survives_the_horizon() {
        let mut w = TimerWheel::new(Time::ZERO);
        // ~20 s: beyond level 1 (8.6 s).
        w.schedule(t(20_000_000), "deep");
        let mut fired = Vec::new();
        w.advance(t(10_000_000), &mut fired);
        assert!(fired.is_empty());
        assert_eq!(w.len(), 1);
        w.advance(t(20_100_000), &mut fired);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].1, "deep");
    }

    #[test]
    fn clock_jump_fires_everything_due() {
        let mut w = TimerWheel::new(Time::ZERO);
        w.schedule(t(100), 1u32);
        w.schedule(t(40_000_000), 2u32); // 40 s, overflow
        w.schedule(t(100_000), 3u32);
        let mut fired = Vec::new();
        // Jump 60 s forward in one step.
        w.advance(t(60_000_000), &mut fired);
        assert_eq!(fired.len(), 3);
        assert!(w.is_empty());
        assert_eq!(fired[0].1, 1);
        assert_eq!(fired[1].1, 3);
        assert_eq!(fired[2].1, 2);
    }

    #[test]
    fn past_deadline_fires_immediately() {
        let mut w = TimerWheel::new(t(1000));
        w.schedule(t(10), "late");
        let mut fired = Vec::new();
        w.advance(t(1200), &mut fired);
        assert_eq!(fired.len(), 1);
    }

    #[test]
    fn dense_timers_all_fire_once() {
        let mut w = TimerWheel::new(Time::ZERO);
        for i in 0..1000u64 {
            w.schedule(t(37 * (i + 1)), i);
        }
        let mut fired = Vec::new();
        let mut at = 0u64;
        while !w.is_empty() {
            at += 500;
            w.advance(t(at), &mut fired);
            assert!(at < 60_000, "wheel failed to drain");
        }
        let mut ids: Vec<u64> = fired.iter().map(|(_, i)| *i).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 1000);
    }
}
