//! Node-wide observability: the flight recorder, latency histograms, and
//! the metrics exposition.
//!
//! One [`NodeObs`] per [`crate::Node`], shared with every shard worker.
//! The recorder has one ring per shard (each worker is that ring's only
//! writer); the histograms are concurrent, so workers record while any
//! thread reads. Everything is gated on one `enabled` flag checked before
//! any work on the hot path — a disabled node pays one branch per event.
//!
//! [`NodeObs::metrics_text`] folds a [`RuntimeStats`] snapshot and the
//! node's histograms into Prometheus text exposition. The series names
//! are stable (CI greps for them):
//!
//! * `ensemble_msgs_total{shard,dir}` — packets in/out per shard
//! * `ensemble_bypass_total{shard,result}` — fast-path hits/misses
//! * `ensemble_defer_batched_total{shard}` / `ensemble_defer_flushes_total{shard}`
//!   — certificate-licensed deferred-work batching and drain passes
//! * `ensemble_timers_fired_total{shard}` / `ensemble_retransmits_total{shard}`
//! * `ensemble_queue_depth{shard,queue}` — pending commands / deliveries
//! * `ensemble_stall_drops_total{shard}` — ingress quarantined while stalled
//! * `ensemble_transport_faults_total{kind}` — injected faults (loopback hub)
//! * `ensemble_partition_active` / `ensemble_partition_components` /
//!   `ensemble_partition_dead_links` / `ensemble_partition_pending_steps`
//! * `ensemble_model_cost_total{counter}` — the Table 2(a) vocabulary
//! * `ensemble_cast_to_deliver_ns{quantile}` — full-path latency
//! * `ensemble_handler_ns{quantile}` — per-event handling time
//! * `ensemble_timer_lateness_ns{quantile}` — wheel deadline slip
//! * `ensemble_layer_handler_ns{layer,quantile}` — per-layer spans
//! * `ensemble_trace_events_total` (+ `_overwritten_`, `_contended_`)

use crate::metrics::RuntimeStats;
use ensemble_obs::{Histogram, HistogramVec, Recorder, Registry, TraceEvent};

/// Observability state shared by a node and its shard workers.
pub struct NodeObs {
    enabled: bool,
    /// The flight recorder: one ring per shard.
    pub recorder: Recorder,
    /// Cast→deliver latency: sender-side command drain to receiver-side
    /// delivery enqueue, in obs-clock nanoseconds. Only populated by
    /// transports that carry origin stamps (the loopback hub).
    pub cast_to_deliver_ns: Histogram,
    /// Time spent handling one event (command, packet, or timer),
    /// including routing its actions.
    pub handler_ns: Histogram,
    /// How late the timer wheel fired entries past their deadline.
    pub timer_lateness_ns: Histogram,
    /// Per-layer handler time, keyed by layer name (timer fires here;
    /// the layer harness contributes finer spans in unit tests).
    pub layer_handler_ns: HistogramVec,
    /// View-change latency: first local suspicion to the new view's
    /// installation, recorded by the cluster driver.
    pub view_change_ns: Histogram,
}

impl NodeObs {
    pub(crate) fn new(enabled: bool, shards: usize, ring_capacity: usize) -> NodeObs {
        // A disabled node still owns a (tiny) recorder so the API needs
        // no Option plumbing; nothing is ever recorded into it.
        let capacity = if enabled { ring_capacity } else { 8 };
        NodeObs {
            enabled,
            recorder: Recorder::new(shards.max(1), capacity),
            cast_to_deliver_ns: Histogram::new(),
            handler_ns: Histogram::new(),
            timer_lateness_ns: Histogram::new(),
            layer_handler_ns: HistogramVec::new(),
            view_change_ns: Histogram::new(),
        }
    }

    /// Whether tracing and histogram recording are on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Drains all new trace events, merged across shards by timestamp.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.recorder.drain()
    }

    /// Renders the node's metrics (counters from `stats`, latency from
    /// the node's histograms) in Prometheus text exposition format.
    pub fn metrics_text(&self, stats: &RuntimeStats) -> String {
        let mut reg = Registry::new();
        for s in &stats.shards {
            let shard = s.shard.to_string();
            let l = |k: &'static str| [("shard", shard.as_str()), ("dir", k)];
            reg.set_int("ensemble_msgs_total", &l("in"), s.msgs_in);
            reg.set_int("ensemble_msgs_total", &l("out"), s.msgs_out);
            let b = |k: &'static str| [("shard", shard.as_str()), ("result", k)];
            reg.set_int("ensemble_bypass_total", &b("hit"), s.bypass_hits);
            reg.set_int("ensemble_bypass_total", &b("miss"), s.bypass_misses);
            reg.set_int(
                "ensemble_defer_batched_total",
                &[("shard", shard.as_str())],
                s.defer_batched,
            );
            reg.set_int(
                "ensemble_defer_flushes_total",
                &[("shard", shard.as_str())],
                s.defer_flushes,
            );
            let only = [("shard", shard.as_str())];
            reg.set_int("ensemble_groups", &only, s.groups);
            reg.set_int("ensemble_timers_fired_total", &only, s.timers_fired);
            reg.set_int("ensemble_retransmits_total", &only, s.retransmits);
            let q = |k: &'static str| [("shard", shard.as_str()), ("queue", k)];
            reg.set_int("ensemble_queue_depth", &q("cmd"), s.cmd_depth);
            reg.set_int("ensemble_queue_depth", &q("delivery"), s.delivery_depth);
            reg.set_int("ensemble_spurious_wakeups_total", &only, s.spurious_wakeups);
            let e = |k: &'static str| [("shard", shard.as_str()), ("kind", k)];
            reg.set_int(
                "ensemble_transport_errors_total",
                &e("send"),
                s.transport_send_errors,
            );
            reg.set_int(
                "ensemble_transport_errors_total",
                &e("recv"),
                s.transport_recv_errors,
            );
            reg.set_int("ensemble_stall_drops_total", &only, s.stall_drops);
        }
        if let Some(health) = &stats.transport {
            let f = &health.faults;
            for (kind, v) in [
                ("dropped", f.dropped),
                ("duplicated", f.duplicated),
                ("reordered", f.reordered),
                ("backpressure", f.backpressure_drops),
                ("partition", f.partition_drops),
                ("link", f.link_drops),
            ] {
                reg.set_int("ensemble_transport_faults_total", &[("kind", kind)], v);
            }
            let p = &health.partition;
            reg.set_int("ensemble_partition_active", &[], p.is_partitioned() as u64);
            reg.set_int(
                "ensemble_partition_components",
                &[],
                p.components.len() as u64,
            );
            reg.set_int(
                "ensemble_partition_dead_links",
                &[],
                p.dead_links.len() as u64,
            );
            reg.set_int(
                "ensemble_partition_pending_steps",
                &[],
                p.pending_steps as u64,
            );
        }
        let cost = stats.totals().model_cost;
        for (counter, v) in [
            ("instructions", cost.instructions),
            ("data_refs", cost.data_refs),
            ("allocations", cost.allocations),
            ("dispatches", cost.dispatches),
            ("branches", cost.branches),
        ] {
            reg.set_int("ensemble_model_cost_total", &[("counter", counter)], v);
        }
        reg.histogram(
            "ensemble_cast_to_deliver_ns",
            &[],
            &self.cast_to_deliver_ns.summary(),
        );
        reg.histogram("ensemble_handler_ns", &[], &self.handler_ns.summary());
        reg.histogram(
            "ensemble_timer_lateness_ns",
            &[],
            &self.timer_lateness_ns.summary(),
        );
        for (layer, summary) in self.layer_handler_ns.summaries() {
            reg.histogram("ensemble_layer_handler_ns", &[("layer", layer)], &summary);
        }
        reg.histogram(
            "ensemble_view_change_ns",
            &[],
            &self.view_change_ns.summary(),
        );
        reg.set_int("ensemble_trace_events_total", &[], self.recorder.recorded());
        reg.set_int(
            "ensemble_trace_overwritten_total",
            &[],
            self.recorder.overwritten(),
        );
        reg.set_int(
            "ensemble_trace_contended_total",
            &[],
            self.recorder.contended(),
        );
        reg.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ShardSnapshot;

    #[test]
    fn exposition_contains_every_required_series() {
        let obs = NodeObs::new(true, 2, 64);
        obs.cast_to_deliver_ns.record(1500);
        obs.layer_handler_ns.get("mnak").record(300);
        let stats = RuntimeStats {
            shards: vec![ShardSnapshot {
                shard: 0,
                msgs_in: 1,
                stall_drops: 3,
                defer_batched: 12,
                defer_flushes: 2,
                ..ShardSnapshot::default()
            }],
            transport: None,
        };
        let text = obs.metrics_text(&stats);
        for series in [
            "ensemble_msgs_total{shard=\"0\",dir=\"in\"} 1",
            "ensemble_bypass_total{shard=\"0\",result=\"hit\"}",
            "ensemble_defer_batched_total{shard=\"0\"} 12",
            "ensemble_defer_flushes_total{shard=\"0\"} 2",
            "ensemble_model_cost_total{counter=\"data_refs\"}",
            "ensemble_model_cost_total{counter=\"branches\"}",
            "ensemble_cast_to_deliver_ns{quantile=\"0.99\"}",
            "ensemble_cast_to_deliver_ns_count 1",
            "ensemble_timer_lateness_ns",
            "ensemble_layer_handler_ns{layer=\"mnak\",quantile=\"0.5\"}",
            "ensemble_view_change_ns",
            "ensemble_spurious_wakeups_total{shard=\"0\"}",
            "ensemble_transport_errors_total{shard=\"0\",kind=\"send\"}",
            "ensemble_transport_errors_total{shard=\"0\",kind=\"recv\"}",
            "ensemble_stall_drops_total{shard=\"0\"} 3",
            "ensemble_trace_events_total",
        ] {
            assert!(text.contains(series), "missing {series} in:\n{text}");
        }
        assert!(
            !text.contains("ensemble_transport_faults_total"),
            "fault series need a registered health source"
        );
    }

    #[test]
    fn exposition_renders_transport_health_when_present() {
        use crate::metrics::TransportHealth;
        use crate::transport::{FaultCounts, PartitionStatus};
        let obs = NodeObs::new(true, 1, 64);
        let stats = RuntimeStats {
            shards: vec![],
            transport: Some(TransportHealth {
                faults: FaultCounts {
                    dropped: 2,
                    partition_drops: 5,
                    link_drops: 1,
                    ..FaultCounts::default()
                },
                partition: PartitionStatus {
                    components: vec![vec![0, 1], vec![2]],
                    dead_links: vec![(3, 4)],
                    pending_steps: 7,
                },
            }),
        };
        let text = obs.metrics_text(&stats);
        for series in [
            "ensemble_transport_faults_total{kind=\"dropped\"} 2",
            "ensemble_transport_faults_total{kind=\"partition\"} 5",
            "ensemble_transport_faults_total{kind=\"link\"} 1",
            "ensemble_partition_active 1",
            "ensemble_partition_components 2",
            "ensemble_partition_dead_links 1",
            "ensemble_partition_pending_steps 7",
        ] {
            assert!(text.contains(series), "missing {series} in:\n{text}");
        }
    }

    #[test]
    fn disabled_obs_still_renders() {
        let obs = NodeObs::new(false, 1, 8192);
        assert!(!obs.enabled());
        let text = obs.metrics_text(&RuntimeStats::default());
        assert!(text.contains("ensemble_trace_events_total 0"));
    }
}
