//! End-to-end runtime integration over the loopback hub.
//!
//! The headline test drives 10 000 casts from one node to another through
//! the 4-layer stack while the hub drops, duplicates, and reorders
//! datagrams, and asserts the application-level guarantees survive: FIFO
//! order per origin, no duplication, no loss. A second test runs a clean
//! hub with the MACH bypass installed on both members and checks the fast
//! path actually carries the traffic.

use ensemble_event::ViewState;
use ensemble_layers::{LayerConfig, STACK_4};
use ensemble_runtime::{Delivery, FaultPlan, LoopbackHub, Node, RuntimeConfig};
use ensemble_stack::EngineKind;
use ensemble_util::Rank;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CASTS: usize = 10_000;
/// Data payloads are 4-byte little-endian sequence numbers; flush markers
/// sent during the drain phase are 8 bytes and ignored by the checker.
const MARKER: [u8; 8] = [0xFF; 8];

#[test]
fn ten_thousand_casts_survive_drop_and_reorder() {
    let hub = LoopbackHub::with_faults(
        0x000E_2E01,
        FaultPlan {
            drop_p: 0.02,
            dup_p: 0.02,
            reorder_p: 0.05,
        },
    );
    let vs = ViewState::initial(2);

    // Two runtime nodes (two worker pools), one group each.
    let mut node_a = Node::new(RuntimeConfig::default());
    let mut node_b = Node::new(RuntimeConfig::default());
    let a = node_a
        .join(
            STACK_4,
            vs.for_rank(Rank(0)),
            EngineKind::Imp,
            LayerConfig::fast(),
            Box::new(hub.attach(vs.members[0])),
        )
        .expect("join a");
    let b = node_b
        .join(
            STACK_4,
            vs.for_rank(Rank(1)),
            EngineKind::Func,
            LayerConfig::fast(),
            Box::new(hub.attach(vs.members[1])),
        )
        .expect("join b");

    // Receiver thread: collect data sequence numbers as they deliver.
    let got = Arc::new(AtomicUsize::new(0));
    let got_clone = Arc::clone(&got);
    let receiver = std::thread::spawn(move || {
        let mut seqs: Vec<u32> = Vec::with_capacity(CASTS);
        let deadline = Instant::now() + Duration::from_secs(120);
        while seqs.len() < CASTS && Instant::now() < deadline {
            match b.recv_timeout(Duration::from_millis(200)) {
                Some(Delivery::Cast { origin: 0, bytes }) if bytes.len() == 4 => {
                    seqs.push(u32::from_le_bytes(bytes.try_into().unwrap()));
                    got_clone.store(seqs.len(), Ordering::Relaxed);
                }
                Some(_) | None => {}
            }
        }
        seqs
    });

    for i in 0..CASTS as u32 {
        a.cast(&i.to_le_bytes()).expect("cast");
    }

    // Drain phase: stop injecting faults and nudge the stack with marker
    // casts — mnak's NAK detection needs later traffic to notice a
    // dropped tail.
    hub.set_plan(FaultPlan::clean());
    let drain_deadline = Instant::now() + Duration::from_secs(110);
    while got.load(Ordering::Relaxed) < CASTS && Instant::now() < drain_deadline {
        a.cast(&MARKER).expect("flush cast");
        std::thread::sleep(Duration::from_millis(20));
    }

    let seqs = receiver.join().expect("receiver thread");
    assert_eq!(
        seqs.len(),
        CASTS,
        "all casts must deliver (got {} of {CASTS}; injected faults: {:?})",
        seqs.len(),
        hub.fault_counts(),
    );
    // FIFO and no duplication in one shot: the delivered sequence must be
    // exactly 0..CASTS in order.
    for (i, s) in seqs.iter().enumerate() {
        assert_eq!(*s, i as u32, "FIFO/no-dup violated at position {i}");
    }

    // The faults really happened, and the stacks really recovered:
    // timer-driven NAK/retransmission traffic must have flowed.
    let injected = hub.fault_counts();
    assert!(injected.dropped > 0, "plan must actually drop");
    assert!(injected.reordered > 0, "plan must actually reorder");
    let totals_a = node_a.stats().totals();
    let totals_b = node_b.stats().totals();
    assert!(totals_a.msgs_out as usize >= CASTS);
    assert!(totals_b.msgs_in > 0);
    assert!(
        totals_a.retransmits + totals_b.retransmits > 0,
        "recovery must involve timer-driven traffic"
    );

    node_a.shutdown();
    node_b.shutdown();
}

#[test]
fn bypass_carries_clean_loopback_traffic() {
    let hub = LoopbackHub::new(0x000E_2E02);
    let vs = ViewState::initial(2);

    // One node, two groups: exercises two shards of one worker pool.
    let mut node = Node::new(RuntimeConfig::default());
    let a = node
        .join(
            STACK_4,
            vs.for_rank(Rank(0)),
            EngineKind::Imp,
            LayerConfig::default(),
            Box::new(hub.attach(vs.members[0])),
        )
        .expect("join a");
    let b = node
        .join(
            STACK_4,
            vs.for_rank(Rank(1)),
            EngineKind::Imp,
            LayerConfig::default(),
            Box::new(hub.attach(vs.members[1])),
        )
        .expect("join b");
    a.install_bypass().expect("bypass a");
    b.install_bypass().expect("bypass b");

    const N: u32 = 1000;
    let receiver = std::thread::spawn(move || {
        let mut seqs = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(30);
        while seqs.len() < N as usize && Instant::now() < deadline {
            if let Some(Delivery::Cast { origin: 0, bytes }) =
                b.recv_timeout(Duration::from_millis(100))
            {
                seqs.push(u32::from_le_bytes(bytes.try_into().unwrap()));
            }
        }
        seqs
    });
    for i in 0..N {
        a.cast(&i.to_le_bytes()).expect("cast");
    }
    let seqs = receiver.join().expect("receiver thread");
    assert_eq!(seqs, (0..N).collect::<Vec<_>>(), "FIFO over the fast path");

    let totals = node.stats().totals();
    assert!(
        totals.bypass_hits >= u64::from(N),
        "the bypass must carry the traffic (hits: {})",
        totals.bypass_hits
    );
    assert_eq!(
        totals.bypass_misses, 0,
        "clean in-order traffic stays on the fast path"
    );
    assert!(totals.model_cost.instructions > 0, "cost counters flow");
    node.shutdown();
}

#[test]
fn point_to_point_sends_are_fifo_both_directions() {
    let hub = LoopbackHub::with_faults(0x000E_2E03, FaultPlan::lossy(0.01, 0.01, 0.03));
    let vs = ViewState::initial(2);
    let mut node = Node::new(RuntimeConfig::default());
    let a = node
        .join(
            STACK_4,
            vs.for_rank(Rank(0)),
            EngineKind::Imp,
            LayerConfig::fast(),
            Box::new(hub.attach(vs.members[0])),
        )
        .expect("join a");
    let b = node
        .join(
            STACK_4,
            vs.for_rank(Rank(1)),
            EngineKind::Imp,
            LayerConfig::fast(),
            Box::new(hub.attach(vs.members[1])),
        )
        .expect("join b");

    const N: u32 = 500;
    let collect = |h: &ensemble_runtime::GroupHandle, want: usize| {
        let mut seqs = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(60);
        while seqs.len() < want && Instant::now() < deadline {
            if let Some(Delivery::Send { bytes, .. }) = h.recv_timeout(Duration::from_millis(100)) {
                if bytes.len() == 4 {
                    seqs.push(u32::from_le_bytes(bytes.try_into().unwrap()));
                }
            }
        }
        seqs
    };
    for i in 0..N {
        a.send(Rank(1), &i.to_le_bytes()).expect("send a->b");
        b.send(Rank(0), &(1000 + i).to_le_bytes())
            .expect("send b->a");
    }
    hub.set_plan(FaultPlan::clean());
    // pt2pt recovery is sender-driven (retransmit-until-acked on a
    // timer), so a dropped tail regenerates without extra traffic.
    let at_b = std::thread::spawn(move || {
        let s = collect(&b, N as usize);
        (b, s)
    });
    let (b, seqs_b) = at_b.join().expect("collector b");
    let seqs_a = collect(&a, N as usize);
    assert_eq!(seqs_b, (0..N).collect::<Vec<_>>(), "a->b FIFO");
    assert_eq!(seqs_a, (1000..1000 + N).collect::<Vec<_>>(), "b->a FIFO");
    drop(b);
    node.shutdown();
}
