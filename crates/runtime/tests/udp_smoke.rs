//! UDP smoke test: the runtime over real sockets on 127.0.0.1.
//!
//! Kept deliberately small — the loopback hub carries the heavy fault
//! matrix; this checks the socket driver end-to-end. If the environment
//! denies loopback UDP (sealed sandboxes do), the test skips with an
//! explicit message instead of failing.

use ensemble_event::ViewState;
use ensemble_layers::{LayerConfig, STACK_4};
use ensemble_runtime::{Delivery, Node, RuntimeConfig, UdpTransport};
use ensemble_stack::EngineKind;
use ensemble_util::Rank;
use std::time::{Duration, Instant};

#[test]
fn udp_two_nodes_exchange_ordered_casts() {
    let vs = ViewState::initial(2);
    let mut ta = match UdpTransport::bind(vs.members[0]) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("SKIPPED: cannot bind UDP on 127.0.0.1: {e}");
            return;
        }
    };
    let mut tb = match UdpTransport::bind(vs.members[1]) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("SKIPPED: cannot bind second UDP socket: {e}");
            return;
        }
    };
    let (addr_a, addr_b) = (ta.local_addr().unwrap(), tb.local_addr().unwrap());
    ta.add_peer(vs.members[1], addr_b);
    tb.add_peer(vs.members[0], addr_a);

    let mut node_a = Node::new(RuntimeConfig::default());
    let mut node_b = Node::new(RuntimeConfig::default());
    let a = node_a
        .join(
            STACK_4,
            vs.for_rank(Rank(0)),
            EngineKind::Imp,
            LayerConfig::fast(),
            Box::new(ta),
        )
        .expect("join a");
    let b = node_b
        .join(
            STACK_4,
            vs.for_rank(Rank(1)),
            EngineKind::Imp,
            LayerConfig::fast(),
            Box::new(tb),
        )
        .expect("join b");

    const N: u32 = 500;
    let receiver = std::thread::spawn(move || {
        let mut seqs = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(60);
        while seqs.len() < N as usize && Instant::now() < deadline {
            if let Some(Delivery::Cast { origin: 0, bytes }) =
                b.recv_timeout(Duration::from_millis(100))
            {
                if bytes.len() == 4 {
                    seqs.push(u32::from_le_bytes(bytes.try_into().unwrap()));
                }
            }
        }
        seqs
    });
    for i in 0..N {
        a.cast(&i.to_le_bytes()).expect("cast over UDP");
    }
    // Keep nudging until delivered: UDP may shed bursts into the kernel
    // buffer; mnak's NAKs need follow-on traffic to spot a dropped tail.
    let seqs = loop {
        if receiver.is_finished() {
            break receiver.join().expect("receiver thread");
        }
        a.cast(&[0xFF; 8]).expect("flush cast");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(
        seqs,
        (0..N).collect::<Vec<_>>(),
        "UDP casts must deliver FIFO with no loss or duplication"
    );
    assert!(node_b.stats().totals().msgs_in > 0);
    node_a.shutdown();
    node_b.shutdown();
}
