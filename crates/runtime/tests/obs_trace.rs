//! Observability integration: the flight recorder, per-layer attribution,
//! and cast→deliver latency over a live two-member group.

use ensemble_event::ViewState;
use ensemble_layers::{LayerConfig, STACK_4};
use ensemble_obs::EventKind;
use ensemble_runtime::{Delivery, LoopbackHub, Node, RuntimeConfig};
use ensemble_stack::EngineKind;
use ensemble_util::Rank;
use std::time::{Duration, Instant};

const CASTS: u32 = 700;

fn collect_casts(h: &ensemble_runtime::GroupHandle, want: usize) -> usize {
    let mut got = 0;
    let deadline = Instant::now() + Duration::from_secs(60);
    while got < want && Instant::now() < deadline {
        if let Some(Delivery::Cast { .. }) = h.recv_timeout(Duration::from_millis(100)) {
            got += 1;
        }
    }
    got
}

#[test]
fn flight_recorder_traces_a_live_group_end_to_end() {
    let hub = LoopbackHub::new(0x0B50_0001);
    let vs = ViewState::initial(2);
    let mut node = Node::new(RuntimeConfig::default());
    let a = node
        .join(
            STACK_4,
            vs.for_rank(Rank(0)),
            EngineKind::Imp,
            LayerConfig::fast(),
            Box::new(hub.attach(vs.members[0])),
        )
        .expect("join a");
    let b = node
        .join(
            STACK_4,
            vs.for_rank(Rank(1)),
            EngineKind::Imp,
            LayerConfig::fast(),
            Box::new(hub.attach(vs.members[1])),
        )
        .expect("join b");

    // Traffic both ways so both shards write their rings.
    for i in 0..CASTS {
        a.cast(&i.to_le_bytes()).expect("cast a");
        b.cast(&i.to_le_bytes()).expect("cast b");
    }
    assert_eq!(collect_casts(&b, CASTS as usize), CASTS as usize);
    assert_eq!(collect_casts(&a, CASTS as usize), CASTS as usize);

    // ≥1000 structured events must have been recorded (2×700 casts alone
    // produce cast + packet_out + packet_in + deliver each), and the
    // drain must resolve every layer tag to a known name.
    let events = node.obs().drain();
    assert!(
        events.len() >= 1000,
        "expected ≥1000 trace events, drained {} (recorded {}, overwritten {})",
        events.len(),
        node.obs().recorder.recorded(),
        node.obs().recorder.overwritten(),
    );
    let known = ["app", "bypass", "engine", "wire"];
    for e in &events {
        assert!(
            known.contains(&e.layer) || STACK_4.contains(&e.layer),
            "event attributed to unknown layer {:?}",
            e.layer
        );
    }
    let kinds = |k: EventKind| events.iter().filter(|e| e.kind == k).count();
    assert!(kinds(EventKind::Cast) > 0, "app casts traced");
    assert!(kinds(EventKind::PacketOut) > 0, "wire egress traced");
    assert!(kinds(EventKind::PacketIn) > 0, "wire ingress traced");
    assert!(kinds(EventKind::Deliver) > 0, "deliveries traced");
    // Timer fires carry real layer names (per-layer attribution).
    let timer_layers: Vec<&str> = events
        .iter()
        .filter(|e| e.kind == EventKind::TimerFire)
        .map(|e| e.layer)
        .collect();
    assert!(!timer_layers.is_empty(), "layer timers must have fired");
    for l in &timer_layers {
        assert!(STACK_4.contains(l), "timer attributed to a stack layer");
    }

    // Latency flowed: the loopback hub carries origin stamps, so the full
    // cast→deliver path is measured and its tail is nonzero.
    let lat = node.obs().cast_to_deliver_ns.summary();
    assert!(
        lat.count >= u64::from(2 * CASTS),
        "each delivered cast contributes a latency sample (got {})",
        lat.count
    );
    assert!(lat.p99 > 0, "cast→deliver p99 must be nonzero");
    assert!(lat.p50 <= lat.p99 && lat.p99 <= lat.max);

    // The exposition folds it all together.
    let text = node.metrics_text();
    for series in [
        "ensemble_msgs_total",
        "ensemble_bypass_total",
        "ensemble_model_cost_total{counter=\"dispatches\"}",
        "ensemble_cast_to_deliver_ns{quantile=\"0.99\"}",
        "ensemble_layer_handler_ns",
        "ensemble_trace_events_total",
    ] {
        assert!(text.contains(series), "missing {series} in:\n{text}");
    }
    // data_refs are plumbed (one per marshal/unmarshal at minimum).
    let totals = node.stats().totals();
    assert!(totals.model_cost.data_refs > 0, "data_refs must be counted");

    node.shutdown();
}

#[test]
fn bypass_events_mark_the_fast_path_and_its_edges() {
    let hub = LoopbackHub::new(0x0B50_0002);
    let vs = ViewState::initial(2);
    let mut node = Node::new(RuntimeConfig::default());
    let a = node
        .join(
            STACK_4,
            vs.for_rank(Rank(0)),
            EngineKind::Imp,
            LayerConfig::default(),
            Box::new(hub.attach(vs.members[0])),
        )
        .expect("join a");
    let b = node
        .join(
            STACK_4,
            vs.for_rank(Rank(1)),
            EngineKind::Imp,
            LayerConfig::default(),
            Box::new(hub.attach(vs.members[1])),
        )
        .expect("join b");
    a.install_bypass().expect("bypass a");
    b.install_bypass().expect("bypass b");

    for i in 0..200u32 {
        a.cast(&i.to_le_bytes()).expect("cast");
    }
    assert_eq!(collect_casts(&b, 200), 200);

    // The 200th delivery reaches the app channel slightly before the
    // worker finishes writing its trace event; re-drain until the ring
    // catches up rather than racing it.
    let mut events = node.obs().drain();
    let count_hits = |evs: &[ensemble_obs::TraceEvent]| {
        evs.iter()
            .filter(|e| e.kind == EventKind::BypassHit)
            .count()
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    while count_hits(&events) < 400 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
        events.extend(node.obs().drain());
    }
    let hits = count_hits(&events);
    assert!(
        hits >= 400,
        "sender + receiver fast paths both trace hits (got {hits})"
    );
    assert!(
        events
            .iter()
            .filter(|e| e.kind == EventKind::BypassHit)
            .all(|e| e.layer == "bypass"),
        "hits attributed to the bypass pseudo-layer"
    );
    // Branch/data-ref model costs flow from the compiled programs.
    let cost = node.stats().totals().model_cost;
    assert!(cost.branches > 0, "CCP conjuncts counted as branches");
    assert!(cost.data_refs > 0, "wire/update ops counted as data refs");
    node.shutdown();
}

#[test]
fn disabled_obs_records_nothing() {
    let hub = LoopbackHub::new(0x0B50_0003);
    let vs = ViewState::initial(2);
    let mut node = Node::new(RuntimeConfig {
        obs: false,
        ..RuntimeConfig::default()
    });
    let a = node
        .join(
            STACK_4,
            vs.for_rank(Rank(0)),
            EngineKind::Imp,
            LayerConfig::fast(),
            Box::new(hub.attach(vs.members[0])),
        )
        .expect("join a");
    let b = node
        .join(
            STACK_4,
            vs.for_rank(Rank(1)),
            EngineKind::Imp,
            LayerConfig::fast(),
            Box::new(hub.attach(vs.members[1])),
        )
        .expect("join b");
    for i in 0..50u32 {
        a.cast(&i.to_le_bytes()).expect("cast");
    }
    assert_eq!(collect_casts(&b, 50), 50);
    assert!(node.obs().drain().is_empty(), "tracing off records nothing");
    assert_eq!(node.obs().cast_to_deliver_ns.count(), 0);
    // The exposition still renders (counters live in ShardMetrics).
    assert!(node.metrics_text().contains("ensemble_msgs_total"));
    node.shutdown();
}
