//! IR models of the benchmarked protocol layers.
//!
//! These terms are the reproduction's analogue of importing Ensemble's
//! OCaml into Nuprl (§4.1.2): each layer contributes one handler term per
//! fundamental case (down/up × cast/send), a state initializer, its
//! common-case predicates (CCPs), and the set of state fields that are
//! *constant for a given stack instance* (rank, view stamp, windows…) —
//! exactly the values the dynamic optimization phase folds away.
//!
//! # Conventions
//!
//! A handler is a term whose free variables are `state` plus, per case:
//! `msg` (down-cast), `origin`/`msg` (up-cast), `dst`/`msg` (down-send),
//! `origin`/`msg` (up-send). Messages are `Msg(hdrs, payload, len)` where
//! `hdrs` is a cons-list of header constructors, `payload` is opaque, and
//! `len` is the payload length. A handler returns
//!
//! ```text
//! Out(state', events)
//! ```
//!
//! where `events` is a cons-list of `UpCast(origin, msg)`,
//! `UpSend(origin, msg)`, `DnCast(msg)`, `DnSend(dst, msg)`, or
//! `Defer(work)` — the last marking *non-critical* processing (buffering,
//! acknowledgment, stability recomputation) that the synthesized bypass
//! moves off the critical path (§4 optimization 3). Branches the CCPs
//! exclude call `slow(state, …)`, the model's stand-in for falling back
//! to the full stack.

use crate::term::{
    add, app, con, eq, getf, if_, let_, list, match_, pat, prim, setf, var, FnDefs, Prim, Term,
};
use crate::val::Val;

/// Stack-instance parameters the models are instantiated with.
#[derive(Clone, Copy, Debug)]
pub struct ModelCtx {
    /// Number of members in the view.
    pub nmembers: i64,
    /// This process's rank.
    pub rank: i64,
    /// The view's logical time (the `bottom` stamp).
    pub view_ltime: i64,
    /// `pt2ptw` window.
    pub pt2pt_window: i64,
    /// `mflow` window.
    pub mflow_window: i64,
    /// `frag` maximum fragment size.
    pub frag_max: i64,
    /// `collect` gossip threshold.
    pub collect_every: i64,
}

impl ModelCtx {
    /// A context matching `LayerConfig::default()` for `n` members.
    pub fn new(nmembers: i64, rank: i64) -> Self {
        ModelCtx {
            nmembers,
            rank,
            view_ltime: 0,
            pt2pt_window: 64,
            mflow_window: 64,
            frag_max: 1400,
            collect_every: 16,
        }
    }
}

/// One layer's model: handlers, CCPs, state.
pub struct LayerModel {
    /// Registry name.
    pub name: &'static str,
    /// Handler for application casts travelling down.
    pub dn_cast: Term,
    /// Handler for casts arriving from below.
    pub up_cast: Term,
    /// Handler for sends travelling down.
    pub dn_send: Term,
    /// Handler for sends arriving from below.
    pub up_send: Term,
    /// CCP conjuncts per case (same order as the handlers above).
    pub ccp_dn_cast: Vec<Term>,
    /// CCP conjuncts for up-casts.
    pub ccp_up_cast: Vec<Term>,
    /// CCP conjuncts for down-sends.
    pub ccp_dn_send: Vec<Term>,
    /// CCP conjuncts for up-sends.
    pub ccp_up_send: Vec<Term>,
    /// Initial state for a stack instance.
    pub init: Val,
    /// State fields that are constant for the instance (folded by the
    /// dynamic optimization).
    pub const_fields: Vec<&'static str>,
    /// The deferred-work items this layer can emit (`Defer(Tag(args))`),
    /// with their effect on the layer state.
    pub defer_specs: Vec<DeferSpec>,
}

/// A named deferred-work item a layer can emit as `Defer(Tag(args))`:
/// its parameter names and a state-transformer body modeling the work's
/// effect on the layer state (the buffering / acknowledgment /
/// recomputation that happens off the critical path). The body's free
/// variables are `state` plus the parameters, in constructor-argument
/// order. The Defer-commutativity dataflow pass classifies the body's
/// write footprint (`ir::visit::state_footprint`) to decide whether a
/// stack's deferred work may be drained in batches.
pub struct DeferSpec {
    /// Constructor tag carried inside the `Defer` event.
    pub tag: &'static str,
    /// Parameter names, in constructor-argument order.
    pub params: Vec<&'static str>,
    /// The work's effect: a term over `state` + params returning the
    /// updated state record.
    pub body: Term,
}

/// The four fundamental cases (§4.1.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Case {
    /// Point-to-point send, going down.
    DnSend,
    /// Broadcast, going down.
    DnCast,
    /// Point-to-point receive, going up.
    UpSend,
    /// Broadcast receive, going up.
    UpCast,
}

impl Case {
    /// All four cases.
    pub const ALL: [Case; 4] = [Case::DnCast, Case::UpCast, Case::DnSend, Case::UpSend];
}

impl LayerModel {
    /// The handler term for `case`.
    pub fn handler(&self, case: Case) -> &Term {
        match case {
            Case::DnCast => &self.dn_cast,
            Case::UpCast => &self.up_cast,
            Case::DnSend => &self.dn_send,
            Case::UpSend => &self.up_send,
        }
    }

    /// The CCP conjuncts for `case`.
    pub fn ccp(&self, case: Case) -> &[Term] {
        match case {
            Case::DnCast => &self.ccp_dn_cast,
            Case::UpCast => &self.ccp_up_cast,
            Case::DnSend => &self.ccp_dn_send,
            Case::UpSend => &self.ccp_up_send,
        }
    }
}

/// Shared helper functions (the "few specific Ensemble modules" the
/// automated strategy is allowed to inline, §4.1.2).
pub fn shared_defs() -> FnDefs {
    let mut d = FnDefs::new();
    // Message accessors.
    d.define(
        "hdrs",
        &["m"],
        match_(var("m"), vec![(pat("Msg", &["h", "p", "l"]), var("h"))]),
    );
    d.define(
        "payload",
        &["m"],
        match_(var("m"), vec![(pat("Msg", &["h", "p", "l"]), var("p"))]),
    );
    d.define(
        "paylen",
        &["m"],
        match_(var("m"), vec![(pat("Msg", &["h", "p", "l"]), var("l"))]),
    );
    // Push a header.
    d.define(
        "push",
        &["m", "hd"],
        match_(
            var("m"),
            vec![(
                pat("Msg", &["h", "p", "l"]),
                con(
                    "Msg",
                    vec![con("cons", vec![var("hd"), var("h")]), var("p"), var("l")],
                ),
            )],
        ),
    );
    // Pop the outermost header, returning the inner message.
    d.define(
        "pop",
        &["m"],
        match_(
            var("m"),
            vec![(
                pat("Msg", &["h", "p", "l"]),
                match_(
                    var("h"),
                    vec![(
                        pat("cons", &["h0", "hrest"]),
                        con("Msg", vec![var("hrest"), var("p"), var("l")]),
                    )],
                ),
            )],
        ),
    );
    // The outermost header.
    d.define(
        "top_hdr",
        &["m"],
        match_(
            app("hdrs", vec![var("m")]),
            vec![(pat("cons", &["h0", "hrest"]), var("h0"))],
        ),
    );
    // Single-event output.
    d.define(
        "out1",
        &["s", "e"],
        con("Out", vec![var("s"), list(vec![var("e")])]),
    );
    // Two-event output.
    d.define(
        "out2",
        &["s", "e1", "e2"],
        con("Out", vec![var("s"), list(vec![var("e1"), var("e2")])]),
    );
    // Fallback to the full stack (never taken under the CCP).
    d.define(
        "slow",
        &["s", "tag"],
        con("Slow", vec![var("s"), var("tag")]),
    );
    d
}

fn out1(s: Term, e: Term) -> Term {
    app("out1", vec![s, e])
}

fn out2(s: Term, e1: Term, e2: Term) -> Term {
    app("out2", vec![s, e1, e2])
}

fn slow(s: Term, tag: &str) -> Term {
    app("slow", vec![s, con(tag, vec![])])
}

fn push(m: Term, hd: Term) -> Term {
    app("push", vec![m, hd])
}

fn pop(m: Term) -> Term {
    app("pop", vec![m])
}

fn dn_cast_ev(m: Term) -> Term {
    con("DnCast", vec![m])
}

fn dn_send_ev(dst: Term, m: Term) -> Term {
    con("DnSend", vec![dst, m])
}

fn up_cast_ev(o: Term, m: Term) -> Term {
    con("UpCast", vec![o, m])
}

fn up_send_ev(o: Term, m: Term) -> Term {
    con("UpSend", vec![o, m])
}

fn defer(work: Term) -> Term {
    con("Defer", vec![work])
}

fn vget(v: Term, i: Term) -> Term {
    prim(Prim::VecGet, vec![v, i])
}

fn vset(v: Term, i: Term, x: Term) -> Term {
    prim(Prim::VecSet, vec![v, i, x])
}

fn lt(a: Term, b: Term) -> Term {
    prim(Prim::Lt, vec![a, b])
}

fn state() -> Term {
    var("state")
}

fn msg() -> Term {
    var("msg")
}

/// A pass-through handler that pushes `NoHdr` down.
fn pass_dn_cast() -> Term {
    out1(state(), dn_cast_ev(push(msg(), con("NoHdr", vec![]))))
}

fn pass_dn_send() -> Term {
    out1(
        state(),
        dn_send_ev(var("dst"), push(msg(), con("NoHdr", vec![]))),
    )
}

/// A pass-through handler that pops the outermost header going up.
fn pass_up_cast() -> Term {
    out1(state(), up_cast_ev(var("origin"), pop(msg())))
}

fn pass_up_send() -> Term {
    out1(state(), up_send_ev(var("origin"), pop(msg())))
}

fn zero_vec(n: i64) -> Val {
    Val::Vector(vec![Val::Int(0); n as usize])
}

/// Builds the model for `name`, or `None` if the layer has no model.
pub fn model(name: &str, ctx: &ModelCtx) -> Option<LayerModel> {
    Some(match name {
        "top" => LayerModel {
            name: "top",
            // `top` adds no header in either direction.
            dn_cast: out1(state(), dn_cast_ev(msg())),
            up_cast: out1(state(), up_cast_ev(var("origin"), msg())),
            dn_send: out1(state(), dn_send_ev(var("dst"), msg())),
            up_send: out1(state(), up_send_ev(var("origin"), msg())),
            ccp_dn_cast: vec![],
            ccp_up_cast: vec![],
            ccp_dn_send: vec![],
            ccp_up_send: vec![],
            init: Val::record(&[]),
            const_fields: vec![],
            defer_specs: vec![],
        },
        "partial_appl" => LayerModel {
            name: "partial_appl",
            dn_cast: if_(
                eq(getf(state(), "blocked"), Term::Bool(false)),
                pass_dn_cast(),
                slow(state(), "QueueBlockedCast"),
            ),
            up_cast: pass_up_cast(),
            dn_send: if_(
                eq(getf(state(), "blocked"), Term::Bool(false)),
                pass_dn_send(),
                slow(state(), "QueueBlockedSend"),
            ),
            up_send: pass_up_send(),
            ccp_dn_cast: vec![eq(getf(state(), "blocked"), Term::Bool(false))],
            ccp_up_cast: vec![],
            ccp_dn_send: vec![eq(getf(state(), "blocked"), Term::Bool(false))],
            ccp_up_send: vec![],
            init: Val::record(&[("blocked", Val::Bool(false))]),
            const_fields: vec![],
            defer_specs: vec![],
        },
        "total" => LayerModel {
            name: "total",
            dn_cast: if_(
                eq(getf(state(), "rank"), getf(state(), "sequencer")),
                let_(
                    "o",
                    getf(state(), "order_next"),
                    let_(
                        "s1",
                        setf(state(), "order_next", add(var("o"), Term::Int(1))),
                        out1(
                            var("s1"),
                            dn_cast_ev(push(msg(), con("TotalOrdered", vec![var("o")]))),
                        ),
                    ),
                ),
                slow(state(), "CastUnordered"),
            ),
            up_cast: match_(
                app("top_hdr", vec![msg()]),
                vec![
                    (
                        pat("TotalOrdered", &["o"]),
                        if_(
                            eq(var("o"), getf(state(), "deliver_next")),
                            let_(
                                "s1",
                                setf(state(), "deliver_next", add(var("o"), Term::Int(1))),
                                out1(var("s1"), up_cast_ev(var("origin"), pop(msg()))),
                            ),
                            slow(state(), "BufferOutOfOrder"),
                        ),
                    ),
                    (pat("TotalUnordered", &["lcl"]), slow(state(), "Unordered")),
                    (
                        pat("TotalOrder", &["po", "pl", "pd"]),
                        slow(state(), "OrderAnnouncement"),
                    ),
                ],
            ),
            dn_send: pass_dn_send(),
            up_send: pass_up_send(),
            ccp_dn_cast: vec![eq(getf(state(), "rank"), getf(state(), "sequencer"))],
            ccp_up_cast: vec![eq(
                app("top_hdr", vec![msg()]),
                con("TotalOrdered", vec![getf(state(), "deliver_next")]),
            )],
            ccp_dn_send: vec![],
            ccp_up_send: vec![],
            init: Val::record(&[
                ("rank", Val::Int(ctx.rank)),
                ("sequencer", Val::Int(0)),
                ("order_next", Val::Int(0)),
                ("local_next", Val::Int(0)),
                ("deliver_next", Val::Int(0)),
            ]),
            const_fields: vec!["rank", "sequencer"],
            defer_specs: vec![],
        },
        "local" => LayerModel {
            name: "local",
            // The bouncing/splitting path of the composition theorems: a
            // down-going cast both loops back up and continues down.
            dn_cast: out2(
                state(),
                up_cast_ev(getf(state(), "rank"), msg()),
                dn_cast_ev(push(msg(), con("NoHdr", vec![]))),
            ),
            up_cast: pass_up_cast(),
            dn_send: if_(
                eq(var("dst"), getf(state(), "rank")),
                out1(state(), up_send_ev(getf(state(), "rank"), msg())),
                pass_dn_send(),
            ),
            up_send: pass_up_send(),
            ccp_dn_cast: vec![],
            ccp_up_cast: vec![],
            ccp_dn_send: vec![prim(Prim::Not, vec![eq(var("dst"), getf(state(), "rank"))])],
            ccp_up_send: vec![],
            init: Val::record(&[("rank", Val::Int(ctx.rank))]),
            const_fields: vec!["rank"],
            defer_specs: vec![],
        },
        "frag" => LayerModel {
            name: "frag",
            dn_cast: if_(
                prim(
                    Prim::Not,
                    vec![lt(getf(state(), "frag_max"), app("paylen", vec![msg()]))],
                ),
                out1(state(), dn_cast_ev(push(msg(), con("FragWhole", vec![])))),
                slow(state(), "Fragment"),
            ),
            up_cast: match_(
                app("top_hdr", vec![msg()]),
                vec![
                    (
                        pat("FragWhole", &[]),
                        out1(state(), up_cast_ev(var("origin"), pop(msg()))),
                    ),
                    (
                        pat("FragPiece", &["mid", "idx", "tot"]),
                        slow(state(), "Reassemble"),
                    ),
                ],
            ),
            dn_send: if_(
                prim(
                    Prim::Not,
                    vec![lt(getf(state(), "frag_max"), app("paylen", vec![msg()]))],
                ),
                out1(
                    state(),
                    dn_send_ev(var("dst"), push(msg(), con("FragWhole", vec![]))),
                ),
                slow(state(), "Fragment"),
            ),
            up_send: match_(
                app("top_hdr", vec![msg()]),
                vec![
                    (
                        pat("FragWhole", &[]),
                        out1(state(), up_send_ev(var("origin"), pop(msg()))),
                    ),
                    (
                        pat("FragPiece", &["mid", "idx", "tot"]),
                        slow(state(), "Reassemble"),
                    ),
                ],
            ),
            ccp_dn_cast: vec![prim(
                Prim::Not,
                vec![lt(getf(state(), "frag_max"), app("paylen", vec![msg()]))],
            )],
            ccp_up_cast: vec![eq(app("top_hdr", vec![msg()]), con("FragWhole", vec![]))],
            ccp_dn_send: vec![prim(
                Prim::Not,
                vec![lt(getf(state(), "frag_max"), app("paylen", vec![msg()]))],
            )],
            ccp_up_send: vec![eq(app("top_hdr", vec![msg()]), con("FragWhole", vec![]))],
            init: Val::record(&[
                ("frag_max", Val::Int(ctx.frag_max)),
                ("next_msg_id", Val::Int(0)),
            ]),
            const_fields: vec!["frag_max"],
            defer_specs: vec![],
        },
        "collect" => LayerModel {
            name: "collect",
            dn_cast: if_(
                lt(
                    add(getf(state(), "since_gossip"), Term::Int(1)),
                    getf(state(), "every"),
                ),
                let_(
                    "mine",
                    vget(getf(state(), "seen"), getf(state(), "rank")),
                    let_(
                        "s1",
                        setf(
                            setf(
                                state(),
                                "seen",
                                vset(
                                    getf(state(), "seen"),
                                    getf(state(), "rank"),
                                    add(var("mine"), Term::Int(1)),
                                ),
                            ),
                            "since_gossip",
                            add(getf(state(), "since_gossip"), Term::Int(1)),
                        ),
                        out1(
                            var("s1"),
                            dn_cast_ev(push(msg(), con("CollectPass", vec![]))),
                        ),
                    ),
                ),
                slow(state(), "Gossip"),
            ),
            up_cast: match_(
                app("top_hdr", vec![msg()]),
                vec![
                    (
                        pat("CollectPass", &[]),
                        let_(
                            "cnt",
                            add(vget(getf(state(), "seen"), var("origin")), Term::Int(1)),
                            let_(
                                "s1",
                                setf(
                                    state(),
                                    "seen",
                                    vset(getf(state(), "seen"), var("origin"), var("cnt")),
                                ),
                                if_(
                                    lt(
                                        add(getf(state(), "since_gossip"), Term::Int(1)),
                                        getf(state(), "every"),
                                    ),
                                    let_(
                                        "s2",
                                        setf(
                                            var("s1"),
                                            "since_gossip",
                                            add(getf(state(), "since_gossip"), Term::Int(1)),
                                        ),
                                        out2(
                                            var("s2"),
                                            up_cast_ev(var("origin"), pop(msg())),
                                            defer(con("RecomputeStability", vec![])),
                                        ),
                                    ),
                                    slow(state(), "Gossip"),
                                ),
                            ),
                        ),
                    ),
                    (pat("CollectGossip", &["row"]), slow(state(), "GossipRow")),
                ],
            ),
            dn_send: pass_dn_send(),
            up_send: pass_up_send(),
            ccp_dn_cast: vec![lt(
                add(getf(state(), "since_gossip"), Term::Int(1)),
                getf(state(), "every"),
            )],
            ccp_up_cast: vec![
                eq(app("top_hdr", vec![msg()]), con("CollectPass", vec![])),
                lt(
                    add(getf(state(), "since_gossip"), Term::Int(1)),
                    getf(state(), "every"),
                ),
            ],
            ccp_dn_send: vec![],
            ccp_up_send: vec![],
            init: Val::record(&[
                ("rank", Val::Int(ctx.rank)),
                ("every", Val::Int(ctx.collect_every)),
                ("seen", zero_vec(ctx.nmembers)),
                ("since_gossip", Val::Int(0)),
                ("stability", Val::Int(0)),
            ]),
            const_fields: vec!["rank", "every"],
            defer_specs: vec![
                // Re-derive the stability floor from the seen counters —
                // a pure function of the state, so replays are idempotent.
                DeferSpec {
                    tag: "RecomputeStability",
                    params: vec![],
                    body: setf(
                        state(),
                        "stability",
                        prim(
                            Prim::MinVecSkip,
                            vec![getf(state(), "seen"), getf(state(), "rank")],
                        ),
                    ),
                },
            ],
        },
        "pt2ptw" => LayerModel {
            name: "pt2ptw",
            dn_cast: pass_dn_cast(),
            up_cast: pass_up_cast(),
            dn_send: if_(
                lt(
                    prim(
                        Prim::Sub,
                        vec![
                            vget(getf(state(), "sent"), var("dst")),
                            vget(getf(state(), "granted"), var("dst")),
                        ],
                    ),
                    getf(state(), "window"),
                ),
                let_(
                    "s1",
                    setf(
                        state(),
                        "sent",
                        vset(
                            getf(state(), "sent"),
                            var("dst"),
                            add(vget(getf(state(), "sent"), var("dst")), Term::Int(1)),
                        ),
                    ),
                    out1(
                        var("s1"),
                        dn_send_ev(var("dst"), push(msg(), con("PtwData", vec![]))),
                    ),
                ),
                slow(state(), "QueueNoCredit"),
            ),
            up_send: match_(
                app("top_hdr", vec![msg()]),
                vec![
                    (
                        pat("PtwData", &[]),
                        if_(
                            lt(
                                add(vget(getf(state(), "consumed"), var("origin")), Term::Int(1)),
                                getf(state(), "half_window"),
                            ),
                            let_(
                                "s1",
                                setf(
                                    state(),
                                    "consumed",
                                    vset(
                                        getf(state(), "consumed"),
                                        var("origin"),
                                        add(
                                            vget(getf(state(), "consumed"), var("origin")),
                                            Term::Int(1),
                                        ),
                                    ),
                                ),
                                out1(var("s1"), up_send_ev(var("origin"), pop(msg()))),
                            ),
                            slow(state(), "GrantCredit"),
                        ),
                    ),
                    (pat("PtwCredit", &["g"]), slow(state(), "CreditArrived")),
                ],
            ),
            ccp_dn_cast: vec![],
            ccp_up_cast: vec![],
            ccp_dn_send: vec![lt(
                prim(
                    Prim::Sub,
                    vec![
                        vget(getf(state(), "sent"), var("dst")),
                        vget(getf(state(), "granted"), var("dst")),
                    ],
                ),
                getf(state(), "window"),
            )],
            ccp_up_send: vec![
                eq(app("top_hdr", vec![msg()]), con("PtwData", vec![])),
                lt(
                    add(vget(getf(state(), "consumed"), var("origin")), Term::Int(1)),
                    getf(state(), "half_window"),
                ),
            ],
            init: Val::record(&[
                ("window", Val::Int(ctx.pt2pt_window)),
                ("half_window", Val::Int(ctx.pt2pt_window / 2)),
                ("sent", zero_vec(ctx.nmembers)),
                ("granted", zero_vec(ctx.nmembers)),
                ("consumed", zero_vec(ctx.nmembers)),
            ]),
            const_fields: vec!["window", "half_window"],
            defer_specs: vec![],
        },
        "mflow" => LayerModel {
            name: "mflow",
            dn_cast: if_(
                lt(
                    prim(
                        Prim::Sub,
                        vec![
                            getf(state(), "sent"),
                            prim(
                                Prim::MinVecSkip,
                                vec![getf(state(), "granted"), getf(state(), "rank")],
                            ),
                        ],
                    ),
                    getf(state(), "window"),
                ),
                let_(
                    "s1",
                    setf(state(), "sent", add(getf(state(), "sent"), Term::Int(1))),
                    out1(var("s1"), dn_cast_ev(push(msg(), con("MFlowData", vec![])))),
                ),
                slow(state(), "QueueNoCredit"),
            ),
            up_cast: let_(
                "cnt",
                add(vget(getf(state(), "consumed"), var("origin")), Term::Int(1)),
                if_(
                    lt(var("cnt"), getf(state(), "half_window")),
                    let_(
                        "s1",
                        setf(
                            state(),
                            "consumed",
                            vset(getf(state(), "consumed"), var("origin"), var("cnt")),
                        ),
                        out1(var("s1"), up_cast_ev(var("origin"), pop(msg()))),
                    ),
                    slow(state(), "GrantCredit"),
                ),
            ),
            dn_send: pass_dn_send(),
            up_send: match_(
                app("top_hdr", vec![msg()]),
                vec![
                    (pat("NoHdr", &[]), pass_up_send()),
                    (pat("MFlowCredit", &["g"]), slow(state(), "CreditArrived")),
                ],
            ),
            ccp_dn_cast: vec![lt(
                prim(
                    Prim::Sub,
                    vec![
                        getf(state(), "sent"),
                        prim(
                            Prim::MinVecSkip,
                            vec![getf(state(), "granted"), getf(state(), "rank")],
                        ),
                    ],
                ),
                getf(state(), "window"),
            )],
            ccp_up_cast: vec![lt(
                add(vget(getf(state(), "consumed"), var("origin")), Term::Int(1)),
                getf(state(), "half_window"),
            )],
            ccp_dn_send: vec![],
            ccp_up_send: vec![eq(app("top_hdr", vec![msg()]), con("NoHdr", vec![]))],
            init: Val::record(&[
                ("rank", Val::Int(ctx.rank)),
                ("window", Val::Int(ctx.mflow_window)),
                ("half_window", Val::Int(ctx.mflow_window / 2)),
                ("sent", Val::Int(0)),
                ("granted", zero_vec(ctx.nmembers)),
                ("consumed", zero_vec(ctx.nmembers)),
            ]),
            const_fields: vec!["rank", "window", "half_window"],
            defer_specs: vec![],
        },
        "pt2pt" => LayerModel {
            name: "pt2pt",
            dn_cast: pass_dn_cast(),
            up_cast: pass_up_cast(),
            dn_send: let_(
                "seq",
                vget(getf(state(), "send_next"), var("dst")),
                let_(
                    "s1",
                    setf(
                        state(),
                        "send_next",
                        vset(
                            getf(state(), "send_next"),
                            var("dst"),
                            add(var("seq"), Term::Int(1)),
                        ),
                    ),
                    out2(
                        var("s1"),
                        dn_send_ev(
                            var("dst"),
                            push(
                                msg(),
                                con(
                                    "Pt2PtData",
                                    vec![var("seq"), vget(getf(state(), "recv_next"), var("dst"))],
                                ),
                            ),
                        ),
                        defer(con("BufferUnacked", vec![var("dst"), var("seq")])),
                    ),
                ),
            ),
            up_send: match_(
                app("top_hdr", vec![msg()]),
                vec![
                    (
                        pat("Pt2PtData", &["seq", "ack"]),
                        if_(
                            eq(var("seq"), vget(getf(state(), "recv_next"), var("origin"))),
                            let_(
                                "s1",
                                setf(
                                    state(),
                                    "recv_next",
                                    vset(
                                        getf(state(), "recv_next"),
                                        var("origin"),
                                        add(var("seq"), Term::Int(1)),
                                    ),
                                ),
                                out2(
                                    var("s1"),
                                    up_send_ev(var("origin"), pop(msg())),
                                    defer(con("AckAndPrune", vec![var("origin"), var("ack")])),
                                ),
                            ),
                            slow(state(), "BufferOutOfOrder"),
                        ),
                    ),
                    (pat("Pt2PtAck", &["ack"]), slow(state(), "ProcessAck")),
                ],
            ),
            ccp_dn_cast: vec![],
            ccp_up_cast: vec![],
            ccp_dn_send: vec![],
            ccp_up_send: vec![
                // "the low end of the receiver's sliding window is equal
                // to the sequence number in the event" (§4.1).
                eq(
                    app("top_hdr", vec![msg()]),
                    con(
                        "Pt2PtData",
                        vec![
                            vget(getf(state(), "recv_next"), var("origin")),
                            var("any_ack"),
                        ],
                    ),
                ),
            ],
            init: Val::record(&[
                ("send_next", zero_vec(ctx.nmembers)),
                ("recv_next", zero_vec(ctx.nmembers)),
                ("unacked", zero_vec(ctx.nmembers)),
                ("acked", zero_vec(ctx.nmembers)),
            ]),
            const_fields: vec![],
            defer_specs: vec![
                // Count another unacknowledged send buffered for `dst`.
                DeferSpec {
                    tag: "BufferUnacked",
                    params: vec!["dst", "seq"],
                    body: setf(
                        state(),
                        "unacked",
                        vset(
                            getf(state(), "unacked"),
                            var("dst"),
                            add(vget(getf(state(), "unacked"), var("dst")), Term::Int(1)),
                        ),
                    ),
                },
                // Advance the acknowledged-up-to mark from `origin`
                // (acks may arrive stale, so merge with max).
                DeferSpec {
                    tag: "AckAndPrune",
                    params: vec!["origin", "ack"],
                    body: setf(
                        state(),
                        "acked",
                        vset(
                            getf(state(), "acked"),
                            var("origin"),
                            if_(
                                lt(vget(getf(state(), "acked"), var("origin")), var("ack")),
                                var("ack"),
                                vget(getf(state(), "acked"), var("origin")),
                            ),
                        ),
                    ),
                },
            ],
        },
        "mnak" => LayerModel {
            name: "mnak",
            dn_cast: let_(
                "seq",
                getf(state(), "cast_next"),
                let_(
                    "s1",
                    setf(state(), "cast_next", add(var("seq"), Term::Int(1))),
                    out2(
                        var("s1"),
                        dn_cast_ev(push(msg(), con("MnakData", vec![var("seq")]))),
                        defer(con("StoreOwn", vec![var("seq")])),
                    ),
                ),
            ),
            up_cast: match_(
                app("top_hdr", vec![msg()]),
                vec![(
                    pat("MnakData", &["seq"]),
                    if_(
                        eq(var("seq"), vget(getf(state(), "next"), var("origin"))),
                        let_(
                            "s1",
                            setf(
                                state(),
                                "next",
                                vset(
                                    getf(state(), "next"),
                                    var("origin"),
                                    add(var("seq"), Term::Int(1)),
                                ),
                            ),
                            out2(
                                var("s1"),
                                up_cast_ev(var("origin"), pop(msg())),
                                defer(con("Store", vec![var("origin"), var("seq")])),
                            ),
                        ),
                        slow(state(), "GapOrDuplicate"),
                    ),
                )],
            ),
            dn_send: pass_dn_send(),
            up_send: match_(
                app("top_hdr", vec![msg()]),
                vec![
                    (pat("NoHdr", &[]), pass_up_send()),
                    (
                        pat("MnakNak", &["o", "lo", "hi"]),
                        slow(state(), "AnswerNak"),
                    ),
                    (
                        pat("MnakRetrans", &["o", "seq"]),
                        slow(state(), "IngestRetrans"),
                    ),
                ],
            ),
            ccp_dn_cast: vec![],
            ccp_up_cast: vec![eq(
                app("top_hdr", vec![msg()]),
                con("MnakData", vec![vget(getf(state(), "next"), var("origin"))]),
            )],
            ccp_dn_send: vec![],
            ccp_up_send: vec![eq(app("top_hdr", vec![msg()]), con("NoHdr", vec![]))],
            init: Val::record(&[
                ("cast_next", Val::Int(0)),
                ("next", zero_vec(ctx.nmembers)),
                ("stored", zero_vec(ctx.nmembers)),
                ("recv_hi", zero_vec(ctx.nmembers)),
            ]),
            const_fields: vec![],
            defer_specs: vec![
                // Buffer our own cast for retransmission, keyed by its
                // (monotone) sequence number.
                DeferSpec {
                    tag: "StoreOwn",
                    params: vec!["seq"],
                    body: setf(
                        state(),
                        "stored",
                        vset(getf(state(), "stored"), var("seq"), Term::Int(1)),
                    ),
                },
                // Record the highest sequence buffered from `origin`.
                DeferSpec {
                    tag: "Store",
                    params: vec!["origin", "seq"],
                    body: setf(
                        state(),
                        "recv_hi",
                        vset(
                            getf(state(), "recv_hi"),
                            var("origin"),
                            if_(
                                lt(vget(getf(state(), "recv_hi"), var("origin")), var("seq")),
                                var("seq"),
                                vget(getf(state(), "recv_hi"), var("origin")),
                            ),
                        ),
                    ),
                },
            ],
        },
        "bottom" => LayerModel {
            name: "bottom",
            dn_cast: out1(
                state(),
                dn_cast_ev(push(
                    msg(),
                    con("BottomHdr", vec![getf(state(), "view_ltime")]),
                )),
            ),
            up_cast: match_(
                app("top_hdr", vec![msg()]),
                vec![(
                    pat("BottomHdr", &["vl"]),
                    if_(
                        eq(var("vl"), getf(state(), "view_ltime")),
                        out1(state(), up_cast_ev(var("origin"), pop(msg()))),
                        slow(state(), "StaleView"),
                    ),
                )],
            ),
            dn_send: out1(
                state(),
                dn_send_ev(
                    var("dst"),
                    push(msg(), con("BottomHdr", vec![getf(state(), "view_ltime")])),
                ),
            ),
            up_send: match_(
                app("top_hdr", vec![msg()]),
                vec![(
                    pat("BottomHdr", &["vl"]),
                    if_(
                        eq(var("vl"), getf(state(), "view_ltime")),
                        out1(state(), up_send_ev(var("origin"), pop(msg()))),
                        slow(state(), "StaleView"),
                    ),
                )],
            ),
            ccp_dn_cast: vec![],
            ccp_up_cast: vec![eq(
                app("top_hdr", vec![msg()]),
                con("BottomHdr", vec![getf(state(), "view_ltime")]),
            )],
            ccp_dn_send: vec![],
            ccp_up_send: vec![eq(
                app("top_hdr", vec![msg()]),
                con("BottomHdr", vec![getf(state(), "view_ltime")]),
            )],
            init: Val::record(&[("view_ltime", Val::Int(ctx.view_ltime))]),
            const_fields: vec!["view_ltime"],
            defer_specs: vec![],
        },
        "gmp" => LayerModel {
            name: "gmp",
            // Group membership: transparent while no view change is in
            // progress; the install protocol itself is slow-path.
            dn_cast: if_(
                eq(getf(state(), "installing"), Term::Bool(false)),
                out1(state(), dn_cast_ev(push(msg(), con("GmpPass", vec![])))),
                slow(state(), "ViewChangePending"),
            ),
            up_cast: match_(
                app("top_hdr", vec![msg()]),
                vec![
                    (
                        pat("GmpPass", &[]),
                        if_(
                            eq(getf(state(), "installing"), Term::Bool(false)),
                            out1(state(), up_cast_ev(var("origin"), pop(msg()))),
                            slow(state(), "ViewChangePending"),
                        ),
                    ),
                    (pat("GmpNewView", &["ltime"]), slow(state(), "InstallView")),
                ],
            ),
            dn_send: if_(
                eq(getf(state(), "installing"), Term::Bool(false)),
                pass_dn_send(),
                slow(state(), "ViewChangePending"),
            ),
            up_send: match_(
                app("top_hdr", vec![msg()]),
                vec![(pat("NoHdr", &[]), pass_up_send())],
            ),
            ccp_dn_cast: vec![eq(getf(state(), "installing"), Term::Bool(false))],
            ccp_up_cast: vec![
                eq(app("top_hdr", vec![msg()]), con("GmpPass", vec![])),
                eq(getf(state(), "installing"), Term::Bool(false)),
            ],
            ccp_dn_send: vec![eq(getf(state(), "installing"), Term::Bool(false))],
            ccp_up_send: vec![eq(app("top_hdr", vec![msg()]), con("NoHdr", vec![]))],
            init: Val::record(&[("installing", Val::Bool(false))]),
            const_fields: vec![],
            defer_specs: vec![],
        },
        "sync" => LayerModel {
            name: "sync",
            // View-synchrony flush: counts messages in flight off the
            // critical path; the flush round itself is slow-path.
            dn_cast: if_(
                eq(getf(state(), "in_sync"), Term::Bool(false)),
                out2(
                    state(),
                    dn_cast_ev(push(msg(), con("SyncPass", vec![]))),
                    defer(con("CountOwn", vec![])),
                ),
                slow(state(), "FlushPending"),
            ),
            up_cast: match_(
                app("top_hdr", vec![msg()]),
                vec![
                    (
                        pat("SyncPass", &[]),
                        if_(
                            eq(getf(state(), "in_sync"), Term::Bool(false)),
                            out2(
                                state(),
                                up_cast_ev(var("origin"), pop(msg())),
                                defer(con("CountSeen", vec![var("origin")])),
                            ),
                            slow(state(), "FlushPending"),
                        ),
                    ),
                    (pat("SyncFlush", &[]), slow(state(), "StartFlush")),
                    (
                        pat("SyncFlushOk", &["cnt"]),
                        slow(state(), "CollectFlushOk"),
                    ),
                ],
            ),
            dn_send: if_(
                eq(getf(state(), "in_sync"), Term::Bool(false)),
                pass_dn_send(),
                slow(state(), "FlushPending"),
            ),
            up_send: match_(
                app("top_hdr", vec![msg()]),
                vec![(pat("NoHdr", &[]), pass_up_send())],
            ),
            ccp_dn_cast: vec![eq(getf(state(), "in_sync"), Term::Bool(false))],
            ccp_up_cast: vec![
                eq(app("top_hdr", vec![msg()]), con("SyncPass", vec![])),
                eq(getf(state(), "in_sync"), Term::Bool(false)),
            ],
            ccp_dn_send: vec![eq(getf(state(), "in_sync"), Term::Bool(false))],
            ccp_up_send: vec![eq(app("top_hdr", vec![msg()]), con("NoHdr", vec![]))],
            init: Val::record(&[
                ("in_sync", Val::Bool(false)),
                ("own_count", Val::Int(0)),
                ("seen_count", zero_vec(ctx.nmembers)),
            ]),
            const_fields: vec![],
            defer_specs: vec![
                // One more of our own casts is in flight.
                DeferSpec {
                    tag: "CountOwn",
                    params: vec![],
                    body: setf(
                        state(),
                        "own_count",
                        add(getf(state(), "own_count"), Term::Int(1)),
                    ),
                },
                // One more cast from `origin` was delivered.
                DeferSpec {
                    tag: "CountSeen",
                    params: vec!["origin"],
                    body: setf(
                        state(),
                        "seen_count",
                        vset(
                            getf(state(), "seen_count"),
                            var("origin"),
                            add(
                                vget(getf(state(), "seen_count"), var("origin")),
                                Term::Int(1),
                            ),
                        ),
                    ),
                },
            ],
        },
        "elect" => LayerModel {
            name: "elect",
            // Leader election only acts when the failure detector fires;
            // on the data path it is fully transparent.
            dn_cast: pass_dn_cast(),
            up_cast: pass_up_cast(),
            dn_send: pass_dn_send(),
            up_send: pass_up_send(),
            ccp_dn_cast: vec![],
            ccp_up_cast: vec![],
            ccp_dn_send: vec![],
            ccp_up_send: vec![],
            init: Val::record(&[("leader", Val::Int(0))]),
            const_fields: vec!["leader"],
            defer_specs: vec![],
        },
        "suspect" => LayerModel {
            name: "suspect",
            // Failure detection: liveness bookkeeping rides the data
            // path as deferred work; pings/pongs are slow-path.
            dn_cast: out1(state(), dn_cast_ev(push(msg(), con("SuspectPass", vec![])))),
            up_cast: match_(
                app("top_hdr", vec![msg()]),
                vec![
                    (
                        pat("SuspectPass", &[]),
                        out2(
                            state(),
                            up_cast_ev(var("origin"), pop(msg())),
                            defer(con("Heard", vec![var("origin")])),
                        ),
                    ),
                    (pat("SuspectPing", &["seq"]), slow(state(), "AnswerPing")),
                    (pat("SuspectPong", &["seq"]), slow(state(), "IngestPong")),
                ],
            ),
            dn_send: pass_dn_send(),
            up_send: match_(
                app("top_hdr", vec![msg()]),
                vec![(
                    pat("NoHdr", &[]),
                    out2(
                        state(),
                        up_send_ev(var("origin"), pop(msg())),
                        defer(con("Heard", vec![var("origin")])),
                    ),
                )],
            ),
            ccp_dn_cast: vec![],
            ccp_up_cast: vec![eq(app("top_hdr", vec![msg()]), con("SuspectPass", vec![]))],
            ccp_dn_send: vec![],
            ccp_up_send: vec![eq(app("top_hdr", vec![msg()]), con("NoHdr", vec![]))],
            init: Val::record(&[("heard", zero_vec(ctx.nmembers))]),
            const_fields: vec![],
            defer_specs: vec![DeferSpec {
                // Liveness evidence from `origin`.
                tag: "Heard",
                params: vec!["origin"],
                body: setf(
                    state(),
                    "heard",
                    vset(
                        getf(state(), "heard"),
                        var("origin"),
                        add(vget(getf(state(), "heard"), var("origin")), Term::Int(1)),
                    ),
                ),
            }],
        },
        _ => return None,
    })
}

/// The full inlinable definition table used by the layer models.
pub fn layer_defs() -> FnDefs {
    shared_defs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_with;

    /// Builds a message value with the given header stack (outermost
    /// first) and payload length.
    pub fn msg_val(hdrs: Vec<Val>, len: i64) -> Val {
        Val::con("Msg", vec![Val::list(hdrs), Val::Opaque(1), Val::Int(len)])
    }

    fn run(t: &Term, bindings: &[(&str, Val)]) -> (Val, Vec<Val>) {
        let defs = layer_defs();
        let (v, _) = eval_with(t, &defs, bindings).unwrap();
        match v {
            Val::Con(n, args) if n.as_str() == "Out" => {
                let evs = args[1].un_list().unwrap();
                (args[0].clone(), evs)
            }
            other => panic!("expected Out, got {other:?}"),
        }
    }

    #[test]
    fn mnak_dn_cast_numbers_and_defers_store() {
        let m = model("mnak", &ModelCtx::new(3, 0)).unwrap();
        let (s1, evs) = run(
            &m.dn_cast,
            &[("state", m.init.clone()), ("msg", msg_val(vec![], 4))],
        );
        assert_eq!(s1.field("cast_next"), Some(&Val::Int(1)));
        assert_eq!(evs.len(), 2);
        // First event: the framed cast.
        match &evs[0] {
            Val::Con(n, args) if n.as_str() == "DnCast" => {
                let hdrs = args[0].field("ignore");
                assert!(hdrs.is_none()); // Msg is a Con, not a record.
            }
            other => panic!("{other:?}"),
        }
        // Second: the deferred buffering.
        assert_eq!(
            evs[1],
            Val::con("Defer", vec![Val::con("StoreOwn", vec![Val::Int(0)])])
        );
    }

    #[test]
    fn mnak_up_cast_in_sequence_delivers() {
        let m = model("mnak", &ModelCtx::new(3, 0)).unwrap();
        let incoming = msg_val(vec![Val::con("MnakData", vec![Val::Int(0)])], 4);
        let (s1, evs) = run(
            &m.up_cast,
            &[
                ("state", m.init.clone()),
                ("origin", Val::Int(1)),
                ("msg", incoming),
            ],
        );
        match s1.field("next") {
            Some(Val::Vector(v)) => assert_eq!(v[1], Val::Int(1)),
            other => panic!("{other:?}"),
        }
        assert!(matches!(&evs[0], Val::Con(n, _) if n.as_str() == "UpCast"));
    }

    #[test]
    fn mnak_up_cast_gap_goes_slow() {
        let m = model("mnak", &ModelCtx::new(3, 0)).unwrap();
        let incoming = msg_val(vec![Val::con("MnakData", vec![Val::Int(5)])], 4);
        let defs = layer_defs();
        let (v, _) = eval_with(
            &m.up_cast,
            &defs,
            &[
                ("state", m.init.clone()),
                ("origin", Val::Int(1)),
                ("msg", incoming),
            ],
        )
        .unwrap();
        assert!(matches!(v, Val::Con(n, _) if n.as_str() == "Slow"));
    }

    #[test]
    fn total_sequencer_stamps_order() {
        let m = model("total", &ModelCtx::new(3, 0)).unwrap();
        let (s1, evs) = run(
            &m.dn_cast,
            &[("state", m.init.clone()), ("msg", msg_val(vec![], 4))],
        );
        assert_eq!(s1.field("order_next"), Some(&Val::Int(1)));
        assert_eq!(evs.len(), 1);
    }

    #[test]
    fn total_non_sequencer_goes_slow() {
        let m = model("total", &ModelCtx::new(3, 2)).unwrap();
        let defs = layer_defs();
        let (v, _) = eval_with(
            &m.dn_cast,
            &defs,
            &[("state", m.init.clone()), ("msg", msg_val(vec![], 4))],
        )
        .unwrap();
        assert!(matches!(v, Val::Con(n, _) if n.as_str() == "Slow"));
    }

    #[test]
    fn local_dn_cast_splits() {
        let m = model("local", &ModelCtx::new(3, 1)).unwrap();
        let (_, evs) = run(
            &m.dn_cast,
            &[("state", m.init.clone()), ("msg", msg_val(vec![], 4))],
        );
        assert_eq!(evs.len(), 2);
        assert!(matches!(&evs[0], Val::Con(n, _) if n.as_str() == "UpCast"));
        assert!(matches!(&evs[1], Val::Con(n, _) if n.as_str() == "DnCast"));
    }

    #[test]
    fn frag_small_passes_whole() {
        let m = model("frag", &ModelCtx::new(3, 0)).unwrap();
        let (_, evs) = run(
            &m.dn_cast,
            &[("state", m.init.clone()), ("msg", msg_val(vec![], 100))],
        );
        assert_eq!(evs.len(), 1);
    }

    #[test]
    fn frag_large_goes_slow() {
        let m = model("frag", &ModelCtx::new(3, 0)).unwrap();
        let defs = layer_defs();
        let (v, _) = eval_with(
            &m.dn_cast,
            &defs,
            &[("state", m.init.clone()), ("msg", msg_val(vec![], 5000))],
        )
        .unwrap();
        assert!(matches!(v, Val::Con(n, _) if n.as_str() == "Slow"));
    }

    #[test]
    fn bottom_stamps_and_checks_view() {
        let m = model("bottom", &ModelCtx::new(3, 0)).unwrap();
        let (_, evs) = run(
            &m.dn_cast,
            &[("state", m.init.clone()), ("msg", msg_val(vec![], 4))],
        );
        assert_eq!(evs.len(), 1);
        // Round-trip: what went down comes back up intact.
        let framed = match &evs[0] {
            Val::Con(_, args) => args[0].clone(),
            other => panic!("{other:?}"),
        };
        let (_, evs) = run(
            &m.up_cast,
            &[
                ("state", m.init.clone()),
                ("origin", Val::Int(1)),
                ("msg", framed),
            ],
        );
        assert!(matches!(&evs[0], Val::Con(n, _) if n.as_str() == "UpCast"));
    }

    #[test]
    fn all_stack10_layers_have_models() {
        let ctx = ModelCtx::new(3, 0);
        for name in [
            "partial_appl",
            "total",
            "local",
            "frag",
            "collect",
            "pt2ptw",
            "mflow",
            "pt2pt",
            "mnak",
            "bottom",
            "top",
        ] {
            let m = model(name, &ctx).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(m.name, name);
            assert!(m.dn_cast.size() > 0);
        }
        assert!(model("nope", &ctx).is_none());
    }

    #[test]
    fn all_membership_layers_have_models() {
        let ctx = ModelCtx::new(3, 0);
        for name in ["gmp", "sync", "elect", "suspect"] {
            let m = model(name, &ctx).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(m.name, name);
            assert!(m.dn_cast.size() > 0);
        }
    }

    #[test]
    fn gmp_quiet_view_passes_both_ways() {
        let m = model("gmp", &ModelCtx::new(3, 0)).unwrap();
        let (_, evs) = run(
            &m.dn_cast,
            &[("state", m.init.clone()), ("msg", msg_val(vec![], 4))],
        );
        assert_eq!(evs.len(), 1);
        let framed = match &evs[0] {
            Val::Con(_, args) => args[0].clone(),
            other => panic!("{other:?}"),
        };
        let (_, evs) = run(
            &m.up_cast,
            &[
                ("state", m.init.clone()),
                ("origin", Val::Int(1)),
                ("msg", framed),
            ],
        );
        assert!(matches!(&evs[0], Val::Con(n, _) if n.as_str() == "UpCast"));
    }

    #[test]
    fn gmp_new_view_goes_slow() {
        let m = model("gmp", &ModelCtx::new(3, 0)).unwrap();
        let incoming = msg_val(vec![Val::con("GmpNewView", vec![Val::Int(7)])], 4);
        let defs = layer_defs();
        let (v, _) = eval_with(
            &m.up_cast,
            &defs,
            &[
                ("state", m.init.clone()),
                ("origin", Val::Int(1)),
                ("msg", incoming),
            ],
        )
        .unwrap();
        assert!(matches!(v, Val::Con(n, _) if n.as_str() == "Slow"));
    }

    #[test]
    fn sync_counts_traffic_via_defers() {
        let m = model("sync", &ModelCtx::new(3, 0)).unwrap();
        let (_, evs) = run(
            &m.dn_cast,
            &[("state", m.init.clone()), ("msg", msg_val(vec![], 4))],
        );
        assert_eq!(
            evs[1],
            Val::con("Defer", vec![Val::con("CountOwn", vec![])])
        );
        let incoming = msg_val(vec![Val::con("SyncPass", vec![])], 4);
        let (_, evs) = run(
            &m.up_cast,
            &[
                ("state", m.init.clone()),
                ("origin", Val::Int(2)),
                ("msg", incoming),
            ],
        );
        assert!(matches!(&evs[0], Val::Con(n, _) if n.as_str() == "UpCast"));
        assert_eq!(
            evs[1],
            Val::con("Defer", vec![Val::con("CountSeen", vec![Val::Int(2)])])
        );
    }

    #[test]
    fn sync_flush_goes_slow() {
        let m = model("sync", &ModelCtx::new(3, 0)).unwrap();
        let incoming = msg_val(vec![Val::con("SyncFlush", vec![])], 4);
        let defs = layer_defs();
        let (v, _) = eval_with(
            &m.up_cast,
            &defs,
            &[
                ("state", m.init.clone()),
                ("origin", Val::Int(1)),
                ("msg", incoming),
            ],
        )
        .unwrap();
        assert!(matches!(v, Val::Con(n, _) if n.as_str() == "Slow"));
    }

    #[test]
    fn suspect_defers_liveness_bookkeeping() {
        let m = model("suspect", &ModelCtx::new(3, 0)).unwrap();
        let incoming = msg_val(vec![Val::con("SuspectPass", vec![])], 4);
        let (_, evs) = run(
            &m.up_cast,
            &[
                ("state", m.init.clone()),
                ("origin", Val::Int(1)),
                ("msg", incoming),
            ],
        );
        assert_eq!(
            evs[1],
            Val::con("Defer", vec![Val::con("Heard", vec![Val::Int(1)])])
        );
        // Pings stay slow-path.
        let ping = msg_val(vec![Val::con("SuspectPing", vec![Val::Int(3)])], 4);
        let defs = layer_defs();
        let (v, _) = eval_with(
            &m.up_cast,
            &defs,
            &[
                ("state", m.init.clone()),
                ("origin", Val::Int(1)),
                ("msg", ping),
            ],
        )
        .unwrap();
        assert!(matches!(v, Val::Con(n, _) if n.as_str() == "Slow"));
    }

    #[test]
    fn defer_spec_bodies_have_declared_footprints() {
        use crate::visit::{state_footprint, WriteKind};
        let ctx = ModelCtx::new(3, 0);
        let mut seen = 0;
        for name in [
            "top",
            "partial_appl",
            "total",
            "local",
            "gmp",
            "sync",
            "elect",
            "suspect",
            "frag",
            "collect",
            "pt2ptw",
            "mflow",
            "pt2pt",
            "mnak",
            "bottom",
        ] {
            let m = model(name, &ctx).unwrap();
            let init_fields: Vec<String> = match &m.init {
                Val::Record(fs) => fs.keys().map(|f| f.as_str()).collect(),
                _ => vec![],
            };
            for spec in &m.defer_specs {
                seen += 1;
                let fp = state_footprint(&spec.body, "state");
                assert!(
                    !fp.writes.is_empty(),
                    "{name}/{}: spec body writes nothing",
                    spec.tag
                );
                for w in &fp.writes {
                    assert_ne!(
                        w.kind,
                        WriteKind::Overwrite,
                        "{name}/{}: opaque overwrite of {}",
                        spec.tag,
                        w.field.as_str()
                    );
                    assert!(
                        init_fields.contains(&w.field.as_str()),
                        "{name}/{}: writes undeclared field {}",
                        spec.tag,
                        w.field.as_str()
                    );
                }
                for r in &fp.reads {
                    assert!(
                        init_fields.contains(&r.as_str()),
                        "{name}/{}: reads undeclared field {}",
                        spec.tag,
                        r.as_str()
                    );
                }
            }
        }
        // mnak 2 + pt2pt 2 + collect 1 + sync 2 + suspect 1.
        assert_eq!(seen, 8);
    }

    #[test]
    fn handler_and_ccp_accessors() {
        let m = model("mnak", &ModelCtx::new(2, 0)).unwrap();
        assert_eq!(m.handler(Case::DnCast), &m.dn_cast);
        assert_eq!(m.ccp(Case::UpCast).len(), 1);
        assert_eq!(Case::ALL.len(), 4);
    }
}
