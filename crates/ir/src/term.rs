//! The term language.
//!
//! A purely functional mini-ML, sufficient to express the event-handler
//! bodies of the protocol layers: state records, header constructors,
//! per-origin vectors, and the control flow between them. Terms are
//! compared structurally (the rewriter relies on syntactic equality after
//! normalization).

use ensemble_util::Intern;
use std::fmt;

/// Primitive operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Prim {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Equality on values.
    Eq,
    /// Integer less-than.
    Lt,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
    /// Boolean negation.
    Not,
    /// `VecGet(vec, idx)`.
    VecGet,
    /// `VecSet(vec, idx, val)` (functional update).
    VecSet,
    /// `MinVecSkip(vec, skip)`: minimum element, ignoring index `skip`
    /// (the flow-control "slowest receiver" fold; a loop in the native
    /// code, a primitive here so it stays opaque to inlining).
    MinVecSkip,
}

impl Prim {
    /// Number of arguments the primitive takes.
    pub fn arity(&self) -> usize {
        match self {
            Prim::Not => 1,
            Prim::VecSet => 3,
            _ => 2,
        }
    }
}

/// A term of the language.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// The unit constant.
    Unit,
    /// A boolean constant.
    Bool(bool),
    /// An integer constant.
    Int(i64),
    /// A variable reference.
    Var(Intern),
    /// `let x = e1 in e2`.
    Let(Intern, Box<Term>, Box<Term>),
    /// `if c then t else e`.
    If(Box<Term>, Box<Term>, Box<Term>),
    /// A data constructor application (also used for tuples and lists).
    Con(Intern, Vec<Term>),
    /// Pattern match on a constructor value.
    Match(Box<Term>, Vec<(Pattern, Term)>),
    /// A primitive application.
    Prim(Prim, Vec<Term>),
    /// Record field read.
    GetF(Box<Term>, Intern),
    /// Functional record update: `e with { f = v }`.
    SetF(Box<Term>, Intern, Box<Term>),
    /// A call to a named (inlinable) function.
    App(Intern, Vec<Term>),
}

/// A match pattern: a constructor name binding its argument variables.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// `Name(x, y, …)` — binds the constructor arguments.
    Con(Intern, Vec<Intern>),
    /// `_` — matches anything, binds nothing.
    Wild,
}

/// Named function definitions available for inlining.
#[derive(Clone, Default)]
pub struct FnDefs {
    defs: Vec<(Intern, Vec<Intern>, Term)>,
}

impl FnDefs {
    /// An empty definition table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `name(params) = body`.
    pub fn define(&mut self, name: &str, params: &[&str], body: Term) {
        self.defs.push((
            Intern::from(name),
            params.iter().map(|p| Intern::from(p)).collect(),
            body,
        ));
    }

    /// Looks up a definition.
    pub fn get(&self, name: Intern) -> Option<(&[Intern], &Term)> {
        self.defs
            .iter()
            .find(|(n, _, _)| *n == name)
            .map(|(_, p, b)| (p.as_slice(), b))
    }

    /// Number of definitions.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }
}

// Convenience constructors, used heavily by the layer models.

/// A variable term.
pub fn var(n: &str) -> Term {
    Term::Var(Intern::from(n))
}

/// A `let`.
pub fn let_(n: &str, v: Term, body: Term) -> Term {
    Term::Let(Intern::from(n), Box::new(v), Box::new(body))
}

/// An `if`.
pub fn if_(c: Term, t: Term, e: Term) -> Term {
    Term::If(Box::new(c), Box::new(t), Box::new(e))
}

/// A constructor application.
pub fn con(n: &str, args: Vec<Term>) -> Term {
    Term::Con(Intern::from(n), args)
}

/// A record field read.
pub fn getf(e: Term, f: &str) -> Term {
    Term::GetF(Box::new(e), Intern::from(f))
}

/// A record field update.
pub fn setf(e: Term, f: &str, v: Term) -> Term {
    Term::SetF(Box::new(e), Intern::from(f), Box::new(v))
}

/// A primitive application.
pub fn prim(p: Prim, args: Vec<Term>) -> Term {
    Term::Prim(p, args)
}

/// `a == b`.
pub fn eq(a: Term, b: Term) -> Term {
    prim(Prim::Eq, vec![a, b])
}

/// `a + b`.
pub fn add(a: Term, b: Term) -> Term {
    prim(Prim::Add, vec![a, b])
}

/// A list literal as nested cons cells.
pub fn list(items: Vec<Term>) -> Term {
    let mut t = con("nil", vec![]);
    for item in items.into_iter().rev() {
        t = con("cons", vec![item, t]);
    }
    t
}

/// A match arm pattern.
pub fn pat(name: &str, binds: &[&str]) -> Pattern {
    Pattern::Con(
        Intern::from(name),
        binds.iter().map(|b| Intern::from(b)).collect(),
    )
}

/// A match term.
pub fn match_(scrutinee: Term, arms: Vec<(Pattern, Term)>) -> Term {
    Term::Match(Box::new(scrutinee), arms)
}

/// A named-function call.
pub fn app(name: &str, args: Vec<Term>) -> Term {
    Term::App(Intern::from(name), args)
}

impl Term {
    /// Counts the nodes of the term (a code-size proxy for Table 2(b)).
    pub fn size(&self) -> usize {
        1 + match self {
            Term::Unit | Term::Bool(_) | Term::Int(_) | Term::Var(_) => 0,
            Term::Let(_, a, b) => a.size() + b.size(),
            Term::If(c, t, e) => c.size() + t.size() + e.size(),
            Term::Con(_, args) | Term::Prim(_, args) | Term::App(_, args) => {
                args.iter().map(Term::size).sum()
            }
            Term::Match(s, arms) => {
                s.size() + arms.iter().map(|(_, t)| 1 + t.size()).sum::<usize>()
            }
            Term::GetF(e, _) => e.size(),
            Term::SetF(e, _, v) => e.size() + v.size(),
        }
    }

    /// Capture-avoiding-enough substitution of `name` by `val` (the layer
    /// models use globally unique binder names, so shadowing checks
    /// suffice).
    pub fn subst(&self, name: Intern, val: &Term) -> Term {
        match self {
            Term::Var(v) if *v == name => val.clone(),
            Term::Unit | Term::Bool(_) | Term::Int(_) | Term::Var(_) => self.clone(),
            Term::Let(x, a, b) => {
                let a2 = a.subst(name, val);
                let b2 = if *x == name {
                    (**b).clone()
                } else {
                    b.subst(name, val)
                };
                Term::Let(*x, Box::new(a2), Box::new(b2))
            }
            Term::If(c, t, e) => if_(c.subst(name, val), t.subst(name, val), e.subst(name, val)),
            Term::Con(n, args) => Term::Con(*n, args.iter().map(|a| a.subst(name, val)).collect()),
            Term::Prim(p, args) => {
                Term::Prim(*p, args.iter().map(|a| a.subst(name, val)).collect())
            }
            Term::App(f, args) => Term::App(*f, args.iter().map(|a| a.subst(name, val)).collect()),
            Term::Match(s, arms) => {
                let s2 = s.subst(name, val);
                let arms2 = arms
                    .iter()
                    .map(|(p, t)| {
                        let shadowed = match p {
                            Pattern::Con(_, binds) => binds.contains(&name),
                            Pattern::Wild => false,
                        };
                        if shadowed {
                            (p.clone(), t.clone())
                        } else {
                            (p.clone(), t.subst(name, val))
                        }
                    })
                    .collect();
                Term::Match(Box::new(s2), arms2)
            }
            Term::GetF(e, f) => Term::GetF(Box::new(e.subst(name, val)), *f),
            Term::SetF(e, f, v) => Term::SetF(
                Box::new(e.subst(name, val)),
                *f,
                Box::new(v.subst(name, val)),
            ),
        }
    }

    /// The free variables of the term, in first-occurrence order.
    pub fn free_vars(&self) -> Vec<Intern> {
        fn go(t: &Term, bound: &mut Vec<Intern>, out: &mut Vec<Intern>) {
            match t {
                Term::Var(v) => {
                    if !bound.contains(v) && !out.contains(v) {
                        out.push(*v);
                    }
                }
                Term::Unit | Term::Bool(_) | Term::Int(_) => {}
                Term::Let(x, a, b) => {
                    go(a, bound, out);
                    bound.push(*x);
                    go(b, bound, out);
                    bound.pop();
                }
                Term::If(c, t1, e) => {
                    go(c, bound, out);
                    go(t1, bound, out);
                    go(e, bound, out);
                }
                Term::Con(_, args) | Term::Prim(_, args) | Term::App(_, args) => {
                    for a in args {
                        go(a, bound, out);
                    }
                }
                Term::Match(s, arms) => {
                    go(s, bound, out);
                    for (p, body) in arms {
                        let n0 = bound.len();
                        if let Pattern::Con(_, binds) = p {
                            bound.extend(binds.iter().copied());
                        }
                        go(body, bound, out);
                        bound.truncate(n0);
                    }
                }
                Term::GetF(e, _) => go(e, bound, out),
                Term::SetF(e, _, v) => {
                    go(e, bound, out);
                    go(v, bound, out);
                }
            }
        }
        let mut out = Vec::new();
        go(self, &mut Vec::new(), &mut out);
        out
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Unit => write!(f, "()"),
            Term::Bool(b) => write!(f, "{b}"),
            Term::Int(i) => write!(f, "{i}"),
            Term::Var(v) => write!(f, "{v}"),
            Term::Let(x, a, b) => write!(f, "let {x} = {a:?} in\n{b:?}"),
            Term::If(c, t, e) => write!(f, "if {c:?} then {t:?} else {e:?}"),
            Term::Con(n, args) if args.is_empty() => write!(f, "{n}"),
            Term::Con(n, args) => {
                write!(f, "{n}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a:?}")?;
                }
                write!(f, ")")
            }
            Term::Match(s, arms) => {
                write!(f, "match {s:?} with")?;
                for (p, t) in arms {
                    write!(f, " | {p:?} -> {t:?}")?;
                }
                Ok(())
            }
            Term::Prim(p, args) => write!(f, "{p:?}{args:?}"),
            Term::GetF(e, field) => write!(f, "{e:?}.{field}"),
            Term::SetF(e, field, v) => write!(f, "{{{e:?} with {field} = {v:?}}}"),
            Term::App(n, args) => write!(f, "{n}{args:?}"),
        }
    }
}

impl fmt::Debug for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pattern::Con(n, binds) if binds.is_empty() => write!(f, "{n}"),
            Pattern::Con(n, binds) => {
                write!(f, "{n}(")?;
                for (i, b) in binds.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{b}")?;
                }
                write!(f, ")")
            }
            Pattern::Wild => write!(f, "_"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Term::Int(1).size(), 1);
        assert_eq!(add(var("x"), Term::Int(1)).size(), 3);
        let t = let_("x", Term::Int(1), add(var("x"), var("x")));
        assert_eq!(t.size(), 5);
    }

    #[test]
    fn substitution_respects_shadowing() {
        // let x = 1 in x  — substituting x leaves the body alone.
        let t = let_("x", var("y"), var("x"));
        let s = t.subst(Intern::from("x"), &Term::Int(9));
        assert_eq!(s, let_("x", var("y"), var("x")));
        // But the bound value is substituted.
        let s = t.subst(Intern::from("y"), &Term::Int(9));
        assert_eq!(s, let_("x", Term::Int(9), var("x")));
    }

    #[test]
    fn substitution_in_match_respects_binders() {
        let t = match_(
            var("e"),
            vec![
                (pat("Data", &["s"]), add(var("s"), var("k"))),
                (Pattern::Wild, var("k")),
            ],
        );
        let s = t.subst(Intern::from("s"), &Term::Int(5));
        // `s` is bound by the pattern; only the scrutinee/others change.
        assert_eq!(
            s,
            match_(
                var("e"),
                vec![
                    (pat("Data", &["s"]), add(var("s"), var("k"))),
                    (Pattern::Wild, var("k")),
                ],
            )
        );
        let s = t.subst(Intern::from("k"), &Term::Int(5));
        match s {
            Term::Match(_, arms) => {
                assert_eq!(arms[0].1, add(var("s"), Term::Int(5)));
                assert_eq!(arms[1].1, Term::Int(5));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn free_vars_ordered() {
        let t = let_("x", var("a"), add(var("x"), add(var("b"), var("a"))));
        let fv: Vec<String> = t.free_vars().iter().map(|v| v.as_str()).collect();
        assert_eq!(fv, vec!["a", "b"]);
    }

    #[test]
    fn list_builds_cons_cells() {
        let l = list(vec![Term::Int(1), Term::Int(2)]);
        assert_eq!(
            l,
            con(
                "cons",
                vec![
                    Term::Int(1),
                    con("cons", vec![Term::Int(2), con("nil", vec![])])
                ]
            )
        );
    }

    #[test]
    fn fndefs_lookup() {
        let mut d = FnDefs::new();
        d.define("inc", &["x"], add(var("x"), Term::Int(1)));
        let (params, body) = d.get(Intern::from("inc")).unwrap();
        assert_eq!(params.len(), 1);
        assert_eq!(*body, add(var("x"), Term::Int(1)));
        assert!(d.get(Intern::from("missing")).is_none());
        assert_eq!(d.len(), 1);
        assert!(!d.is_empty());
    }
}
