//! The value domain of the term language.

use ensemble_util::Intern;
use std::collections::BTreeMap;
use std::fmt;

/// A runtime value.
#[derive(Clone, PartialEq, Eq)]
pub enum Val {
    /// Unit.
    Unit,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// A constructor value (also tuples and cons lists).
    Con(Intern, Vec<Val>),
    /// A record (layer state).
    Record(BTreeMap<Intern, Val>),
    /// A vector (per-origin tables).
    Vector(Vec<Val>),
    /// An opaque payload handle (the evaluator never inspects it).
    Opaque(u64),
}

impl Val {
    /// Builds a constructor value.
    pub fn con(name: &str, args: Vec<Val>) -> Val {
        Val::Con(Intern::from(name), args)
    }

    /// Builds a record from field/value pairs.
    pub fn record(fields: &[(&str, Val)]) -> Val {
        Val::Record(
            fields
                .iter()
                .map(|(k, v)| (Intern::from(k), v.clone()))
                .collect(),
        )
    }

    /// Builds a cons-list value.
    pub fn list(items: Vec<Val>) -> Val {
        let mut v = Val::con("nil", vec![]);
        for item in items.into_iter().rev() {
            v = Val::con("cons", vec![item, v]);
        }
        v
    }

    /// Collects a cons-list value back into a vector.
    pub fn un_list(&self) -> Option<Vec<Val>> {
        let mut out = Vec::new();
        let mut cur = self;
        loop {
            match cur {
                Val::Con(n, args) if n.as_str() == "nil" && args.is_empty() => return Some(out),
                Val::Con(n, args) if n.as_str() == "cons" && args.len() == 2 => {
                    out.push(args[0].clone());
                    cur = &args[1];
                }
                _ => return None,
            }
        }
    }

    /// The integer inside, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Val::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The boolean inside, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Val::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Reads a record field.
    pub fn field(&self, name: &str) -> Option<&Val> {
        match self {
            Val::Record(m) => m.get(&Intern::from(name)),
            _ => None,
        }
    }
}

impl fmt::Debug for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Unit => write!(f, "()"),
            Val::Bool(b) => write!(f, "{b}"),
            Val::Int(i) => write!(f, "{i}"),
            Val::Con(n, args) if args.is_empty() => write!(f, "{n}"),
            Val::Con(n, args) => {
                write!(f, "{n}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a:?}")?;
                }
                write!(f, ")")
            }
            Val::Record(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{k} = {v:?}")?;
                }
                write!(f, "}}")
            }
            Val::Vector(v) => write!(f, "{v:?}"),
            Val::Opaque(id) => write!(f, "<payload#{id}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_roundtrip() {
        let v = Val::list(vec![Val::Int(1), Val::Int(2), Val::Int(3)]);
        assert_eq!(
            v.un_list().unwrap(),
            vec![Val::Int(1), Val::Int(2), Val::Int(3)]
        );
        assert_eq!(Val::con("nil", vec![]).un_list().unwrap(), vec![]);
        assert!(Val::Int(0).un_list().is_none());
    }

    #[test]
    fn record_fields() {
        let r = Val::record(&[("a", Val::Int(1)), ("b", Val::Bool(true))]);
        assert_eq!(r.field("a"), Some(&Val::Int(1)));
        assert_eq!(r.field("missing"), None);
        assert_eq!(Val::Unit.field("a"), None);
    }

    #[test]
    fn accessors() {
        assert_eq!(Val::Int(4).as_int(), Some(4));
        assert_eq!(Val::Bool(true).as_bool(), Some(true));
        assert_eq!(Val::Unit.as_int(), None);
    }
}
