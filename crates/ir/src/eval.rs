//! The concrete big-step evaluator with cost accounting.
//!
//! Costs are charged per evaluation step: each node executed is an
//! *instruction*; variable, field, and vector accesses are *data
//! references*; constructor/record/vector builds are *allocations*;
//! if/match decisions are *branches*. The Table 2(a) experiment runs the
//! full layer models and the synthesized residual through this evaluator
//! and compares the counter totals.

use crate::term::{FnDefs, Pattern, Prim, Term};
use crate::val::Val;
use ensemble_util::{Counters, Intern};
use std::collections::HashMap;
use std::fmt;

/// Evaluation failures (the models are typed by convention, not checker).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// A variable had no binding.
    Unbound(Intern),
    /// A primitive was applied to values of the wrong shape.
    BadPrim(&'static str),
    /// No match arm applied.
    MatchFailure,
    /// A record field was missing.
    NoField(Intern),
    /// An unknown function was called.
    UnknownFn(Intern),
    /// Recursion depth exceeded (guards against model bugs).
    TooDeep,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Unbound(v) => write!(f, "unbound variable {v}"),
            EvalError::BadPrim(p) => write!(f, "bad primitive application: {p}"),
            EvalError::MatchFailure => write!(f, "no match arm applied"),
            EvalError::NoField(n) => write!(f, "missing record field {n}"),
            EvalError::UnknownFn(n) => write!(f, "unknown function {n}"),
            EvalError::TooDeep => write!(f, "evaluation too deep"),
        }
    }
}

impl std::error::Error for EvalError {}

/// An evaluator bound to a function-definition table.
pub struct Evaluator<'a> {
    defs: &'a FnDefs,
    /// Accumulated model costs.
    pub costs: Counters,
    depth: usize,
}

type Env = HashMap<Intern, Val>;

impl<'a> Evaluator<'a> {
    /// Builds an evaluator.
    pub fn new(defs: &'a FnDefs) -> Self {
        Evaluator {
            defs,
            costs: Counters::zero(),
            depth: 0,
        }
    }

    /// Evaluates `t` under `env`.
    pub fn eval(&mut self, t: &Term, env: &mut Env) -> Result<Val, EvalError> {
        self.depth += 1;
        if self.depth > 4096 {
            self.depth -= 1;
            return Err(EvalError::TooDeep);
        }
        self.costs.instructions += 1;
        let r = self.eval_inner(t, env);
        self.depth -= 1;
        r
    }

    fn eval_inner(&mut self, t: &Term, env: &mut Env) -> Result<Val, EvalError> {
        match t {
            Term::Unit => Ok(Val::Unit),
            Term::Bool(b) => Ok(Val::Bool(*b)),
            Term::Int(i) => Ok(Val::Int(*i)),
            Term::Var(v) => {
                self.costs.data_refs += 1;
                env.get(v).cloned().ok_or(EvalError::Unbound(*v))
            }
            Term::Let(x, a, b) => {
                let va = self.eval(a, env)?;
                self.costs.data_refs += 1;
                let old = env.insert(*x, va);
                let r = self.eval(b, env);
                match old {
                    Some(o) => {
                        env.insert(*x, o);
                    }
                    None => {
                        env.remove(x);
                    }
                }
                r
            }
            Term::If(c, th, el) => {
                self.costs.branches += 1;
                match self.eval(c, env)? {
                    Val::Bool(true) => self.eval(th, env),
                    Val::Bool(false) => self.eval(el, env),
                    _ => Err(EvalError::BadPrim("if on non-bool")),
                }
            }
            Term::Con(n, args) => {
                self.costs.allocations += 1;
                let vals = args
                    .iter()
                    .map(|a| self.eval(a, env))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Val::Con(*n, vals))
            }
            Term::Match(s, arms) => {
                let v = self.eval(s, env)?;
                self.costs.branches += 1;
                for (p, body) in arms {
                    match p {
                        Pattern::Wild => return self.eval(body, env),
                        Pattern::Con(n, binds) => {
                            if let Val::Con(vn, vargs) = &v {
                                if vn == n && vargs.len() == binds.len() {
                                    let olds: Vec<(Intern, Option<Val>)> = binds
                                        .iter()
                                        .zip(vargs.iter())
                                        .map(|(b, a)| {
                                            self.costs.data_refs += 1;
                                            (*b, env.insert(*b, a.clone()))
                                        })
                                        .collect();
                                    let r = self.eval(body, env);
                                    for (b, o) in olds.into_iter().rev() {
                                        match o {
                                            Some(o) => {
                                                env.insert(b, o);
                                            }
                                            None => {
                                                env.remove(&b);
                                            }
                                        }
                                    }
                                    return r;
                                }
                            }
                        }
                    }
                }
                Err(EvalError::MatchFailure)
            }
            Term::Prim(p, args) => {
                let vals = args
                    .iter()
                    .map(|a| self.eval(a, env))
                    .collect::<Result<Vec<_>, _>>()?;
                self.prim(*p, vals)
            }
            Term::GetF(e, f) => {
                let v = self.eval(e, env)?;
                self.costs.data_refs += 1;
                match v {
                    Val::Record(m) => m.get(f).cloned().ok_or(EvalError::NoField(*f)),
                    _ => Err(EvalError::BadPrim("field read on non-record")),
                }
            }
            Term::SetF(e, f, nv) => {
                let v = self.eval(e, env)?;
                let nv = self.eval(nv, env)?;
                self.costs.data_refs += 1;
                self.costs.allocations += 1;
                match v {
                    Val::Record(mut m) => {
                        m.insert(*f, nv);
                        Ok(Val::Record(m))
                    }
                    _ => Err(EvalError::BadPrim("field write on non-record")),
                }
            }
            Term::App(fname, args) => {
                let vals = args
                    .iter()
                    .map(|a| self.eval(a, env))
                    .collect::<Result<Vec<_>, _>>()?;
                let (params, body) = self.defs.get(*fname).ok_or(EvalError::UnknownFn(*fname))?;
                if params.len() != vals.len() {
                    return Err(EvalError::BadPrim("arity mismatch"));
                }
                let params: Vec<Intern> = params.to_vec();
                let body = body.clone();
                self.costs.dispatches += 1;
                let mut inner: Env = params.into_iter().zip(vals).collect();
                self.eval(&body, &mut inner)
            }
        }
    }

    fn prim(&mut self, p: Prim, vals: Vec<Val>) -> Result<Val, EvalError> {
        self.costs.data_refs += vals.len() as u64;
        let int = |v: &Val| v.as_int().ok_or(EvalError::BadPrim("expected int"));
        let boolean = |v: &Val| v.as_bool().ok_or(EvalError::BadPrim("expected bool"));
        Ok(match p {
            Prim::Add => Val::Int(int(&vals[0])? + int(&vals[1])?),
            Prim::Sub => Val::Int(int(&vals[0])? - int(&vals[1])?),
            Prim::Eq => Val::Bool(vals[0] == vals[1]),
            Prim::Lt => Val::Bool(int(&vals[0])? < int(&vals[1])?),
            Prim::And => Val::Bool(boolean(&vals[0])? && boolean(&vals[1])?),
            Prim::Or => Val::Bool(boolean(&vals[0])? || boolean(&vals[1])?),
            Prim::Not => Val::Bool(!boolean(&vals[0])?),
            Prim::VecGet => {
                let i = int(&vals[1])? as usize;
                match &vals[0] {
                    Val::Vector(v) => v
                        .get(i)
                        .cloned()
                        .ok_or(EvalError::BadPrim("vector index out of range"))?,
                    _ => return Err(EvalError::BadPrim("VecGet on non-vector")),
                }
            }
            Prim::MinVecSkip => {
                let skip = int(&vals[1])? as usize;
                match &vals[0] {
                    Val::Vector(v) => {
                        let m = v
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| *i != skip)
                            .map(|(_, x)| x.as_int().unwrap_or(i64::MAX))
                            .min()
                            .unwrap_or(i64::MAX);
                        Val::Int(m)
                    }
                    _ => return Err(EvalError::BadPrim("MinVecSkip on non-vector")),
                }
            }
            Prim::VecSet => {
                self.costs.allocations += 1;
                let i = int(&vals[1])? as usize;
                match &vals[0] {
                    Val::Vector(v) => {
                        if i >= v.len() {
                            return Err(EvalError::BadPrim("vector index out of range"));
                        }
                        let mut v2 = v.clone();
                        v2[i] = vals[2].clone();
                        Val::Vector(v2)
                    }
                    _ => return Err(EvalError::BadPrim("VecSet on non-vector")),
                }
            }
        })
    }
}

/// Evaluates a closed term (convenience).
pub fn eval(t: &Term, defs: &FnDefs) -> Result<Val, EvalError> {
    Evaluator::new(defs).eval(t, &mut HashMap::new())
}

/// Evaluates a term under the given bindings, returning value and costs.
pub fn eval_with(
    t: &Term,
    defs: &FnDefs,
    bindings: &[(&str, Val)],
) -> Result<(Val, Counters), EvalError> {
    let mut ev = Evaluator::new(defs);
    let mut env: Env = bindings
        .iter()
        .map(|(k, v)| (Intern::from(k), v.clone()))
        .collect();
    let v = ev.eval(t, &mut env)?;
    Ok((v, ev.costs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{add, app, con, eq, getf, if_, let_, list, match_, pat, prim, setf, var};

    fn defs() -> FnDefs {
        let mut d = FnDefs::new();
        d.define("inc", &["x"], add(var("x"), Term::Int(1)));
        d
    }

    #[test]
    fn arithmetic_and_let() {
        let t = let_("x", Term::Int(2), add(var("x"), Term::Int(3)));
        assert_eq!(eval(&t, &FnDefs::new()).unwrap(), Val::Int(5));
    }

    #[test]
    fn if_branches() {
        let t = if_(eq(Term::Int(1), Term::Int(1)), Term::Int(10), Term::Int(20));
        assert_eq!(eval(&t, &FnDefs::new()).unwrap(), Val::Int(10));
    }

    #[test]
    fn match_selects_arm_and_binds() {
        let t = match_(
            con("Data", vec![Term::Int(7)]),
            vec![
                (pat("Ack", &["a"]), var("a")),
                (pat("Data", &["s"]), add(var("s"), Term::Int(1))),
            ],
        );
        assert_eq!(eval(&t, &FnDefs::new()).unwrap(), Val::Int(8));
    }

    #[test]
    fn match_failure_reported() {
        let t = match_(con("Other", vec![]), vec![(pat("Data", &["s"]), var("s"))]);
        assert_eq!(eval(&t, &FnDefs::new()), Err(EvalError::MatchFailure));
    }

    #[test]
    fn records() {
        let t = let_("s", setf(var("s0"), "n", Term::Int(5)), getf(var("s"), "n"));
        let (v, costs) = eval_with(
            &t,
            &FnDefs::new(),
            &[("s0", Val::record(&[("n", Val::Int(0))]))],
        )
        .unwrap();
        assert_eq!(v, Val::Int(5));
        assert!(costs.instructions > 0);
        assert!(costs.allocations >= 1);
    }

    #[test]
    fn vectors() {
        let t = prim(
            Prim::VecGet,
            vec![
                prim(Prim::VecSet, vec![var("v"), Term::Int(1), Term::Int(9)]),
                Term::Int(1),
            ],
        );
        let (v, _) = eval_with(
            &t,
            &FnDefs::new(),
            &[("v", Val::Vector(vec![Val::Int(0), Val::Int(0)]))],
        )
        .unwrap();
        assert_eq!(v, Val::Int(9));
    }

    #[test]
    fn vector_bounds_checked() {
        let t = prim(Prim::VecGet, vec![var("v"), Term::Int(5)]);
        let r = eval_with(&t, &FnDefs::new(), &[("v", Val::Vector(vec![]))]);
        assert!(r.is_err());
    }

    #[test]
    fn function_application() {
        let t = app("inc", vec![Term::Int(41)]);
        assert_eq!(eval(&t, &defs()).unwrap(), Val::Int(42));
        let t = app("nope", vec![]);
        assert!(matches!(eval(&t, &defs()), Err(EvalError::UnknownFn(_))));
    }

    #[test]
    fn costs_accumulate() {
        let t = app("inc", vec![app("inc", vec![Term::Int(0)])]);
        let d = defs();
        let mut ev = Evaluator::new(&d);
        ev.eval(&t, &mut HashMap::new()).unwrap();
        assert_eq!(ev.costs.dispatches, 2);
        assert!(ev.costs.instructions >= 6);
    }

    #[test]
    fn shadowing_restored_after_let() {
        let t = let_(
            "x",
            Term::Int(1),
            add(let_("x", Term::Int(10), var("x")), var("x")),
        );
        assert_eq!(eval(&t, &FnDefs::new()).unwrap(), Val::Int(11));
    }

    #[test]
    fn list_literal_evaluates() {
        let t = list(vec![Term::Int(1), Term::Int(2)]);
        let v = eval(&t, &FnDefs::new()).unwrap();
        assert_eq!(v.un_list().unwrap(), vec![Val::Int(1), Val::Int(2)]);
    }

    #[test]
    fn unbound_variable_reported() {
        assert_eq!(
            eval(&var("ghost"), &FnDefs::new()),
            Err(EvalError::Unbound(Intern::from("ghost")))
        );
    }
}
