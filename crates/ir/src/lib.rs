//! A small term language with formal semantics, modelling layer handlers.
//!
//! The paper's optimization pipeline rests on importing Ensemble's OCaml
//! code into Nuprl as terms with a defined semantics (ref. \[14\] of the paper), which the
//! prover can then evaluate symbolically and rewrite. This crate is that
//! layer of the reproduction:
//!
//! * [`term`] — the term language (a mini-ML: let/if/match, constructors,
//!   records, vectors, primitives) with a pretty printer;
//! * [`val`] — the value domain;
//! * [`mod@eval`] — the concrete big-step evaluator, instrumented with cost
//!   counters (instructions, data references, allocations, branches) that
//!   drive the Table 2(a) cost-model experiment;
//! * [`models`] — the "imported code": IR models of the benchmarked
//!   layers' four fundamental cases (down/up × send/cast), with their
//!   per-layer common-case predicates. The `ensemble-synth` crate
//!   partially evaluates these models to synthesize bypass code, and its
//!   test-suite checks them against the native Rust layers.

#![forbid(unsafe_code)]

pub mod eval;
pub mod models;
pub mod term;
pub mod val;
pub mod visit;

pub use eval::{eval, EvalError, Evaluator};
// NOTE: `eval` names both the module and the convenience function; the
// re-export above is the function.
pub use term::{FnDefs, Pattern, Term};
pub use val::Val;
pub use visit::{collect_apps, collect_cons, collect_match_cons, mentions_con, walk, Walk};
