//! Analysis-facing term visitors.
//!
//! The static-analysis passes in `ensemble-analyze` (and the composer in
//! `ensemble-synth`) need to answer purely syntactic questions about
//! handler terms — "does this residual still mention the `Slow`
//! fallback?", "which header constructors does this handler build?" —
//! without duplicating the `Term` recursion at every call site. This
//! module centralizes that recursion:
//!
//! * [`walk`] — pre-order traversal calling a visitor on every subterm
//!   (the visitor can prune by returning [`Walk::Skip`]);
//! * [`mentions_con`] — does the term contain a constructor application
//!   of a given name anywhere?
//! * [`collect_cons`] — every constructor name built by the term, in
//!   first-occurrence order;
//! * [`collect_apps`] — every named-function application, with its
//!   argument lists, in pre-order;
//! * [`state_footprint`] — the read/write footprint of a state
//!   transformer (which state record fields it reads, and how it writes
//!   each one — the input to the Defer-commutativity dataflow pass);
//! * [`defer_index_is_monotone`] — proves a `Defer` site's index
//!   parameter is drawn from a monotone counter the handler increments,
//!   so distinct instances of the site write distinct cells.

use crate::term::{Pattern, Prim, Term};
use ensemble_util::Intern;
use std::collections::{BTreeMap, BTreeSet};

/// Visitor control: continue into children or prune this subtree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Walk {
    /// Recurse into the subterm's children.
    Continue,
    /// Do not descend into this subterm.
    Skip,
}

/// Pre-order traversal of `t`, visiting every subterm (including `t`
/// itself). The visitor decides per node whether to descend.
pub fn walk(t: &Term, f: &mut impl FnMut(&Term) -> Walk) {
    if f(t) == Walk::Skip {
        return;
    }
    match t {
        Term::Unit | Term::Bool(_) | Term::Int(_) | Term::Var(_) => {}
        Term::Let(_, a, b) => {
            walk(a, f);
            walk(b, f);
        }
        Term::If(c, a, b) => {
            walk(c, f);
            walk(a, f);
            walk(b, f);
        }
        Term::Con(_, args) | Term::Prim(_, args) | Term::App(_, args) => {
            for a in args {
                walk(a, f);
            }
        }
        Term::Match(s, arms) => {
            walk(s, f);
            for (_, body) in arms {
                walk(body, f);
            }
        }
        Term::GetF(e, _) => walk(e, f),
        Term::SetF(e, _, v) => {
            walk(e, f);
            walk(v, f);
        }
    }
}

/// Whether `t` contains a constructor application named `name` anywhere
/// (in any position, including match scrutinees and event payloads).
pub fn mentions_con(t: &Term, name: &str) -> bool {
    let target = Intern::from(name);
    let mut found = false;
    walk(t, &mut |sub| {
        if found {
            return Walk::Skip;
        }
        if let Term::Con(n, _) = sub {
            if *n == target {
                found = true;
                return Walk::Skip;
            }
        }
        Walk::Continue
    });
    found
}

/// Every constructor name the term builds, in first-occurrence
/// (pre-order) order, without duplicates.
pub fn collect_cons(t: &Term) -> Vec<Intern> {
    let mut out = Vec::new();
    walk(t, &mut |sub| {
        if let Term::Con(n, _) = sub {
            if !out.contains(n) {
                out.push(*n);
            }
        }
        Walk::Continue
    });
    out
}

/// Every named-function application `(name, args)` in pre-order (with
/// duplicates — one entry per call site).
pub fn collect_apps(t: &Term) -> Vec<(Intern, Vec<Term>)> {
    let mut out = Vec::new();
    walk(t, &mut |sub| {
        if let Term::App(n, args) = sub {
            out.push((*n, args.clone()));
        }
        Walk::Continue
    });
    out
}

/// The constructor names matched against in the patterns of `t`'s
/// `match` arms, in first-occurrence order (wildcards excluded).
pub fn collect_match_cons(t: &Term) -> Vec<Intern> {
    let mut out = Vec::new();
    walk(t, &mut |sub| {
        if let Term::Match(_, arms) = sub {
            for (p, _) in arms {
                if let Pattern::Con(n, _) = p {
                    if !out.contains(n) {
                        out.push(*n);
                    }
                }
            }
        }
        Walk::Continue
    });
    out
}

/// How a state transformer writes one field of the state record. The
/// classification is what the Defer-commutativity pass reasons with:
/// increments and max-merges commute among themselves; indexed inserts
/// commute when their indices are provably distinct; recomputes are
/// idempotent pure functions of the state; anything else is an opaque
/// overwrite that commutes with nothing touching the same field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteKind {
    /// `f := f + k` or `f[i] := f[i] + k` — commutes with other
    /// increments of the same field.
    Increment,
    /// `f := max(f, x)` or `f[i] := max(f[i], x)` — a monotone merge;
    /// commutes with other merges of the same field.
    MergeMax,
    /// `f[i] := e` where `i` is a parameter — commutes with other
    /// instances only if the index is proven unique per instance (see
    /// [`defer_index_is_monotone`]).
    IndexedInsert,
    /// `f := pure_fn(state)` — reads other fields, writes a derived
    /// value; idempotent, so instances of the *same* site commute.
    Recompute,
    /// Any other write; commutes with nothing that touches the field.
    Overwrite,
}

impl WriteKind {
    /// Stable lower-case name (used in certificates and reports).
    pub fn name(self) -> &'static str {
        match self {
            WriteKind::Increment => "increment",
            WriteKind::MergeMax => "merge_max",
            WriteKind::IndexedInsert => "indexed_insert",
            WriteKind::Recompute => "recompute",
            WriteKind::Overwrite => "overwrite",
        }
    }
}

/// One classified field write of a state transformer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FieldWrite {
    /// The state record field written.
    pub field: Intern,
    /// How it is written.
    pub kind: WriteKind,
    /// For vector writes, the index expression's variable (when the
    /// index is a plain parameter).
    pub index: Option<Intern>,
}

/// The read/write footprint of a state transformer term.
///
/// `reads` excludes fields the term also writes: the read half of a
/// read-modify-write (and the functional re-read a `VecSet` performs)
/// is intrinsic to the write and carries no ordering constraint of its
/// own. What remains are *pure input* fields — the ones whose value at
/// execution time changes the result (the `Recompute` inputs).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Fields read as pure inputs, sorted.
    pub reads: Vec<Intern>,
    /// Classified writes, in discovery order.
    pub writes: Vec<FieldWrite>,
}

impl Footprint {
    /// All fields the transformer touches (reads ∪ writes), sorted.
    pub fn touched(&self) -> Vec<Intern> {
        let mut s: BTreeSet<Intern> = self.reads.iter().copied().collect();
        s.extend(self.writes.iter().map(|w| w.field));
        s.into_iter().collect()
    }
}

/// Whether `t` is a reference to the state record itself: the state
/// variable, an alias of it, or a functional update (`SetF`) of one.
fn is_state_root(t: &Term, aliases: &BTreeSet<Intern>) -> bool {
    match t {
        Term::Var(v) => aliases.contains(v),
        Term::SetF(inner, _, _) => is_state_root(inner, aliases),
        _ => false,
    }
}

/// `GetF(state, f)` for some state alias → `Some(f)`.
fn state_field(t: &Term, aliases: &BTreeSet<Intern>) -> Option<Intern> {
    match t {
        Term::GetF(e, f) if is_state_root(e, aliases) => Some(*f),
        _ => None,
    }
}

/// Matches `max(cur, x)` rendered as `If(Lt(cur, x), x, cur)` where
/// `cur` is the current value of the written cell.
fn is_max_merge(value: &Term, cur: &Term) -> bool {
    match value {
        Term::If(c, a, b) => match &**c {
            Term::Prim(Prim::Lt, args) if args.len() == 2 => {
                args[0] == *cur && args[1] == **a && **b == *cur
            }
            _ => false,
        },
        _ => false,
    }
}

/// Whether every free variable of `value` is a state alias — i.e. the
/// value is a pure function of the state record.
fn pure_in_state(value: &Term, aliases: &BTreeSet<Intern>) -> bool {
    value.free_vars().iter().all(|v| aliases.contains(v))
}

/// Expands let-bound temporaries inside `t` so classification sees the
/// underlying state reads (`let mine = seen[rank] in seen[rank] :=
/// mine + 1` classifies as an increment, not an opaque write). Models
/// do not shadow binders, so plain repeated substitution suffices; the
/// iteration bound guards against pathological self-reference.
fn resolve(t: &Term, bindings: &BTreeMap<Intern, Term>) -> Term {
    let mut out = t.clone();
    for _ in 0..8 {
        let mut changed = false;
        for v in out.free_vars() {
            if let Some(b) = bindings.get(&v) {
                out = out.subst(v, b);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    out
}

fn classify_write(
    field: Intern,
    value: &Term,
    aliases: &BTreeSet<Intern>,
    bindings: &BTreeMap<Intern, Term>,
) -> FieldWrite {
    let value = &resolve(value, bindings);
    // "Current value of the cell", normalized against any state alias.
    let cur_scalar = |t: &Term| matches!(state_field(t, aliases), Some(f) if f == field);
    // f := f + k
    if let Term::Prim(Prim::Add, args) = value {
        if args.iter().any(&cur_scalar) {
            return FieldWrite {
                field,
                kind: WriteKind::Increment,
                index: None,
            };
        }
    }
    // f := max(f, x)
    if let Term::If(c, _, b) = value {
        if cur_scalar(b) {
            if let Term::Prim(Prim::Lt, args) = &**c {
                if args.len() == 2 && cur_scalar(&args[0]) {
                    return FieldWrite {
                        field,
                        kind: WriteKind::MergeMax,
                        index: None,
                    };
                }
            }
        }
    }
    // f[i] := …
    if let Term::Prim(Prim::VecSet, args) = value {
        if args.len() == 3 && state_field(&args[0], aliases) == Some(field) {
            let idx = &args[1];
            let index = match idx {
                Term::Var(v) => Some(*v),
                _ => None,
            };
            let cur = Term::Prim(Prim::VecGet, vec![args[0].clone(), idx.clone()]);
            // f[i] := f[i] + k
            if let Term::Prim(Prim::Add, inner) = &args[2] {
                if inner.contains(&cur) {
                    return FieldWrite {
                        field,
                        kind: WriteKind::Increment,
                        index,
                    };
                }
            }
            // f[i] := max(f[i], x)
            if is_max_merge(&args[2], &cur) {
                return FieldWrite {
                    field,
                    kind: WriteKind::MergeMax,
                    index,
                };
            }
            // f[i] := e with a parameter index
            if index.is_some() && !aliases.contains(&index.unwrap()) {
                return FieldWrite {
                    field,
                    kind: WriteKind::IndexedInsert,
                    index,
                };
            }
        }
    }
    // f := pure_fn(state)
    if pure_in_state(value, aliases) {
        return FieldWrite {
            field,
            kind: WriteKind::Recompute,
            index: None,
        };
    }
    FieldWrite {
        field,
        kind: WriteKind::Overwrite,
        index: None,
    }
}

fn footprint_walk(
    t: &Term,
    aliases: &mut BTreeSet<Intern>,
    bindings: &mut BTreeMap<Intern, Term>,
    reads: &mut BTreeSet<Intern>,
    writes: &mut Vec<FieldWrite>,
) {
    match t {
        Term::SetF(target, field, value) if is_state_root(target, aliases) => {
            writes.push(classify_write(*field, value, aliases, bindings));
            footprint_walk(target, aliases, bindings, reads, writes);
            footprint_walk(value, aliases, bindings, reads, writes);
        }
        Term::GetF(e, f) if is_state_root(e, aliases) => {
            reads.insert(*f);
            footprint_walk(e, aliases, bindings, reads, writes);
        }
        Term::Let(x, v, body) => {
            footprint_walk(v, aliases, bindings, reads, writes);
            let added = if is_state_root(v, aliases) {
                aliases.insert(*x)
            } else {
                // A rebound name shadows any outer alias.
                aliases.remove(x);
                bindings.insert(*x, (**v).clone());
                false
            };
            footprint_walk(body, aliases, bindings, reads, writes);
            if added {
                aliases.remove(x);
            } else {
                bindings.remove(x);
            }
        }
        Term::Unit | Term::Bool(_) | Term::Int(_) | Term::Var(_) => {}
        Term::If(c, a, b) => {
            footprint_walk(c, aliases, bindings, reads, writes);
            footprint_walk(a, aliases, bindings, reads, writes);
            footprint_walk(b, aliases, bindings, reads, writes);
        }
        Term::Con(_, args) | Term::Prim(_, args) | Term::App(_, args) => {
            for a in args {
                footprint_walk(a, aliases, bindings, reads, writes);
            }
        }
        Term::Match(s, arms) => {
            footprint_walk(s, aliases, bindings, reads, writes);
            for (_, body) in arms {
                footprint_walk(body, aliases, bindings, reads, writes);
            }
        }
        Term::GetF(e, _) => footprint_walk(e, aliases, bindings, reads, writes),
        Term::SetF(e, _, v) => {
            footprint_walk(e, aliases, bindings, reads, writes);
            footprint_walk(v, aliases, bindings, reads, writes);
        }
    }
}

/// Computes the state read/write footprint of `t`, where `state` names
/// the state record variable. Variables let-bound to (functional updates
/// of) the state are tracked as aliases, so chained `SetF`s through
/// `Let` bindings attribute correctly.
pub fn state_footprint(t: &Term, state: &str) -> Footprint {
    let mut aliases: BTreeSet<Intern> = BTreeSet::new();
    aliases.insert(Intern::from(state));
    let mut bindings: BTreeMap<Intern, Term> = BTreeMap::new();
    let mut reads = BTreeSet::new();
    let mut writes = Vec::new();
    footprint_walk(t, &mut aliases, &mut bindings, &mut reads, &mut writes);
    for w in &writes {
        reads.remove(&w.field);
    }
    Footprint {
        reads: reads.into_iter().collect(),
        writes,
    }
}

/// Proves that every `Defer(Con(tag, args))` site in `handler` draws
/// `args[param_idx]` from a *monotone counter*: the argument is a
/// variable let-bound to `getf(state, c)` (or `vget(getf(state, c), k)`)
/// and the same handler advances `c` (resp. slot `k`) past it with an
/// increment. Distinct instances of the site then carry distinct index
/// values, so indexed inserts keyed by the parameter write distinct
/// cells and commute. Returns `false` when the handler has no such site
/// or any site fails the proof.
pub fn defer_index_is_monotone(handler: &Term, state: &str, tag: &str, param_idx: usize) -> bool {
    let state_var = Intern::from(state);
    let tag = Intern::from(tag);
    let defer = Intern::from("Defer");
    let mut aliases: BTreeSet<Intern> = BTreeSet::new();
    aliases.insert(state_var);
    // Let bindings in scope anywhere in the handler (handlers are small
    // and models do not shadow binders across branches).
    let mut bindings: BTreeMap<Intern, Term> = BTreeMap::new();
    walk(handler, &mut |sub| {
        if let Term::Let(x, v, _) = sub {
            bindings.insert(*x, (**v).clone());
        }
        Walk::Continue
    });
    let mut sites = 0usize;
    let mut ok = true;
    walk(handler, &mut |sub| {
        if let Term::Con(n, args) = sub {
            if *n == defer && args.len() == 1 {
                if let Term::Con(t, targs) = &args[0] {
                    if *t == tag {
                        sites += 1;
                        ok &= monotone_site(handler, &aliases, &bindings, targs, param_idx);
                        return Walk::Skip;
                    }
                }
            }
        }
        Walk::Continue
    });
    sites > 0 && ok
}

fn monotone_site(
    handler: &Term,
    aliases: &BTreeSet<Intern>,
    bindings: &BTreeMap<Intern, Term>,
    args: &[Term],
    param_idx: usize,
) -> bool {
    let Some(Term::Var(x)) = args.get(param_idx) else {
        return false;
    };
    let Some(src) = bindings.get(x) else {
        return false;
    };
    match src {
        // x = getf(state, c): handler must write c with an increment
        // past x.
        t if state_field(t, aliases).is_some() => {
            let c = state_field(t, aliases).unwrap();
            let mut advanced = false;
            walk(handler, &mut |sub| {
                if let Term::SetF(target, f, value) = sub {
                    if *f == c && is_state_root(target, aliases) {
                        if let Term::Prim(Prim::Add, inner) = &**value {
                            advanced |= inner.iter().any(|a| matches!(a, Term::Var(v) if v == x));
                        }
                    }
                }
                Walk::Continue
            });
            advanced
        }
        // x = vget(getf(state, c), k): handler must write slot k of c
        // with an increment past x.
        Term::Prim(Prim::VecGet, vargs) if vargs.len() == 2 => {
            let Some(c) = state_field(&vargs[0], aliases) else {
                return false;
            };
            let k = vargs[1].clone();
            let mut advanced = false;
            walk(handler, &mut |sub| {
                if let Term::SetF(target, f, value) = sub {
                    if *f == c && is_state_root(target, aliases) {
                        if let Term::Prim(Prim::VecSet, sargs) = &**value {
                            if sargs.len() == 3 && sargs[1] == k {
                                if let Term::Prim(Prim::Add, inner) = &sargs[2] {
                                    advanced |=
                                        inner.iter().any(|a| matches!(a, Term::Var(v) if v == x));
                                }
                            }
                        }
                    }
                }
                Walk::Continue
            });
            advanced
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{add, app, con, if_, let_, match_, pat, var, Term};

    #[test]
    fn walk_visits_every_node() {
        let t = let_("x", Term::Int(1), if_(var("x"), con("A", vec![]), var("y")));
        let mut n = 0;
        walk(&t, &mut |_| {
            n += 1;
            Walk::Continue
        });
        assert_eq!(n, t.size());
    }

    #[test]
    fn walk_skip_prunes() {
        let t = if_(var("c"), con("A", vec![con("B", vec![])]), var("y"));
        let mut seen = Vec::new();
        walk(&t, &mut |sub| {
            if let Term::Con(n, _) = sub {
                seen.push(n.as_str());
                return Walk::Skip; // do not descend into B
            }
            Walk::Continue
        });
        assert_eq!(seen, vec!["A"]);
    }

    #[test]
    fn mentions_con_finds_nested() {
        let t = match_(
            var("e"),
            vec![(pat("X", &["a"]), con("Slow", vec![var("a")]))],
        );
        assert!(mentions_con(&t, "Slow"));
        assert!(!mentions_con(&t, "Fast"));
        // Pattern names are not constructor *applications*.
        assert!(!mentions_con(&t, "X"));
    }

    #[test]
    fn collect_cons_is_ordered_and_deduped() {
        let t = con("A", vec![con("B", vec![]), con("A", vec![])]);
        let names: Vec<String> = collect_cons(&t).iter().map(|n| n.as_str()).collect();
        assert_eq!(names, vec!["A", "B"]);
    }

    #[test]
    fn collect_apps_keeps_call_sites() {
        let t = add(app("f", vec![var("x")]), app("f", vec![var("y")]));
        let apps = collect_apps(&t);
        assert_eq!(apps.len(), 2);
        assert_eq!(apps[0].0.as_str(), "f");
    }

    #[test]
    fn collect_match_cons_reads_patterns() {
        let t = match_(
            var("e"),
            vec![
                (pat("Data", &["s"]), var("s")),
                (pat("Ack", &[]), var("z")),
                (crate::term::Pattern::Wild, var("z")),
            ],
        );
        let names: Vec<String> = collect_match_cons(&t).iter().map(|n| n.as_str()).collect();
        assert_eq!(names, vec!["Data", "Ack"]);
    }

    use crate::term::{getf, prim, setf, Prim};

    fn vget(v: Term, i: Term) -> Term {
        prim(Prim::VecGet, vec![v, i])
    }
    fn vset(v: Term, i: Term, x: Term) -> Term {
        prim(Prim::VecSet, vec![v, i, x])
    }
    fn state() -> Term {
        var("state")
    }
    fn kinds(fp: &Footprint) -> Vec<(String, WriteKind)> {
        fp.writes
            .iter()
            .map(|w| (w.field.as_str(), w.kind))
            .collect()
    }
    fn k(pairs: &[(&str, WriteKind)]) -> Vec<(String, WriteKind)> {
        pairs.iter().map(|(f, w)| (f.to_string(), *w)).collect()
    }

    #[test]
    fn footprint_scalar_increment() {
        let t = setf(state(), "n", add(getf(state(), "n"), Term::Int(1)));
        let fp = state_footprint(&t, "state");
        assert_eq!(kinds(&fp), k(&[("n", WriteKind::Increment)]));
        // The RMW read of `n` is intrinsic to the write, not a pure input.
        assert!(fp.reads.is_empty());
    }

    #[test]
    fn footprint_slot_increment_keeps_index() {
        let t = setf(
            state(),
            "seen",
            vset(
                getf(state(), "seen"),
                var("origin"),
                add(vget(getf(state(), "seen"), var("origin")), Term::Int(1)),
            ),
        );
        let fp = state_footprint(&t, "state");
        assert_eq!(kinds(&fp), k(&[("seen", WriteKind::Increment)]));
        assert_eq!(
            fp.writes[0].index.map(|i| i.as_str()),
            Some("origin".into())
        );
        assert!(fp.reads.is_empty());
    }

    #[test]
    fn footprint_scalar_and_slot_merge_max() {
        let cur = getf(state(), "hi");
        let t = setf(
            state(),
            "hi",
            if_(prim(Prim::Lt, vec![cur.clone(), var("x")]), var("x"), cur),
        );
        assert_eq!(
            kinds(&state_footprint(&t, "state")),
            k(&[("hi", WriteKind::MergeMax)])
        );

        let slot = vget(getf(state(), "hi"), var("o"));
        let t = setf(
            state(),
            "hi",
            vset(
                getf(state(), "hi"),
                var("o"),
                if_(prim(Prim::Lt, vec![slot.clone(), var("x")]), var("x"), slot),
            ),
        );
        let fp = state_footprint(&t, "state");
        assert_eq!(kinds(&fp), k(&[("hi", WriteKind::MergeMax)]));
        assert_eq!(fp.writes[0].index.map(|i| i.as_str()), Some("o".into()));
    }

    #[test]
    fn footprint_indexed_insert_and_overwrite() {
        let t = setf(
            state(),
            "buf",
            vset(getf(state(), "buf"), var("seq"), var("payload")),
        );
        let fp = state_footprint(&t, "state");
        assert_eq!(kinds(&fp), k(&[("buf", WriteKind::IndexedInsert)]));
        assert_eq!(fp.writes[0].index.map(|i| i.as_str()), Some("seq".into()));

        let t = setf(state(), "x", var("y"));
        assert_eq!(
            kinds(&state_footprint(&t, "state")),
            k(&[("x", WriteKind::Overwrite)])
        );
    }

    #[test]
    fn footprint_recompute_reports_pure_reads() {
        let t = setf(
            state(),
            "stability",
            prim(
                Prim::MinVecSkip,
                vec![getf(state(), "seen"), getf(state(), "rank")],
            ),
        );
        let fp = state_footprint(&t, "state");
        assert_eq!(kinds(&fp), k(&[("stability", WriteKind::Recompute)]));
        let reads: Vec<String> = fp.reads.iter().map(|r| r.as_str()).collect();
        assert_eq!(reads, vec!["rank", "seen"]);
        let touched: Vec<String> = fp.touched().iter().map(|r| r.as_str()).collect();
        assert_eq!(touched, vec!["rank", "seen", "stability"]);
    }

    #[test]
    fn footprint_tracks_aliases_through_lets() {
        // let s1 = state{a := a+1} in s1{b := max(b, x)}
        let t = let_(
            "s1",
            setf(state(), "a", add(getf(state(), "a"), Term::Int(1))),
            setf(
                var("s1"),
                "b",
                if_(
                    prim(Prim::Lt, vec![getf(var("s1"), "b"), var("x")]),
                    var("x"),
                    getf(var("s1"), "b"),
                ),
            ),
        );
        let fp = state_footprint(&t, "state");
        assert_eq!(
            kinds(&fp),
            k(&[("a", WriteKind::Increment), ("b", WriteKind::MergeMax)])
        );
    }

    #[test]
    fn footprint_resolves_let_bound_cell_reads() {
        // collect-style: let mine = seen[rank] in seen[rank] := mine + 1
        // must classify as a slot increment, not an opaque write.
        let t = let_(
            "mine",
            vget(getf(state(), "seen"), getf(state(), "rank")),
            setf(
                state(),
                "seen",
                vset(
                    getf(state(), "seen"),
                    getf(state(), "rank"),
                    add(var("mine"), Term::Int(1)),
                ),
            ),
        );
        let fp = state_footprint(&t, "state");
        assert_eq!(kinds(&fp), k(&[("seen", WriteKind::Increment)]));
        // total-style scalar through a temporary.
        let t = let_(
            "o",
            getf(state(), "order_next"),
            setf(state(), "order_next", add(var("o"), Term::Int(1))),
        );
        assert_eq!(
            kinds(&state_footprint(&t, "state")),
            k(&[("order_next", WriteKind::Increment)])
        );
    }

    /// mnak-style monotone counter: seq is read from the counter and the
    /// same handler advances the counter past it.
    fn counter_handler() -> Term {
        let_(
            "seq",
            getf(state(), "cast_next"),
            let_(
                "s1",
                setf(state(), "cast_next", add(var("seq"), Term::Int(1))),
                con(
                    "Out",
                    vec![
                        var("s1"),
                        con("Defer", vec![con("StoreOwn", vec![var("seq")])]),
                    ],
                ),
            ),
        )
    }

    #[test]
    fn monotone_scalar_counter_is_proven() {
        assert!(defer_index_is_monotone(
            &counter_handler(),
            "state",
            "StoreOwn",
            0
        ));
        // Wrong tag, wrong arity, or absent site all fail.
        assert!(!defer_index_is_monotone(
            &counter_handler(),
            "state",
            "Store",
            0
        ));
        assert!(!defer_index_is_monotone(
            &counter_handler(),
            "state",
            "StoreOwn",
            1
        ));
    }

    #[test]
    fn monotone_vector_counter_is_proven() {
        // pt2pt-style: seq = send_next[dst]; send_next[dst] := seq + 1.
        let t = let_(
            "seq",
            vget(getf(state(), "send_next"), var("dst")),
            let_(
                "s1",
                setf(
                    state(),
                    "send_next",
                    vset(
                        getf(state(), "send_next"),
                        var("dst"),
                        add(var("seq"), Term::Int(1)),
                    ),
                ),
                con(
                    "Out",
                    vec![
                        var("s1"),
                        con(
                            "Defer",
                            vec![con("BufferUnacked", vec![var("dst"), var("seq")])],
                        ),
                    ],
                ),
            ),
        );
        assert!(defer_index_is_monotone(&t, "state", "BufferUnacked", 1));
        // dst is a plain parameter, not a counter read.
        assert!(!defer_index_is_monotone(&t, "state", "BufferUnacked", 0));
    }

    #[test]
    fn unadvanced_counter_is_rejected() {
        // seq is read but never incremented past — replays reuse it.
        let t = let_(
            "seq",
            getf(state(), "cast_next"),
            con(
                "Out",
                vec![
                    state(),
                    con("Defer", vec![con("StoreOwn", vec![var("seq")])]),
                ],
            ),
        );
        assert!(!defer_index_is_monotone(&t, "state", "StoreOwn", 0));
    }
}
