//! Analysis-facing term visitors.
//!
//! The static-analysis passes in `ensemble-analyze` (and the composer in
//! `ensemble-synth`) need to answer purely syntactic questions about
//! handler terms — "does this residual still mention the `Slow`
//! fallback?", "which header constructors does this handler build?" —
//! without duplicating the `Term` recursion at every call site. This
//! module centralizes that recursion:
//!
//! * [`walk`] — pre-order traversal calling a visitor on every subterm
//!   (the visitor can prune by returning [`Walk::Skip`]);
//! * [`mentions_con`] — does the term contain a constructor application
//!   of a given name anywhere?
//! * [`collect_cons`] — every constructor name built by the term, in
//!   first-occurrence order;
//! * [`collect_apps`] — every named-function application, with its
//!   argument lists, in pre-order.

use crate::term::{Pattern, Term};
use ensemble_util::Intern;

/// Visitor control: continue into children or prune this subtree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Walk {
    /// Recurse into the subterm's children.
    Continue,
    /// Do not descend into this subterm.
    Skip,
}

/// Pre-order traversal of `t`, visiting every subterm (including `t`
/// itself). The visitor decides per node whether to descend.
pub fn walk(t: &Term, f: &mut impl FnMut(&Term) -> Walk) {
    if f(t) == Walk::Skip {
        return;
    }
    match t {
        Term::Unit | Term::Bool(_) | Term::Int(_) | Term::Var(_) => {}
        Term::Let(_, a, b) => {
            walk(a, f);
            walk(b, f);
        }
        Term::If(c, a, b) => {
            walk(c, f);
            walk(a, f);
            walk(b, f);
        }
        Term::Con(_, args) | Term::Prim(_, args) | Term::App(_, args) => {
            for a in args {
                walk(a, f);
            }
        }
        Term::Match(s, arms) => {
            walk(s, f);
            for (_, body) in arms {
                walk(body, f);
            }
        }
        Term::GetF(e, _) => walk(e, f),
        Term::SetF(e, _, v) => {
            walk(e, f);
            walk(v, f);
        }
    }
}

/// Whether `t` contains a constructor application named `name` anywhere
/// (in any position, including match scrutinees and event payloads).
pub fn mentions_con(t: &Term, name: &str) -> bool {
    let target = Intern::from(name);
    let mut found = false;
    walk(t, &mut |sub| {
        if found {
            return Walk::Skip;
        }
        if let Term::Con(n, _) = sub {
            if *n == target {
                found = true;
                return Walk::Skip;
            }
        }
        Walk::Continue
    });
    found
}

/// Every constructor name the term builds, in first-occurrence
/// (pre-order) order, without duplicates.
pub fn collect_cons(t: &Term) -> Vec<Intern> {
    let mut out = Vec::new();
    walk(t, &mut |sub| {
        if let Term::Con(n, _) = sub {
            if !out.contains(n) {
                out.push(*n);
            }
        }
        Walk::Continue
    });
    out
}

/// Every named-function application `(name, args)` in pre-order (with
/// duplicates — one entry per call site).
pub fn collect_apps(t: &Term) -> Vec<(Intern, Vec<Term>)> {
    let mut out = Vec::new();
    walk(t, &mut |sub| {
        if let Term::App(n, args) = sub {
            out.push((*n, args.clone()));
        }
        Walk::Continue
    });
    out
}

/// The constructor names matched against in the patterns of `t`'s
/// `match` arms, in first-occurrence order (wildcards excluded).
pub fn collect_match_cons(t: &Term) -> Vec<Intern> {
    let mut out = Vec::new();
    walk(t, &mut |sub| {
        if let Term::Match(_, arms) = sub {
            for (p, _) in arms {
                if let Pattern::Con(n, _) = p {
                    if !out.contains(n) {
                        out.push(*n);
                    }
                }
            }
        }
        Walk::Continue
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{add, app, con, if_, let_, match_, pat, var, Term};

    #[test]
    fn walk_visits_every_node() {
        let t = let_("x", Term::Int(1), if_(var("x"), con("A", vec![]), var("y")));
        let mut n = 0;
        walk(&t, &mut |_| {
            n += 1;
            Walk::Continue
        });
        assert_eq!(n, t.size());
    }

    #[test]
    fn walk_skip_prunes() {
        let t = if_(var("c"), con("A", vec![con("B", vec![])]), var("y"));
        let mut seen = Vec::new();
        walk(&t, &mut |sub| {
            if let Term::Con(n, _) = sub {
                seen.push(n.as_str());
                return Walk::Skip; // do not descend into B
            }
            Walk::Continue
        });
        assert_eq!(seen, vec!["A"]);
    }

    #[test]
    fn mentions_con_finds_nested() {
        let t = match_(
            var("e"),
            vec![(pat("X", &["a"]), con("Slow", vec![var("a")]))],
        );
        assert!(mentions_con(&t, "Slow"));
        assert!(!mentions_con(&t, "Fast"));
        // Pattern names are not constructor *applications*.
        assert!(!mentions_con(&t, "X"));
    }

    #[test]
    fn collect_cons_is_ordered_and_deduped() {
        let t = con("A", vec![con("B", vec![]), con("A", vec![])]);
        let names: Vec<String> = collect_cons(&t).iter().map(|n| n.as_str()).collect();
        assert_eq!(names, vec!["A", "B"]);
    }

    #[test]
    fn collect_apps_keeps_call_sites() {
        let t = add(app("f", vec![var("x")]), app("f", vec![var("y")]));
        let apps = collect_apps(&t);
        assert_eq!(apps.len(), 2);
        assert_eq!(apps[0].0.as_str(), "f");
    }

    #[test]
    fn collect_match_cons_reads_patterns() {
        let t = match_(
            var("e"),
            vec![
                (pat("Data", &["s"]), var("s")),
                (pat("Ack", &[]), var("z")),
                (crate::term::Pattern::Wild, var("z")),
            ],
        );
        let names: Vec<String> = collect_match_cons(&t).iter().map(|n| n.as_str()).collect();
        assert_eq!(names, vec!["Data", "Ack"]);
    }
}
