//! A minimal JSON value: renderer *and* parser, dependency-free.
//!
//! The exporter side writes `BENCH_table2a.json` and JSONL trace dumps;
//! the parser side lets CI re-read those files and assert on their shape
//! without reaching for python or crates.io. It is a strict subset of
//! JSON: numbers are `i64` or `f64`, strings escape the mandatory set,
//! and the parser rejects anything it would not itself have written
//! (with the usual whitespace tolerance).

use std::fmt::Write as _;

use crate::trace::TraceEvent;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept exact; JSON does not distinguish, we do).
    Int(i64),
    /// A float. Must be finite — JSON has no NaN/Infinity.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion order is preserved on render.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset and what went wrong.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub at: usize,
    /// Human-readable description of the failure.
    pub msg: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for an object entry list.
    pub fn obj(entries: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Member lookup on an object; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string value, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(n) => {
                // JSON has no NaN/Infinity; emit null rather than garbage.
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text. The whole input must be one value (plus
    /// surrounding whitespace).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                at: pos,
                msg: "trailing characters after value",
            });
        }
        Ok(value)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    match bytes.get(*pos) {
        None => Err(JsonError {
            at: *pos,
            msg: "unexpected end of input",
        }),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, b"true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, b"false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, b"null", Json::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(_) => Err(JsonError {
            at: *pos,
            msg: "unexpected character",
        }),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &'static [u8],
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(JsonError {
            at: *pos,
            msg: "invalid literal",
        })
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| JsonError {
        at: start,
        msg: "invalid number",
    })?;
    if float {
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            at: start,
            msg: "invalid number",
        })
    } else {
        text.parse::<i64>().map(Json::Int).map_err(|_| JsonError {
            at: start,
            msg: "invalid number",
        })
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => {
                return Err(JsonError {
                    at: *pos,
                    msg: "unterminated string",
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes.get(*pos + 1..*pos + 5).ok_or(JsonError {
                            at: *pos,
                            msg: "truncated \\u escape",
                        })?;
                        let hex = std::str::from_utf8(hex).map_err(|_| JsonError {
                            at: *pos,
                            msg: "invalid \\u escape",
                        })?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| JsonError {
                            at: *pos,
                            msg: "invalid \\u escape",
                        })?;
                        // Surrogate pairs are not needed for our own
                        // output (we only \u-escape control chars).
                        out.push(char::from_u32(code).ok_or(JsonError {
                            at: *pos,
                            msg: "invalid \\u code point",
                        })?);
                        *pos += 4;
                    }
                    _ => {
                        return Err(JsonError {
                            at: *pos,
                            msg: "invalid escape",
                        })
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one full UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| JsonError {
                    at: *pos,
                    msg: "invalid utf-8 in string",
                })?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => {
                return Err(JsonError {
                    at: *pos,
                    msg: "expected ',' or ']'",
                })
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut entries = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(entries));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(JsonError {
                at: *pos,
                msg: "expected string key",
            });
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(JsonError {
                at: *pos,
                msg: "expected ':'",
            });
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos)?;
        entries.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            _ => {
                return Err(JsonError {
                    at: *pos,
                    msg: "expected ',' or '}'",
                })
            }
        }
    }
}

/// Converts one drained trace event to a JSON object.
pub fn event_to_json(e: &TraceEvent) -> Json {
    Json::obj(vec![
        ("t_ns", Json::Int(e.t_ns as i64)),
        ("layer", Json::str(e.layer)),
        ("kind", Json::str(e.kind.name())),
        ("dir", Json::str(e.dir.name())),
        ("group", Json::Int(e.group as i64)),
        ("seqno", Json::Int(e.seqno as i64)),
        ("ccp", Json::str(e.ccp.name())),
        ("aux", Json::Int(e.aux as i64)),
    ])
}

/// Writes trace events as JSON Lines (one compact object per line).
pub fn write_jsonl<W: std::io::Write>(w: &mut W, events: &[TraceEvent]) -> std::io::Result<()> {
    for e in events {
        writeln!(w, "{}", event_to_json(e).render())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_roundtrip() {
        let v = Json::obj(vec![
            ("name", Json::str("table2a")),
            ("rounds", Json::Int(10_000)),
            ("ratio", Json::Num(0.53)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "engines",
                Json::Arr(vec![Json::str("IMP"), Json::str("MACH")]),
            ),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Json::str("a\"b\\c\nd\te\u{1}");
        let text = v.render();
        assert_eq!(text, r#""a\"b\\c\nd\te\u0001""#);
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn negative_and_float_numbers() {
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("2.5e3").unwrap(), Json::Num(2500.0));
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a":[1,2],"b":"x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_int(), Some(1));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn jsonl_lines_parse_back() {
        use crate::trace::{CcpFailure, Direction, Event, EventKind, Recorder};
        let r = Recorder::new(1, 16);
        let tag = r.register("mnak");
        r.record(
            0,
            &Event {
                t_ns: 7,
                layer: tag,
                kind: EventKind::Cast,
                dir: Direction::Dn,
                group: 3,
                seqno: 41,
                ccp: CcpFailure::None,
                aux: 9,
            },
        );
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &r.drain()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let line = text.lines().next().unwrap();
        let v = Json::parse(line).unwrap();
        assert_eq!(v.get("layer").unwrap().as_str(), Some("mnak"));
        assert_eq!(v.get("kind").unwrap().as_str(), Some("cast"));
        assert_eq!(v.get("seqno").unwrap().as_int(), Some(41));
    }
}
