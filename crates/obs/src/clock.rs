//! The process-global monotonic clock used to stamp trace events.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-global epoch (the first call in this
/// process). Monotonic, shared by every recorder in the process, so
/// timestamps from different nodes and threads are directly comparable.
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_and_shared() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
        let h = std::thread::spawn(now_ns).join().unwrap();
        // The other thread reads the same epoch: its stamp is comparable
        // (within a generous bound) to ours.
        assert!(h + 5_000_000_000 > a);
    }
}
