//! Log-bucketed latency histograms (power-of-two buckets, HDR-style).
//!
//! A [`Histogram`] has 64 buckets: bucket 0 holds the value 0, bucket
//! `i ≥ 1` holds values in `[2^(i-1), 2^i - 1]` (the top bucket absorbs
//! everything above). Recording is a few relaxed atomic increments, so
//! shard workers record concurrently while any thread reads quantiles.
//! Quantile answers are the midpoint of the answering bucket, clamped to
//! the observed maximum — a relative error bounded by the bucket width
//! (≤ 2×), which is plenty for latency distributions spanning decades.

use std::sync::atomic::{AtomicU64, Ordering};

const BUCKETS: usize = 64;

/// A concurrent, fixed-footprint latency histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A point-in-time digest of a [`Histogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Median estimate.
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Largest sample (exact).
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket a value lands in.
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples so far.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample so far (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Occupancy of bucket `i` (test / exposition hook).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i.min(BUCKETS - 1)].load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`): midpoint of the answering
    /// bucket, clamped to the observed maximum. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for i in 0..BUCKETS {
            seen += self.buckets[i].load(Ordering::Relaxed);
            if seen >= rank {
                return Self::representative(i).min(self.max());
            }
        }
        self.max()
    }

    /// Bucket `i`'s representative value (its midpoint).
    fn representative(i: usize) -> u64 {
        if i == 0 {
            return 0;
        }
        let lo = 1u64 << (i - 1);
        let hi = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
        lo + (hi - lo) / 2
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// A full digest.
    pub fn summary(&self) -> Summary {
        let count = self.count();
        let sum = self.sum();
        Summary {
            count,
            sum,
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            p50: self.p50(),
            p90: self.p90(),
            p99: self.p99(),
            max: self.max(),
        }
    }
}

/// A family of histograms keyed by a static name (one per layer, say).
///
/// Registration takes a lock; recording through the returned handle is
/// lock-free. Resolve handles at setup, not on the hot path.
#[derive(Debug, Default)]
pub struct HistogramVec {
    inner: std::sync::Mutex<Vec<(&'static str, std::sync::Arc<Histogram>)>>,
}

impl HistogramVec {
    /// An empty family.
    pub fn new() -> HistogramVec {
        HistogramVec::default()
    }

    /// The histogram for `name`, created on first use.
    pub fn get(&self, name: &'static str) -> std::sync::Arc<Histogram> {
        let mut inner = self.inner.lock().expect("histogram family poisoned");
        if let Some((_, h)) = inner.iter().find(|(n, _)| *n == name) {
            return std::sync::Arc::clone(h);
        }
        let h = std::sync::Arc::new(Histogram::new());
        inner.push((name, std::sync::Arc::clone(&h)));
        h
    }

    /// Snapshot of every member: `(name, digest)`, in creation order.
    pub fn summaries(&self) -> Vec<(&'static str, Summary)> {
        self.inner
            .lock()
            .expect("histogram family poisoned")
            .iter()
            .map(|(n, h)| (*n, h.summary()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 63);
    }

    #[test]
    fn exact_fields_and_bucket_occupancy() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 1000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1_001_006);
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.bucket(0), 1); // 0
        assert_eq!(h.bucket(1), 1); // 1
        assert_eq!(h.bucket(2), 2); // 2, 3
        assert_eq!(h.bucket(10), 1); // 1000
        assert_eq!(h.bucket(20), 1); // 1_000_000
    }

    #[test]
    fn quantiles_land_in_the_right_bucket() {
        let h = Histogram::new();
        // 90 fast samples (~100 ns), 9 medium (~10 µs), 1 slow (~1 ms).
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..9 {
            h.record(10_000);
        }
        h.record(1_000_000);
        let p50 = h.p50();
        assert!((64..=127).contains(&p50), "p50 {p50} in the 100ns bucket");
        let p99 = h.p99();
        assert!(
            (8192..=16383).contains(&p99),
            "p99 {p99} in the 10us bucket"
        );
        let q100 = h.quantile(1.0);
        assert!(
            (524_288..=1_000_000).contains(&q100),
            "q1.0 {q100} in the max sample's bucket, never above the max"
        );
        assert_eq!(h.max(), 1_000_000, "max is exact, not bucketed");
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let h = Histogram::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.summary(), Summary::default());
    }

    #[test]
    fn quantile_clamps_to_observed_max() {
        let h = Histogram::new();
        h.record(1025); // bucket 11 spans 1024..=2047; midpoint 1535.
        assert_eq!(h.p50(), 1025, "midpoint clamped to the one sample's max");
    }

    #[test]
    fn histogram_vec_reuses_by_name() {
        let v = HistogramVec::new();
        v.get("mnak").record(5);
        v.get("mnak").record(7);
        v.get("pt2pt").record(1);
        let s = v.summaries();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].0, "mnak");
        assert_eq!(s[0].1.count, 2);
        assert_eq!(s[1].1.count, 1);
    }
}
