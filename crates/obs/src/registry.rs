//! Metrics snapshot rendered in Prometheus text exposition format.
//!
//! A [`Registry`] is a build-then-render snapshot, not a live store: the
//! caller walks its atomic counters / histograms, pushes samples in, and
//! renders `name{label="v"} value` lines. Samples keep insertion order so
//! the exposition is deterministic and diff-friendly.

use std::fmt::Write as _;

use crate::hist::Summary;

/// One exposition sample: metric name, labels, value.
#[derive(Clone, Debug)]
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// A metrics snapshot in Prometheus text exposition format.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    samples: Vec<Sample>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds a sample with labels: `name{k1="v1",k2="v2"} value`.
    pub fn set(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.samples.push(Sample {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
        });
    }

    /// Adds an integer-valued sample.
    pub fn set_int(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.set(name, labels, value as f64);
    }

    /// Adds a histogram digest as quantile-labelled samples plus
    /// `_count` and `_sum` companions, the Prometheus summary idiom.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], s: &Summary) {
        for (q, v) in [
            ("0.5", s.p50),
            ("0.9", s.p90),
            ("0.99", s.p99),
            ("1", s.max),
        ] {
            let mut with_q: Vec<(&str, &str)> = labels.to_vec();
            with_q.push(("quantile", q));
            self.set_int(name, &with_q, v);
        }
        self.set_int(&format!("{name}_count"), labels, s.count);
        self.set_int(&format!("{name}_sum"), labels, s.sum);
    }

    /// Renders the exposition text: one sample per line, insertion order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            out.push_str(&s.name);
            if !s.labels.is_empty() {
                out.push('{');
                for (i, (k, v)) in s.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{k}=\"{}\"", escape_label(v));
                }
                out.push('}');
            }
            if s.value.fract() == 0.0 && s.value.abs() < 1e15 {
                let _ = writeln!(out, " {}", s.value as i64);
            } else {
                let _ = writeln!(out, " {}", s.value);
            }
        }
        out
    }
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn renders_labelled_lines_in_insertion_order() {
        let mut r = Registry::new();
        r.set_int(
            "ensemble_msgs_total",
            &[("shard", "0"), ("dir", "cast")],
            42,
        );
        r.set_int("ensemble_msgs_total", &[("shard", "1"), ("dir", "cast")], 7);
        r.set("ensemble_bypass_ratio", &[], 0.97);
        let text = r.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "ensemble_msgs_total{shard=\"0\",dir=\"cast\"} 42");
        assert_eq!(lines[1], "ensemble_msgs_total{shard=\"1\",dir=\"cast\"} 7");
        assert_eq!(lines[2], "ensemble_bypass_ratio 0.97");
    }

    #[test]
    fn histogram_expands_to_quantiles_count_sum() {
        let h = Histogram::new();
        for v in [10, 20, 30] {
            h.record(v);
        }
        let mut r = Registry::new();
        r.histogram("ensemble_cast_to_deliver_ns", &[], &h.summary());
        let text = r.render();
        assert!(text.contains("ensemble_cast_to_deliver_ns{quantile=\"0.5\"}"));
        assert!(text.contains("ensemble_cast_to_deliver_ns{quantile=\"0.99\"}"));
        assert!(text.contains("ensemble_cast_to_deliver_ns_count 3"));
        assert!(text.contains("ensemble_cast_to_deliver_ns_sum 60"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut r = Registry::new();
        r.set_int("m", &[("k", "a\"b\\c\nd")], 1);
        assert_eq!(r.render(), "m{k=\"a\\\"b\\\\c\\nd\"} 1\n");
    }
}
