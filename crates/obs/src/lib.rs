//! Observability for the ensemble stacks: structured event tracing,
//! latency histograms, and a metrics-export pipeline.
//!
//! The paper's whole evaluation hinges on *seeing* what a layer stack does
//! per message — instruction counts, dispatches, header bytes — so every
//! execution engine (the simulator's IMP/FUNC/MACH and the real-socket
//! runtime) shares this one crate for its evidence trail:
//!
//! * [`Recorder`] — a fixed-capacity **flight recorder** of structured
//!   [`TraceEvent`]s. One ring per shard; the shard's worker writes
//!   lock-free (a claim flag plus per-slot sequence words — no mutex on
//!   the hot path), any thread drains. When the ring wraps, the oldest
//!   events are overwritten first, exactly like an aircraft flight
//!   recorder.
//! * [`Histogram`] — log-bucketed (power-of-two) latency histograms,
//!   HDR-style but dependency-free, with p50/p90/p99/max accessors.
//!   Used for cast→deliver latency, per-layer handler time, and
//!   timer-wheel lateness.
//! * [`Registry`] — a metrics snapshot rendered in Prometheus text
//!   exposition format (`name{label="v"} value` lines).
//! * [`Json`] / [`write_jsonl`] — a minimal JSON value (renderer *and*
//!   parser, so CI can validate emitted files offline) and a JSONL trace
//!   exporter for machine-readable runs.
//!
//! The crate is dependency-free — not even on the other workspace crates —
//! so the simulator, runtime, benches, and tests can all depend on it
//! without cycles.
//!
//! ## Clocks
//!
//! [`now_ns`] is a process-global monotonic clock (nanoseconds since the
//! first call). Real-time users (the runtime) stamp events with it so
//! traces from different `Node`s in one process share a timeline; the
//! simulator stamps events with its *virtual* clock instead. A
//! [`TraceEvent`] does not care which — `t_ns` is just nanoseconds on the
//! producer's timeline.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod clock;
mod hist;
mod json;
mod registry;
mod trace;

pub use clock::now_ns;
pub use hist::{Histogram, HistogramVec, Summary};
pub use json::{write_jsonl, Json, JsonError};
pub use registry::Registry;
pub use trace::{CcpFailure, Direction, Event, EventKind, Recorder, Tag, TraceEvent};
