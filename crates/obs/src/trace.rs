//! The flight recorder: a fixed-capacity ring of structured trace events.
//!
//! One ring per shard. The shard's worker records events lock-free; any
//! thread drains. Each slot is guarded by a sequence word (seqlock
//! discipline): the writer marks the slot odd, stores the four payload
//! words as plain atomic stores, then marks it even with the slot's
//! generation. A drain validates the sequence word before *and* after
//! copying, so a torn read (the writer overwrote the slot mid-copy) is
//! detected and skipped rather than surfaced. A per-ring claim flag makes
//! even misuse (two threads writing one ring) safe: the loser drops its
//! event and bumps a counter instead of corrupting a slot.
//!
//! When a ring wraps, the oldest events are overwritten first; the drain
//! accounts for them in [`Recorder::overwritten`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// What a trace event describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// An application multicast entered the stack.
    Cast = 0,
    /// An application point-to-point send entered the stack.
    Send = 1,
    /// A packet was handed to the transport / network.
    PacketOut = 2,
    /// A packet arrived from the transport / network.
    PacketIn = 3,
    /// A message was delivered to the application.
    Deliver = 4,
    /// The bypass fast path handled a message (CCP held).
    BypassHit = 5,
    /// The bypass declined a message (see the `ccp` reason).
    BypassMiss = 6,
    /// A sender-side CCP failure re-routed a message through the full
    /// engine while a bypass was installed — this opens the
    /// bypass/engine cross-stream reordering window.
    EngineFallback = 7,
    /// An out-of-order fast-path packet was parked in the stash.
    StashPark = 8,
    /// A parked packet was replayed after its gap filled.
    StashReplay = 9,
    /// A layer timer fired.
    TimerFire = 10,
    /// A new view was installed (stack rebuilt).
    ViewInstall = 11,
    /// The application asked the stack to suspect members.
    Suspect = 12,
    /// The application asked the stack to leave the group.
    Leave = 13,
    /// The stack asked the application to stop sending (flush).
    Block = 14,
    /// The stack exited the group.
    Exit = 15,
    /// One handler invocation (a per-layer span; duration in `aux`).
    HandlerRun = 16,
    /// Anything else.
    Other = 17,
    /// A cluster heartbeat frame was sent (or received; see `dir`).
    Heartbeat = 18,
    /// A coordinator proposed a new view (flush began).
    ViewPropose = 19,
    /// A state snapshot was shipped to (or installed by) a joiner.
    StateTransfer = 20,
    /// A partition-component coordinator advertised its view for merge.
    MergeBeacon = 21,
    /// A merged view was granted to (or installed by) a healed member.
    MergeGrant = 22,
    /// A node stalled application traffic: its component lacks quorum.
    MinorityStall = 23,
    /// A KV client request entered the service (proposed for ordering).
    KvRequest = 24,
    /// A KV operation was applied at its assigned commit index.
    KvCommit = 25,
    /// A KV response left the service towards the client.
    KvResponse = 26,
    /// A batch of deferred non-critical work was drained (count in
    /// `aux`); only certificate-licensed stacks batch.
    DeferFlush = 27,
    /// A committed KV operation was made durable in the write-ahead
    /// log (`aux` = commit index).
    WalAppend = 28,
    /// A checkpoint was written and the log truncated (`aux` = commit
    /// index the checkpoint covers).
    Checkpoint = 29,
    /// A replica recovered its state from checkpoint + log replay at
    /// startup (`aux` = recovered commit index).
    Recovery = 30,
}

impl EventKind {
    fn from_u8(v: u8) -> EventKind {
        use EventKind::*;
        match v {
            0 => Cast,
            1 => Send,
            2 => PacketOut,
            3 => PacketIn,
            4 => Deliver,
            5 => BypassHit,
            6 => BypassMiss,
            7 => EngineFallback,
            8 => StashPark,
            9 => StashReplay,
            10 => TimerFire,
            11 => ViewInstall,
            12 => Suspect,
            13 => Leave,
            14 => Block,
            15 => Exit,
            16 => HandlerRun,
            18 => Heartbeat,
            19 => ViewPropose,
            20 => StateTransfer,
            21 => MergeBeacon,
            22 => MergeGrant,
            23 => MinorityStall,
            24 => KvRequest,
            25 => KvCommit,
            26 => KvResponse,
            27 => DeferFlush,
            28 => WalAppend,
            29 => Checkpoint,
            30 => Recovery,
            _ => Other,
        }
    }

    /// A stable lower-case name (used by the JSONL exporter).
    pub fn name(&self) -> &'static str {
        use EventKind::*;
        match self {
            Cast => "cast",
            Send => "send",
            PacketOut => "packet_out",
            PacketIn => "packet_in",
            Deliver => "deliver",
            BypassHit => "bypass_hit",
            BypassMiss => "bypass_miss",
            EngineFallback => "engine_fallback",
            StashPark => "stash_park",
            StashReplay => "stash_replay",
            TimerFire => "timer_fire",
            ViewInstall => "view_install",
            Suspect => "suspect",
            Leave => "leave",
            Block => "block",
            Exit => "exit",
            HandlerRun => "handler_run",
            Other => "other",
            Heartbeat => "heartbeat",
            ViewPropose => "view_propose",
            StateTransfer => "state_transfer",
            MergeBeacon => "merge_beacon",
            MergeGrant => "merge_grant",
            MinorityStall => "minority_stall",
            KvRequest => "kv_request",
            KvCommit => "kv_commit",
            KvResponse => "kv_response",
            DeferFlush => "defer_flush",
            WalAppend => "wal_append",
            Checkpoint => "checkpoint",
            Recovery => "recovery",
        }
    }
}

/// Which way an event was travelling through the stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Direction {
    /// Not directional (timers, views, …).
    None = 0,
    /// Towards the application.
    Up = 1,
    /// Towards the network.
    Dn = 2,
}

impl Direction {
    fn from_u8(v: u8) -> Direction {
        match v {
            1 => Direction::Up,
            2 => Direction::Dn,
            _ => Direction::None,
        }
    }

    /// A stable lower-case name (used by the JSONL exporter).
    pub fn name(&self) -> &'static str {
        match self {
            Direction::None => "none",
            Direction::Up => "up",
            Direction::Dn => "dn",
        }
    }
}

/// Why a bypass invocation declined (the CCP-failure taxonomy).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum CcpFailure {
    /// Not a CCP event (or the CCP held).
    None = 0,
    /// A sender-side CCP conjunct failed; the message took the engine.
    SenderCcp = 1,
    /// A receiver-side CCP failed on a well-formed compressed header:
    /// an out-of-order arrival.
    OutOfOrder = 2,
    /// The packet is not in compressed format at all (generic path).
    ForeignFormat = 3,
    /// The out-of-order stash overflowed; the oldest entry was evicted.
    StashOverflow = 4,
}

impl CcpFailure {
    fn from_u8(v: u8) -> CcpFailure {
        match v {
            1 => CcpFailure::SenderCcp,
            2 => CcpFailure::OutOfOrder,
            3 => CcpFailure::ForeignFormat,
            4 => CcpFailure::StashOverflow,
            _ => CcpFailure::None,
        }
    }

    /// A stable lower-case name (used by the JSONL exporter).
    pub fn name(&self) -> &'static str {
        match self {
            CcpFailure::None => "none",
            CcpFailure::SenderCcp => "sender_ccp",
            CcpFailure::OutOfOrder => "out_of_order",
            CcpFailure::ForeignFormat => "foreign_format",
            CcpFailure::StashOverflow => "stash_overflow",
        }
    }
}

/// A pre-registered layer name, resolved once at setup so the hot path
/// never touches a string (or a lock).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tag(u16);

/// The hot-path form of a trace event: the layer is a [`Tag`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds on the producer's timeline (wall or virtual).
    pub t_ns: u64,
    /// The layer (or pseudo-layer: `app`, `bypass`, `transport`, …).
    pub layer: Tag,
    /// What happened.
    pub kind: EventKind,
    /// Which way the event was travelling.
    pub dir: Direction,
    /// Group identity (the member's endpoint id).
    pub group: u32,
    /// Sequence number or per-group event ordinal.
    pub seqno: u64,
    /// CCP-failure reason, when `kind` is a bypass outcome.
    pub ccp: CcpFailure,
    /// Event-specific extra (span duration, latency, stash depth …).
    pub aux: u64,
}

/// The drained form of a trace event: the layer is resolved to its name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds on the producer's timeline (wall or virtual).
    pub t_ns: u64,
    /// The layer (or pseudo-layer) name.
    pub layer: &'static str,
    /// What happened.
    pub kind: EventKind,
    /// Which way the event was travelling.
    pub dir: Direction,
    /// Group identity (the member's endpoint id).
    pub group: u32,
    /// Sequence number or per-group event ordinal.
    pub seqno: u64,
    /// CCP-failure reason, when `kind` is a bypass outcome.
    pub ccp: CcpFailure,
    /// Event-specific extra (span duration, latency, stash depth …).
    pub aux: u64,
}

/// Payload words per slot (plus one sequence word).
const WORDS: usize = 4;

struct Slot {
    seq: AtomicU64,
    w: [AtomicU64; WORDS],
}

struct Ring {
    slots: Box<[Slot]>,
    mask: u64,
    /// Events ever written to this ring (the next write position).
    head: AtomicU64,
    /// The drain cursor: everything before it has been handed out.
    read: AtomicU64,
    /// Events lost to ring wrap (overwritten before any drain saw them).
    lost: AtomicU64,
    /// Claim flag: one writer at a time; losers drop (counted below).
    writing: AtomicBool,
    /// Events dropped because two threads raced to write one ring.
    contended: AtomicU64,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        let cap = capacity.next_power_of_two().max(8);
        Ring {
            slots: (0..cap)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    w: std::array::from_fn(|_| AtomicU64::new(0)),
                })
                .collect(),
            mask: cap as u64 - 1,
            head: AtomicU64::new(0),
            read: AtomicU64::new(0),
            lost: AtomicU64::new(0),
            writing: AtomicBool::new(false),
            contended: AtomicU64::new(0),
        }
    }

    fn capacity(&self) -> u64 {
        self.mask + 1
    }

    /// Writes one encoded event. Lock-free; on (misuse-only) writer
    /// contention the event is dropped and counted, never torn.
    fn push(&self, w: [u64; WORDS]) {
        if self.writing.swap(true, Ordering::Acquire) {
            self.contended.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let pos = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(pos & self.mask) as usize];
        // Seqlock write: odd while writing, then the slot's generation.
        slot.seq.store(2 * pos + 1, Ordering::Release);
        for (dst, src) in slot.w.iter().zip(w) {
            dst.store(src, Ordering::Relaxed);
        }
        slot.seq.store(2 * pos + 2, Ordering::Release);
        self.head.store(pos + 1, Ordering::Release);
        self.writing.store(false, Ordering::Release);
    }

    /// Claims and reads every event recorded since the previous drain.
    /// Concurrent drains receive disjoint ranges. Slots overwritten or
    /// being overwritten during the copy are skipped, never torn.
    fn drain_into(&self, out: &mut Vec<[u64; WORDS]>) {
        let end = self.head.load(Ordering::Acquire);
        let claimed = self.read.swap(end, Ordering::AcqRel).min(end);
        let start = claimed.max(end.saturating_sub(self.capacity()));
        if start > claimed {
            self.lost.fetch_add(start - claimed, Ordering::Relaxed);
        }
        for pos in start..end {
            let slot = &self.slots[(pos & self.mask) as usize];
            let before = slot.seq.load(Ordering::Acquire);
            if before != 2 * pos + 2 {
                // Already overwritten by a later generation (or odd:
                // mid-overwrite). Either way this generation is gone.
                self.lost.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let w: [u64; WORDS] = std::array::from_fn(|i| slot.w[i].load(Ordering::Relaxed));
            let after = slot.seq.load(Ordering::Acquire);
            if after != before {
                self.lost.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            out.push(w);
        }
    }
}

fn encode(ev: &Event) -> [u64; WORDS] {
    let meta = ((ev.group as u64) << 32)
        | ((ev.layer.0 as u64) << 16)
        | ((ev.kind as u64) << 8)
        | ((ev.dir as u64) << 4)
        | (ev.ccp as u64);
    [ev.t_ns, ev.seqno, ev.aux, meta]
}

fn decode(w: [u64; WORDS], names: &[&'static str]) -> TraceEvent {
    let meta = w[3];
    let tag = ((meta >> 16) & 0xFFFF) as usize;
    TraceEvent {
        t_ns: w[0],
        seqno: w[1],
        aux: w[2],
        group: (meta >> 32) as u32,
        layer: names.get(tag).copied().unwrap_or("?"),
        kind: EventKind::from_u8(((meta >> 8) & 0xFF) as u8),
        dir: Direction::from_u8(((meta >> 4) & 0xF) as u8),
        ccp: CcpFailure::from_u8((meta & 0xF) as u8),
    }
}

/// A multi-shard flight recorder.
///
/// `shards` rings of `capacity` slots each (rounded up to a power of
/// two). Each ring expects a single writer — its shard's worker thread —
/// and that writer records without taking any lock. [`Recorder::drain`]
/// may be called from any thread at any time.
pub struct Recorder {
    rings: Vec<Ring>,
    names: Mutex<Vec<&'static str>>,
}

impl Recorder {
    /// A recorder with `shards` rings of `capacity` events each.
    pub fn new(shards: usize, capacity: usize) -> Recorder {
        Recorder {
            rings: (0..shards.max(1)).map(|_| Ring::new(capacity)).collect(),
            names: Mutex::new(Vec::new()),
        }
    }

    /// Number of rings (shards).
    pub fn shards(&self) -> usize {
        self.rings.len()
    }

    /// Registers a layer (or pseudo-layer) name, returning its [`Tag`].
    /// Idempotent; takes a lock, so resolve tags at setup, not per event.
    pub fn register(&self, name: &'static str) -> Tag {
        let mut names = self.names.lock().expect("recorder names poisoned");
        if let Some(i) = names.iter().position(|n| *n == name) {
            return Tag(i as u16);
        }
        assert!(names.len() < u16::MAX as usize, "too many layer names");
        names.push(name);
        Tag((names.len() - 1) as u16)
    }

    /// The name a tag was registered under.
    pub fn name_of(&self, tag: Tag) -> &'static str {
        self.names
            .lock()
            .expect("recorder names poisoned")
            .get(tag.0 as usize)
            .copied()
            .unwrap_or("?")
    }

    /// Records one event on `shard`'s ring (clamped to the last ring).
    /// Lock-free; the designated writer never waits.
    pub fn record(&self, shard: usize, ev: &Event) {
        let ring = &self.rings[shard.min(self.rings.len() - 1)];
        ring.push(encode(ev));
    }

    /// Drains every ring: all events recorded since the previous drain,
    /// oldest-first per ring, merged across rings by timestamp.
    /// Concurrent drains receive disjoint events.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut raw = Vec::new();
        for ring in &self.rings {
            ring.drain_into(&mut raw);
        }
        let names = self.names.lock().expect("recorder names poisoned").clone();
        let mut out: Vec<TraceEvent> = raw.into_iter().map(|w| decode(w, &names)).collect();
        out.sort_by_key(|e| e.t_ns);
        out
    }

    /// Total events ever recorded (including ones later overwritten).
    pub fn recorded(&self) -> u64 {
        self.rings
            .iter()
            .map(|r| r.head.load(Ordering::Relaxed))
            .sum()
    }

    /// Events lost to ring wrap (overwritten before a drain saw them).
    pub fn overwritten(&self) -> u64 {
        self.rings
            .iter()
            .map(|r| r.lost.load(Ordering::Relaxed))
            .sum()
    }

    /// Events dropped because two threads raced to write one ring
    /// (always zero when the one-writer-per-ring contract is honoured).
    pub fn contended(&self) -> u64 {
        self.rings
            .iter()
            .map(|r| r.contended.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tag: Tag, seqno: u64) -> Event {
        Event {
            t_ns: seqno * 10,
            layer: tag,
            kind: EventKind::Deliver,
            dir: Direction::Up,
            group: (seqno as u32) ^ 0xABCD,
            seqno,
            ccp: CcpFailure::None,
            aux: seqno * 3,
        }
    }

    #[test]
    fn cluster_kinds_roundtrip_through_the_packed_encoding() {
        let r = Recorder::new(1, 16);
        let tag = r.register("cluster");
        for (kind, name) in [
            (EventKind::Heartbeat, "heartbeat"),
            (EventKind::ViewPropose, "view_propose"),
            (EventKind::StateTransfer, "state_transfer"),
        ] {
            assert_eq!(kind.name(), name);
            r.record(
                0,
                &Event {
                    t_ns: 1,
                    layer: tag,
                    kind,
                    dir: Direction::None,
                    group: 0,
                    seqno: 0,
                    ccp: CcpFailure::None,
                    aux: 0,
                },
            );
            assert_eq!(r.drain()[0].kind, kind, "{name} survives the ring");
        }
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let r = Recorder::new(1, 16);
        let tag = r.register("mnak");
        let e = Event {
            t_ns: 123_456_789,
            layer: tag,
            kind: EventKind::BypassMiss,
            dir: Direction::Dn,
            group: 7,
            seqno: 42,
            ccp: CcpFailure::OutOfOrder,
            aux: 999,
        };
        r.record(0, &e);
        let got = r.drain();
        assert_eq!(got.len(), 1);
        let g = got[0];
        assert_eq!(g.t_ns, 123_456_789);
        assert_eq!(g.layer, "mnak");
        assert_eq!(g.kind, EventKind::BypassMiss);
        assert_eq!(g.dir, Direction::Dn);
        assert_eq!(g.group, 7);
        assert_eq!(g.seqno, 42);
        assert_eq!(g.ccp, CcpFailure::OutOfOrder);
        assert_eq!(g.aux, 999);
    }

    #[test]
    fn register_is_idempotent() {
        let r = Recorder::new(1, 8);
        let a = r.register("pt2pt");
        let b = r.register("pt2pt");
        assert_eq!(a, b);
        assert_eq!(r.name_of(a), "pt2pt");
    }

    #[test]
    fn wrap_drops_oldest_first() {
        let r = Recorder::new(1, 8);
        let tag = r.register("x");
        for i in 0..20u64 {
            r.record(0, &ev(tag, i));
        }
        let got = r.drain();
        // Capacity 8: only the newest 8 survive, oldest-first.
        assert_eq!(got.len(), 8);
        let seqs: Vec<u64> = got.iter().map(|e| e.seqno).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<_>>());
        assert_eq!(r.overwritten(), 12);
        assert_eq!(r.recorded(), 20);
    }

    #[test]
    fn drain_is_incremental() {
        let r = Recorder::new(1, 64);
        let tag = r.register("x");
        r.record(0, &ev(tag, 1));
        assert_eq!(r.drain().len(), 1);
        assert_eq!(r.drain().len(), 0);
        r.record(0, &ev(tag, 2));
        let again = r.drain();
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].seqno, 2);
    }

    #[test]
    fn multi_shard_drain_merges_by_timestamp() {
        let r = Recorder::new(2, 16);
        let tag = r.register("x");
        let mk = |t: u64, s: u64| Event {
            t_ns: t,
            layer: tag,
            kind: EventKind::Cast,
            dir: Direction::Dn,
            group: 0,
            seqno: s,
            ccp: CcpFailure::None,
            aux: 0,
        };
        r.record(0, &mk(30, 0));
        r.record(1, &mk(10, 1));
        r.record(0, &mk(50, 2));
        r.record(1, &mk(40, 3));
        let ts: Vec<u64> = r.drain().iter().map(|e| e.t_ns).collect();
        assert_eq!(ts, vec![10, 30, 40, 50]);
    }
}
