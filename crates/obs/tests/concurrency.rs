//! Flight-recorder behaviour under concurrent writers and drainers.
//!
//! The recorder's contract: one writer per shard ring, any thread may
//! drain at any time, and no observer ever sees a torn event — every
//! drained event is exactly one that some writer recorded, field for
//! field. Even misuse (two writers racing on one shard) must degrade to
//! counted drops, never to corruption.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ensemble_obs::{CcpFailure, Direction, Event, EventKind, Recorder, Tag};

/// A writer's events carry a checkable invariant: `aux` is a function of
/// (`group`, `seqno`), so any torn or mixed-up event fails validation.
fn stamp(tag: Tag, writer: u32, i: u64) -> Event {
    Event {
        t_ns: i,
        layer: tag,
        kind: EventKind::Cast,
        dir: Direction::Dn,
        group: writer,
        seqno: i,
        ccp: CcpFailure::None,
        aux: (writer as u64) << 32 ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15),
    }
}

fn check(group: u32, seqno: u64, aux: u64) -> bool {
    aux == (group as u64) << 32 ^ seqno.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

#[test]
fn one_writer_per_shard_with_concurrent_drainer_sees_no_torn_events() {
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 20_000;

    let rec = Arc::new(Recorder::new(WRITERS, 1024));
    let tag = rec.register("top");
    let stop = Arc::new(AtomicBool::new(false));

    // A drainer races the writers the whole time, validating as it goes.
    let drainer = {
        let rec = Arc::clone(&rec);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut seen = 0u64;
            while !stop.load(Ordering::Acquire) {
                for e in rec.drain() {
                    assert!(
                        check(e.group, e.seqno, e.aux),
                        "torn event: group={} seqno={} aux={:#x}",
                        e.group,
                        e.seqno,
                        e.aux
                    );
                    seen += 1;
                }
            }
            seen
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let rec = Arc::clone(&rec);
            std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    rec.record(w, &stamp(tag, w as u32, i));
                }
            })
        })
        .collect();
    for h in writers {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Release);
    let live_seen = drainer.join().unwrap();

    // Final sweep: whatever the live drainer missed is still intact.
    let mut final_seen = 0u64;
    for e in rec.drain() {
        assert!(check(e.group, e.seqno, e.aux), "torn event in final drain");
        final_seen += 1;
    }

    let total = WRITERS as u64 * PER_WRITER;
    assert_eq!(rec.recorded(), total, "every record() call accounted for");
    assert_eq!(
        live_seen + final_seen + rec.overwritten(),
        total,
        "drained + overwritten covers every recorded event"
    );
    // With its own shard each, no writer ever hits the claim flag.
    assert_eq!(rec.contended(), 0);
}

#[test]
fn contended_writers_on_one_shard_drop_but_never_tear() {
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 10_000;

    // Misuse on purpose: all writers hammer shard 0.
    let rec = Arc::new(Recorder::new(1, 4096));
    let tag = rec.register("top");

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let rec = Arc::clone(&rec);
            std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    rec.record(0, &stamp(tag, w as u32, i));
                }
            })
        })
        .collect();
    for h in writers {
        h.join().unwrap();
    }

    let mut drained = 0u64;
    for e in rec.drain() {
        assert!(
            check(e.group, e.seqno, e.aux),
            "torn event under contention: group={} seqno={} aux={:#x}",
            e.group,
            e.seqno,
            e.aux
        );
        drained += 1;
    }

    let total = WRITERS as u64 * PER_WRITER;
    assert_eq!(
        rec.recorded() + rec.contended(),
        total,
        "every attempt either lands or is counted as contended"
    );
    assert_eq!(drained + rec.overwritten(), rec.recorded());
}

#[test]
fn wrap_keeps_newest_under_sustained_overload() {
    // Tiny ring, big burst: the survivors must be exactly the newest.
    let rec = Recorder::new(1, 64);
    let tag = rec.register("top");
    for i in 0..10_000u64 {
        rec.record(0, &stamp(tag, 0, i));
    }
    let events = rec.drain();
    assert_eq!(events.len(), 64);
    let seqs: Vec<u64> = events.iter().map(|e| e.seqno).collect();
    assert_eq!(seqs, (10_000 - 64..10_000).collect::<Vec<_>>());
    assert_eq!(rec.overwritten(), 10_000 - 64);
}
