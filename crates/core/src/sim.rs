//! Multi-process deterministic simulation.
//!
//! Ties everything together: each simulated process runs a protocol stack
//! under an execution engine; the bottom of every stack is connected to a
//! simulated network ([`ensemble_net`]); timers and packet arrivals are
//! interleaved on one virtual-time event queue. Runs are reproducible
//! bit-for-bit from the seed.
//!
//! Virtual synchrony is honoured the way Ensemble does it: when a stack
//! installs a new view ([`UpEvent::View`]), the runtime *rebuilds* the
//! process's stack for the new membership (Ensemble likewise instantiates
//! a fresh stack per view).

use ensemble_event::{DnEvent, Msg, Payload, UpEvent, ViewState};
use ensemble_layers::{make_stack, LayerConfig, StackError};
use ensemble_net::{Arrival, Dest, EventQueue, LinkModel, NetStats, Network, Packet};
use ensemble_obs::{CcpFailure, Direction, Event, EventKind, Histogram, Recorder, Summary, Tag};
use ensemble_stack::{Boundary, Engine};
use ensemble_transport::{marshal, unmarshal};
use ensemble_util::{Duration, Endpoint, Rank, Time};
use std::collections::HashMap;

pub use ensemble_obs::TraceEvent;
pub use ensemble_stack::EngineKind;

/// Virtual-time observability for a simulation run.
///
/// Every trace event is stamped with the simulator's *virtual* clock
/// (`t_ns` is virtual nanoseconds since simulation start), so traces are
/// as reproducible as the run itself. The `group` field carries the
/// endpoint id of the process the event happened at.
struct SimObs {
    recorder: Recorder,
    /// Virtual cast→deliver latency: injection at the origin to delivery
    /// at each receiver, in virtual nanoseconds.
    cast_latency: Histogram,
    tags: HashMap<&'static str, Tag>,
    /// Injection times per origin endpoint id, in cast order.
    cast_times: HashMap<u32, Vec<Time>>,
    /// Casts delivered so far, per `(deliverer, origin)` pair. FIFO
    /// delivery per origin makes this the index into `cast_times`.
    delivered: HashMap<(u32, u32), usize>,
    seq: u64,
}

impl SimObs {
    fn new(capacity: usize) -> SimObs {
        SimObs {
            recorder: Recorder::new(1, capacity),
            cast_latency: Histogram::new(),
            tags: HashMap::new(),
            cast_times: HashMap::new(),
            delivered: HashMap::new(),
            seq: 0,
        }
    }

    fn tag(&mut self, name: &'static str) -> Tag {
        match self.tags.get(name) {
            Some(t) => *t,
            None => {
                let t = self.recorder.register(name);
                self.tags.insert(name, t);
                t
            }
        }
    }

    fn trace(
        &mut self,
        t: Time,
        layer: &'static str,
        kind: EventKind,
        dir: Direction,
        ep: u32,
        aux: u64,
    ) {
        let tag = self.tag(layer);
        self.seq += 1;
        self.recorder.record(
            0,
            &Event {
                t_ns: t.nanos(),
                layer: tag,
                kind,
                dir,
                group: ep,
                seqno: self.seq,
                ccp: CcpFailure::None,
                aux,
            },
        );
    }
}

/// One simulated process.
struct Proc {
    ep: Endpoint,
    vs: ViewState,
    engine: Box<dyn Engine>,
    generation: u64,
    alive: bool,
    exited: bool,
    /// Cast deliveries as `(origin endpoint id, payload bytes)`.
    casts: Vec<(u32, Vec<u8>)>,
    /// Point-to-point deliveries as `(origin endpoint id, payload bytes)`.
    sends: Vec<(u32, Vec<u8>)>,
    /// Views installed (in order), including the initial one.
    views: Vec<ViewState>,
    /// Block notifications observed.
    blocks: u64,
    /// The latest stability vector reported to the application.
    stability: Vec<u64>,
}

enum SimEvent {
    Arrival(Arrival),
    Timer {
        ep: Endpoint,
        layer: usize,
        generation: u64,
    },
}

/// The multi-process simulation harness.
pub struct Simulation<M> {
    procs: Vec<Proc>,
    net: Network<M>,
    queue: EventQueue<SimEvent>,
    now: Time,
    stack: Vec<&'static str>,
    /// A stack to switch to at the next view installation (the paper's
    /// ref. \[25\]: Ensemble switches protocol stacks on the fly at view
    /// boundaries; the agreement to switch is made at the application
    /// level, the view change makes it safe).
    next_stack: Option<Vec<&'static str>>,
    kind: EngineKind,
    cfg: LayerConfig,
    /// Total events processed (observability).
    pub steps: u64,
    obs: Option<SimObs>,
}

fn build_engine(
    stack: &[&'static str],
    vs: &ViewState,
    cfg: &LayerConfig,
    kind: EngineKind,
) -> Result<Box<dyn Engine>, StackError> {
    Ok(kind.build(make_stack(stack, vs, cfg)?))
}

impl<M: LinkModel> Simulation<M> {
    /// Builds `n` processes running `stack` over `model`.
    pub fn new(
        n: usize,
        stack: &[&'static str],
        kind: EngineKind,
        cfg: LayerConfig,
        model: M,
        seed: u64,
    ) -> Result<Self, StackError> {
        let base = ViewState::initial(n);
        let net = Network::new(base.members.clone(), model, seed);
        let mut sim = Simulation {
            procs: Vec::new(),
            net,
            queue: EventQueue::new(),
            now: Time::ZERO,
            stack: stack.to_vec(),
            next_stack: None,
            kind,
            cfg,
            steps: 0,
            obs: None,
        };
        for r in 0..n {
            let vs = base.for_rank(Rank(r as u16));
            let mut engine = build_engine(stack, &vs, &sim.cfg, kind)?;
            let boundary = engine.init(Time::ZERO);
            sim.procs.push(Proc {
                ep: vs.my_endpoint(),
                views: vec![vs.clone()],
                vs,
                engine,
                generation: 0,
                alive: true,
                exited: false,
                casts: Vec::new(),
                sends: Vec::new(),
                blocks: 0,
                stability: Vec::new(),
            });
            sim.route_boundary(r, boundary);
        }
        Ok(sim)
    }

    /// The current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Turns on the flight recorder with a ring of `capacity` events.
    ///
    /// Subsequent casts, sends, packets, timers, deliveries, and view
    /// changes are traced with virtual-time stamps and drained via
    /// [`Simulation::drain_trace`]; cast→deliver virtual latency
    /// accumulates into [`Simulation::cast_latency`].
    pub fn enable_obs(&mut self, capacity: usize) {
        self.obs = Some(SimObs::new(capacity));
    }

    /// Drains all trace events recorded since the last drain (empty when
    /// observability is off).
    pub fn drain_trace(&mut self) -> Vec<TraceEvent> {
        self.obs
            .as_ref()
            .map_or_else(Vec::new, |o| o.recorder.drain())
    }

    /// Virtual cast→deliver latency so far (all zero when off).
    pub fn cast_latency(&self) -> Summary {
        self.obs
            .as_ref()
            .map_or_else(|| Histogram::new().summary(), |o| o.cast_latency.summary())
    }

    /// Network statistics so far.
    pub fn net_stats(&self) -> NetStats {
        self.net.stats()
    }

    /// Mutable access to the link model (partitions, loss changes …).
    pub fn model_mut(&mut self) -> &mut M {
        self.net.model_mut()
    }

    /// Injects an application cast at the process with endpoint id `id`.
    pub fn cast(&mut self, id: u32, payload: &[u8]) {
        if self.procs[id as usize].alive {
            if let Some(o) = &mut self.obs {
                let (now, len) = (self.now, payload.len() as u64);
                o.trace(now, "app", EventKind::Cast, Direction::Dn, id, len);
                o.cast_times.entry(id).or_default().push(now);
            }
        }
        let ev = DnEvent::Cast(Msg::data(Payload::from_slice(payload)));
        self.inject(id, ev);
    }

    /// Injects a point-to-point send from `id` to endpoint id `dst`.
    pub fn send(&mut self, id: u32, dst: u32, payload: &[u8]) {
        let Some(dst_rank) = self.procs[id as usize].vs.rank_of(Endpoint::new(dst)) else {
            return; // Destination not in the sender's view.
        };
        if self.procs[id as usize].alive {
            if let Some(o) = &mut self.obs {
                let (now, len) = (self.now, payload.len() as u64);
                o.trace(now, "app", EventKind::Send, Direction::Dn, id, len);
            }
        }
        let ev = DnEvent::Send {
            dst: dst_rank,
            msg: Msg::data(Payload::from_slice(payload)),
        };
        self.inject(id, ev);
    }

    /// Asks process `id` to declare `suspects` (by endpoint id) failed.
    pub fn suspect(&mut self, id: u32, suspects: &[u32]) {
        let vs = self.procs[id as usize].vs.clone();
        let ranks: Vec<Rank> = suspects
            .iter()
            .filter_map(|s| vs.rank_of(Endpoint::new(*s)))
            .collect();
        if let Some(o) = &mut self.obs {
            let (now, n) = (self.now, ranks.len() as u64);
            o.trace(now, "app", EventKind::Suspect, Direction::Dn, id, n);
        }
        self.inject(id, DnEvent::Suspect { ranks });
    }

    /// Crashes the process with endpoint id `id` (it stops processing).
    pub fn kill(&mut self, id: u32) {
        self.procs[id as usize].alive = false;
    }

    /// Gracefully leaves the group: the stack tears down (emitting
    /// `Exit`), and the remaining members detect the silence and exclude
    /// the leaver exactly as for a crash (Ensemble's Leave is likewise a
    /// self-initiated departure that the view change makes official).
    pub fn leave(&mut self, id: u32) {
        if let Some(o) = &mut self.obs {
            o.trace(self.now, "app", EventKind::Leave, Direction::Dn, id, 0);
        }
        self.inject(id, DnEvent::Leave);
    }

    /// Whether the process's stack has exited (left or was excluded).
    pub fn has_exited(&self, id: u32) -> bool {
        self.procs[id as usize].exited
    }

    fn inject(&mut self, id: u32, ev: DnEvent) {
        let idx = id as usize;
        if !self.procs[idx].alive {
            return;
        }
        let b = self.procs[idx].engine.inject_dn(self.now, ev);
        self.route_boundary(idx, b);
    }

    /// Routes one engine boundary: wire events are marshaled and
    /// transmitted, deliveries recorded, timers scheduled, views
    /// installed.
    fn route_boundary(&mut self, idx: usize, mut b: Boundary) {
        // Timers first (cheap).
        let generation = self.procs[idx].generation;
        let ep = self.procs[idx].ep;
        for (layer, deadline) in b.timers.drain(..) {
            self.queue.push(
                deadline.max(self.now),
                SimEvent::Timer {
                    ep,
                    layer,
                    generation,
                },
            );
        }
        // Wire-bound events.
        for ev in b.wire.drain(..) {
            match ev {
                DnEvent::Cast(msg) => {
                    let bytes = marshal(&msg);
                    if let Some(o) = &mut self.obs {
                        let (now, len) = (self.now, bytes.len() as u64);
                        o.trace(
                            now,
                            "wire",
                            EventKind::PacketOut,
                            Direction::Dn,
                            ep.id(),
                            len,
                        );
                    }
                    let pkt = Packet::cast(ep, bytes);
                    for a in self.net.transmit(self.now, pkt) {
                        self.queue.push(a.at, SimEvent::Arrival(a));
                    }
                }
                DnEvent::Send { dst, msg } => {
                    let dst_ep = self.procs[idx].vs.endpoint_of(dst);
                    let bytes = marshal(&msg);
                    if let Some(o) = &mut self.obs {
                        let (now, len) = (self.now, bytes.len() as u64);
                        o.trace(
                            now,
                            "wire",
                            EventKind::PacketOut,
                            Direction::Dn,
                            ep.id(),
                            len,
                        );
                    }
                    let pkt = Packet::point(ep, dst_ep, bytes);
                    for a in self.net.transmit(self.now, pkt) {
                        self.queue.push(a.at, SimEvent::Arrival(a));
                    }
                }
                // Timer requests exiting the bottom are engine artifacts;
                // other control events are absorbed at the boundary.
                _ => {}
            }
        }
        // Application events.
        let my_id = ep.id();
        let app: Vec<UpEvent> = b.app.drain(..).collect();
        for ev in app {
            match ev {
                UpEvent::Cast { origin, msg } => {
                    let oid = self.procs[idx].vs.endpoint_of(origin).id();
                    let bytes = msg.payload().gather();
                    if let Some(o) = &mut self.obs {
                        let now = self.now;
                        let len = bytes.len() as u64;
                        o.trace(now, "app", EventKind::Deliver, Direction::Up, my_id, len);
                        // The k-th cast delivered here from `oid` is the
                        // k-th cast `oid` injected (FIFO per origin).
                        let k = o.delivered.entry((my_id, oid)).or_insert(0);
                        let at = o.cast_times.get(&oid).and_then(|v| v.get(*k)).copied();
                        *k += 1;
                        if let Some(at) = at {
                            o.cast_latency.record(now.since(at).nanos());
                        }
                    }
                    self.procs[idx].casts.push((oid, bytes));
                }
                UpEvent::Send { origin, msg } => {
                    let oid = self.procs[idx].vs.endpoint_of(origin).id();
                    let bytes = msg.payload().gather();
                    if let Some(o) = &mut self.obs {
                        let (now, len) = (self.now, bytes.len() as u64);
                        o.trace(now, "app", EventKind::Deliver, Direction::Up, my_id, len);
                    }
                    self.procs[idx].sends.push((oid, bytes));
                }
                UpEvent::View(vs) => self.install_view(idx, vs),
                UpEvent::Block => {
                    if let Some(o) = &mut self.obs {
                        o.trace(self.now, "app", EventKind::Block, Direction::Up, my_id, 0);
                    }
                    self.procs[idx].blocks += 1;
                }
                UpEvent::Exit => {
                    if let Some(o) = &mut self.obs {
                        o.trace(self.now, "app", EventKind::Exit, Direction::Up, my_id, 0);
                    }
                    self.procs[idx].exited = true;
                    self.procs[idx].alive = false;
                }
                UpEvent::Stable(v) => {
                    self.procs[idx].stability = v.iter().map(|s| s.0).collect();
                }
                _ => {}
            }
        }
    }

    /// Schedules a protocol-stack switch: every process adopts `names`
    /// when it installs its next view (all members install the same
    /// view, so they switch together — no mixed-stack window).
    ///
    /// # Panics
    ///
    /// Panics if the stack fails the configuration check, so an unsound
    /// switch cannot be scheduled.
    pub fn switch_stack_on_next_view(&mut self, names: &[&'static str]) {
        ensemble_stack::check_stack(names).expect("switch target must be sound");
        self.next_stack = Some(names.to_vec());
    }

    /// The stack a process is currently running (top first).
    pub fn stack_names(&self) -> &[&'static str] {
        &self.stack
    }

    /// Installs a new view at process `idx`: fresh stack, new generation.
    fn install_view(&mut self, idx: usize, vs: ViewState) {
        if let Some(next) = self.next_stack.take() {
            // The first installer flips the shared stack; later
            // installers of the same view pick it up from `self.stack`.
            self.stack = next;
        }
        self.procs[idx].generation += 1;
        if let Some(o) = &mut self.obs {
            let (now, ep) = (self.now, self.procs[idx].ep.id());
            let n = vs.members.len() as u64;
            o.trace(now, "app", EventKind::ViewInstall, Direction::Up, ep, n);
        }
        let mut engine =
            build_engine(&self.stack, &vs, &self.cfg, self.kind).expect("stack built once already");
        let boundary = engine.init(self.now);
        self.procs[idx].engine = engine;
        self.procs[idx].vs = vs.clone();
        self.procs[idx].views.push(vs);
        self.route_boundary(idx, boundary);
    }

    fn proc_of(&self, ep: Endpoint) -> Option<usize> {
        self.procs.iter().position(|p| p.ep == ep)
    }

    /// Processes a single queued event; returns `false` when idle.
    pub fn step(&mut self) -> bool {
        let Some((at, ev)) = self.queue.pop() else {
            return false;
        };
        self.now = self.now.max(at);
        self.steps += 1;
        match ev {
            SimEvent::Arrival(a) => {
                let Some(idx) = self.proc_of(a.dst) else {
                    return true;
                };
                if !self.procs[idx].alive {
                    return true;
                }
                let Ok(msg) = unmarshal(&a.packet.bytes) else {
                    return true; // Corrupt packets are dropped.
                };
                let Some(origin) = self.procs[idx].vs.rank_of(a.packet.src) else {
                    return true; // Sender no longer in our view.
                };
                if let Some(o) = &mut self.obs {
                    let now = self.now;
                    let (ep, len) = (a.dst.id(), a.packet.bytes.len() as u64);
                    o.trace(now, "wire", EventKind::PacketIn, Direction::Up, ep, len);
                }
                let ev = match a.packet.dst {
                    Dest::Cast => UpEvent::Cast { origin, msg },
                    Dest::Point(_) => UpEvent::Send { origin, msg },
                };
                let b = self.procs[idx].engine.inject_up(self.now, ev);
                self.route_boundary(idx, b);
            }
            SimEvent::Timer {
                ep,
                layer,
                generation,
            } => {
                let Some(idx) = self.proc_of(ep) else {
                    return true;
                };
                let p = &self.procs[idx];
                if !p.alive || p.generation != generation {
                    return true; // Stale timer from a replaced stack.
                }
                if let Some(o) = &mut self.obs {
                    // Attribute the fire to the layer's name in the
                    // running stack (top first, as built).
                    let name = self.stack.get(layer).copied().unwrap_or("engine");
                    let now = self.now;
                    o.trace(now, name, EventKind::TimerFire, Direction::None, ep.id(), 0);
                }
                let b = self.procs[idx].engine.fire_timer(self.now, layer);
                self.route_boundary(idx, b);
            }
        }
        true
    }

    /// Runs until the event queue is empty (bounded by `max_steps`).
    ///
    /// Note: stacks with periodic timers (suspect, stable) never quiesce;
    /// use [`Simulation::run_for`] for those.
    pub fn run_to_quiescence(&mut self) -> u64 {
        let mut n = 0;
        while n < 1_000_000 && self.step() {
            n += 1;
        }
        n
    }

    /// Runs until virtual time `deadline` (events after it stay queued).
    pub fn run_until(&mut self, deadline: Time) {
        let mut guard = 0u64;
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
            guard += 1;
            assert!(guard < 10_000_000, "simulation runaway");
        }
        self.now = self.now.max(deadline);
    }

    /// Runs for `d` of virtual time from now.
    pub fn run_for(&mut self, d: Duration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Cast deliveries at process `id`, as `(origin endpoint id, bytes)`.
    pub fn cast_deliveries(&self, id: u32) -> Vec<(u32, Vec<u8>)> {
        self.procs[id as usize].casts.clone()
    }

    /// Point-to-point deliveries at process `id`.
    pub fn send_deliveries(&self, id: u32) -> Vec<(u32, Vec<u8>)> {
        self.procs[id as usize].sends.clone()
    }

    /// Views installed at process `id` (including the initial view).
    pub fn views(&self, id: u32) -> &[ViewState] {
        &self.procs[id as usize].views
    }

    /// The current view at process `id`.
    pub fn current_view(&self, id: u32) -> &ViewState {
        self.procs[id as usize].views.last().expect("has a view")
    }

    /// Whether the process is alive (not killed, not exited).
    pub fn is_alive(&self, id: u32) -> bool {
        self.procs[id as usize].alive
    }

    /// Block notifications seen at process `id`.
    pub fn blocks(&self, id: u32) -> u64 {
        self.procs[id as usize].blocks
    }

    /// The last stability vector the application saw at `id`.
    pub fn stability(&self, id: u32) -> &[u64] {
        &self.procs[id as usize].stability
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemble_layers::{STACK_10, STACK_4};
    use ensemble_net::PerfectModel;

    fn sim(n: usize, stack: &[&'static str], kind: EngineKind) -> Simulation<PerfectModel> {
        Simulation::new(n, stack, kind, LayerConfig::fast(), PerfectModel::via(), 7).unwrap()
    }

    #[test]
    fn four_layer_cast_reaches_group() {
        let mut s = sim(3, STACK_4, EngineKind::Imp);
        s.cast(1, b"m");
        s.run_to_quiescence();
        // STACK_4 has no `local`, so only the others deliver.
        assert_eq!(s.cast_deliveries(0), vec![(1, b"m".to_vec())]);
        assert_eq!(s.cast_deliveries(2), vec![(1, b"m".to_vec())]);
    }

    #[test]
    fn ten_layer_cast_includes_self_delivery() {
        let mut s = sim(3, STACK_10, EngineKind::Imp);
        s.cast(0, b"hello");
        s.run_to_quiescence();
        for r in 0..3 {
            assert_eq!(
                s.cast_deliveries(r),
                vec![(0, b"hello".to_vec())],
                "rank {r}"
            );
        }
    }

    #[test]
    fn sends_are_delivered_point_to_point() {
        let mut s = sim(3, STACK_4, EngineKind::Func);
        s.send(0, 2, b"direct");
        s.run_to_quiescence();
        assert_eq!(s.send_deliveries(2), vec![(0, b"direct".to_vec())]);
        assert!(s.send_deliveries(1).is_empty());
    }

    #[test]
    fn imp_and_func_agree_end_to_end() {
        let mut a = sim(3, STACK_10, EngineKind::Imp);
        let mut b = sim(3, STACK_10, EngineKind::Func);
        for s in [&mut a, &mut b] {
            s.cast(0, b"x");
            s.cast(1, b"y");
            s.cast(2, b"z");
            s.run_to_quiescence();
        }
        for r in 0..3 {
            assert_eq!(a.cast_deliveries(r), b.cast_deliveries(r), "rank {r}");
        }
    }

    #[test]
    fn total_order_holds_across_members() {
        let mut s = sim(3, STACK_10, EngineKind::Imp);
        for i in 0..5u8 {
            s.cast(1, &[10 + i]);
            s.cast(2, &[20 + i]);
        }
        s.run_to_quiescence();
        let d0 = s.cast_deliveries(0);
        assert_eq!(d0.len(), 10);
        for r in 1..3 {
            assert_eq!(s.cast_deliveries(r), d0, "agreement at rank {r}");
        }
    }

    #[test]
    fn deterministic_from_seed() {
        let run = || {
            let mut s = sim(3, STACK_10, EngineKind::Imp);
            s.cast(0, b"a");
            s.cast(1, b"b");
            s.run_to_quiescence();
            (s.cast_deliveries(2), s.steps)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn obs_traces_virtual_time_and_cast_latency() {
        let mut s = sim(3, STACK_4, EngineKind::Imp);
        s.enable_obs(4096);
        s.cast(1, b"m");
        s.cast(2, b"nn");
        s.run_to_quiescence();

        let events = s.drain_trace();
        assert!(!events.is_empty());
        // Stamps are virtual: monotone within the drain and bounded by
        // the simulation clock.
        assert!(events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        assert!(events.iter().all(|e| e.t_ns <= s.now().nanos()));
        let count = |k| events.iter().filter(|e| e.kind == k).count();
        assert_eq!(count(ensemble_obs::EventKind::Cast), 2);
        // Each cast reaches the other two members (STACK_4: no local).
        assert_eq!(count(ensemble_obs::EventKind::Deliver), 4);
        assert!(count(ensemble_obs::EventKind::PacketOut) >= 2);
        assert!(count(ensemble_obs::EventKind::PacketIn) >= 4);
        // Layer names resolve (wire/app pseudo-layers at least).
        assert!(events.iter().any(|e| e.layer == "app"));
        assert!(events.iter().any(|e| e.layer == "wire"));

        // Four deliveries → four virtual latency samples, all nonzero
        // (the link model imposes real virtual delay).
        let lat = s.cast_latency();
        assert_eq!(lat.count, 4);
        assert!(lat.p99 > 0, "virtual latency must be nonzero: {lat:?}");

        // The drain is destructive; a quiet sim drains nothing new.
        assert!(s.drain_trace().is_empty());
    }

    #[test]
    fn obs_attributes_timer_fires_to_stack_layers() {
        let mut s = sim(2, STACK_10, EngineKind::Imp);
        s.enable_obs(8192);
        s.cast(0, b"x");
        s.run_for(ensemble_util::Duration::from_millis(50));
        let events = s.drain_trace();
        let fired: Vec<&str> = events
            .iter()
            .filter(|e| e.kind == ensemble_obs::EventKind::TimerFire)
            .map(|e| e.layer)
            .collect();
        assert!(!fired.is_empty(), "periodic layers must fire timers");
        assert!(
            fired.iter().all(|l| STACK_10.contains(l)),
            "timer fires carry stack layer names, got {fired:?}"
        );
    }

    #[test]
    fn disabled_obs_traces_nothing() {
        let mut s = sim(3, STACK_4, EngineKind::Imp);
        s.cast(0, b"m");
        s.run_to_quiescence();
        assert!(s.drain_trace().is_empty());
        assert_eq!(s.cast_latency().count, 0);
    }

    #[test]
    fn killed_process_stops_delivering() {
        let mut s = sim(3, STACK_4, EngineKind::Imp);
        s.kill(2);
        s.cast(0, b"m");
        s.run_to_quiescence();
        assert!(s.cast_deliveries(2).is_empty());
        assert!(!s.is_alive(2));
        assert_eq!(s.cast_deliveries(1).len(), 1);
    }
}
