//! # ensemble-rs
//!
//! A Rust reproduction of *"Building reliable, high-performance
//! communication systems from components"* (SOSP '99): the Ensemble
//! group-communication architecture — micro-protocol layers composed into
//! application-specific stacks — together with the formal pipeline that
//! checks configurations against IOA specifications and synthesizes
//! optimized common-case bypass code from them.
//!
//! ## Quick start
//!
//! ```
//! use ensemble::sim::{EngineKind, Simulation};
//! use ensemble::PerfectModel;
//!
//! // Three processes running the 10-layer totally-ordered stack over a
//! // simulated Ethernet.
//! let mut sim = Simulation::new(
//!     3,
//!     ensemble::STACK_10,
//!     EngineKind::Imp,
//!     ensemble::LayerConfig::fast(),
//!     PerfectModel::ethernet(),
//!     42,
//! )
//! .unwrap();
//! sim.cast(0, b"hello group");
//! sim.run_to_quiescence();
//! // Everyone (including the sender) delivered it.
//! for rank in 0..3 {
//!     assert_eq!(sim.cast_deliveries(rank), vec![(0, b"hello group".to_vec())]);
//! }
//! ```
//!
//! ## Crate map
//!
//! | concern | crate |
//! |---|---|
//! | events, headers, payloads, views | [`ensemble_event`] |
//! | the micro-protocol layer library | [`ensemble_layers`] |
//! | IMP/FUNC engines, stack selection, interface checks | [`ensemble_stack`] |
//! | wire formats (generic + compressed) | [`ensemble_transport`] |
//! | deterministic network simulation | [`ensemble_net`] |
//! | IOA specifications + refinement checking | [`ensemble_ioa`] |
//! | the term language and layer models | [`ensemble_ir`] |
//! | the synthesis pipeline (MACH) | [`ensemble_synth`] |
//! | the hand-optimized fast path (HAND) | [`ensemble_hand`] |
//! | real-socket, thread-pooled execution | [`ensemble_runtime`] |

#![forbid(unsafe_code)]

pub mod sim;

pub use ensemble_event::{DnEvent, Effects, Frame, Msg, Payload, UpEvent, ViewState};
pub use ensemble_hand::{HandBypass, HandOutput};
pub use ensemble_ioa::{check_refinement, RefineError, RefineOptions};
pub use ensemble_layers::{make_layer, make_stack, LayerConfig, STACK_10, STACK_4, STACK_VSYNC};
pub use ensemble_net::{LossyModel, PartitionModel, PerfectModel};
pub use ensemble_stack::{check_stack, select_stack, Engine, FuncEngine, ImpEngine, Property};
pub use ensemble_synth::{synthesize, StackBypass};
pub use ensemble_util::{Duration, Endpoint, Rank, Seqno, Time};

/// Re-exported component crates for direct access.
pub use ensemble_event as event;
pub use ensemble_hand as hand;
pub use ensemble_ioa as ioa;
pub use ensemble_ir as ir;
pub use ensemble_layers as layers;
pub use ensemble_net as net;
pub use ensemble_runtime as runtime;
pub use ensemble_stack as stack;
pub use ensemble_synth as synth;
pub use ensemble_transport as transport;
pub use ensemble_util as util;
