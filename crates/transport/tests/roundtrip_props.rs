//! Property-based wire-format tests: arbitrary header stacks and
//! payloads survive marshal → unmarshal, and the compressed format
//! round-trips arbitrary field vectors.
//!
//! Feature-gated: the default build must resolve with no crates.io
//! access, so `proptest` is not a dev-dependency. To run these, re-add
//! `proptest = "1"` under `[dev-dependencies]` and pass
//! `--features proptests`. `roundtrip_det.rs` carries a deterministic
//! subset of this coverage in the default suite.
#![cfg(feature = "proptests")]

use ensemble_event::{
    CollectHdr, FlowHdr, FragHdr, Frame, MnakHdr, Msg, Payload, Pt2PtHdr, StableHdr, SuspectHdr,
    SyncHdr, TotalHdr,
};
use ensemble_transport::{marshal, unmarshal, CompressedHdr};
use ensemble_util::{Rank, Seqno};
use proptest::prelude::*;

fn frame_strategy() -> impl Strategy<Value = Frame> {
    prop_oneof![
        Just(Frame::NoHdr),
        any::<u64>().prop_map(|v| Frame::Bottom { view_ltime: v }),
        any::<u64>().prop_map(|s| Frame::Mnak(MnakHdr::Data { seqno: Seqno(s) })),
        (any::<u16>(), any::<u64>(), any::<u64>()).prop_map(|(o, lo, hi)| {
            Frame::Mnak(MnakHdr::Nak {
                origin: Rank(o),
                lo: Seqno(lo),
                hi: Seqno(hi),
            })
        }),
        any::<u64>().prop_map(|n| Frame::Mnak(MnakHdr::Heartbeat { next: Seqno(n) })),
        (any::<u64>(), any::<u64>()).prop_map(|(s, a)| {
            Frame::Pt2Pt(Pt2PtHdr::Data {
                seqno: Seqno(s),
                ack: Seqno(a),
            })
        }),
        any::<u64>().prop_map(|a| Frame::Pt2Pt(Pt2PtHdr::Ack { ack: Seqno(a) })),
        Just(Frame::Pt2PtW(FlowHdr::Data)),
        any::<u64>().prop_map(|g| Frame::MFlow(FlowHdr::Credit { granted: g })),
        Just(Frame::Frag(FragHdr::Whole)),
        (any::<u32>(), any::<u16>(), 1u16..100).prop_map(|(m, i, t)| {
            Frame::Frag(FragHdr::Piece {
                msg_id: m,
                idx: i,
                total: t,
            })
        }),
        prop::collection::vec(any::<u64>(), 0..8)
            .prop_map(|seen| Frame::Collect(CollectHdr::Gossip { seen })),
        any::<u64>().prop_map(|o| Frame::Total(TotalHdr::Ordered { order: Seqno(o) })),
        (any::<u16>(), any::<u64>(), any::<u64>()).prop_map(|(o, l, ord)| {
            Frame::Total(TotalHdr::Order {
                origin: Rank(o),
                local: Seqno(l),
                order: Seqno(ord),
            })
        }),
        prop::collection::vec(any::<u64>(), 0..8)
            .prop_map(|row| Frame::Stable(StableHdr::Gossip { row })),
        any::<u32>().prop_map(|r| Frame::Suspect(SuspectHdr::Ping { round: r })),
        prop::collection::vec(any::<u64>(), 0..4)
            .prop_map(|s| Frame::Sync(SyncHdr::Flush { suspects: s })),
        prop::collection::vec(any::<u64>(), 0..8)
            .prop_map(|seen| Frame::Sync(SyncHdr::FlushOk { seen })),
        any::<u64>().prop_map(|m| Frame::Sign { mac: m }),
        any::<u32>().prop_map(|k| Frame::Encrypt { keyid: k }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn generic_marshal_roundtrips(
        frames in prop::collection::vec(frame_strategy(), 0..12),
        body in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let msg = Msg::from_parts(frames, Payload::from_slice(&body));
        let bytes = marshal(&msg);
        prop_assert_eq!(unmarshal(&bytes).unwrap(), msg);
    }

    #[test]
    fn unmarshal_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = unmarshal(&bytes); // Must return Err, not panic.
    }

    #[test]
    fn truncation_never_roundtrips_silently(
        frames in prop::collection::vec(frame_strategy(), 1..6),
        body in prop::collection::vec(any::<u8>(), 0..64),
        cut in 1usize..32,
    ) {
        let msg = Msg::from_parts(frames, Payload::from_slice(&body));
        let bytes = marshal(&msg);
        let cut = cut.min(bytes.len());
        let truncated = &bytes[..bytes.len() - cut];
        // Either an error, or (never) the identical message.
        if let Ok(m) = unmarshal(truncated) {
            prop_assert_ne!(m, msg);
        }
    }

    #[test]
    fn compressed_roundtrips(
        stack_id in any::<u32>(),
        case in any::<u8>(),
        fields in prop::collection::vec(any::<u64>(), 0..8),
        body in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let h = CompressedHdr::new(stack_id, case, fields);
        let bytes = h.encode(&body);
        prop_assert_eq!(bytes.len(), h.encoded_len() + body.len());
        let (back, payload) = CompressedHdr::decode(&bytes).unwrap();
        prop_assert_eq!(back, h);
        prop_assert_eq!(payload, &body[..]);
    }

    #[test]
    fn compressed_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = CompressedHdr::decode(&bytes);
    }
}
