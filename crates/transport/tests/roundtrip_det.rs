//! Deterministic subset of the wire-format property tests.
//!
//! `roundtrip_props.rs` holds the proptest originals (feature-gated off
//! the default build so it resolves offline); this file replays the same
//! properties over a seeded [`DetRng`] workload so the default suite
//! keeps the coverage. A failure here reproduces bit-for-bit from the
//! seed in the test body.

use ensemble_event::{
    CollectHdr, FlowHdr, FragHdr, Frame, MnakHdr, Msg, Payload, Pt2PtHdr, StableHdr, SuspectHdr,
    SyncHdr, TotalHdr,
};
use ensemble_transport::{marshal, unmarshal, CompressedHdr};
use ensemble_util::{DetRng, Rank, Seqno};

fn random_frame(rng: &mut DetRng) -> Frame {
    match rng.below(18) {
        0 => Frame::NoHdr,
        1 => Frame::Bottom {
            view_ltime: rng.next_u64(),
        },
        2 => Frame::Mnak(MnakHdr::Data {
            seqno: Seqno(rng.next_u64()),
        }),
        3 => Frame::Mnak(MnakHdr::Nak {
            origin: Rank(rng.below(1 << 16) as u16),
            lo: Seqno(rng.next_u64()),
            hi: Seqno(rng.next_u64()),
        }),
        4 => Frame::Mnak(MnakHdr::Heartbeat {
            next: Seqno(rng.next_u64()),
        }),
        5 => Frame::Pt2Pt(Pt2PtHdr::Data {
            seqno: Seqno(rng.next_u64()),
            ack: Seqno(rng.next_u64()),
        }),
        6 => Frame::Pt2Pt(Pt2PtHdr::Ack {
            ack: Seqno(rng.next_u64()),
        }),
        7 => Frame::Pt2PtW(FlowHdr::Data),
        8 => Frame::MFlow(FlowHdr::Credit {
            granted: rng.next_u64(),
        }),
        9 => Frame::Frag(FragHdr::Whole),
        10 => Frame::Frag(FragHdr::Piece {
            msg_id: rng.next_u64() as u32,
            idx: rng.below(1 << 16) as u16,
            total: rng.range(1, 100) as u16,
        }),
        11 => Frame::Collect(CollectHdr::Gossip {
            seen: (0..rng.below(8)).map(|_| rng.next_u64()).collect(),
        }),
        12 => Frame::Total(TotalHdr::Ordered {
            order: Seqno(rng.next_u64()),
        }),
        13 => Frame::Total(TotalHdr::Order {
            origin: Rank(rng.below(1 << 16) as u16),
            local: Seqno(rng.next_u64()),
            order: Seqno(rng.next_u64()),
        }),
        14 => Frame::Stable(StableHdr::Gossip {
            row: (0..rng.below(8)).map(|_| rng.next_u64()).collect(),
        }),
        15 => Frame::Suspect(SuspectHdr::Ping {
            round: rng.next_u64() as u32,
        }),
        16 => match rng.below(2) {
            0 => Frame::Sync(SyncHdr::Flush {
                suspects: (0..rng.below(4)).map(|_| rng.next_u64()).collect(),
            }),
            _ => Frame::Sync(SyncHdr::FlushOk {
                seen: (0..rng.below(8)).map(|_| rng.next_u64()).collect(),
            }),
        },
        _ => match rng.below(2) {
            0 => Frame::Sign {
                mac: rng.next_u64(),
            },
            _ => Frame::Encrypt {
                keyid: rng.next_u64() as u32,
            },
        },
    }
}

fn random_msg(rng: &mut DetRng, max_frames: u64, max_body: u64) -> Msg {
    let frames = (0..rng.below(max_frames))
        .map(|_| random_frame(rng))
        .collect();
    let mut body = vec![0u8; rng.below(max_body) as usize];
    rng.fill_bytes(&mut body);
    Msg::from_parts(frames, Payload::from_slice(&body))
}

#[test]
fn generic_marshal_roundtrips_det() {
    let mut rng = DetRng::new(0x0DE7_0001);
    for case in 0..256 {
        let msg = random_msg(&mut rng, 12, 256);
        let bytes = marshal(&msg);
        assert_eq!(unmarshal(&bytes).unwrap(), msg, "case {case}");
    }
}

#[test]
fn unmarshal_never_panics_on_garbage_det() {
    let mut rng = DetRng::new(0x0DE7_0002);
    for _ in 0..512 {
        let mut bytes = vec![0u8; rng.below(128) as usize];
        rng.fill_bytes(&mut bytes);
        let _ = unmarshal(&bytes); // Must return Err, not panic.
    }
}

#[test]
fn truncation_never_roundtrips_silently_det() {
    let mut rng = DetRng::new(0x0DE7_0003);
    for case in 0..256 {
        let mut msg = random_msg(&mut rng, 6, 64);
        if msg.frames().is_empty() {
            msg = Msg::from_parts(vec![Frame::NoHdr], msg.payload().clone());
        }
        let bytes = marshal(&msg);
        let cut = rng.range(1, 32).min(bytes.len() as u64) as usize;
        let truncated = &bytes[..bytes.len() - cut];
        if let Ok(m) = unmarshal(truncated) {
            assert_ne!(m, msg, "case {case}: truncation decoded to the original");
        }
    }
}

#[test]
fn compressed_roundtrips_det() {
    let mut rng = DetRng::new(0x0DE7_0004);
    for case in 0..256 {
        let stack_id = rng.next_u64() as u32;
        let tag = rng.below(256) as u8;
        let fields: Vec<u64> = (0..rng.below(8)).map(|_| rng.next_u64()).collect();
        let mut body = vec![0u8; rng.below(256) as usize];
        rng.fill_bytes(&mut body);
        let h = CompressedHdr::new(stack_id, tag, fields);
        let bytes = h.encode(&body);
        assert_eq!(bytes.len(), h.encoded_len() + body.len(), "case {case}");
        let (back, payload) = CompressedHdr::decode(&bytes).unwrap();
        assert_eq!(back, h, "case {case}");
        assert_eq!(payload, &body[..], "case {case}");
    }
}

#[test]
fn compressed_decode_never_panics_det() {
    let mut rng = DetRng::new(0x0DE7_0005);
    for _ in 0..512 {
        let mut bytes = vec![0u8; rng.below(64) as usize];
        rng.fill_bytes(&mut bytes);
        let _ = CompressedHdr::decode(&bytes);
    }
}
