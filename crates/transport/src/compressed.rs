//! The compressed header format emitted by the synthesis pipeline.
//!
//! §4.1.3: "most information in headers seldom changes, allowing for
//! significant compression of headers, typically to just 16 bytes". The
//! synthesized bypass knows, from the optimization theorems, exactly which
//! header fields are constant for a given (stack, case); the constants are
//! folded into a single identifier and only the varying fields travel.
//!
//! Layout (little-endian):
//!
//! ```text
//! +---------+---------+---------+----------------+----------------+
//! | u32     | u8      | u8      | u16            | n × u64        |
//! | stackid | case    | nfields | payload seghint| varying fields |
//! +---------+---------+---------+----------------+----------------+
//! ```
//!
//! With one varying field (the common data seqno) the header is exactly
//! 16 bytes, matching the paper.

use crate::wire::{WireError, WireReader, WireWriter};

/// Size of the fixed part of a compressed header.
pub const COMPRESSED_BASE_LEN: usize = 8;

/// A compressed header: the constant parts of an entire header stack
/// reduced to `(stack_id, case)`, plus the varying fields in order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompressedHdr {
    /// Identifies the sending stack's layer composition (a hash of the
    /// layer names, computed by the synthesis pipeline).
    pub stack_id: u32,
    /// Which of the four fundamental cases (and which bypass path) this is.
    pub case: u8,
    /// The varying header fields, in the order the theorems list them.
    pub fields: Vec<u64>,
}

impl CompressedHdr {
    /// Builds a compressed header.
    pub fn new(stack_id: u32, case: u8, fields: Vec<u64>) -> Self {
        CompressedHdr {
            stack_id,
            case,
            fields,
        }
    }

    /// The encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        COMPRESSED_BASE_LEN + 8 * self.fields.len()
    }

    /// Encodes the header followed by the raw payload bytes.
    pub fn encode(&self, payload: &[u8]) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(self.encoded_len() + payload.len());
        w.u32(self.stack_id);
        w.u8(self.case);
        w.u8(self.fields.len() as u8);
        w.u16(0);
        for &f in &self.fields {
            w.u64(f);
        }
        w.raw(payload);
        w.finish()
    }

    /// Decodes a compressed header, returning it and the payload bytes.
    pub fn decode(bytes: &[u8]) -> Result<(CompressedHdr, &[u8]), WireError> {
        let mut r = WireReader::new(bytes);
        let stack_id = r.u32()?;
        let case = r.u8()?;
        let nfields = r.u8()? as usize;
        let _seghint = r.u16()?;
        let mut fields = Vec::with_capacity(nfields);
        for _ in 0..nfields {
            fields.push(r.u64()?);
        }
        let consumed = COMPRESSED_BASE_LEN + 8 * nfields;
        Ok((
            CompressedHdr {
                stack_id,
                case,
                fields,
            },
            &bytes[consumed..],
        ))
    }
}

/// Computes the stack identifier for a list of layer names.
///
/// FNV-1a over the concatenated names; stable across runs so sender and
/// receiver bypasses generated from the same stack agree.
pub fn stack_id(layer_names: &[&str]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for name in layer_names {
        for b in name.bytes() {
            h ^= b as u32;
            h = h.wrapping_mul(0x0100_0193);
        }
        h ^= 0xFF;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_byte_common_case() {
        let h = CompressedHdr::new(0xABCD, 1, vec![42]);
        assert_eq!(h.encoded_len(), 16);
        let bytes = h.encode(b"data");
        assert_eq!(bytes.len(), 16 + 4);
    }

    #[test]
    fn roundtrip_with_payload() {
        let h = CompressedHdr::new(7, 3, vec![1, 2, 3]);
        let bytes = h.encode(b"xyz");
        let (back, payload) = CompressedHdr::decode(&bytes).unwrap();
        assert_eq!(back, h);
        assert_eq!(payload, b"xyz");
    }

    #[test]
    fn roundtrip_no_fields_no_payload() {
        let h = CompressedHdr::new(1, 0, vec![]);
        assert_eq!(h.encoded_len(), COMPRESSED_BASE_LEN);
        let bytes = h.encode(b"");
        let (back, payload) = CompressedHdr::decode(&bytes).unwrap();
        assert_eq!(back, h);
        assert!(payload.is_empty());
    }

    #[test]
    fn truncated_rejected() {
        let h = CompressedHdr::new(7, 3, vec![9]);
        let bytes = h.encode(b"");
        assert!(CompressedHdr::decode(&bytes[..10]).is_err());
    }

    #[test]
    fn stack_id_stable_and_order_sensitive() {
        let a = stack_id(&["mnak", "pt2pt", "bottom"]);
        let b = stack_id(&["mnak", "pt2pt", "bottom"]);
        let c = stack_id(&["pt2pt", "mnak", "bottom"]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Name-boundary separator prevents ["ab","c"] == ["a","bc"].
        assert_ne!(stack_id(&["ab", "c"]), stack_id(&["a", "bc"]));
    }
}
