//! Marshaling and wire formats.
//!
//! Ensemble has no fixed wire format for headers: the sender's stack
//! determines the header structure and the OCaml value marshaler serializes
//! it generically. This crate provides:
//!
//! * [`wire`] — a small byte reader/writer with explicit error handling;
//! * [`generic`] — the general marshaler that walks the header structure
//!   recursively (modelling the OCaml marshaler the paper replaces), used
//!   by the IMP and FUNC configurations;
//! * [`compressed`] — the 16-byte compressed header format produced by the
//!   synthesis pipeline (§4.1.3 "header compression"), used by the HAND and
//!   MACH bypasses;
//! * [`packet`] — the transport-seam packet type shared by the simulator
//!   and the real-socket runtime;
//! * [`datagram`] — the envelope framing packets over real datagram
//!   sockets (magic/version/src/dst + marshaled bytes).

#![forbid(unsafe_code)]

pub mod compressed;
pub mod datagram;
pub mod generic;
pub mod packet;
pub mod wire;

pub use compressed::{stack_id, CompressedHdr, COMPRESSED_BASE_LEN};
pub use datagram::{decode_datagram, encode_datagram, DATAGRAM_OVERHEAD};
pub use generic::{marshal, unmarshal};
pub use packet::{Dest, Packet};
pub use wire::{WireError, WireReader, WireWriter};
