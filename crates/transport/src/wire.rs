//! Byte-level reading and writing with explicit failure modes.

use std::fmt;

/// Errors produced while decoding wire bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    Truncated,
    /// An unknown tag byte was encountered.
    BadTag(u8),
    /// A length field was implausible for the remaining buffer.
    BadLength(usize),
    /// Bytes remained after a complete decode.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire buffer truncated"),
            WireError::BadTag(t) => write!(f, "unknown wire tag {t}"),
            WireError::BadLength(n) => write!(f, "implausible length {n}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decode"),
        }
    }
}

impl std::error::Error for WireError {}

/// An appending byte writer.
#[derive(Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A writer with pre-reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        WireWriter {
            buf: Vec::with_capacity(n),
        }
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a u32-length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Writes raw bytes with no prefix.
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Writes a u16-length-prefixed vector of u64s.
    pub fn u64_vec(&mut self, v: &[u64]) {
        self.u16(v.len() as u16);
        for &x in v {
            self.u64(x);
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finishes, returning the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// A consuming byte reader.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Reads from `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u16.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a u32-length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(WireError::BadLength(n));
        }
        self.take(n)
    }

    /// Reads a u16-length-prefixed vector of u64s.
    pub fn u64_vec(&mut self) -> Result<Vec<u64>, WireError> {
        let n = self.u16()? as usize;
        if n * 8 > self.remaining() {
            return Err(WireError::BadLength(n));
        }
        (0..n).map(|_| self.u64()).collect()
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Succeeds only if the buffer was fully consumed.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = WireWriter::new();
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(1 << 40);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        r.expect_end().unwrap();
    }

    #[test]
    fn roundtrip_bytes_and_vec() {
        let mut w = WireWriter::with_capacity(64);
        w.bytes(b"payload");
        w.u64_vec(&[1, 2, 3]);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.bytes().unwrap(), b"payload");
        assert_eq!(r.u64_vec().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn truncation_detected() {
        let mut w = WireWriter::new();
        w.u64(5);
        let mut buf = w.finish();
        buf.truncate(4);
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u64(), Err(WireError::Truncated));
    }

    #[test]
    fn bad_length_detected() {
        let mut w = WireWriter::new();
        w.u32(1000);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.bytes(), Err(WireError::BadLength(1000)));
        let mut w2 = WireWriter::new();
        w2.u16(500);
        let buf2 = w2.finish();
        let mut r2 = WireReader::new(&buf2);
        assert_eq!(r2.u64_vec(), Err(WireError::BadLength(500)));
    }

    #[test]
    fn trailing_bytes_detected() {
        let buf = [0u8; 3];
        let mut r = WireReader::new(&buf);
        r.u8().unwrap();
        assert_eq!(r.expect_end(), Err(WireError::TrailingBytes(2)));
        assert_eq!(r.remaining(), 2);
    }

    #[test]
    fn error_display() {
        assert!(WireError::BadTag(9).to_string().contains('9'));
        assert!(!WireError::Truncated.to_string().is_empty());
    }
}
