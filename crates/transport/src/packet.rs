//! Wire packets exchanged between processes.
//!
//! This is the transport-seam vocabulary shared by the deterministic
//! simulator (`ensemble-net`) and the real-socket runtime
//! (`ensemble-runtime`): a packet is a source endpoint, a destination
//! (multicast or point-to-point), and the already-marshaled bytes. It
//! lives here — not in the simulator crate — so transports and the
//! runtime need no dependency on simulation machinery.

use ensemble_util::Endpoint;

/// The destination of a packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dest {
    /// Multicast to every current member except the sender.
    Cast,
    /// Point-to-point to one endpoint.
    Point(Endpoint),
}

/// A marshaled message in flight.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    /// The sending endpoint.
    pub src: Endpoint,
    /// Where the packet is going.
    pub dst: Dest,
    /// The marshaled bytes (headers + payload).
    pub bytes: Vec<u8>,
}

impl Packet {
    /// Builds a multicast packet.
    pub fn cast(src: Endpoint, bytes: Vec<u8>) -> Packet {
        Packet {
            src,
            dst: Dest::Cast,
            bytes,
        }
    }

    /// Builds a point-to-point packet.
    pub fn point(src: Endpoint, dst: Endpoint, bytes: Vec<u8>) -> Packet {
        Packet {
            src,
            dst: Dest::Point(dst),
            bytes,
        }
    }

    /// The wire size in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let a = Endpoint::new(0);
        let b = Endpoint::new(1);
        let p = Packet::cast(a, vec![1, 2, 3]);
        assert_eq!(p.dst, Dest::Cast);
        assert_eq!(p.size(), 3);
        let q = Packet::point(a, b, vec![]);
        assert_eq!(q.dst, Dest::Point(b));
        assert_eq!(q.size(), 0);
    }
}
