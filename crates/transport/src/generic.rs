//! The generic header marshaler.
//!
//! Models the OCaml value marshaler Ensemble originally used: a recursive
//! traversal of the header structure that dispatches per constructor,
//! writes self-describing tags, and copies everything into a byte string
//! ("all this generality leads to substantial overhead", §4). This is the
//! path exercised by the IMP and FUNC configurations; the synthesized
//! bypass replaces it with the compressed format in [`crate::compressed`].

use crate::wire::{WireError, WireReader, WireWriter};
use ensemble_event::{
    CollectHdr, FlowHdr, FragHdr, Frame, GmpHdr, MnakHdr, Msg, Payload, Pt2PtHdr, StableHdr,
    SuspectHdr, SyncHdr, TotalHdr,
};
use ensemble_util::{Endpoint, Rank, Seqno};

/// Marshals a message (headers + payload) into wire bytes.
///
/// # Examples
///
/// ```
/// use ensemble_event::{Frame, Msg, Payload};
/// use ensemble_transport::{marshal, unmarshal};
/// let mut m = Msg::data(Payload::from_slice(b"hi"));
/// m.push_frame(Frame::NoHdr);
/// let bytes = marshal(&m);
/// assert_eq!(unmarshal(&bytes).unwrap(), m);
/// ```
pub fn marshal(msg: &Msg) -> Vec<u8> {
    // Deliberately mirrors a generic value marshaler: each frame is
    // serialized into its own intermediate buffer which is then copied into
    // the output. The extra traversal and copies are the overhead the
    // paper's Table 1 "Transport" rows measure.
    let mut w = WireWriter::new();
    w.u8(msg.frames().len() as u8);
    for f in msg.frames() {
        let frame_bytes = marshal_frame(f);
        w.bytes(&frame_bytes);
    }
    let gathered = msg.payload().gather();
    w.bytes(&gathered);
    w.finish()
}

/// Unmarshals wire bytes back into a message.
pub fn unmarshal(bytes: &[u8]) -> Result<Msg, WireError> {
    let mut r = WireReader::new(bytes);
    let nframes = r.u8()? as usize;
    let mut frames = Vec::with_capacity(nframes);
    for _ in 0..nframes {
        let fb = r.bytes()?.to_vec();
        let mut fr = WireReader::new(&fb);
        let frame = unmarshal_frame(&mut fr)?;
        fr.expect_end()?;
        frames.push(frame);
    }
    let payload = Payload::from_slice(r.bytes()?);
    r.expect_end()?;
    Ok(Msg::from_parts(frames, payload))
}

fn marshal_frame(f: &Frame) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u8(f.tag());
    match f {
        Frame::NoHdr => {}
        Frame::Bottom { view_ltime } => w.u64(*view_ltime),
        Frame::Mnak(MnakHdr::Data { seqno }) => w.u64(seqno.0),
        Frame::Mnak(MnakHdr::Nak { origin, lo, hi }) => {
            w.u16(origin.0);
            w.u64(lo.0);
            w.u64(hi.0);
        }
        Frame::Mnak(MnakHdr::Retrans { origin, seqno }) => {
            w.u16(origin.0);
            w.u64(seqno.0);
        }
        Frame::Mnak(MnakHdr::Heartbeat { next }) => w.u64(next.0),
        Frame::Pt2Pt(Pt2PtHdr::Data { seqno, ack }) => {
            w.u64(seqno.0);
            w.u64(ack.0);
        }
        Frame::Pt2Pt(Pt2PtHdr::Ack { ack }) => w.u64(ack.0),
        Frame::Pt2PtW(FlowHdr::Data) => {}
        Frame::MFlow(FlowHdr::Data) => {}
        Frame::Pt2PtW(FlowHdr::Credit { granted }) => w.u64(*granted),
        Frame::MFlow(FlowHdr::Credit { granted }) => w.u64(*granted),
        Frame::Frag(FragHdr::Whole) => {}
        Frame::Frag(FragHdr::Piece { msg_id, idx, total }) => {
            w.u32(*msg_id);
            w.u16(*idx);
            w.u16(*total);
        }
        Frame::Collect(CollectHdr::Pass) => {}
        Frame::Collect(CollectHdr::Gossip { seen }) => w.u64_vec(seen),
        Frame::Total(TotalHdr::Ordered { order }) => w.u64(order.0),
        Frame::Total(TotalHdr::Unordered { local }) => w.u64(local.0),
        Frame::Total(TotalHdr::Order {
            origin,
            local,
            order,
        }) => {
            w.u16(origin.0);
            w.u64(local.0);
            w.u64(order.0);
        }
        Frame::Stable(StableHdr::Pass) => {}
        Frame::Stable(StableHdr::Gossip { row }) => w.u64_vec(row),
        Frame::Suspect(SuspectHdr::Pass) => {}
        Frame::Suspect(SuspectHdr::Ping { round }) => w.u32(*round),
        Frame::Suspect(SuspectHdr::Pong { round }) => w.u32(*round),
        Frame::Sync(SyncHdr::Pass) => {}
        Frame::Sync(SyncHdr::Flush { suspects }) => w.u64_vec(suspects),
        Frame::Sync(SyncHdr::FlushOk { seen }) => w.u64_vec(seen),
        Frame::Gmp(GmpHdr::Pass) => {}
        Frame::Gmp(GmpHdr::NewView {
            view_id_ltime,
            coord,
            members,
        }) => {
            w.u64(*view_id_ltime);
            w.u64(coord.to_wire());
            let wires: Vec<u64> = members.iter().map(Endpoint::to_wire).collect();
            w.u64_vec(&wires);
        }
        Frame::Sign { mac } => w.u64(*mac),
        Frame::Encrypt { keyid } => w.u32(*keyid),
    }
    w.finish()
}

fn unmarshal_frame(r: &mut WireReader<'_>) -> Result<Frame, WireError> {
    let tag = r.u8()?;
    Ok(match tag {
        0 => Frame::NoHdr,
        1 => Frame::Bottom {
            view_ltime: r.u64()?,
        },
        2 => Frame::Mnak(MnakHdr::Data {
            seqno: Seqno(r.u64()?),
        }),
        3 => Frame::Mnak(MnakHdr::Nak {
            origin: Rank(r.u16()?),
            lo: Seqno(r.u64()?),
            hi: Seqno(r.u64()?),
        }),
        4 => Frame::Mnak(MnakHdr::Retrans {
            origin: Rank(r.u16()?),
            seqno: Seqno(r.u64()?),
        }),
        5 => Frame::Pt2Pt(Pt2PtHdr::Data {
            seqno: Seqno(r.u64()?),
            ack: Seqno(r.u64()?),
        }),
        6 => Frame::Pt2Pt(Pt2PtHdr::Ack {
            ack: Seqno(r.u64()?),
        }),
        7 => Frame::Pt2PtW(FlowHdr::Data),
        8 => Frame::MFlow(FlowHdr::Data),
        9 => Frame::Frag(FragHdr::Whole),
        10 => Frame::Frag(FragHdr::Piece {
            msg_id: r.u32()?,
            idx: r.u16()?,
            total: r.u16()?,
        }),
        11 => Frame::Collect(CollectHdr::Pass),
        12 => Frame::Collect(CollectHdr::Gossip { seen: r.u64_vec()? }),
        13 => Frame::Total(TotalHdr::Ordered {
            order: Seqno(r.u64()?),
        }),
        14 => Frame::Total(TotalHdr::Unordered {
            local: Seqno(r.u64()?),
        }),
        15 => Frame::Total(TotalHdr::Order {
            origin: Rank(r.u16()?),
            local: Seqno(r.u64()?),
            order: Seqno(r.u64()?),
        }),
        16 => Frame::Stable(StableHdr::Pass),
        17 => Frame::Stable(StableHdr::Gossip { row: r.u64_vec()? }),
        18 => Frame::Suspect(SuspectHdr::Pass),
        19 => Frame::Suspect(SuspectHdr::Ping { round: r.u32()? }),
        20 => Frame::Suspect(SuspectHdr::Pong { round: r.u32()? }),
        21 => Frame::Sync(SyncHdr::Pass),
        22 => Frame::Sync(SyncHdr::Flush {
            suspects: r.u64_vec()?,
        }),
        23 => Frame::Sync(SyncHdr::FlushOk { seen: r.u64_vec()? }),
        24 => Frame::Gmp(GmpHdr::Pass),
        25 => Frame::Gmp(GmpHdr::NewView {
            view_id_ltime: r.u64()?,
            coord: Endpoint::from_wire(r.u64()?),
            members: r.u64_vec()?.into_iter().map(Endpoint::from_wire).collect(),
        }),
        26 => Frame::Sign { mac: r.u64()? },
        27 => Frame::Encrypt { keyid: r.u32()? },
        28 => Frame::Pt2PtW(FlowHdr::Credit { granted: r.u64()? }),
        30 => Frame::Mnak(MnakHdr::Heartbeat {
            next: Seqno(r.u64()?),
        }),
        29 => Frame::MFlow(FlowHdr::Credit { granted: r.u64()? }),
        t => return Err(WireError::BadTag(t)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let mut m = Msg::data(Payload::from_slice(b"body"));
        m.push_frame(f);
        let bytes = marshal(&m);
        assert_eq!(unmarshal(&bytes).unwrap(), m);
    }

    #[test]
    fn all_frames_roundtrip() {
        roundtrip(Frame::NoHdr);
        roundtrip(Frame::Bottom { view_ltime: 9 });
        roundtrip(Frame::Mnak(MnakHdr::Data { seqno: Seqno(42) }));
        roundtrip(Frame::Mnak(MnakHdr::Nak {
            origin: Rank(2),
            lo: Seqno(5),
            hi: Seqno(9),
        }));
        roundtrip(Frame::Mnak(MnakHdr::Retrans {
            origin: Rank(1),
            seqno: Seqno(3),
        }));
        roundtrip(Frame::Mnak(MnakHdr::Heartbeat { next: Seqno(9) }));
        roundtrip(Frame::Pt2Pt(Pt2PtHdr::Data {
            seqno: Seqno(1),
            ack: Seqno(0),
        }));
        roundtrip(Frame::Pt2Pt(Pt2PtHdr::Ack { ack: Seqno(8) }));
        roundtrip(Frame::Pt2PtW(FlowHdr::Data));
        roundtrip(Frame::MFlow(FlowHdr::Data));
        roundtrip(Frame::Pt2PtW(FlowHdr::Credit { granted: 64 }));
        roundtrip(Frame::MFlow(FlowHdr::Credit { granted: 128 }));
        roundtrip(Frame::Frag(FragHdr::Whole));
        roundtrip(Frame::Frag(FragHdr::Piece {
            msg_id: 77,
            idx: 1,
            total: 3,
        }));
        roundtrip(Frame::Collect(CollectHdr::Pass));
        roundtrip(Frame::Collect(CollectHdr::Gossip {
            seen: vec![1, 2, 3],
        }));
        roundtrip(Frame::Total(TotalHdr::Ordered { order: Seqno(6) }));
        roundtrip(Frame::Total(TotalHdr::Unordered { local: Seqno(2) }));
        roundtrip(Frame::Total(TotalHdr::Order {
            origin: Rank(1),
            local: Seqno(2),
            order: Seqno(10),
        }));
        roundtrip(Frame::Stable(StableHdr::Pass));
        roundtrip(Frame::Stable(StableHdr::Gossip { row: vec![0, 9] }));
        roundtrip(Frame::Suspect(SuspectHdr::Pass));
        roundtrip(Frame::Suspect(SuspectHdr::Ping { round: 4 }));
        roundtrip(Frame::Suspect(SuspectHdr::Pong { round: 4 }));
        roundtrip(Frame::Sync(SyncHdr::Pass));
        roundtrip(Frame::Sync(SyncHdr::Flush { suspects: vec![2] }));
        roundtrip(Frame::Sync(SyncHdr::FlushOk { seen: vec![5] }));
        roundtrip(Frame::Gmp(GmpHdr::Pass));
        roundtrip(Frame::Gmp(GmpHdr::NewView {
            view_id_ltime: 3,
            coord: Endpoint::new(1),
            members: vec![Endpoint::new(1), Endpoint::new(2)],
        }));
        roundtrip(Frame::Sign { mac: 0xFEED });
        roundtrip(Frame::Encrypt { keyid: 1 });
    }

    #[test]
    fn full_stack_of_frames_roundtrips() {
        let mut m = Msg::data(Payload::from_slice(&[7u8; 100]));
        m.push_frame(Frame::NoHdr);
        m.push_frame(Frame::Total(TotalHdr::Ordered { order: Seqno(3) }));
        m.push_frame(Frame::Frag(FragHdr::Whole));
        m.push_frame(Frame::MFlow(FlowHdr::Data));
        m.push_frame(Frame::Mnak(MnakHdr::Data { seqno: Seqno(3) }));
        m.push_frame(Frame::Bottom { view_ltime: 0 });
        let bytes = marshal(&m);
        let back = unmarshal(&bytes).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.depth(), 6);
    }

    #[test]
    fn empty_message_roundtrips() {
        let m = Msg::control();
        assert_eq!(unmarshal(&marshal(&m)).unwrap(), m);
    }

    #[test]
    fn bad_tag_rejected() {
        let mut w = WireWriter::new();
        w.u8(1); // One frame.
        w.bytes(&[99]); // Unknown tag 99.
        w.bytes(b"");
        assert_eq!(unmarshal(&w.finish()), Err(WireError::BadTag(99)));
    }

    #[test]
    fn truncated_rejected() {
        let mut m = Msg::data(Payload::from_slice(b"abc"));
        m.push_frame(Frame::NoHdr);
        let mut bytes = marshal(&m);
        bytes.truncate(bytes.len() - 2);
        assert!(unmarshal(&bytes).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let m = Msg::control();
        let mut bytes = marshal(&m);
        bytes.push(0);
        assert_eq!(unmarshal(&bytes), Err(WireError::TrailingBytes(1)));
    }
}
