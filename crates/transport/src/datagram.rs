//! Datagram framing at the socket seam.
//!
//! A [`Packet`] travelling over a real transport (UDP, or any future
//! byte-oriented link) is wrapped in a small self-describing envelope:
//! magic + version for safe rejection of foreign traffic, the source
//! endpoint, the destination kind, and the marshaled message bytes. The
//! envelope deliberately carries *no* protocol state — everything the
//! stack needs is inside `bytes` (generic or compressed format), so the
//! seam stays as narrow as the paper's transport interface.

use crate::packet::{Dest, Packet};
use crate::wire::{WireError, WireReader, WireWriter};
use ensemble_util::Endpoint;

/// First bytes of every datagram ("EN" + format id).
const MAGIC: u16 = 0x454E;
/// Envelope version; bump on incompatible layout changes.
const VERSION: u8 = 1;

const KIND_CAST: u8 = 0;
const KIND_POINT: u8 = 1;

/// Fixed envelope overhead in bytes (magic, version, kind, src, length).
pub const DATAGRAM_OVERHEAD: usize = 2 + 1 + 1 + 8 + 4;

/// Encodes a packet into one datagram.
pub fn encode_datagram(pkt: &Packet) -> Vec<u8> {
    let mut w = WireWriter::with_capacity(DATAGRAM_OVERHEAD + 8 + pkt.bytes.len());
    w.u16(MAGIC);
    w.u8(VERSION);
    match pkt.dst {
        Dest::Cast => w.u8(KIND_CAST),
        Dest::Point(ep) => {
            w.u8(KIND_POINT);
            w.u64(ep.to_wire());
        }
    }
    w.u64(pkt.src.to_wire());
    w.bytes(&pkt.bytes);
    w.finish()
}

/// Decodes one datagram back into a packet.
///
/// Foreign traffic (wrong magic or version) and truncated envelopes
/// return an error; the caller should drop such datagrams.
pub fn decode_datagram(buf: &[u8]) -> Result<Packet, WireError> {
    let mut r = WireReader::new(buf);
    let magic = r.u16()?;
    if magic != MAGIC {
        return Err(WireError::BadTag((magic >> 8) as u8));
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(WireError::BadTag(version));
    }
    let dst = match r.u8()? {
        KIND_CAST => Dest::Cast,
        KIND_POINT => Dest::Point(Endpoint::from_wire(r.u64()?)),
        other => return Err(WireError::BadTag(other)),
    };
    let src = Endpoint::from_wire(r.u64()?);
    let bytes = r.bytes()?.to_vec();
    r.expect_end()?;
    Ok(Packet { src, dst, bytes })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cast_roundtrips() {
        let p = Packet::cast(Endpoint::new(3), vec![1, 2, 3, 4]);
        let d = encode_datagram(&p);
        assert_eq!(decode_datagram(&d).unwrap(), p);
    }

    #[test]
    fn point_roundtrips() {
        let p = Packet::point(
            Endpoint::with_incarnation(7, 2),
            Endpoint::new(1),
            b"payload".to_vec(),
        );
        assert_eq!(decode_datagram(&encode_datagram(&p)).unwrap(), p);
    }

    #[test]
    fn empty_body_roundtrips() {
        let p = Packet::cast(Endpoint::new(0), Vec::new());
        assert_eq!(decode_datagram(&encode_datagram(&p)).unwrap(), p);
    }

    #[test]
    fn foreign_magic_is_rejected() {
        let p = Packet::cast(Endpoint::new(0), vec![9]);
        let mut d = encode_datagram(&p);
        d[0] ^= 0xFF;
        assert!(decode_datagram(&d).is_err());
    }

    #[test]
    fn wrong_version_is_rejected() {
        let p = Packet::cast(Endpoint::new(0), vec![9]);
        let mut d = encode_datagram(&p);
        d[2] = VERSION + 1;
        assert!(decode_datagram(&d).is_err());
    }

    #[test]
    fn truncation_is_rejected() {
        let p = Packet::point(Endpoint::new(0), Endpoint::new(1), vec![1, 2, 3]);
        let d = encode_datagram(&p);
        for cut in 1..d.len() {
            assert!(decode_datagram(&d[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn garbage_never_panics() {
        let mut rng = ensemble_util::DetRng::new(42);
        for _ in 0..500 {
            let len = rng.below(64) as usize;
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            let _ = decode_datagram(&buf);
        }
    }
}
