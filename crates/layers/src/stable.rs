//! `stable` — timer-driven stability gossip.
//!
//! An alternative to [`crate::collect`]: instead of gossiping after every
//! k-th delivery, `stable` gossips its delivered-vector on a fixed timer.
//! Useful in stacks with bursty traffic where delivery-count triggers
//! would starve (the paper's library offers several stability protocols
//! precisely because different environments favour different triggers).

use crate::config::LayerConfig;
use crate::layer::Layer;
use ensemble_event::{DnEvent, Effects, Frame, Msg, StableHdr, UpEvent, ViewState};
use ensemble_util::{Duration, Rank, Seqno, Time};

/// The timer-gossip stability layer.
pub struct Stable {
    my_rank: Rank,
    interval: Duration,
    seen: Vec<u64>,
    matrix: Vec<Vec<u64>>,
    last_min: Vec<u64>,
}

impl Stable {
    /// Builds the layer.
    pub fn new(vs: &ViewState, cfg: &LayerConfig) -> Self {
        let n = vs.nmembers();
        Stable {
            my_rank: vs.rank,
            interval: cfg.stable_interval,
            seen: vec![0; n],
            matrix: vec![vec![0; n]; n],
            last_min: vec![0; n],
        }
    }

    /// The current stability floor.
    pub fn stability(&self) -> Vec<Seqno> {
        self.last_min.iter().map(|&v| Seqno(v)).collect()
    }

    fn recompute(&mut self, out: &mut Effects) {
        self.matrix[self.my_rank.index()] = self.seen.clone();
        let n = self.seen.len();
        let min: Vec<u64> = (0..n)
            .map(|col| self.matrix.iter().map(|row| row[col]).min().unwrap_or(0))
            .collect();
        if min != self.last_min {
            self.last_min = min;
            let vec: Vec<Seqno> = self.last_min.iter().map(|&v| Seqno(v)).collect();
            out.dn(DnEvent::Stable(vec.clone()));
            out.up(UpEvent::Stable(vec));
        }
    }
}

impl Layer for Stable {
    fn name(&self) -> &'static str {
        "stable"
    }

    fn init(&mut self, now: Time, out: &mut Effects) {
        out.timer(now + self.interval);
    }

    fn up(&mut self, _now: Time, mut ev: UpEvent, out: &mut Effects) {
        match &mut ev {
            UpEvent::Cast { origin, msg } => {
                let origin = *origin;
                let frame = msg.pop_frame();
                self.seen[origin.index()] += 1;
                match frame {
                    Frame::Stable(StableHdr::Pass) => out.up(ev),
                    Frame::Stable(StableHdr::Gossip { row }) => {
                        let mine = &mut self.matrix[origin.index()];
                        for (slot, v) in mine.iter_mut().zip(row.iter()) {
                            *slot = (*slot).max(*v);
                        }
                        self.recompute(out);
                    }
                    other => panic!("stable: expected Stable frame, got {other:?}"),
                }
            }
            UpEvent::Send { msg, .. } => {
                let f = msg.pop_frame();
                debug_assert_eq!(f, Frame::NoHdr, "stable pushes NoHdr on sends");
                out.up(ev);
            }
            _ => out.up(ev),
        }
    }

    fn dn(&mut self, _now: Time, mut ev: DnEvent, out: &mut Effects) {
        match &mut ev {
            DnEvent::Cast(msg) => {
                msg.push_frame(Frame::Stable(StableHdr::Pass));
                self.seen[self.my_rank.index()] += 1;
                out.dn(ev);
            }
            DnEvent::Send { msg, .. } => {
                msg.push_frame(Frame::NoHdr);
                out.dn(ev);
            }
            _ => out.dn(ev),
        }
    }

    fn timer(&mut self, now: Time, out: &mut Effects) {
        let mut gossip = Msg::control();
        gossip.push_frame(Frame::Stable(StableHdr::Gossip {
            row: self.seen.clone(),
        }));
        self.seen[self.my_rank.index()] += 1;
        out.dn(DnEvent::Cast(gossip));
        out.timer(now + self.interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{cast, up_cast, Harness};
    use ensemble_event::Payload;

    fn h(n: usize) -> Harness<Stable> {
        Harness::new(Stable::new(&ViewState::initial(n), &LayerConfig::default()))
    }

    #[test]
    fn gossips_on_timer_and_rearms() {
        let mut h = h(2);
        assert_eq!(h.timers.len(), 1);
        let t = h.timers[0];
        let out = h.advance(t);
        assert_eq!(out.dn.len(), 1);
        assert!(matches!(&out.dn[0], DnEvent::Cast(m)
            if matches!(m.peek_frame(), Some(Frame::Stable(StableHdr::Gossip { .. })))));
        assert_eq!(h.timers.len(), 1, "re-armed");
    }

    #[test]
    fn stability_from_gossip_rows() {
        let mut h = h(2);
        let mk = |row: Vec<u64>| {
            let mut m = Msg::control();
            m.push_frame(Frame::Stable(StableHdr::Gossip { row }));
            m
        };
        // I have seen 2 casts from rank 1.
        let mut d = Msg::data(Payload::from_slice(b"d"));
        d.push_frame(Frame::Stable(StableHdr::Pass));
        h.up(up_cast(1, d.clone()));
        h.up(up_cast(1, d));
        // Rank 1 says it has seen 2 of its own.
        let out = h.up(up_cast(1, mk(vec![0, 2])));
        assert!(out.dn.iter().any(|e| matches!(e, DnEvent::Stable(v)
            if v == &vec![Seqno(0), Seqno(2)])));
    }

    #[test]
    fn own_casts_counted() {
        let mut h = h(2);
        h.dn(cast(b"m"));
        assert_eq!(h.layer.seen[0], 1);
    }
}
