//! The Ensemble micro-protocol layer library.
//!
//! Each module implements one micro-protocol: a small, single-purpose
//! component that adheres to the common event-driven layer interface
//! ([`Layer`]). Layers are stacked by `ensemble-stack` to form complete
//! protocols — reliable FIFO multicast, total ordering, flow control,
//! fragmentation, failure detection, and virtually synchronous membership.
//!
//! Conventions (checked by the test harness and debug assertions):
//!
//! * a layer pushes exactly one [`ensemble_event::Frame`] onto every
//!   message it passes down, and pops exactly one from every message it
//!   receives from below;
//! * messages a layer *originates* (NAKs, acks, credit grants, gossip)
//!   carry that layer's distinctive frame and are consumed by the peer
//!   layer on the way up — layers above never see them;
//! * non-message events pass through unless the layer is their consumer.

#![forbid(unsafe_code)]

pub mod bottom;
pub mod collect;
pub mod config;
pub mod elect;
pub mod encrypt;
pub mod frag;
pub mod gmp;
pub mod harness;
pub mod layer;
pub mod local;
pub mod manifest;
pub mod mflow;
pub mod mnak;
pub mod partial_appl;
pub mod pt2pt;
pub mod pt2ptw;
pub mod registry;
pub mod sign;
pub mod stable;
pub mod suspect;
pub mod sync;
pub mod top;
pub mod total;

pub use config::LayerConfig;
pub use layer::Layer;
pub use manifest::{manifest, HeaderManifest};
pub use registry::{
    make_layer, make_stack, StackError, LAYER_NAMES, STACK_10, STACK_4, STACK_VSYNC,
};
