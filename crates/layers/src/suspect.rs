//! `suspect` — heartbeat-based failure detection.
//!
//! Casts a liveness ping every [`LayerConfig::suspect_interval`]; any
//! traffic from a peer (data, pings, pongs) refreshes its liveness. A peer
//! silent for [`LayerConfig::suspect_misses`] consecutive rounds is
//! *suspected*, announced upward so the membership layers can run a view
//! change. Suspicion is sticky within a view (a suspected member stays
//! suspected until the view changes, matching virtual synchrony practice).

use crate::config::LayerConfig;
use crate::layer::Layer;
use ensemble_event::{DnEvent, Effects, Frame, Msg, SuspectHdr, UpEvent, ViewState};
use ensemble_util::{Duration, Rank, Time};

/// The failure-detection layer.
pub struct Suspect {
    my_rank: Rank,
    interval: Duration,
    misses_allowed: u32,
    round: u32,
    last_heard: Vec<Time>,
    suspected: Vec<bool>,
}

impl Suspect {
    /// Builds the detector.
    pub fn new(vs: &ViewState, cfg: &LayerConfig) -> Self {
        let n = vs.nmembers();
        Suspect {
            my_rank: vs.rank,
            interval: cfg.suspect_interval,
            misses_allowed: cfg.suspect_misses,
            round: 0,
            last_heard: vec![Time::ZERO; n],
            suspected: vec![false; n],
        }
    }

    /// Currently suspected ranks.
    pub fn suspects(&self) -> Vec<Rank> {
        self.suspected
            .iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(i, _)| Rank(i as u16))
            .collect()
    }

    fn heard(&mut self, origin: Rank, now: Time) {
        self.last_heard[origin.index()] = now;
    }
}

impl Layer for Suspect {
    fn name(&self) -> &'static str {
        "suspect"
    }

    fn init(&mut self, now: Time, out: &mut Effects) {
        // Everyone gets the benefit of the doubt from stack start — the
        // stack may be (re)built mid-simulation after a view change.
        for heard in self.last_heard.iter_mut() {
            *heard = now;
        }
        out.timer(now + self.interval);
    }

    fn up(&mut self, now: Time, mut ev: UpEvent, out: &mut Effects) {
        match &mut ev {
            UpEvent::Cast { origin, msg } => {
                let origin = *origin;
                self.heard(origin, now);
                let frame = msg.pop_frame();
                match frame {
                    Frame::Suspect(SuspectHdr::Pass) => out.up(ev),
                    Frame::Suspect(SuspectHdr::Ping { round }) => {
                        if origin != self.my_rank {
                            let mut pong = Msg::control();
                            pong.push_frame(Frame::Suspect(SuspectHdr::Pong { round }));
                            out.dn(DnEvent::Send {
                                dst: origin,
                                msg: pong,
                            });
                        }
                    }
                    other => panic!("suspect: unexpected cast frame {other:?}"),
                }
            }
            UpEvent::Send { origin, msg } => {
                let origin = *origin;
                self.heard(origin, now);
                let frame = msg.pop_frame();
                match frame {
                    Frame::NoHdr => out.up(ev),
                    Frame::Suspect(SuspectHdr::Pong { .. }) => {}
                    other => panic!("suspect: unexpected send frame {other:?}"),
                }
            }
            _ => out.up(ev),
        }
    }

    fn dn(&mut self, _now: Time, mut ev: DnEvent, out: &mut Effects) {
        match &mut ev {
            DnEvent::Cast(msg) => {
                msg.push_frame(Frame::Suspect(SuspectHdr::Pass));
                out.dn(ev);
            }
            DnEvent::Send { msg, .. } => {
                msg.push_frame(Frame::NoHdr);
                out.dn(ev);
            }
            // The application can declare suspicion directly. Ranks may
            // be stale — named under a view that changed before the
            // event reached the stack — so anything out of range for
            // this view is ignored rather than trusted. The event also
            // continues down: the flow-control layers below drop
            // suspects from their windows (a frozen grant from a dead
            // receiver must not wedge the flush that removes it).
            DnEvent::Suspect { ranks } => {
                let mut newly = Vec::new();
                for r in ranks.iter() {
                    if r.index() < self.suspected.len()
                        && !self.suspected[r.index()]
                        && *r != self.my_rank
                    {
                        self.suspected[r.index()] = true;
                        newly.push(*r);
                    }
                }
                if !newly.is_empty() {
                    out.up(UpEvent::Suspect(self.suspects()));
                }
                out.dn(ev);
            }
            _ => out.dn(ev),
        }
    }

    fn timer(&mut self, now: Time, out: &mut Effects) {
        self.round += 1;
        let mut ping = Msg::control();
        ping.push_frame(Frame::Suspect(SuspectHdr::Ping { round: self.round }));
        out.dn(DnEvent::Cast(ping));
        // Check for silence.
        let deadline = self.interval.scaled(self.misses_allowed as u64);
        let mut newly = false;
        for (i, &heard) in self.last_heard.iter().enumerate() {
            if i == self.my_rank.index() || self.suspected[i] {
                continue;
            }
            if now.since(heard) > deadline {
                self.suspected[i] = true;
                newly = true;
            }
        }
        if newly {
            out.up(UpEvent::Suspect(self.suspects()));
        }
        out.timer(now + self.interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{up_cast, Harness};

    fn cfg() -> LayerConfig {
        LayerConfig {
            suspect_interval: Duration::from_millis(10),
            suspect_misses: 3,
            ..LayerConfig::default()
        }
    }

    fn h(rank: u16, n: usize) -> Harness<Suspect> {
        Harness::new(Suspect::new(
            &ViewState::initial(n).for_rank(Rank(rank)),
            &cfg(),
        ))
    }

    fn ping(round: u32) -> Msg {
        let mut m = Msg::control();
        m.push_frame(Frame::Suspect(SuspectHdr::Ping { round }));
        m
    }

    #[test]
    fn pings_on_timer() {
        let mut h = h(0, 3);
        let t = h.timers[0];
        let out = h.advance(t);
        assert!(out.dn.iter().any(|e| matches!(e, DnEvent::Cast(m)
            if matches!(m.peek_frame(), Some(Frame::Suspect(SuspectHdr::Ping { .. }))))));
        assert_eq!(h.timers.len(), 1, "re-armed");
    }

    #[test]
    fn ping_answered_with_pong() {
        let mut h = h(0, 3);
        let out = h.up(up_cast(1, ping(5)));
        assert_eq!(out.dn.len(), 1);
        match &out.dn[0] {
            DnEvent::Send { dst, msg } => {
                assert_eq!(*dst, Rank(1));
                assert_eq!(
                    msg.peek_frame(),
                    Some(&Frame::Suspect(SuspectHdr::Pong { round: 5 }))
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn own_loopback_ping_not_answered() {
        let mut h = h(1, 3);
        let out = h.up(up_cast(1, ping(5)));
        out.assert_silent();
    }

    #[test]
    fn silent_peer_suspected_after_misses() {
        let mut h = h(0, 3);
        // Peer 1 talks each round; peer 2 never does.
        let mut suspected = Vec::new();
        for round in 0..6 {
            let t = h.timers[0];
            let out = h.advance(t);
            h.up(up_cast(1, ping(round)));
            for e in out.up {
                if let UpEvent::Suspect(r) = e {
                    suspected = r;
                }
            }
        }
        assert_eq!(suspected, vec![Rank(2)]);
    }

    #[test]
    fn traffic_prevents_suspicion() {
        let mut h = h(0, 2);
        for round in 0..8 {
            let t = h.timers[0];
            let out = h.advance(t);
            assert!(!out.up.iter().any(|e| matches!(e, UpEvent::Suspect(_))));
            h.up(up_cast(1, ping(round)));
        }
        assert!(h.layer.suspects().is_empty());
    }

    #[test]
    fn application_declared_suspicion() {
        let mut h = h(0, 3);
        let out = h.dn(DnEvent::Suspect {
            ranks: vec![Rank(2)],
        });
        assert_eq!(out.up, vec![UpEvent::Suspect(vec![Rank(2)])]);
        // The suspicion continues down for the flow-control layers.
        assert_eq!(
            out.dn,
            vec![DnEvent::Suspect {
                ranks: vec![Rank(2)]
            }]
        );
        // Repeats raise nothing new upward but still travel down.
        let out = h.dn(DnEvent::Suspect {
            ranks: vec![Rank(2)],
        });
        assert!(out.up.is_empty(), "no repeat suspicion upward");
        assert_eq!(out.dn.len(), 1);
    }
}
