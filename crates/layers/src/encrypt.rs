//! `encrypt` — payload confidentiality.
//!
//! XORs the payload with a keystream derived from the key id and the
//! payload length. Like [`crate::sign`], this is a structural stand-in for
//! the real encryption micro-protocols in Ensemble's library: it exercises
//! a layer that must touch (and therefore copy) every payload byte, the
//! worst case for layering overhead.

use crate::config::LayerConfig;
use crate::layer::Layer;
use ensemble_event::{DnEvent, Effects, Frame, Payload, UpEvent, ViewState};
use ensemble_util::{DetRng, Time};

/// The encryption layer.
pub struct Encrypt {
    keyid: u32,
}

impl Encrypt {
    /// Builds an encryption layer with the configured key id.
    pub fn new(_vs: &ViewState, cfg: &LayerConfig) -> Self {
        Encrypt {
            keyid: cfg.encrypt_key,
        }
    }

    fn transform(&self, keyid: u32, p: &Payload) -> Payload {
        // Keystream from a deterministic RNG seeded by (keyid, len): XOR is
        // its own inverse, so the same transform decrypts.
        let mut bytes = p.gather();
        let mut ks = DetRng::new(((keyid as u64) << 32) ^ bytes.len() as u64);
        for b in bytes.iter_mut() {
            *b ^= ks.next_u64() as u8;
        }
        Payload::from_vec(bytes)
    }
}

impl Layer for Encrypt {
    fn name(&self) -> &'static str {
        "encrypt"
    }

    fn up(&mut self, _now: Time, mut ev: UpEvent, out: &mut Effects) {
        match &mut ev {
            UpEvent::Cast { msg, .. } | UpEvent::Send { msg, .. } => match msg.pop_frame() {
                Frame::Encrypt { keyid } => {
                    let clear = self.transform(keyid, msg.payload());
                    msg.set_payload(clear);
                    out.up(ev);
                }
                other => panic!("encrypt: expected Encrypt frame, got {other:?}"),
            },
            _ => out.up(ev),
        }
    }

    fn dn(&mut self, _now: Time, mut ev: DnEvent, out: &mut Effects) {
        match &mut ev {
            DnEvent::Cast(msg) | DnEvent::Send { msg, .. } => {
                let cipher = self.transform(self.keyid, msg.payload());
                msg.set_payload(cipher);
                msg.push_frame(Frame::Encrypt { keyid: self.keyid });
                out.dn(ev);
            }
            _ => out.dn(ev),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{cast, up_cast, Harness};

    fn h() -> Harness<Encrypt> {
        Harness::new(Encrypt::new(
            &ViewState::initial(2),
            &LayerConfig::default(),
        ))
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let mut h = h();
        let ev = h.dn(cast(b"secret message")).sole_dn();
        let msg = match ev {
            DnEvent::Cast(m) => m,
            other => panic!("{other:?}"),
        };
        // The ciphertext differs from the plaintext.
        assert_ne!(msg.payload().gather(), b"secret message");
        let up = h.up(up_cast(1, msg)).sole_up();
        assert_eq!(up.msg().unwrap().payload().gather(), b"secret message");
    }

    #[test]
    fn empty_payload_roundtrips() {
        let mut h = h();
        let ev = h.dn(cast(b"")).sole_dn();
        let msg = match ev {
            DnEvent::Cast(m) => m,
            other => panic!("{other:?}"),
        };
        let up = h.up(up_cast(1, msg)).sole_up();
        assert!(up.msg().unwrap().payload().is_empty());
    }

    #[test]
    fn keyid_travels_in_frame() {
        let cfg = LayerConfig {
            encrypt_key: 9,
            ..LayerConfig::default()
        };
        let mut h = Harness::new(Encrypt::new(&ViewState::initial(2), &cfg));
        let ev = h.dn(cast(b"x")).sole_dn();
        assert_eq!(
            ev.msg().unwrap().peek_frame(),
            Some(&Frame::Encrypt { keyid: 9 })
        );
    }

    #[test]
    fn control_events_pass() {
        let mut h = h();
        h.up(UpEvent::FlushDone).sole_up();
        h.dn(DnEvent::Leave).sole_dn();
    }
}
