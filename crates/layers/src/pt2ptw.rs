//! `pt2ptw` — window-based flow control for point-to-point sends.
//!
//! Each destination starts with [`LayerConfig::pt2pt_window`] send credits.
//! A send consumes one credit; when the receiver has consumed half a
//! window it grants the cumulative count back, replenishing the sender.
//! Sends without credit queue until a grant arrives.

use crate::config::LayerConfig;
use crate::layer::Layer;
use ensemble_event::{DnEvent, Effects, FlowHdr, Frame, Msg, UpEvent, ViewState};
use ensemble_util::{Rank, Time};
use std::collections::VecDeque;

/// Per-destination flow state.
#[derive(Default)]
struct Flow {
    /// Messages sent so far.
    sent: u64,
    /// Cumulative messages the peer has granted (acknowledged consuming).
    granted: u64,
    /// Messages received from the peer since the last grant we issued.
    consumed_since_grant: u64,
    /// Cumulative messages we have consumed from the peer.
    consumed_total: u64,
    /// Sends waiting for credit.
    queue: VecDeque<Msg>,
}

/// The point-to-point flow-control layer.
pub struct Pt2PtW {
    window: u64,
    flows: Vec<Flow>,
}

impl Pt2PtW {
    /// Builds the layer for a view of `n` members.
    pub fn new(vs: &ViewState, cfg: &LayerConfig) -> Self {
        Pt2PtW {
            window: cfg.pt2pt_window,
            flows: (0..vs.nmembers()).map(|_| Flow::default()).collect(),
        }
    }

    /// Total queued (credit-starved) sends.
    pub fn queued_count(&self) -> usize {
        self.flows.iter().map(|f| f.queue.len()).sum()
    }

    fn may_send(&self, dst: Rank) -> bool {
        let f = &self.flows[dst.index()];
        f.sent - f.granted < self.window
    }

    fn transmit(flow: &mut Flow, dst: Rank, mut msg: Msg, out: &mut Effects) {
        flow.sent += 1;
        msg.push_frame(Frame::Pt2PtW(FlowHdr::Data));
        out.dn(DnEvent::Send { dst, msg });
    }
}

impl Layer for Pt2PtW {
    fn name(&self) -> &'static str {
        "pt2ptw"
    }

    fn up(&mut self, _now: Time, mut ev: UpEvent, out: &mut Effects) {
        match &mut ev {
            UpEvent::Send { origin, msg } => {
                let origin = *origin;
                let frame = msg.pop_frame();
                let window = self.window;
                let flow = &mut self.flows[origin.index()];
                match frame {
                    Frame::Pt2PtW(FlowHdr::Data) => {
                        flow.consumed_since_grant += 1;
                        flow.consumed_total += 1;
                        if flow.consumed_since_grant >= window / 2 {
                            flow.consumed_since_grant = 0;
                            let mut grant = Msg::control();
                            grant.push_frame(Frame::Pt2PtW(FlowHdr::Credit {
                                granted: flow.consumed_total,
                            }));
                            out.dn(DnEvent::Send {
                                dst: origin,
                                msg: grant,
                            });
                        }
                        out.up(ev);
                    }
                    Frame::Pt2PtW(FlowHdr::Credit { granted }) => {
                        flow.granted = flow.granted.max(granted);
                        // Drain whatever the new credit allows.
                        while !self.flows[origin.index()].queue.is_empty() && self.may_send(origin)
                        {
                            let flow = &mut self.flows[origin.index()];
                            let msg = flow.queue.pop_front().expect("checked non-empty");
                            Self::transmit(flow, origin, msg, out);
                        }
                    }
                    other => panic!("pt2ptw: expected Pt2PtW frame, got {other:?}"),
                }
            }
            UpEvent::Cast { msg, .. } => {
                let f = msg.pop_frame();
                debug_assert_eq!(f, Frame::NoHdr, "pt2ptw pushes NoHdr on casts");
                out.up(ev);
            }
            _ => out.up(ev),
        }
    }

    fn dn(&mut self, _now: Time, mut ev: DnEvent, out: &mut Effects) {
        match &mut ev {
            DnEvent::Send { dst, msg } => {
                let dst = *dst;
                if self.may_send(dst) {
                    let msg = std::mem::take(msg);
                    Self::transmit(&mut self.flows[dst.index()], dst, msg, out);
                } else {
                    self.flows[dst.index()].queue.push_back(std::mem::take(msg));
                }
            }
            DnEvent::Cast(msg) => {
                msg.push_frame(Frame::NoHdr);
                out.dn(ev);
            }
            _ => out.dn(ev),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{send, up_send, Harness};
    use ensemble_event::Payload;

    fn h(window: u64) -> Harness<Pt2PtW> {
        let cfg = LayerConfig {
            pt2pt_window: window,
            ..LayerConfig::default()
        };
        Harness::new(Pt2PtW::new(&ViewState::initial(3), &cfg))
    }

    #[test]
    fn sends_within_window_pass() {
        let mut h = h(4);
        for i in 0..4 {
            let ev = h.dn(send(1, &[i])).sole_dn();
            assert_eq!(
                ev.msg().unwrap().peek_frame(),
                Some(&Frame::Pt2PtW(FlowHdr::Data))
            );
        }
    }

    #[test]
    fn sends_beyond_window_queue() {
        let mut h = h(2);
        h.dn(send(1, b"a")).sole_dn();
        h.dn(send(1, b"b")).sole_dn();
        h.dn(send(1, b"c")).assert_silent();
        assert_eq!(h.layer.queued_count(), 1);
    }

    #[test]
    fn credit_releases_queue() {
        let mut h = h(2);
        h.dn(send(1, b"a"));
        h.dn(send(1, b"b"));
        h.dn(send(1, b"c"));
        let mut grant = Msg::control();
        grant.push_frame(Frame::Pt2PtW(FlowHdr::Credit { granted: 2 }));
        let out = h.up(up_send(1, grant));
        assert_eq!(out.dn.len(), 1, "queued send released");
        assert!(out.up.is_empty(), "credit consumed silently");
        assert_eq!(h.layer.queued_count(), 0);
    }

    #[test]
    fn receiver_grants_after_half_window() {
        let mut h = h(4);
        let mk = || {
            let mut m = Msg::data(Payload::from_slice(b"d"));
            m.push_frame(Frame::Pt2PtW(FlowHdr::Data));
            m
        };
        let out = h.up(up_send(2, mk()));
        assert_eq!(out.up.len(), 1);
        assert!(out.dn.is_empty(), "no grant after 1 of 4");
        let out = h.up(up_send(2, mk()));
        assert_eq!(out.dn.len(), 1, "grant after half window");
        match &out.dn[0] {
            DnEvent::Send { dst, msg } => {
                assert_eq!(*dst, Rank(2));
                assert_eq!(
                    msg.peek_frame(),
                    Some(&Frame::Pt2PtW(FlowHdr::Credit { granted: 2 }))
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stale_credit_is_idempotent() {
        let mut h = h(2);
        for _ in 0..4 {
            h.dn(send(1, b"x"));
        }
        assert_eq!(h.layer.queued_count(), 2);
        let mut g1 = Msg::control();
        g1.push_frame(Frame::Pt2PtW(FlowHdr::Credit { granted: 2 }));
        h.up(up_send(1, g1.clone()));
        assert_eq!(h.layer.queued_count(), 0);
        // Replay of the same cumulative grant releases nothing extra.
        let before = h.layer.flows[1].sent;
        h.up(up_send(1, g1));
        assert_eq!(h.layer.flows[1].sent, before);
    }

    #[test]
    fn per_destination_windows_independent() {
        let mut h = h(1);
        h.dn(send(1, b"a")).sole_dn();
        h.dn(send(2, b"b")).sole_dn();
        h.dn(send(1, b"c")).assert_silent();
        assert_eq!(h.layer.queued_count(), 1);
    }

    #[test]
    fn casts_unaffected() {
        let mut h = h(1);
        h.dn(send(1, b"consume-window"));
        let out = h.dn(crate::harness::cast(b"c"));
        out.sole_dn();
    }
}
