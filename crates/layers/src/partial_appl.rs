//! `partial_appl` — application interface adaptation.
//!
//! Sits directly under `top` and enforces the blocking contract of the
//! membership protocol on behalf of the application: once the application
//! has acknowledged a `Block` (the `BlockOk` passes through this layer),
//! newly submitted casts and sends are queued rather than transmitted, and
//! are flushed into the next view. Deliveries are never blocked.

use crate::config::LayerConfig;
use crate::layer::Layer;
use ensemble_event::{DnEvent, Effects, Frame, UpEvent, ViewState};
use ensemble_util::Time;

/// The application-adapter layer.
pub struct PartialAppl {
    blocked: bool,
    queued: Vec<DnEvent>,
}

impl PartialAppl {
    /// Builds the adapter.
    pub fn new(_vs: &ViewState, _cfg: &LayerConfig) -> Self {
        PartialAppl {
            blocked: false,
            queued: Vec::new(),
        }
    }

    /// Number of sends/casts queued behind a block.
    pub fn queued_len(&self) -> usize {
        self.queued.len()
    }
}

impl Layer for PartialAppl {
    fn name(&self) -> &'static str {
        "partial_appl"
    }

    fn up(&mut self, _now: Time, mut ev: UpEvent, out: &mut Effects) {
        match &mut ev {
            UpEvent::Cast { msg, .. } | UpEvent::Send { msg, .. } => {
                let f = msg.pop_frame();
                debug_assert_eq!(f, Frame::NoHdr, "partial_appl pushes NoHdr");
                out.up(ev);
            }
            UpEvent::View(_) => {
                self.blocked = false;
                out.up(ev);
                // The queued traffic belongs to the next view; it is
                // re-submitted once the new stack is up. The runtime
                // collects it via `take_queued` — here we just release it
                // downward in the (rare) case the same stack continues.
                for q in std::mem::take(&mut self.queued) {
                    out.dn(q);
                }
            }
            _ => out.up(ev),
        }
    }

    fn dn(&mut self, _now: Time, mut ev: DnEvent, out: &mut Effects) {
        match &mut ev {
            DnEvent::Cast(msg) => {
                if self.blocked {
                    self.queued.push(ev);
                    return;
                }
                msg.push_frame(Frame::NoHdr);
                out.dn(ev);
            }
            DnEvent::Send { msg, .. } => {
                if self.blocked {
                    self.queued.push(ev);
                    return;
                }
                msg.push_frame(Frame::NoHdr);
                out.dn(ev);
            }
            DnEvent::BlockOk => {
                self.blocked = true;
                out.dn(ev);
            }
            _ => out.dn(ev),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{cast, send, up_cast, Harness};
    use ensemble_event::{Msg, Payload};

    fn h() -> Harness<PartialAppl> {
        Harness::new(PartialAppl::new(
            &ViewState::initial(2),
            &LayerConfig::default(),
        ))
    }

    #[test]
    fn passes_and_frames_data() {
        let mut h = h();
        let ev = h.dn(cast(b"m")).sole_dn();
        assert_eq!(ev.msg().unwrap().peek_frame(), Some(&Frame::NoHdr));
        let mut m = Msg::data(Payload::from_slice(b"r"));
        m.push_frame(Frame::NoHdr);
        let up = h.up(up_cast(1, m)).sole_up();
        assert_eq!(up.msg().unwrap().depth(), 0);
    }

    #[test]
    fn queues_after_block_ok() {
        let mut h = h();
        h.dn(DnEvent::BlockOk).sole_dn();
        h.dn(cast(b"late")).assert_silent();
        h.dn(send(1, b"late2")).assert_silent();
        assert_eq!(h.layer.queued_len(), 2);
    }

    #[test]
    fn view_releases_queue() {
        let mut h = h();
        h.dn(DnEvent::BlockOk);
        h.dn(cast(b"late"));
        let out = h.up(UpEvent::View(ViewState::initial(2)));
        assert_eq!(out.up.len(), 1);
        assert_eq!(out.dn.len(), 1);
        assert_eq!(h.layer.queued_len(), 0);
        // Unblocked again.
        h.dn(cast(b"new")).sole_dn();
    }

    #[test]
    fn deliveries_never_blocked() {
        let mut h = h();
        h.dn(DnEvent::BlockOk);
        let mut m = Msg::data(Payload::from_slice(b"r"));
        m.push_frame(Frame::NoHdr);
        h.up(up_cast(1, m)).sole_up();
    }
}
