//! `elect` — coordinator election.
//!
//! Tracks the suspicion set reported by [`crate::suspect`] below and
//! forwards it upward only on the process that is the *acting coordinator*
//! (the lowest unsuspected rank). The membership layer above therefore
//! acts exactly once per view change, and leadership fails over
//! automatically when the coordinator itself is suspected.

use crate::config::LayerConfig;
use crate::layer::Layer;
use ensemble_event::{DnEvent, Effects, Frame, UpEvent, ViewState};
use ensemble_util::{Rank, Time};

/// The election layer.
pub struct Elect {
    my_rank: Rank,
    n: usize,
    suspected: Vec<bool>,
}

impl Elect {
    /// Builds the layer.
    pub fn new(vs: &ViewState, _cfg: &LayerConfig) -> Self {
        Elect {
            my_rank: vs.rank,
            n: vs.nmembers(),
            suspected: vec![false; vs.nmembers()],
        }
    }

    /// The acting coordinator under the current suspicion set.
    pub fn coordinator(&self) -> Rank {
        for i in 0..self.n {
            if !self.suspected[i] {
                return Rank(i as u16);
            }
        }
        // Everyone suspected (cannot include ourselves in practice):
        // fall back to self.
        self.my_rank
    }

    /// Whether this process is the acting coordinator.
    pub fn am_coordinator(&self) -> bool {
        self.coordinator() == self.my_rank
    }
}

impl Layer for Elect {
    fn name(&self) -> &'static str {
        "elect"
    }

    fn up(&mut self, _now: Time, mut ev: UpEvent, out: &mut Effects) {
        match &mut ev {
            UpEvent::Suspect(ranks) => {
                for r in ranks.iter() {
                    if r.index() < self.n {
                        self.suspected[r.index()] = true;
                    }
                }
                if self.am_coordinator() {
                    out.up(UpEvent::Suspect(ranks.clone()));
                }
            }
            UpEvent::Cast { msg, .. } | UpEvent::Send { msg, .. } => {
                let f = msg.pop_frame();
                debug_assert_eq!(f, Frame::NoHdr, "elect pushes NoHdr");
                out.up(ev);
            }
            _ => out.up(ev),
        }
    }

    fn dn(&mut self, _now: Time, mut ev: DnEvent, out: &mut Effects) {
        match &mut ev {
            DnEvent::Cast(msg) | DnEvent::Send { msg, .. } => {
                msg.push_frame(Frame::NoHdr);
                out.dn(ev);
            }
            _ => out.dn(ev),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Harness;

    fn h(rank: u16, n: usize) -> Harness<Elect> {
        Harness::new(Elect::new(
            &ViewState::initial(n).for_rank(Rank(rank)),
            &LayerConfig::default(),
        ))
    }

    #[test]
    fn coordinator_forwards_suspicion() {
        let mut h = h(0, 3);
        let out = h.up(UpEvent::Suspect(vec![Rank(2)]));
        assert_eq!(out.up, vec![UpEvent::Suspect(vec![Rank(2)])]);
    }

    #[test]
    fn member_swallows_suspicion() {
        let mut h = h(1, 3);
        h.up(UpEvent::Suspect(vec![Rank(2)])).assert_silent();
    }

    #[test]
    fn failover_when_coordinator_suspected() {
        let mut h = h(1, 3);
        // Rank 0 suspected: rank 1 becomes acting coordinator and forwards.
        let out = h.up(UpEvent::Suspect(vec![Rank(0)]));
        assert!(h.layer.am_coordinator());
        assert_eq!(out.up, vec![UpEvent::Suspect(vec![Rank(0)])]);
    }

    #[test]
    fn non_successor_stays_quiet_on_failover() {
        let mut h = h(2, 3);
        h.up(UpEvent::Suspect(vec![Rank(0)])).assert_silent();
        assert_eq!(h.layer.coordinator(), Rank(1));
    }

    #[test]
    fn data_passes_with_nohdr() {
        let mut h = h(0, 2);
        let ev = h.dn(crate::harness::cast(b"m")).sole_dn();
        assert_eq!(ev.msg().unwrap().peek_frame(), Some(&Frame::NoHdr));
    }
}
