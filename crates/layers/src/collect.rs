//! `collect` — acknowledgment collection for stability.
//!
//! Counts the casts delivered per origin (at this level every cast that
//! passed `mnak` exactly once, so counts are in `mnak` seqno units) and
//! periodically casts its delivered-vector. Rows from all members form a
//! matrix whose column-wise minimum is the *stability vector*: casts below
//! it have been delivered by everyone and can be reclaimed. The vector is
//! emitted both downward (pruning `mnak`'s store) and upward (to the
//! application as [`UpEvent::Stable`]).

use crate::config::LayerConfig;
use crate::layer::Layer;
use ensemble_event::{CollectHdr, DnEvent, Effects, Frame, Msg, UpEvent, ViewState};
use ensemble_util::{Rank, Seqno, Time};

/// The stability-collection layer.
pub struct Collect {
    my_rank: Rank,
    every: u64,
    /// Casts seen from each origin (my row of the matrix). The entry for
    /// my own rank counts my own casts sent.
    seen: Vec<u64>,
    /// The full matrix: one row per member.
    matrix: Vec<Vec<u64>>,
    /// The last stability vector announced.
    last_min: Vec<u64>,
    /// Deliveries since the last gossip.
    since_gossip: u64,
}

impl Collect {
    /// Builds the layer for a view.
    pub fn new(vs: &ViewState, cfg: &LayerConfig) -> Self {
        let n = vs.nmembers();
        Collect {
            my_rank: vs.rank,
            every: cfg.collect_every.max(1),
            seen: vec![0; n],
            matrix: vec![vec![0; n]; n],
            last_min: vec![0; n],
            since_gossip: 0,
        }
    }

    /// The current stability floor per origin.
    pub fn stability(&self) -> Vec<Seqno> {
        self.last_min.iter().map(|&v| Seqno(v)).collect()
    }

    fn recompute(&mut self, out: &mut Effects) {
        self.matrix[self.my_rank.index()] = self.seen.clone();
        let n = self.seen.len();
        let min: Vec<u64> = (0..n)
            .map(|col| self.matrix.iter().map(|row| row[col]).min().unwrap_or(0))
            .collect();
        if min != self.last_min {
            self.last_min = min;
            let vec: Vec<Seqno> = self.last_min.iter().map(|&v| Seqno(v)).collect();
            out.dn(DnEvent::Stable(vec.clone()));
            out.up(UpEvent::Stable(vec));
        }
    }

    fn maybe_gossip(&mut self, out: &mut Effects) {
        self.since_gossip += 1;
        if self.since_gossip < self.every {
            return;
        }
        self.since_gossip = 0;
        let mut gossip = Msg::control();
        gossip.push_frame(Frame::Collect(CollectHdr::Gossip {
            seen: self.seen.clone(),
        }));
        // The gossip cast itself consumes an mnak seqno; count it so our
        // row stays aligned with mnak's numbering.
        self.seen[self.my_rank.index()] += 1;
        out.dn(DnEvent::Cast(gossip));
    }
}

impl Layer for Collect {
    fn name(&self) -> &'static str {
        "collect"
    }

    fn up(&mut self, _now: Time, mut ev: UpEvent, out: &mut Effects) {
        match &mut ev {
            UpEvent::Cast { origin, msg } => {
                let origin = *origin;
                let frame = msg.pop_frame();
                self.seen[origin.index()] += 1;
                match frame {
                    Frame::Collect(CollectHdr::Pass) => {
                        out.up(ev);
                        self.maybe_gossip(out);
                        self.recompute(out);
                    }
                    Frame::Collect(CollectHdr::Gossip { seen }) => {
                        let row = &mut self.matrix[origin.index()];
                        for (slot, v) in row.iter_mut().zip(seen.iter()) {
                            *slot = (*slot).max(*v);
                        }
                        self.recompute(out);
                    }
                    other => panic!("collect: expected Collect frame, got {other:?}"),
                }
            }
            UpEvent::Send { msg, .. } => {
                let f = msg.pop_frame();
                debug_assert_eq!(f, Frame::NoHdr, "collect pushes NoHdr on sends");
                out.up(ev);
            }
            _ => out.up(ev),
        }
    }

    fn dn(&mut self, _now: Time, mut ev: DnEvent, out: &mut Effects) {
        match &mut ev {
            DnEvent::Cast(msg) => {
                msg.push_frame(Frame::Collect(CollectHdr::Pass));
                self.seen[self.my_rank.index()] += 1;
                out.dn(ev);
                // Sending also counts towards the gossip trigger: a pure
                // sender must still announce its frontier or nobody's
                // stability (and mnak's buffers) would ever advance.
                self.maybe_gossip(out);
            }
            DnEvent::Send { msg, .. } => {
                msg.push_frame(Frame::NoHdr);
                out.dn(ev);
            }
            _ => out.dn(ev),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{cast, up_cast, Harness};
    use ensemble_event::Payload;

    fn h(every: u64, n: usize) -> Harness<Collect> {
        let cfg = LayerConfig {
            collect_every: every,
            ..LayerConfig::default()
        };
        Harness::new(Collect::new(&ViewState::initial(n), &cfg))
    }

    fn data() -> Msg {
        let mut m = Msg::data(Payload::from_slice(b"d"));
        m.push_frame(Frame::Collect(CollectHdr::Pass));
        m
    }

    fn gossip(seen: Vec<u64>) -> Msg {
        let mut m = Msg::control();
        m.push_frame(Frame::Collect(CollectHdr::Gossip { seen }));
        m
    }

    #[test]
    fn counts_and_passes_data() {
        let mut h = h(100, 2);
        let out = h.up(up_cast(1, data()));
        assert_eq!(out.up.len(), 1);
        assert_eq!(h.layer.seen, vec![0, 1]);
    }

    #[test]
    fn gossips_after_threshold() {
        let mut h = h(2, 2);
        h.up(up_cast(1, data()));
        let out = h.up(up_cast(1, data()));
        let casts: Vec<&DnEvent> = out
            .dn
            .iter()
            .filter(|e| matches!(e, DnEvent::Cast(_)))
            .collect();
        assert_eq!(casts.len(), 1, "gossip cast emitted");
        match casts[0] {
            DnEvent::Cast(m) => {
                assert_eq!(
                    m.peek_frame(),
                    Some(&Frame::Collect(CollectHdr::Gossip { seen: vec![0, 2] }))
                );
            }
            other => panic!("{other:?}"),
        }
        // The gossip consumed one of our own mnak seqnos.
        assert_eq!(h.layer.seen[0], 1);
    }

    #[test]
    fn stability_advances_with_full_matrix() {
        let mut h = h(100, 2);
        // I delivered 3 casts from origin 1.
        for _ in 0..3 {
            h.up(up_cast(1, data()));
        }
        // Origin 1 reports having seen 2 of its own casts (everyone counts
        // their own sends), and 0 of mine.
        let out = h.up(up_cast(1, gossip(vec![0, 2])));
        let stables: Vec<&DnEvent> = out
            .dn
            .iter()
            .filter(|e| matches!(e, DnEvent::Stable(_)))
            .collect();
        assert_eq!(stables.len(), 1);
        match stables[0] {
            DnEvent::Stable(v) => assert_eq!(v, &vec![Seqno(0), Seqno(2)]),
            other => panic!("{other:?}"),
        }
        // Matching up event too.
        assert!(out.up.iter().any(|e| matches!(e, UpEvent::Stable(_))));
    }

    #[test]
    fn stability_never_regresses() {
        let mut h = h(100, 2);
        for _ in 0..3 {
            h.up(up_cast(1, data()));
        }
        h.up(up_cast(1, gossip(vec![0, 3])));
        assert_eq!(h.layer.stability()[1], Seqno(3));
        // A stale (lower) gossip row must not pull stability back.
        let out = h.up(up_cast(1, gossip(vec![0, 1])));
        assert!(
            !out.dn.iter().any(|e| matches!(e, DnEvent::Stable(_))),
            "no regression announcement"
        );
        assert_eq!(h.layer.stability()[1], Seqno(3));
    }

    #[test]
    fn own_casts_counted() {
        let mut h = h(100, 2);
        h.dn(cast(b"mine"));
        assert_eq!(h.layer.seen[0], 1);
    }

    #[test]
    fn pure_sender_still_gossips() {
        let mut h = h(3, 2);
        h.dn(cast(b"a")).sole_dn();
        h.dn(cast(b"b")).sole_dn();
        // The third own cast crosses the threshold: data + gossip go down.
        let out = h.dn(cast(b"c"));
        assert_eq!(out.dn.len(), 2, "{:?}", out.dn);
        assert!(matches!(&out.dn[1], DnEvent::Cast(m)
            if matches!(m.peek_frame(), Some(Frame::Collect(CollectHdr::Gossip { .. })))));
    }
}
