//! `local` — local delivery of a member's own traffic.
//!
//! The network never echoes a cast back to its sender, so someone must
//! deliver a member's own casts to itself. `local` bounces a copy of every
//! down-going cast back up (this is the canonical *bouncing* bypass path
//! of the composition theorems, §4.1.3) and likewise short-circuits sends
//! addressed to the sender's own rank.
//!
//! `local` sits *below* the ordering layer so that a member's own casts
//! are subject to the same total order as everyone else's.

use crate::config::LayerConfig;
use crate::layer::Layer;
use ensemble_event::{DnEvent, Effects, Frame, UpEvent, ViewState};
use ensemble_util::{Rank, Time};

/// The loopback layer.
pub struct Local {
    my_rank: Rank,
}

impl Local {
    /// Builds a loopback layer for this process's rank.
    pub fn new(vs: &ViewState, _cfg: &LayerConfig) -> Self {
        Local { my_rank: vs.rank }
    }
}

impl Layer for Local {
    fn name(&self) -> &'static str {
        "local"
    }

    fn up(&mut self, _now: Time, mut ev: UpEvent, out: &mut Effects) {
        match &mut ev {
            UpEvent::Cast { msg, .. } | UpEvent::Send { msg, .. } => {
                let f = msg.pop_frame();
                debug_assert_eq!(f, Frame::NoHdr, "local pushes NoHdr");
                out.up(ev);
            }
            _ => out.up(ev),
        }
    }

    fn dn(&mut self, _now: Time, mut ev: DnEvent, out: &mut Effects) {
        match &mut ev {
            DnEvent::Cast(msg) => {
                // Bounce a copy up before framing: the loopback copy must
                // look exactly like a network delivery to the layers above.
                out.up(UpEvent::Cast {
                    origin: self.my_rank,
                    msg: msg.clone(),
                });
                msg.push_frame(Frame::NoHdr);
                out.dn(ev);
            }
            DnEvent::Send { dst, msg } if *dst == self.my_rank => {
                // A self-send never touches the network.
                out.up(UpEvent::Send {
                    origin: self.my_rank,
                    msg: msg.clone(),
                });
            }
            DnEvent::Send { msg, .. } => {
                msg.push_frame(Frame::NoHdr);
                out.dn(ev);
            }
            _ => out.dn(ev),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{cast, send, up_cast, Harness};
    use ensemble_event::{Msg, Payload};

    fn h(rank: u16) -> Harness<Local> {
        Harness::new(Local::new(
            &ViewState::initial(3).for_rank(Rank(rank)),
            &LayerConfig::default(),
        ))
    }

    #[test]
    fn casts_bounce_and_continue() {
        let mut h = h(1);
        let out = h.dn(cast(b"m"));
        assert_eq!(out.up.len(), 1);
        assert_eq!(out.dn.len(), 1);
        // The bounced copy has no extra frame and carries my rank.
        match &out.up[0] {
            UpEvent::Cast { origin, msg } => {
                assert_eq!(*origin, Rank(1));
                assert_eq!(msg.depth(), 0);
            }
            other => panic!("expected cast, got {other:?}"),
        }
        // The network copy is framed.
        assert_eq!(out.dn[0].msg().unwrap().peek_frame(), Some(&Frame::NoHdr));
    }

    #[test]
    fn self_send_short_circuits() {
        let mut h = h(2);
        let ev = h.dn(send(2, b"me")).sole_up();
        assert_eq!(ev.origin(), Some(Rank(2)));
    }

    #[test]
    fn other_send_passes_down() {
        let mut h = h(2);
        let ev = h.dn(send(0, b"you")).sole_dn();
        assert!(matches!(ev, DnEvent::Send { dst: Rank(0), .. }));
    }

    #[test]
    fn up_pops_frame() {
        let mut h = h(0);
        let mut m = Msg::data(Payload::from_slice(b"r"));
        m.push_frame(Frame::NoHdr);
        let ev = h.up(up_cast(1, m)).sole_up();
        assert_eq!(ev.msg().unwrap().depth(), 0);
    }

    #[test]
    fn control_events_pass() {
        let mut h = h(0);
        h.dn(DnEvent::Block).sole_dn();
        h.up(UpEvent::Block).sole_up();
    }
}
